#!/usr/bin/env sh
# One-command pre-push gate: the same checks CI's `lint` and `tests`
# jobs run, in fast-feedback order.
#
#   tools/check.sh          reprolint + lint tests + tier-1 suite
#   tools/check.sh --fast   reprolint + lint tests only (seconds)
#
# mypy runs only when it is installed — the check environment is not
# required to have it (CI's lint job always does).
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== reprolint =="
python -m repro lint src

echo "== lint test suite =="
python -m pytest tests/lint -q

if python -c "import mypy" 2>/dev/null; then
    echo "== mypy =="
    python -m mypy src/repro
else
    echo "== mypy == (not installed; skipped — CI runs it)"
fi

if [ "${1:-}" = "--fast" ]; then
    echo "check.sh: fast checks passed"
    exit 0
fi

echo "== tier-1 suite =="
python -m pytest -x -q -m "not soak and not chaos"

echo "check.sh: all checks passed"
