"""Table IV: compression/decompression throughput (MB/s) at eps = 1e-3.

Paper (C/C++ on a 64-core Xeon): ZFP and SZ2 fastest (~150-550 MB/s),
QoZ within ~10-25% of SZ3.  Our absolute numbers are pure-Python and far
lower; the *relative* claim to check is that QoZ's online tuning keeps it
comparable to SZ3 rather than multiples slower.
"""

import time

from conftest import bench_dataset, record
from repro import MGARDPlus, QoZ, SZ2, SZ3, ZFP
from repro.analysis import format_table
from repro.datasets import dataset_names

EPS = 1e-3


def _measure(codec, data):
    t0 = time.perf_counter()
    blob = codec.compress(data, rel_error_bound=EPS)
    t1 = time.perf_counter()
    codec.decompress(blob)
    t2 = time.perf_counter()
    mb = data.nbytes / 1e6
    return mb / (t1 - t0), mb / (t2 - t1)


def _run():
    rows = []
    for name in dataset_names():
        data = bench_dataset(name)
        speeds = {}
        for cname, codec in [
            ("sz2", SZ2()),
            ("sz3", SZ3()),
            ("zfp", ZFP()),
            ("mgard", MGARDPlus()),
            ("qoz", QoZ(metric="psnr")),
        ]:
            speeds[cname] = _measure(codec, data)
        rows.append([name, "compress"] + [round(speeds[c][0], 1) for c in
                                          ("sz2", "sz3", "zfp", "mgard", "qoz")])
        rows.append([name, "decompress"] + [round(speeds[c][1], 1) for c in
                                            ("sz2", "sz3", "zfp", "mgard", "qoz")])
    return rows


def test_table4_throughput(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "direction", "sz2", "sz3", "zfp", "mgard", "qoz"],
        rows,
        title="Table IV — throughput in MB/s at eps=1e-3 (paper is native "
        "C/C++; check the QoZ-vs-SZ3 ratio, not absolute numbers)",
    )
    record("table4_speed", table)
