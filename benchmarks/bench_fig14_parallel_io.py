"""Fig. 14: parallel dump/load performance on 1K-8K cores (Hurricane).

Paper: on Bebop, QoZ's higher CR gives the best overall dump/load time
once the aggregate I/O bandwidth saturates (total data > ~5 TB).  We
measure each codec's CR and single-core throughput on the Hurricane
stand-in, then evaluate the bandwidth-saturation model at the paper's
core counts.
"""

from conftest import bench_dataset, record
from repro import MGARDPlus, QoZ, SZ2, SZ3, ZFP
from repro.analysis import format_table
from repro.metrics import compression_ratio
from repro.parallel import IOSystemModel, dump_load_series

CORE_COUNTS = (1024, 2048, 4096, 8192)

#: per-core native throughput (MB/s) from the paper's Table IV (Hurricane
#: row).  Our Python codecs are ~10-50x slower than the C/C++ originals,
#: which would bury the I/O term; the Fig. 14 mechanism is about *measured
#: CR* vs *native compute speed*, so we pair our CRs with the paper's
#: per-codec speeds (documented substitution, DESIGN.md §3).
NATIVE_SPEEDS = {
    "sz2": (159.0, 266.0),
    "sz3": (127.0, 279.0),
    "zfp": (137.0, 321.0),
    "mgard": (152.0, 196.0),
    "qoz": (119.0, 278.0),
}


def _run():
    data = bench_dataset("hurricane")
    stats = {}
    for cname, codec in [
        ("sz2", SZ2()),
        ("sz3", SZ3()),
        ("zfp", ZFP()),
        ("mgard", MGARDPlus()),
        ("qoz", QoZ(metric="cr")),
    ]:
        blob = codec.compress(data, rel_error_bound=1e-3)
        stats[cname] = {
            "cr": compression_ratio(data, blob),
            "compress_mbps": NATIVE_SPEEDS[cname][0],
            "decompress_mbps": NATIVE_SPEEDS[cname][1],
        }
    series = dump_load_series(IOSystemModel(), CORE_COUNTS, stats)
    rows = [
        [r["codec"], r["cores"], round(r["cr"], 1), round(r["dump_s"], 1),
         round(r["load_s"], 1)]
        for r in series
    ]
    # sanity: at the largest scale, the best-CR codec has the best write time
    biggest = [r for r in series if r["cores"] == max(CORE_COUNTS)]
    best = min(biggest, key=lambda r: r["dump_s"])
    rows.append(["best@8K", best["cores"], round(best["cr"], 1),
                 round(best["dump_s"], 1), round(best["load_s"], 1)])
    return rows


def test_fig14_parallel_dump_load(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["codec", "cores", "cr", "dump_s", "load_s"],
        rows,
        title="Fig. 14 — modeled parallel dump/load on 1K-8K cores "
        "(paper: QoZ best at scale thanks to the leading CR; model uses "
        "measured CR + throughput, Bebop-like saturating bandwidth)",
    )
    record("fig14_parallel_io", table)
