"""Compression throughput benchmark + CI regression gate.

Measures the compress side of the pipeline across its regimes: QoZ
single-array compression with online tuning ('cr' and 'psnr' — the latter
exercises the Table I retrial path), the SZ3 baseline (selection only),
and end-to-end chunked compression of a multi-chunk 3-D field both ways —
the default shared-plan path (tune once on a global sample, execute the
frozen plan per chunk) and the opt-in per-chunk-tuned path it replaced as
default.  The ratio between those two is the headline amortization win
and is recorded alongside the throughputs.

Because absolute throughput varies wildly across machines, every number
is also recorded *normalized* by a fixed numpy gather workload measured
at the same time (``calibration``).  The CI smoke job compares normalized
values against the committed baseline (``BENCH_compress.json`` at the
repo root) and fails on a >2x regression:

    python benchmarks/bench_compress_speed.py --check BENCH_compress.json

Run without arguments to print the table; ``--write PATH`` refreshes the
baseline.  Under pytest it records the table like the other benches.
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np

#: normalized throughput may drop to 1/this before the CI gate fails
REGRESSION_FACTOR = 2.0
#: single-array workload (the paper's configuration scaled to CI)
SINGLE_SHAPE = (64, 64, 64)
#: chunked workload: 64 chunks of 32^3 — many small chunks make the
#: per-chunk analysis overhead (the thing plan sharing amortizes) explicit
CHUNKED_SHAPE = (128, 128, 128)
CHUNK = 32


def _best_of(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def calibration_melem_s(rng):
    """Throughput of a plain numpy fancy gather (Melem/s) — the machine-
    speed proxy used to normalize compress numbers across hosts."""
    table = rng.integers(0, 1 << 31, size=1 << 16).astype(np.int64)
    idx = rng.integers(0, 1 << 16, size=1 << 21)
    dt = _best_of(lambda: table[idx], rounds=5)
    return idx.size / dt / 1e6


def run_benchmark():
    from repro import SZ3
    from repro.chunked import compress_chunked
    from repro.core.qoz import QoZ
    from repro.datasets import get_dataset

    rng = np.random.default_rng(2022)
    calib = calibration_melem_s(rng)
    results = {"calibration_melem_s": round(calib, 1), "streams": {}}

    def record(name, nbytes, dt):
        mbs = nbytes / dt / 1e6
        results["streams"][name] = {
            "mb_per_s": round(mbs, 2),
            "normalized": round(mbs / calib, 4),
        }

    single = get_dataset("nyx", shape=SINGLE_SHAPE, seed=0)
    field = get_dataset("nyx", shape=CHUNKED_SHAPE, seed=1)

    qoz_cr = QoZ(metric="cr")
    qoz_cr.compress(single, rel_error_bound=1e-3)  # warm numpy/codec caches
    record(
        "qoz_cr_single", single.nbytes,
        _best_of(lambda: qoz_cr.compress(single, rel_error_bound=1e-3)),
    )
    qoz_psnr = QoZ(metric="psnr")
    record(
        "qoz_psnr_single", single.nbytes,
        _best_of(lambda: qoz_psnr.compress(single, rel_error_bound=1e-3)),
    )
    sz3 = SZ3()
    record(
        "sz3_single", single.nbytes,
        _best_of(lambda: sz3.compress(single, rel_error_bound=1e-3)),
    )

    dt_shared = _best_of(
        lambda: compress_chunked(
            field, codec="qoz", chunks=CHUNK, rel_error_bound=1e-3
        ),
        rounds=2,
    )
    record("qoz_chunked_shared_plan", field.nbytes, dt_shared)
    dt_tuned = _best_of(
        lambda: compress_chunked(
            field, codec="qoz", chunks=CHUNK, rel_error_bound=1e-3,
            per_chunk_tuning=True,
        ),
        rounds=2,
    )
    record("qoz_chunked_per_chunk_tuned", field.nbytes, dt_tuned)
    results["shared_plan_speedup"] = round(dt_tuned / dt_shared, 2)
    return results


def format_results(results):
    lines = [
        "compression throughput "
        f"(gather calibration {results['calibration_melem_s']} Melem/s)"
    ]
    for name, r in results["streams"].items():
        lines.append(
            f"  {name:28s} {r['mb_per_s']:8.2f} MB/s   "
            f"normalized {r['normalized']:.4f}"
        )
    lines.append(
        "  shared-plan chunked speedup over per-chunk tuning: "
        f"{results['shared_plan_speedup']:.2f}x"
    )
    return "\n".join(lines)


def format_markdown(results):
    """GitHub-flavored summary table (written to $GITHUB_STEP_SUMMARY)."""
    lines = [
        "### compress-smoke — machine-normalized throughput",
        "",
        f"gather calibration: {results['calibration_melem_s']} Melem/s",
        "",
        "| stream | MB/s | normalized |",
        "| --- | ---: | ---: |",
    ]
    for name, r in results["streams"].items():
        lines.append(
            f"| {name} | {r['mb_per_s']:.2f} | {r['normalized']:.4f} |"
        )
    lines.append("")
    lines.append(
        "shared-plan chunked speedup over per-chunk tuning: "
        f"**{results['shared_plan_speedup']:.2f}x**"
    )
    return "\n".join(lines) + "\n\n"


def check_against(results, baseline_path):
    """Return a list of regression messages (empty = pass)."""
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    failures = []
    for name, base in baseline["streams"].items():
        now = results["streams"].get(name)
        if now is None:
            failures.append(f"{name}: missing from current run")
            continue
        floor = base["normalized"] / REGRESSION_FACTOR
        if now["normalized"] < floor:
            failures.append(
                f"{name}: normalized throughput {now['normalized']:.4f} "
                f"fell below {floor:.4f} "
                f"(baseline {base['normalized']:.4f} / {REGRESSION_FACTOR}x)"
            )
    # the amortization itself is part of the contract: chunked compression
    # re-tuning per chunk is the regression this PR exists to prevent
    floor = baseline["shared_plan_speedup"] / REGRESSION_FACTOR
    if results["shared_plan_speedup"] < floor:
        failures.append(
            f"shared_plan_speedup: {results['shared_plan_speedup']:.2f}x "
            f"fell below {floor:.2f}x "
            f"(baseline {baseline['shared_plan_speedup']:.2f}x / "
            f"{REGRESSION_FACTOR}x)"
        )
    return failures


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--check", metavar="BASELINE", help="fail on >2x regression")
    ap.add_argument("--write", metavar="PATH", help="write results JSON")
    ap.add_argument("--summary", metavar="PATH",
                    help="append a markdown table (e.g. $GITHUB_STEP_SUMMARY)")
    args = ap.parse_args(argv)
    results = run_benchmark()
    print(format_results(results))
    if args.summary:
        with open(args.summary, "a") as fh:
            fh.write(format_markdown(results))
    if args.write:
        existing = {}
        p = pathlib.Path(args.write)
        if p.exists():
            existing = json.loads(p.read_text())
        existing.update(results)
        pre = existing.get("pre_optimization_baseline")
        if pre:
            # keep the derived ratios consistent with the refreshed streams
            # (the shared-plan row compares against the pre-split per-chunk
            # path — the same chunked workload, old default behavior)
            speedups = {}
            for name, r in existing["streams"].items():
                key = (
                    "qoz_chunked_per_chunk_tuned"
                    if name == "qoz_chunked_shared_plan"
                    else name
                )
                base = pre["streams"].get(key)
                if base:
                    speedups[name] = round(
                        r["normalized"] / base["normalized"], 2
                    )
            existing["speedup_vs_pre_optimization"] = speedups
        p.write_text(json.dumps(existing, indent=2) + "\n")
        print(f"wrote {args.write}")
    if args.check:
        failures = check_against(results, args.check)
        if failures:
            print("REGRESSION:\n  " + "\n  ".join(failures))
            return 1
        print(f"no >{REGRESSION_FACTOR}x regression vs {args.check}")
    return 0


def test_compress_throughput():
    """Pytest entry: record the table alongside the other benchmarks."""
    from conftest import record

    results = run_benchmark()
    record("compress_speed", format_results(results))
    assert results["streams"]["qoz_cr_single"]["mb_per_s"] > 0


if __name__ == "__main__":
    sys.exit(main())
