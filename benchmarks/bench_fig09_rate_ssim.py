"""Fig. 9: rate-SSIM curves (QoZ in 'ssim' tuning mode).

Paper: QoZ best or near-best everywhere; +120% CR on CESM at SSIM 0.9,
+270%/+150% on Miranda at SSIM 0.6/0.65.
"""

from conftest import bench_dataset, record
from repro import MGARDPlus, QoZ, SZ2, SZ3, ZFP
from repro.analysis import format_table, rate_distortion_curve
from repro.datasets import dataset_names

# looser bounds than Fig. 8: SSIM only differentiates once visible
# distortion appears (the paper's SSIM axes span ~0.4-1.0)
REL_EBS = (1e-1, 3e-2, 1e-2, 3e-3)


def _run():
    rows = []
    for name in dataset_names():
        data = bench_dataset(name)
        for cname, codec in [
            ("sz2", SZ2()),
            ("sz3", SZ3()),
            ("zfp", ZFP()),
            ("mgard", MGARDPlus()),
            ("qoz", QoZ(metric="ssim")),
        ]:
            for pt in rate_distortion_curve(codec, data, REL_EBS):
                rows.append(
                    [name, cname, pt.rel_eb, round(pt.bit_rate, 4),
                     round(pt.ssim, 4)]
                )
    return rows


def test_fig09_rate_ssim(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "codec", "rel_eb", "bit_rate", "ssim"],
        rows,
        title="Fig. 9 — rate-SSIM series (paper: QoZ best/near-best; "
        "plot bit_rate (x) vs ssim (y) per dataset)",
    )
    record("fig09_rate_ssim", table)
