"""Table III: compression ratio under the same value-range error bound.

Paper: 5 codecs x 6 datasets x eps in {1e-2, 1e-3, 1e-4}; QoZ in
'maximizing compression ratio' mode leads in most cases, with the largest
gains on Miranda (+71.8%) and RTM (+20.6%) at eps = 1e-2.
"""

from conftest import bench_dataset, record
from repro import MGARDPlus, QoZ, SZ2, SZ3, ZFP
from repro.analysis import format_table
from repro.datasets import dataset_names
from repro.metrics import compression_ratio

EPSILONS = (1e-2, 1e-3, 1e-4)


def _codecs():
    return [
        ("sz2", SZ2()),
        ("sz3", SZ3()),
        ("zfp", ZFP()),
        ("mgard", MGARDPlus()),
        ("qoz", QoZ(metric="cr")),
    ]


def _run():
    rows = []
    for name in dataset_names():
        data = bench_dataset(name)
        for eps in EPSILONS:
            crs = {}
            for cname, codec in _codecs():
                blob = codec.compress(data, rel_error_bound=eps)
                crs[cname] = compression_ratio(data, blob)
            second = max(v for k, v in crs.items() if k != "qoz")
            improve = 100.0 * (crs["qoz"] - second) / second
            rows.append(
                [name, eps]
                + [round(crs[c], 1) for c, _ in _codecs()]
                + [f"{improve:+.1f}%"]
            )
    return rows


def test_table3_compression_ratio(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "eps", "sz2", "sz3", "zfp", "mgard", "qoz", "qoz vs 2nd"],
        rows,
        title="Table III — CR at the same error bound (paper: QoZ leads, "
        "up to +71.8% on Miranda and +20.6% on RTM at eps=1e-2)",
    )
    record("table3_compression_ratio", table)
