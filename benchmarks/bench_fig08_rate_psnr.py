"""Fig. 8: rate-PSNR curves for all codecs on all six datasets.

Paper: QoZ (rate-PSNR preferred mode) has the best curve everywhere, with
~150%/70% CR gains on Miranda at PSNR 55/65 and ~80% on RTM at PSNR ~60.
"""

from conftest import bench_dataset, record
from repro import MGARDPlus, QoZ, SZ2, SZ3, ZFP
from repro.analysis import format_table, rate_distortion_curve
from repro.datasets import dataset_names

REL_EBS = (1e-2, 3e-3, 1e-3, 3e-4, 1e-4)


def _run():
    rows = []
    for name in dataset_names():
        data = bench_dataset(name)
        for cname, codec in [
            ("sz2", SZ2()),
            ("sz3", SZ3()),
            ("zfp", ZFP()),
            ("mgard", MGARDPlus()),
            ("qoz", QoZ(metric="psnr")),
        ]:
            for pt in rate_distortion_curve(codec, data, REL_EBS,
                                            compute_ssim=False):
                rows.append(
                    [name, cname, pt.rel_eb, round(pt.bit_rate, 4),
                     round(pt.psnr, 2)]
                )
    return rows


def test_fig08_rate_psnr(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "codec", "rel_eb", "bit_rate", "psnr"],
        rows,
        title="Fig. 8 — rate-PSNR series (paper: QoZ curve dominates; "
        "plot bit_rate (x) vs psnr (y) per dataset)",
    )
    record("fig08_rate_psnr", table)
