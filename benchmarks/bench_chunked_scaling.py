"""Chunked container scaling: CR / throughput / random-access cost vs chunk size.

Not a paper figure — characterizes the out-of-core subsystem added on top
of the reproduction (DESIGN.md §5, EXPERIMENTS.md §6).  Smaller chunks
cost compression ratio (per-chunk headers, shorter prediction contexts)
but shrink the byte range a single-chunk random access must read; the
table quantifies that trade on the Miranda stand-in, against the
unchunked stream as baseline.
"""

import time

from conftest import bench_dataset, record
from repro.analysis import format_table
from repro.chunked import ChunkedFile, compress_chunked
from repro.compressors.base import get_compressor

CODEC = "sz3"
CHUNK_EDGES = (16, 24, 32, 48)
REL_EB = 1e-3


def _run():
    data = bench_dataset("miranda")
    rows = []

    t0 = time.perf_counter()
    plain = get_compressor(CODEC).compress(data, rel_error_bound=REL_EB)
    t_plain = time.perf_counter() - t0
    rows.append(["unchunked", 1, round(data.nbytes / len(plain), 2),
                 round(t_plain, 2), 100.0])

    for edge in CHUNK_EDGES:
        t0 = time.perf_counter()
        blob = compress_chunked(
            data, codec=CODEC, chunks=edge, rel_error_bound=REL_EB
        )
        dt = time.perf_counter() - t0
        with ChunkedFile(blob) as f:
            # bytes read to randomly access the middle chunk, as % of stream
            mid = f.info.entries[f.n_chunks // 2]
            access = 100.0 * mid.nbytes / len(blob)
            n = f.n_chunks
        rows.append([f"chunks={edge}^3", n,
                     round(data.nbytes / len(blob), 2), round(dt, 2),
                     round(access, 2)])
    return rows


def test_chunked_scaling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["config", "n_chunks", "cr", "compress_s", "access_read_%"],
        rows,
        title="Chunked container scaling on Miranda (sz3, rel eb 1e-3): "
        "CR cost of tiling vs random-access read fraction "
        "(unchunked = whole-stream decode)",
    )
    record("chunked_scaling", table)
