"""Chunked container scaling: chunk-size trade-offs + worker fan-out gate.

Two views of the out-of-core subsystem (DESIGN.md §5, §13; not a paper
figure):

* the original chunk-size table — CR / compress time / random-access
  read fraction vs chunk edge on the Miranda stand-in;
* a multi-worker scaling benchmark over the shared-memory slab fan-out
  (``processes=N`` → :func:`repro.parallel.executor
  .compress_chunks_streaming`): elements/s at 1/2/4/8 workers,
  normalized by the same gather-calibration proxy the other CI gates
  use, plus a byte-identity check across worker counts.

The CI ``scaling-smoke`` job runs ``--check BENCH_chunked_scaling.json``:
single-worker normalized throughput must stay within
``REGRESSION_FACTOR`` of the committed baseline on every machine, and on
hosts with at least ``MIN_CORES_FOR_SCALING`` cores the best multi-worker
configuration must clear ``SCALING_FLOOR``x the single-worker rate — the
zero-copy fan-out earning its keep.  The scaling contract is skipped
(and said so) on smaller machines: a 1-core container can only measure
the overhead, never the speedup, so the committed baseline records
``cpu_count`` alongside its numbers.

    python benchmarks/bench_chunked_scaling.py --check BENCH_chunked_scaling.json

Run without arguments to print both tables; ``--write PATH`` refreshes
the baseline.  Under pytest it records tables like the other benches.
"""

import argparse
import json
import os
import pathlib
import sys
import time

#: normalized single-worker throughput may drop to 1/this before CI fails
REGRESSION_FACTOR = 2.0
#: best multi-worker config must beat single-worker by this factor...
SCALING_FLOOR = 2.0
#: ...but only on machines with at least this many cores
MIN_CORES_FOR_SCALING = 4

WORKER_COUNTS = (1, 2, 4, 8)
#: 64 chunks of 24^3 — enough parallel grain for 8 workers while each
#: chunk still carries real codec work relative to the descriptor IPC
FIELD_SHAPE = (96, 96, 96)
FAN_CHUNK = 24
REL_EB = 1e-3

CODEC = "sz3"
CHUNK_EDGES = (16, 24, 32, 48)


# ---------------------------------------------------- chunk-size table


def _run_chunk_size_table():
    from conftest import bench_dataset
    from repro.chunked import ChunkedFile, compress_chunked
    from repro.compressors.base import get_compressor

    data = bench_dataset("miranda")
    rows = []

    t0 = time.perf_counter()
    plain = get_compressor(CODEC).compress(data, rel_error_bound=REL_EB)
    t_plain = time.perf_counter() - t0
    rows.append(["unchunked", 1, round(data.nbytes / len(plain), 2),
                 round(t_plain, 2), 100.0])

    for edge in CHUNK_EDGES:
        t0 = time.perf_counter()
        blob = compress_chunked(
            data, codec=CODEC, chunks=edge, rel_error_bound=REL_EB
        )
        dt = time.perf_counter() - t0
        with ChunkedFile(blob) as f:
            # bytes read to randomly access the middle chunk, as % of stream
            mid = f.info.entries[f.n_chunks // 2]
            access = 100.0 * mid.nbytes / len(blob)
            n = f.n_chunks
        rows.append([f"chunks={edge}^3", n,
                     round(data.nbytes / len(blob), 2), round(dt, 2),
                     round(access, 2)])
    return rows


def test_chunked_scaling(benchmark):
    from conftest import record
    from repro.analysis import format_table

    rows = benchmark.pedantic(_run_chunk_size_table, rounds=1, iterations=1)
    table = format_table(
        ["config", "n_chunks", "cr", "compress_s", "access_read_%"],
        rows,
        title="Chunked container scaling on Miranda (sz3, rel eb 1e-3): "
        "CR cost of tiling vs random-access read fraction "
        "(unchunked = whole-stream decode)",
    )
    record("chunked_scaling", table)


# ------------------------------------------------- worker fan-out gate


def run_benchmark():
    from bench_compress_speed import _best_of, calibration_melem_s

    import numpy as np

    from repro.chunked import compress_chunked
    from repro.datasets import get_dataset

    rng = np.random.default_rng(2022)
    calib = calibration_melem_s(rng)
    data = get_dataset("nyx", shape=FIELD_SHAPE, seed=3)
    results = {
        "cpu_count": os.cpu_count(),
        "calibration_melem_s": round(calib, 1),
        "workers": {},
    }

    def compress_with(workers):
        return compress_chunked(
            data, codec="qoz", chunks=FAN_CHUNK, rel_error_bound=REL_EB,
            processes=None if workers == 1 else workers,
        )

    reference = compress_with(1)  # also warms codec/numpy caches
    for workers in WORKER_COUNTS:
        # every configuration must produce the identical stream — the
        # fan-out is an execution strategy, never a format change
        assert compress_with(workers) == reference, (
            f"{workers}-worker stream diverged from single-worker bytes"
        )
        dt = _best_of(lambda: compress_with(workers), rounds=2)
        melem_s = data.size / dt / 1e6
        results["workers"][str(workers)] = {
            "melem_per_s": round(melem_s, 2),
            "normalized": round(melem_s / calib, 4),
        }

    one = results["workers"]["1"]["melem_per_s"]
    for workers in WORKER_COUNTS:
        r = results["workers"][str(workers)]
        r["speedup_vs_1"] = round(r["melem_per_s"] / one, 2)
    results["best_speedup"] = max(
        r["speedup_vs_1"] for r in results["workers"].values()
    )
    return results


def format_results(results):
    lines = [
        "chunked fan-out scaling "
        f"({results['cpu_count']} core(s), gather calibration "
        f"{results['calibration_melem_s']} Melem/s)"
    ]
    for workers, r in results["workers"].items():
        lines.append(
            f"  workers={workers:>2s} {r['melem_per_s']:8.2f} Melem/s   "
            f"normalized {r['normalized']:.4f}   "
            f"speedup {r['speedup_vs_1']:.2f}x"
        )
    lines.append(
        f"  best speedup vs single worker: {results['best_speedup']:.2f}x"
    )
    return "\n".join(lines)


def format_markdown(results):
    """GitHub-flavored summary table (written to $GITHUB_STEP_SUMMARY)."""
    lines = [
        "### scaling-smoke — chunked fan-out, machine-normalized",
        "",
        f"{results['cpu_count']} core(s), gather calibration: "
        f"{results['calibration_melem_s']} Melem/s",
        "",
        "| workers | Melem/s | normalized | speedup |",
        "| ---: | ---: | ---: | ---: |",
    ]
    for workers, r in results["workers"].items():
        lines.append(
            f"| {workers} | {r['melem_per_s']:.2f} | {r['normalized']:.4f} "
            f"| {r['speedup_vs_1']:.2f}x |"
        )
    lines.append("")
    lines.append(
        f"best speedup vs single worker: **{results['best_speedup']:.2f}x**"
    )
    return "\n".join(lines) + "\n\n"


def check_against(results, baseline_path):
    """Return a list of regression messages (empty = pass)."""
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    failures = []
    base_one = baseline["workers"]["1"]
    now_one = results["workers"]["1"]
    floor = base_one["normalized"] / REGRESSION_FACTOR
    if now_one["normalized"] < floor:
        failures.append(
            f"workers=1: normalized throughput {now_one['normalized']:.4f} "
            f"fell below {floor:.4f} "
            f"(baseline {base_one['normalized']:.4f} / {REGRESSION_FACTOR}x)"
        )
    cores = os.cpu_count() or 1
    if cores >= MIN_CORES_FOR_SCALING:
        if results["best_speedup"] < SCALING_FLOOR:
            failures.append(
                f"scaling: best multi-worker speedup "
                f"{results['best_speedup']:.2f}x fell below the "
                f"{SCALING_FLOOR:.1f}x contract on a {cores}-core machine"
            )
    else:
        print(
            f"scaling contract skipped: {cores} core(s) < "
            f"{MIN_CORES_FOR_SCALING} (speedup is unmeasurable here)"
        )
    return failures


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--check", metavar="BASELINE",
                    help="fail on regression vs the committed baseline")
    ap.add_argument("--write", metavar="PATH", help="write results JSON")
    ap.add_argument("--summary", metavar="PATH",
                    help="append a markdown table (e.g. $GITHUB_STEP_SUMMARY)")
    args = ap.parse_args(argv)
    results = run_benchmark()
    print(format_results(results))
    if args.summary:
        with open(args.summary, "a") as fh:
            fh.write(format_markdown(results))
    if args.write:
        pathlib.Path(args.write).write_text(
            json.dumps(results, indent=2) + "\n"
        )
        print(f"wrote {args.write}")
    if args.check:
        failures = check_against(results, args.check)
        if failures:
            print("REGRESSION:\n  " + "\n  ".join(failures))
            return 1
        print(f"no regression vs {args.check}")
    return 0


def test_worker_scaling():
    """Pytest entry: record the fan-out table alongside other benchmarks."""
    from conftest import record

    results = run_benchmark()
    record("chunked_fanout", format_results(results))
    assert results["workers"]["1"]["melem_per_s"] > 0


if __name__ == "__main__":
    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    sys.exit(main())
