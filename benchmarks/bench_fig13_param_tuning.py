"""Fig. 13: fixed (alpha, beta) settings vs auto-tuning.

Paper: on CESM-ATM and NYX, the best fixed (alpha, beta) changes with the
bit rate — (1,1) wins at high rates, (2,4) at low rates — and the
auto-tuner tracks the upper envelope at every rate.
"""

from conftest import bench_dataset, record
from repro import QoZ
from repro.analysis import format_table, rate_distortion_curve

REL_EBS = (1e-2, 1e-3, 1e-4)

SETTINGS = [
    ("a=1,b=1", dict(alpha=1.0, beta=1.0)),
    ("a=1.5,b=3", dict(alpha=1.5, beta=3.0)),
    ("a=2,b=4", dict(alpha=2.0, beta=4.0)),
    ("autotune", dict(metric="psnr")),
]


def _run():
    rows = []
    for name in ("cesm", "nyx"):
        data = bench_dataset(name)
        for sname, kwargs in SETTINGS:
            codec = QoZ(**kwargs)
            for pt in rate_distortion_curve(codec, data, REL_EBS,
                                            compute_ssim=False):
                rows.append(
                    [name, sname, pt.rel_eb, round(pt.bit_rate, 4),
                     round(pt.psnr, 2)]
                )
    return rows


def test_fig13_parameter_tuning(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "setting", "rel_eb", "bit_rate", "psnr"],
        rows,
        title="Fig. 13 — fixed (alpha, beta) vs auto-tuning (paper: best "
        "fixed setting flips across bit rates; autotune tracks the best)",
    )
    record("fig13_param_tuning", table)
