"""Shared benchmark fixtures.

Benchmarks regenerate the paper's tables/figures at laptop scale: shapes
are reduced stand-ins (set ``REPRO_BENCH_SCALE=2`` to double every extent).
Each bench prints its paper-style table and appends it to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can record
paper-vs-measured values.
"""

import os
import pathlib

import pytest

from repro.datasets import get_dataset

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "1"))

#: reduced per-dataset shapes (paper shapes are 10-100x larger per dim)
BENCH_SHAPES = {
    "rtm": (48, 64, 64),
    "miranda": (48, 64, 64),
    "cesm": (256, 512),
    "scale": (16, 128, 128),
    "nyx": (64, 64, 64),
    "hurricane": (24, 64, 64),
}

_CACHE = {}


def bench_dataset(name: str):
    """Cached scaled dataset instance."""
    if name not in _CACHE:
        shape = tuple(n * SCALE for n in BENCH_SHAPES[name])
        _CACHE[name] = get_dataset(name, shape=shape, seed=0)
    return _CACHE[name]


RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def dataset():
    """Accessor fixture for cached benchmark datasets."""
    return bench_dataset
