"""Fig. 7: compression-error distribution strictly inside the bound.

Paper: QoZ error histograms on CESM-ATM (CLDHGH) and NYX (baryon density)
at value-range eps of 1e-3 and 1e-4 — all errors confined within eb.
"""

import numpy as np

from conftest import bench_dataset, record
from repro import QoZ
from repro.analysis import format_table
from repro.metrics import error_histogram


def _run():
    rows = []
    for name in ("cesm", "nyx"):
        data = bench_dataset(name)
        for eps in (1e-3, 1e-4):
            codec = QoZ(metric="cr")
            blob = codec.compress(data, rel_error_bound=eps)
            recon = codec.decompress(blob)
            eb = eps * float(data.max() - data.min())
            centers, counts, violations = error_histogram(data, recon, eb)
            inside = counts.sum()
            tail = counts[[0, -1]].sum() / max(inside, 1)
            rows.append(
                [name, eps, f"{eb:.3g}", int(inside), violations,
                 f"{tail:.3f}"]
            )
            assert violations == 0, f"bound violated on {name} @ {eps}"
    return rows


def test_fig07_error_distribution(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "eps", "abs_eb", "points", "violations", "edge_mass"],
        rows,
        title="Fig. 7 — QoZ compression-error distribution (0 violations "
        "required; paper shows all errors within eb)",
    )
    record("fig07_error_bound", table)
