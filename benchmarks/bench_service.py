"""Service-layer latency: cold derive vs warm plan-cache hit.

Measures what the service exists to amortize — the per-request cost of
QoZ's sampling/selection/tuning.  One in-process client issues repeated
compress requests for the same field family: the first request derives
the plan (cold), the rest hit the LRU (warm).  Also times a hyperslab
read served from a container.  Informational (no committed baseline /
CI gate — the compress-smoke gate already pins execution throughput;
this reports the *ratio*, which is machine-independent)::

    PYTHONPATH=src python benchmarks/bench_service.py [--write PATH]
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.service import ServiceClient, ServiceConfig

SHAPE = (96, 96, 96)
CHUNK = 32
WARM_ROUNDS = 5


def make_field():
    rng = np.random.default_rng(42)
    x = np.cumsum(rng.standard_normal(SHAPE), axis=0)
    x += np.cumsum(rng.standard_normal(SHAPE), axis=1)
    return (x / np.abs(x).max()).astype(np.float32)


def run_benchmark():
    field = make_field()
    results = {"shape": list(SHAPE), "chunk": CHUNK}
    with ServiceClient(ServiceConfig(processes=1)) as svc:
        t0 = time.perf_counter()
        blob = svc.compress(
            field, codec="qoz", rel_error_bound=1e-3, chunks=CHUNK
        )
        cold = time.perf_counter() - t0

        warm_times = []
        for _ in range(WARM_ROUNDS):
            t0 = time.perf_counter()
            warm_blob = svc.compress(
                field, codec="qoz", rel_error_bound=1e-3, chunks=CHUNK
            )
            warm_times.append(time.perf_counter() - t0)
        assert warm_blob == blob, "warm request must be byte-identical"
        warm = min(warm_times)

        slab = (slice(10, 70), slice(None), slice(30, 34))
        t0 = time.perf_counter()
        svc.read(blob, slab)
        read_s = time.perf_counter() - t0

        stats = svc.stats()

    mb = field.nbytes / 1e6
    results.update(
        cold_compress_s=round(cold, 4),
        warm_compress_s=round(warm, 4),
        warm_speedup=round(cold / warm, 2),
        cold_mb_per_s=round(mb / cold, 2),
        warm_mb_per_s=round(mb / warm, 2),
        hyperslab_read_s=round(read_s, 4),
        plan_derives=stats["plan_derives"],
        plan_cache_hits=stats["plan_cache_hits"],
    )
    return results


def format_results(r):
    return "\n".join([
        f"service compress {tuple(r['shape'])} f32, chunks={r['chunk']}:",
        f"  cold (derive + execute)  {r['cold_compress_s']:.3f}s"
        f"  ({r['cold_mb_per_s']:.1f} MB/s)",
        f"  warm (plan-cache hit)    {r['warm_compress_s']:.3f}s"
        f"  ({r['warm_mb_per_s']:.1f} MB/s)",
        f"  warm speedup             {r['warm_speedup']:.2f}x"
        f"  (derives={r['plan_derives']}, hits={r['plan_cache_hits']})",
        f"  hyperslab read           {r['hyperslab_read_s']:.3f}s",
    ])


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--write", metavar="PATH", help="write results JSON")
    args = ap.parse_args(argv)
    results = run_benchmark()
    print(format_results(results))
    if args.write:
        pathlib.Path(args.write).write_text(
            json.dumps(results, indent=2) + "\n"
        )
        print(f"wrote {args.write}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
