"""Open-loop service load generator: admission behavior under saturation.

Drives the in-process service the way an impatient fleet of clients
would — requests are issued on a fixed wall-clock schedule whether or
not earlier ones have finished (open loop), so queueing delay is
measured honestly instead of being absorbed by a closed loop's
self-throttling.  Three phases:

1. *Calibrate*: run one warm workload cycle closed-loop to estimate the
   sustainable request rate (plans pre-derived; derivation cost is the
   service's to amortize, not the load generator's to measure).
2. *Baseline*: open loop at 0.5x sustainable — an unsaturated service —
   recording p50/p99 latency of interactive requests.
3. *Saturate*: open loop at 2x sustainable with mixed interactive/batch
   traffic.  Under cost-aware admission the batch lane sheds load first
   and admitted interactive p99 should stay within ~3x of the
   unsaturated baseline; the same schedule replayed against a
   depth-only (request-count) admission service shows the contrast.

Every run reconciles the load generator's own admit/reject tallies
against the service's STATS counters — exactly, not approximately; a
mismatch is a bug in the metrics pipeline and raises.  The in-process
harness is informational (no committed baseline / CI gate)::

    PYTHONPATH=src python benchmarks/bench_service.py [--duration S] [--write PATH]

``--sharded`` switches to the *sharded saturation harness*: spawn
``repro serve --shards N`` subprocesses for N in 1/2/4, calibrate the
sustainable rate closed-loop over real sockets, then drive each fleet
open-loop past saturation from a pool of persistent socket clients,
recording admitted throughput and p50/p99 latency per shard count.
Numbers are machine-normalized by the same gather-calibration proxy the
other CI gates use; the ``sharded-smoke`` CI job runs ``--sharded
--check BENCH_service_sharded.json`` and enforces (a) single-shard
normalized throughput within ``SHARD_REGRESSION_FACTOR`` of the
committed baseline and (b) on hosts with ``MIN_CORES_FOR_SHARD_SCALING``
or more cores, a multi-shard speedup of ``SHARD_SCALING_FLOOR``x — on
smaller machines the scaling clause is skipped and says so (a 1-core
container measures sharding overhead, never its speedup; see
EXPERIMENTS.md §9)::

    PYTHONPATH=src python benchmarks/bench_service.py --sharded \
        --check BENCH_service_sharded.json
"""

import argparse
import concurrent.futures
import json
import os
import pathlib
import queue
import re
import subprocess
import sys
import threading
import time

import numpy as np

from repro.errors import ServiceOverloadedError
from repro.service import RemoteClient, ServiceClient, ServiceConfig, protocol
from repro.service.protocol import CompressRequest

INTERACTIVE_SHAPE = (32, 32, 32)
BATCH_SHAPE = (64, 64, 64)
# one workload cycle: mostly small interactive requests, one big batch job
CYCLE = ["interactive"] * 4 + ["batch"]
N_CLIENTS = 8
CODEC = "qoz"
REL_EB = 1e-3


def make_fields():
    rng = np.random.default_rng(42)

    def field(shape):
        x = np.cumsum(rng.standard_normal(shape), axis=0)
        x += np.cumsum(rng.standard_normal(shape), axis=1)
        return (x / np.abs(x).max()).astype(np.float32)

    return {
        "interactive": field(INTERACTIVE_SHAPE),
        "batch": field(BATCH_SHAPE),
    }


def build_request(kind, fields, client_id):
    return CompressRequest(
        data=fields[kind],
        codec=CODEC,
        rel_error_bound=REL_EB,
        family=f"load-{kind}",
        priority=kind if kind in protocol.PRIORITIES else "interactive",
        client_id=client_id,
    )


def service_config(cost_aware=True):
    # generous per-client quotas: this benchmark exercises the capacity
    # and priority rules, not the per-client fairness rule
    return ServiceConfig(
        processes=1,
        cost_aware=cost_aware,
        client_rate=1e9,
        client_burst=1e9,
    )


def warm_plans(svc, fields):
    """Derive both families' plans once so every timed request is warm."""
    for kind, data in fields.items():
        svc.compress(
            data, codec=CODEC, rel_error_bound=REL_EB, family=f"load-{kind}"
        )


def calibrate(svc, fields):
    """Closed-loop warm cycles -> sustainable requests/second."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for kind in CYCLE:
            svc.compress(
                fields[kind],
                codec=CODEC,
                rel_error_bound=REL_EB,
                family=f"load-{kind}",
                priority=kind,
            )
        best = min(best, time.perf_counter() - t0)
    return len(CYCLE) / best


def snapshot_counters(svc):
    stats = svc.stats()
    return {
        k: stats[k]
        for k in (
            "admitted_interactive", "admitted_batch",
            "rejected_interactive", "rejected_batch",
            "retried_interactive", "retried_batch",
        )
    }


def open_loop_run(svc, fields, rate, duration, mixed=True):
    """Issue requests on a fixed schedule; tally and time every outcome.

    Returns per-class latency samples (admitted requests only, seconds)
    and the load generator's own admit/reject tallies.
    """
    loop = svc._loop
    service = svc.service
    n = max(1, int(rate * duration))
    kinds = [CYCLE[i % len(CYCLE)] if mixed else "interactive"
             for i in range(n)]
    pending = []  # (kind, t_submit, future)
    tally = {
        "sent": 0,
        "admitted": {"interactive": 0, "batch": 0},
        "rejected": {"interactive": 0, "batch": 0},
    }
    done_at = {}  # id(fut) -> completion timestamp, stamped by callback
    start = time.perf_counter()
    for i, kind in enumerate(kinds):
        target = start + i / rate
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        req = build_request(kind, fields, f"lg-{i % N_CLIENTS}")
        t_submit = time.perf_counter()
        fut = asyncio_submit(loop, service.handle(req))
        # stamp completion when it happens, not when the collection loop
        # below gets around to asking — the difference is the whole
        # remaining submission schedule for early finishers
        fut.add_done_callback(
            lambda f: done_at.setdefault(id(f), time.perf_counter())
        )
        pending.append((kind, t_submit, fut))
        tally["sent"] += 1
    latency = {"interactive": [], "batch": []}
    for kind, t_submit, fut in pending:
        try:
            fut.result(timeout=300)
        except ServiceOverloadedError:
            tally["rejected"][kind] += 1
            continue
        tally["admitted"][kind] += 1
        latency[kind].append(done_at[id(fut)] - t_submit)
    return latency, tally


def asyncio_submit(loop, coro):
    import asyncio

    return asyncio.run_coroutine_threadsafe(coro, loop)


def percentiles(samples):
    if not samples:
        return {"n": 0, "p50_ms": None, "p99_ms": None}
    arr = np.asarray(samples)
    return {
        "n": int(arr.size),
        "p50_ms": round(float(np.percentile(arr, 50)) * 1e3, 2),
        "p99_ms": round(float(np.percentile(arr, 99)) * 1e3, 2),
    }


def reconcile(before, after, tally):
    """Server counter deltas must match the load generator exactly."""
    for cls in ("interactive", "batch"):
        admitted = after[f"admitted_{cls}"] - before[f"admitted_{cls}"]
        rejected = after[f"rejected_{cls}"] - before[f"rejected_{cls}"]
        if admitted != tally["admitted"][cls]:
            raise AssertionError(
                f"admitted_{cls}: server says {admitted}, "
                f"load generator counted {tally['admitted'][cls]}"
            )
        if rejected != tally["rejected"][cls]:
            raise AssertionError(
                f"rejected_{cls}: server says {rejected}, "
                f"load generator counted {tally['rejected'][cls]}"
            )


def run_mode(cost_aware, fields, rate, duration):
    """One saturated open-loop run against a fresh service."""
    with ServiceClient(service_config(cost_aware=cost_aware)) as svc:
        warm_plans(svc, fields)
        before = snapshot_counters(svc)
        latency, tally = open_loop_run(
            svc, fields, rate=2.0 * rate, duration=duration
        )
        after = snapshot_counters(svc)
        reconcile(before, after, tally)
    return latency, tally


def run_benchmark(duration):
    fields = make_fields()
    results = {
        "interactive_shape": list(INTERACTIVE_SHAPE),
        "batch_shape": list(BATCH_SHAPE),
        "cycle": list(CYCLE),
        "duration_s": duration,
    }

    # calibrate + unsaturated baseline on one cost-aware service
    with ServiceClient(service_config(cost_aware=True)) as svc:
        warm_plans(svc, fields)
        rate = calibrate(svc, fields)
        before = snapshot_counters(svc)
        base_latency, base_tally = open_loop_run(
            svc, fields, rate=0.5 * rate, duration=duration
        )
        after = snapshot_counters(svc)
        reconcile(before, after, base_tally)
    results["sustainable_rps"] = round(rate, 2)
    results["baseline"] = {
        "rate_rps": round(0.5 * rate, 2),
        "interactive": percentiles(base_latency["interactive"]),
        "batch": percentiles(base_latency["batch"]),
    }

    for mode, cost_aware in (("cost_aware", True), ("depth_only", False)):
        latency, tally = run_mode(cost_aware, fields, rate, duration)
        results[mode] = {
            "rate_rps": round(2.0 * rate, 2),
            "interactive": percentiles(latency["interactive"]),
            "batch": percentiles(latency["batch"]),
            "sent": tally["sent"],
            "admitted": dict(tally["admitted"]),
            "rejected": dict(tally["rejected"]),
            "reconciled": True,  # reconcile() raised otherwise
        }

    base_p99 = results["baseline"]["interactive"]["p99_ms"]
    sat_p99 = results["cost_aware"]["interactive"]["p99_ms"]
    if base_p99 and sat_p99:
        results["interactive_p99_inflation"] = round(sat_p99 / base_p99, 2)
        results["within_3x"] = bool(sat_p99 <= 3.0 * base_p99)
    return results


def format_results(r):
    lines = [
        f"open-loop service load, cycle={r['cycle']}"
        f" sustainable={r['sustainable_rps']:.1f} req/s:",
        f"  baseline  0.5x: interactive p50/p99 "
        f"{r['baseline']['interactive']['p50_ms']}/"
        f"{r['baseline']['interactive']['p99_ms']} ms "
        f"(n={r['baseline']['interactive']['n']})",
    ]
    for mode in ("cost_aware", "depth_only"):
        m = r[mode]
        lines.append(
            f"  {mode:<9} 2x: interactive p50/p99 "
            f"{m['interactive']['p50_ms']}/{m['interactive']['p99_ms']} ms "
            f"(admitted {m['admitted']}, rejected {m['rejected']}, "
            f"reconciled={m['reconciled']})"
        )
    if "interactive_p99_inflation" in r:
        lines.append(
            f"  cost-aware interactive p99 inflation at 2x: "
            f"{r['interactive_p99_inflation']}x "
            f"({'within' if r['within_3x'] else 'OVER'} the 3x target)"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# sharded saturation harness (repro serve --shards N over real sockets)
# ---------------------------------------------------------------------------

SHARD_COUNTS = (1, 2, 4)
#: persistent socket clients driving the open loop
N_WORKERS = 16
#: open-loop rate as a multiple of the calibrated sustainable rate
SATURATION_FACTOR = 1.5
#: single-shard normalized admitted throughput may drop to 1/this vs the
#: committed baseline before CI fails
SHARD_REGRESSION_FACTOR = 2.0
#: best multi-shard config must beat single-shard by this factor...
SHARD_SCALING_FLOOR = 1.3
#: ...but only on machines with at least this many cores
MIN_CORES_FOR_SHARD_SCALING = 4

_LISTEN_RE = re.compile(r"repro service listening on [\d.]+:(\d+)")


def _subprocess_env():
    src = pathlib.Path(__file__).parent.parent / "src"
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = str(src) + (
        (os.pathsep + existing) if existing else ""
    )
    return env


def start_sharded_server(shards):
    """Spawn ``repro serve --shards N --port 0``; return (proc, port)."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--shards", str(shards),
            "--client-rate", "1e9", "--client-burst", "1e9",
        ],
        env=_subprocess_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        m = _LISTEN_RE.match(line)
        if m:
            return proc, int(m.group(1))
    err = proc.stderr.read()
    proc.terminate()
    raise RuntimeError(f"sharded server ({shards} shard(s)) never came up: {err}")


def stop_server(proc):
    proc.terminate()
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=15)


def fleet_counters(port, shards):
    """admit/reject counters for the whole fleet (admin port when N>1)."""
    stats_port = port if shards == 1 else port + 1
    with RemoteClient(port=stats_port, timeout=30) as client:
        stats = client.stats()
    return {
        k: stats[k]
        for k in (
            "admitted_interactive", "admitted_batch",
            "rejected_interactive", "rejected_batch",
        )
    }


def warm_fleet(port, shards, fields):
    """Derive both families once, then wait for bus replication.

    One derivation per family lands on whichever shard the connection
    hashes to; the bus then installs it on the other ``shards - 1``.
    Polling the aggregated ``bus_plans_installed`` makes the timed phase
    measure execution, not derivation races.
    """
    with RemoteClient(port=port, timeout=300, retries=10) as client:
        for kind, data in fields.items():
            client.compress(
                data, codec=CODEC, rel_error_bound=REL_EB,
                family=f"load-{kind}",
            )
    if shards == 1:
        return
    want = 2 * (shards - 1)
    deadline = time.monotonic() + 15
    while time.monotonic() < deadline:
        with RemoteClient(port=port + 1, timeout=30) as admin:
            if admin.stats().get("bus_plans_installed", 0) >= want:
                return
        time.sleep(0.2)
    # best-effort: a shard deriving its own copy is correct, just slower


def socket_calibrate(port, fields):
    """Closed-loop warm cycles over one socket -> sustainable req/s."""
    best = float("inf")
    with RemoteClient(port=port, timeout=300, retries=10) as client:
        for _ in range(3):
            t0 = time.perf_counter()
            for kind in CYCLE:
                client.compress(
                    fields[kind], codec=CODEC, rel_error_bound=REL_EB,
                    family=f"load-{kind}", priority=kind,
                )
            best = min(best, time.perf_counter() - t0)
    return len(CYCLE) / best


def open_loop_sockets(port, fields, rate, duration):
    """Open-loop load from N_WORKERS persistent socket clients.

    Requests are stamped with their *scheduled* submit time: when every
    worker is busy, the wait for a free connection is queueing delay the
    fleet caused, and it belongs in the latency numbers (that is what
    open-loop means).
    """
    n = max(1, int(rate * duration))
    work = queue.Queue()
    latency = {"interactive": [], "batch": []}
    tally = {
        "sent": n,
        "admitted": {"interactive": 0, "batch": 0},
        "rejected": {"interactive": 0, "batch": 0},
    }
    lock = threading.Lock()
    start = time.perf_counter() + 0.2  # let workers reach the queue

    def worker(worker_id):
        with RemoteClient(
            port=port, timeout=300, client_id=f"lg-{worker_id}",
            reconnects=2,
        ) as client:
            while True:
                item = work.get()
                if item is None:
                    return
                i, kind = item
                target = start + i / rate
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                try:
                    client.compress(
                        fields[kind], codec=CODEC, rel_error_bound=REL_EB,
                        family=f"load-{kind}", priority=kind,
                    )
                except ServiceOverloadedError:
                    with lock:
                        tally["rejected"][kind] += 1
                    continue
                done = time.perf_counter()
                with lock:
                    tally["admitted"][kind] += 1
                    latency[kind].append(done - target)

    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True)
        for w in range(N_WORKERS)
    ]
    for t in threads:
        t.start()
    for i in range(n):
        work.put((i, CYCLE[i % len(CYCLE)]))
    for _ in threads:
        work.put(None)
    for t in threads:
        t.join(timeout=600)
    elapsed = time.perf_counter() - start
    return latency, tally, elapsed


def run_sharded_benchmark(duration):
    from bench_compress_speed import calibration_melem_s

    rng = np.random.default_rng(2022)
    calib = calibration_melem_s(rng)
    fields = make_fields()
    elems = {k: int(v.size) for k, v in fields.items()}
    results = {
        "cpu_count": os.cpu_count(),
        "calibration_melem_s": round(calib, 1),
        "duration_s": duration,
        "saturation_factor": SATURATION_FACTOR,
        "cycle": list(CYCLE),
        "shards": {},
    }

    for shards in SHARD_COUNTS:
        proc, port = start_sharded_server(shards)
        try:
            warm_fleet(port, shards, fields)
            rate = socket_calibrate(port, fields)
            before = fleet_counters(port, shards)
            latency, tally, elapsed = open_loop_sockets(
                port, fields, rate=SATURATION_FACTOR * rate,
                duration=duration,
            )
            after = fleet_counters(port, shards)
            reconcile(before, after, tally)
        finally:
            stop_server(proc)
        admitted = tally["admitted"]
        admitted_elems = sum(admitted[k] * elems[k] for k in admitted)
        admitted_melem_s = admitted_elems / elapsed / 1e6
        results["shards"][str(shards)] = {
            "sustainable_rps": round(rate, 2),
            "offered_rps": round(SATURATION_FACTOR * rate, 2),
            "interactive": percentiles(latency["interactive"]),
            "batch": percentiles(latency["batch"]),
            "sent": tally["sent"],
            "admitted": dict(admitted),
            "rejected": dict(tally["rejected"]),
            "admitted_rps": round(sum(admitted.values()) / elapsed, 2),
            "admitted_melem_s": round(admitted_melem_s, 3),
            "normalized": round(admitted_melem_s / calib, 4),
            "reconciled": True,  # reconcile() raised otherwise
        }

    one = results["shards"]["1"]["admitted_melem_s"]
    for shards in SHARD_COUNTS:
        r = results["shards"][str(shards)]
        r["speedup_vs_1"] = round(r["admitted_melem_s"] / one, 2) if one else 0
    results["best_shard_speedup"] = max(
        r["speedup_vs_1"] for r in results["shards"].values()
    )
    return results


def format_sharded(results):
    lines = [
        f"sharded open-loop saturation ({results['cpu_count']} core(s), "
        f"gather calibration {results['calibration_melem_s']} Melem/s, "
        f"{SATURATION_FACTOR}x sustainable offered):"
    ]
    for shards, r in results["shards"].items():
        lines.append(
            f"  shards={shards}: admitted {r['admitted_rps']:.1f} req/s "
            f"({r['admitted_melem_s']:.2f} Melem/s, normalized "
            f"{r['normalized']:.4f}), interactive p50/p99 "
            f"{r['interactive']['p50_ms']}/{r['interactive']['p99_ms']} ms, "
            f"speedup {r['speedup_vs_1']:.2f}x, "
            f"reconciled={r['reconciled']}"
        )
    lines.append(
        f"  best speedup vs single shard: "
        f"{results['best_shard_speedup']:.2f}x"
    )
    return "\n".join(lines)


def format_sharded_markdown(results):
    lines = [
        "### sharded-smoke — open-loop saturation, machine-normalized",
        "",
        f"{results['cpu_count']} core(s), gather calibration: "
        f"{results['calibration_melem_s']} Melem/s",
        "",
        "| shards | admitted req/s | Melem/s | normalized | "
        "p50/p99 ms | speedup |",
        "| ---: | ---: | ---: | ---: | ---: | ---: |",
    ]
    for shards, r in results["shards"].items():
        lines.append(
            f"| {shards} | {r['admitted_rps']:.1f} "
            f"| {r['admitted_melem_s']:.2f} | {r['normalized']:.4f} "
            f"| {r['interactive']['p50_ms']}/{r['interactive']['p99_ms']} "
            f"| {r['speedup_vs_1']:.2f}x |"
        )
    lines.append("")
    lines.append(
        f"best speedup vs single shard: "
        f"**{results['best_shard_speedup']:.2f}x**"
    )
    return "\n".join(lines) + "\n\n"


def check_sharded(results, baseline_path):
    """Return a list of regression messages (empty = pass)."""
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    failures = []
    base_one = baseline["shards"]["1"]
    now_one = results["shards"]["1"]
    floor = base_one["normalized"] / SHARD_REGRESSION_FACTOR
    if now_one["normalized"] < floor:
        failures.append(
            f"shards=1: normalized admitted throughput "
            f"{now_one['normalized']:.4f} fell below {floor:.4f} (baseline "
            f"{base_one['normalized']:.4f} / {SHARD_REGRESSION_FACTOR}x)"
        )
    cores = os.cpu_count() or 1
    if cores >= MIN_CORES_FOR_SHARD_SCALING:
        if results["best_shard_speedup"] < SHARD_SCALING_FLOOR:
            failures.append(
                f"scaling: best multi-shard speedup "
                f"{results['best_shard_speedup']:.2f}x fell below the "
                f"{SHARD_SCALING_FLOOR:.1f}x contract on a {cores}-core "
                f"machine"
            )
    else:
        print(
            f"shard-scaling contract skipped: {cores} core(s) < "
            f"{MIN_CORES_FOR_SHARD_SCALING} (speedup is unmeasurable "
            f"here; see EXPERIMENTS.md §9)"
        )
    return failures


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--duration", type=float, default=3.0,
                    help="seconds per open-loop phase (default 3)")
    ap.add_argument("--sharded", action="store_true",
                    help="run the sharded saturation harness "
                         "(subprocess fleets, 1/2/4 shards) instead of "
                         "the in-process admission benchmark")
    ap.add_argument("--check", metavar="BASELINE",
                    help="with --sharded: fail on regression vs the "
                         "committed baseline")
    ap.add_argument("--write", metavar="PATH", help="write results JSON")
    ap.add_argument("--summary", metavar="PATH",
                    help="with --sharded: append a markdown table "
                         "(e.g. $GITHUB_STEP_SUMMARY)")
    args = ap.parse_args(argv)
    if args.sharded:
        results = run_sharded_benchmark(args.duration)
        print(format_sharded(results))
        if args.summary:
            with open(args.summary, "a") as fh:
                fh.write(format_sharded_markdown(results))
    else:
        results = run_benchmark(args.duration)
        print(format_results(results))
    if args.write:
        pathlib.Path(args.write).write_text(
            json.dumps(results, indent=2) + "\n"
        )
        print(f"wrote {args.write}")
    if args.check:
        if not args.sharded:
            print("--check requires --sharded", file=sys.stderr)
            return 2
        failures = check_sharded(results, args.check)
        if failures:
            print("REGRESSION:\n  " + "\n  ".join(failures))
            return 1
        print(f"no regression vs {args.check}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    sys.exit(main())
