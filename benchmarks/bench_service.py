"""Open-loop service load generator: admission behavior under saturation.

Drives the in-process service the way an impatient fleet of clients
would — requests are issued on a fixed wall-clock schedule whether or
not earlier ones have finished (open loop), so queueing delay is
measured honestly instead of being absorbed by a closed loop's
self-throttling.  Three phases:

1. *Calibrate*: run one warm workload cycle closed-loop to estimate the
   sustainable request rate (plans pre-derived; derivation cost is the
   service's to amortize, not the load generator's to measure).
2. *Baseline*: open loop at 0.5x sustainable — an unsaturated service —
   recording p50/p99 latency of interactive requests.
3. *Saturate*: open loop at 2x sustainable with mixed interactive/batch
   traffic.  Under cost-aware admission the batch lane sheds load first
   and admitted interactive p99 should stay within ~3x of the
   unsaturated baseline; the same schedule replayed against a
   depth-only (request-count) admission service shows the contrast.

Every run reconciles the load generator's own admit/reject tallies
against the service's STATS counters — exactly, not approximately; a
mismatch is a bug in the metrics pipeline and raises.  Informational
(no committed baseline / CI gate)::

    PYTHONPATH=src python benchmarks/bench_service.py [--duration S] [--write PATH]
"""

import argparse
import concurrent.futures
import json
import pathlib
import sys
import time

import numpy as np

from repro.errors import ServiceOverloadedError
from repro.service import ServiceClient, ServiceConfig, protocol
from repro.service.protocol import CompressRequest

INTERACTIVE_SHAPE = (32, 32, 32)
BATCH_SHAPE = (64, 64, 64)
# one workload cycle: mostly small interactive requests, one big batch job
CYCLE = ["interactive"] * 4 + ["batch"]
N_CLIENTS = 8
CODEC = "qoz"
REL_EB = 1e-3


def make_fields():
    rng = np.random.default_rng(42)

    def field(shape):
        x = np.cumsum(rng.standard_normal(shape), axis=0)
        x += np.cumsum(rng.standard_normal(shape), axis=1)
        return (x / np.abs(x).max()).astype(np.float32)

    return {
        "interactive": field(INTERACTIVE_SHAPE),
        "batch": field(BATCH_SHAPE),
    }


def build_request(kind, fields, client_id):
    return CompressRequest(
        data=fields[kind],
        codec=CODEC,
        rel_error_bound=REL_EB,
        family=f"load-{kind}",
        priority=kind if kind in protocol.PRIORITIES else "interactive",
        client_id=client_id,
    )


def service_config(cost_aware=True):
    # generous per-client quotas: this benchmark exercises the capacity
    # and priority rules, not the per-client fairness rule
    return ServiceConfig(
        processes=1,
        cost_aware=cost_aware,
        client_rate=1e9,
        client_burst=1e9,
    )


def warm_plans(svc, fields):
    """Derive both families' plans once so every timed request is warm."""
    for kind, data in fields.items():
        svc.compress(
            data, codec=CODEC, rel_error_bound=REL_EB, family=f"load-{kind}"
        )


def calibrate(svc, fields):
    """Closed-loop warm cycles -> sustainable requests/second."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for kind in CYCLE:
            svc.compress(
                fields[kind],
                codec=CODEC,
                rel_error_bound=REL_EB,
                family=f"load-{kind}",
                priority=kind,
            )
        best = min(best, time.perf_counter() - t0)
    return len(CYCLE) / best


def snapshot_counters(svc):
    stats = svc.stats()
    return {
        k: stats[k]
        for k in (
            "admitted_interactive", "admitted_batch",
            "rejected_interactive", "rejected_batch",
            "retried_interactive", "retried_batch",
        )
    }


def open_loop_run(svc, fields, rate, duration, mixed=True):
    """Issue requests on a fixed schedule; tally and time every outcome.

    Returns per-class latency samples (admitted requests only, seconds)
    and the load generator's own admit/reject tallies.
    """
    loop = svc._loop
    service = svc.service
    n = max(1, int(rate * duration))
    kinds = [CYCLE[i % len(CYCLE)] if mixed else "interactive"
             for i in range(n)]
    pending = []  # (kind, t_submit, future)
    tally = {
        "sent": 0,
        "admitted": {"interactive": 0, "batch": 0},
        "rejected": {"interactive": 0, "batch": 0},
    }
    done_at = {}  # id(fut) -> completion timestamp, stamped by callback
    start = time.perf_counter()
    for i, kind in enumerate(kinds):
        target = start + i / rate
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        req = build_request(kind, fields, f"lg-{i % N_CLIENTS}")
        t_submit = time.perf_counter()
        fut = asyncio_submit(loop, service.handle(req))
        # stamp completion when it happens, not when the collection loop
        # below gets around to asking — the difference is the whole
        # remaining submission schedule for early finishers
        fut.add_done_callback(
            lambda f: done_at.setdefault(id(f), time.perf_counter())
        )
        pending.append((kind, t_submit, fut))
        tally["sent"] += 1
    latency = {"interactive": [], "batch": []}
    for kind, t_submit, fut in pending:
        try:
            fut.result(timeout=300)
        except ServiceOverloadedError:
            tally["rejected"][kind] += 1
            continue
        tally["admitted"][kind] += 1
        latency[kind].append(done_at[id(fut)] - t_submit)
    return latency, tally


def asyncio_submit(loop, coro):
    import asyncio

    return asyncio.run_coroutine_threadsafe(coro, loop)


def percentiles(samples):
    if not samples:
        return {"n": 0, "p50_ms": None, "p99_ms": None}
    arr = np.asarray(samples)
    return {
        "n": int(arr.size),
        "p50_ms": round(float(np.percentile(arr, 50)) * 1e3, 2),
        "p99_ms": round(float(np.percentile(arr, 99)) * 1e3, 2),
    }


def reconcile(before, after, tally):
    """Server counter deltas must match the load generator exactly."""
    for cls in ("interactive", "batch"):
        admitted = after[f"admitted_{cls}"] - before[f"admitted_{cls}"]
        rejected = after[f"rejected_{cls}"] - before[f"rejected_{cls}"]
        if admitted != tally["admitted"][cls]:
            raise AssertionError(
                f"admitted_{cls}: server says {admitted}, "
                f"load generator counted {tally['admitted'][cls]}"
            )
        if rejected != tally["rejected"][cls]:
            raise AssertionError(
                f"rejected_{cls}: server says {rejected}, "
                f"load generator counted {tally['rejected'][cls]}"
            )


def run_mode(cost_aware, fields, rate, duration):
    """One saturated open-loop run against a fresh service."""
    with ServiceClient(service_config(cost_aware=cost_aware)) as svc:
        warm_plans(svc, fields)
        before = snapshot_counters(svc)
        latency, tally = open_loop_run(
            svc, fields, rate=2.0 * rate, duration=duration
        )
        after = snapshot_counters(svc)
        reconcile(before, after, tally)
    return latency, tally


def run_benchmark(duration):
    fields = make_fields()
    results = {
        "interactive_shape": list(INTERACTIVE_SHAPE),
        "batch_shape": list(BATCH_SHAPE),
        "cycle": list(CYCLE),
        "duration_s": duration,
    }

    # calibrate + unsaturated baseline on one cost-aware service
    with ServiceClient(service_config(cost_aware=True)) as svc:
        warm_plans(svc, fields)
        rate = calibrate(svc, fields)
        before = snapshot_counters(svc)
        base_latency, base_tally = open_loop_run(
            svc, fields, rate=0.5 * rate, duration=duration
        )
        after = snapshot_counters(svc)
        reconcile(before, after, base_tally)
    results["sustainable_rps"] = round(rate, 2)
    results["baseline"] = {
        "rate_rps": round(0.5 * rate, 2),
        "interactive": percentiles(base_latency["interactive"]),
        "batch": percentiles(base_latency["batch"]),
    }

    for mode, cost_aware in (("cost_aware", True), ("depth_only", False)):
        latency, tally = run_mode(cost_aware, fields, rate, duration)
        results[mode] = {
            "rate_rps": round(2.0 * rate, 2),
            "interactive": percentiles(latency["interactive"]),
            "batch": percentiles(latency["batch"]),
            "sent": tally["sent"],
            "admitted": dict(tally["admitted"]),
            "rejected": dict(tally["rejected"]),
            "reconciled": True,  # reconcile() raised otherwise
        }

    base_p99 = results["baseline"]["interactive"]["p99_ms"]
    sat_p99 = results["cost_aware"]["interactive"]["p99_ms"]
    if base_p99 and sat_p99:
        results["interactive_p99_inflation"] = round(sat_p99 / base_p99, 2)
        results["within_3x"] = bool(sat_p99 <= 3.0 * base_p99)
    return results


def format_results(r):
    lines = [
        f"open-loop service load, cycle={r['cycle']}"
        f" sustainable={r['sustainable_rps']:.1f} req/s:",
        f"  baseline  0.5x: interactive p50/p99 "
        f"{r['baseline']['interactive']['p50_ms']}/"
        f"{r['baseline']['interactive']['p99_ms']} ms "
        f"(n={r['baseline']['interactive']['n']})",
    ]
    for mode in ("cost_aware", "depth_only"):
        m = r[mode]
        lines.append(
            f"  {mode:<9} 2x: interactive p50/p99 "
            f"{m['interactive']['p50_ms']}/{m['interactive']['p99_ms']} ms "
            f"(admitted {m['admitted']}, rejected {m['rejected']}, "
            f"reconciled={m['reconciled']})"
        )
    if "interactive_p99_inflation" in r:
        lines.append(
            f"  cost-aware interactive p99 inflation at 2x: "
            f"{r['interactive_p99_inflation']}x "
            f"({'within' if r['within_3x'] else 'OVER'} the 3x target)"
        )
    return "\n".join(lines)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--duration", type=float, default=3.0,
                    help="seconds per open-loop phase (default 3)")
    ap.add_argument("--write", metavar="PATH", help="write results JSON")
    args = ap.parse_args(argv)
    results = run_benchmark(args.duration)
    print(format_results(results))
    if args.write:
        pathlib.Path(args.write).write_text(
            json.dumps(results, indent=2) + "\n"
        )
        print(f"wrote {args.write}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
