"""Entropy-decode throughput benchmark + CI regression gate.

Measures :func:`repro.encoding.codec.decode_symbol_stream` on stream
profiles spanning the decoder's regimes — run-dominated quantization
indices, mid-entropy (Zipf) token streams, near-incompressible byte
planes, and a geometric profile that forces the long-code escape path —
plus one end-to-end codec decompression.

Because absolute throughput varies wildly across machines, every number
is also recorded *normalized* by a fixed numpy gather workload measured
at the same time (``calibration``).  The CI smoke job compares normalized
values against the committed baseline (``BENCH_entropy_decode.json`` at
the repo root) and fails on a >2x regression:

    python benchmarks/bench_entropy_decode.py --check BENCH_entropy_decode.json

Run without arguments to print the table; ``--write PATH`` refreshes the
baseline.  Under pytest it records the table like the other benches.
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np

#: normalized throughput may drop to 1/this before the CI gate fails
REGRESSION_FACTOR = 2.0
#: stream length for the symbol-stream profiles
N_SYMBOLS = 500_000


def _profiles(rng):
    w = 1.0 / (np.arange(1, 701) ** 1.2)
    w /= w.sum()
    geo = 2.0 ** np.arange(24)
    return {
        "rle_heavy": np.where(
            rng.random(N_SYMBOLS) < 0.97, 0, rng.integers(1, 40, size=N_SYMBOLS)
        ).astype(np.int64),
        "zipf_mid": rng.choice(700, p=w, size=N_SYMBOLS).astype(np.int64),
        "byte_planes": rng.integers(0, 256, size=N_SYMBOLS).astype(np.int64),
        "long_codes": rng.choice(24, p=geo / geo.sum(), size=N_SYMBOLS).astype(
            np.int64
        ),
    }


def _best_of(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def calibration_melem_s(rng):
    """Throughput of a plain numpy fancy gather (Melem/s) — the machine-
    speed proxy used to normalize decode numbers across hosts."""
    table = rng.integers(0, 1 << 31, size=1 << 16).astype(np.int64)
    idx = rng.integers(0, 1 << 16, size=1 << 21)
    dt = _best_of(lambda: table[idx], rounds=5)
    return idx.size / dt / 1e6


def run_benchmark():
    from repro import SZ3
    from repro.datasets import get_dataset
    from repro.encoding.codec import decode_symbol_stream, encode_symbol_stream

    rng = np.random.default_rng(2022)
    calib = calibration_melem_s(rng)
    results = {"calibration_melem_s": round(calib, 1), "streams": {}}

    for name, syms in _profiles(rng).items():
        blob = encode_symbol_stream(syms)
        decode_symbol_stream(blob)  # warm decode tables
        dt = _best_of(lambda: decode_symbol_stream(blob))
        msym = syms.size / dt / 1e6
        results["streams"][name] = {
            "msym_per_s": round(msym, 2),
            "normalized": round(msym / calib, 4),
            "bits_per_sym": round(len(blob) * 8 / syms.size, 2),
        }

    data = get_dataset("nyx", shape=(48, 48, 48), seed=0)
    codec = SZ3()
    blob = codec.compress(data, rel_error_bound=1e-3)
    codec.decompress(blob)
    dt = _best_of(lambda: codec.decompress(blob))
    mbs = data.nbytes / dt / 1e6
    results["streams"]["sz3_nyx_end_to_end"] = {
        "mb_per_s": round(mbs, 1),
        "normalized": round(mbs / calib, 4),
    }
    return results


def format_results(results):
    lines = [
        "entropy decode throughput "
        f"(gather calibration {results['calibration_melem_s']} Melem/s)"
    ]
    for name, r in results["streams"].items():
        rate = (
            f"{r['msym_per_s']:8.2f} Msym/s"
            if "msym_per_s" in r
            else f"{r['mb_per_s']:8.1f} MB/s  "
        )
        lines.append(f"  {name:20s} {rate}   normalized {r['normalized']:.4f}")
    return "\n".join(lines)


def format_markdown(results):
    """GitHub-flavored summary table (written to $GITHUB_STEP_SUMMARY)."""
    lines = [
        "### entropy-decode-smoke — machine-normalized throughput",
        "",
        f"gather calibration: {results['calibration_melem_s']} Melem/s",
        "",
        "| stream | rate | normalized |",
        "| --- | ---: | ---: |",
    ]
    for name, r in results["streams"].items():
        rate = (
            f"{r['msym_per_s']:.2f} Msym/s"
            if "msym_per_s" in r
            else f"{r['mb_per_s']:.1f} MB/s"
        )
        lines.append(f"| {name} | {rate} | {r['normalized']:.4f} |")
    return "\n".join(lines) + "\n\n"


def check_against(results, baseline_path):
    """Return a list of regression messages (empty = pass)."""
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    failures = []
    for name, base in baseline["streams"].items():
        now = results["streams"].get(name)
        if now is None:
            failures.append(f"{name}: missing from current run")
            continue
        floor = base["normalized"] / REGRESSION_FACTOR
        if now["normalized"] < floor:
            failures.append(
                f"{name}: normalized throughput {now['normalized']:.4f} "
                f"fell below {floor:.4f} "
                f"(baseline {base['normalized']:.4f} / {REGRESSION_FACTOR}x)"
            )
    return failures


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--check", metavar="BASELINE", help="fail on >2x regression")
    ap.add_argument("--write", metavar="PATH", help="write results JSON")
    ap.add_argument("--summary", metavar="PATH",
                    help="append a markdown table (e.g. $GITHUB_STEP_SUMMARY)")
    args = ap.parse_args(argv)
    results = run_benchmark()
    print(format_results(results))
    if args.summary:
        with open(args.summary, "a") as fh:
            fh.write(format_markdown(results))
    if args.write:
        existing = {}
        p = pathlib.Path(args.write)
        if p.exists():
            existing = json.loads(p.read_text())
        existing.update(results)
        p.write_text(json.dumps(existing, indent=2) + "\n")
        print(f"wrote {args.write}")
    if args.check:
        failures = check_against(results, args.check)
        if failures:
            print("REGRESSION:\n  " + "\n  ".join(failures))
            return 1
        print(f"no >{REGRESSION_FACTOR}x regression vs {args.check}")
    return 0


def test_entropy_decode_throughput():
    """Pytest entry: record the table alongside the other benchmarks."""
    from conftest import record

    results = run_benchmark()
    record("entropy_decode", format_results(results))
    assert results["streams"]["rle_heavy"]["msym_per_s"] > 0


if __name__ == "__main__":
    sys.exit(main())
