"""Fig. 11: reconstruction quality at the same compression ratio (CR=65).

Paper: on SCALE-LETKF, at CR 65, QoZ's reconstruction has the highest
PSNR (45.4) vs SZ3 43.21, MGARD+ 35.6, SZ2 33.6, ZFP 27.1.  We bisect
each codec's error bound to the target CR and compare PSNR; mid-depth
slices are also written as PGM images for visual inspection.
"""

from conftest import RESULTS_DIR, bench_dataset, record
from repro import MGARDPlus, QoZ, SZ2, SZ3, ZFP
from repro.analysis import find_error_bound_for_cr, format_table, write_pgm
from repro.metrics import psnr, ssim

TARGET_CR = 65.0


def _run():
    data = bench_dataset("scale")
    rows = []
    RESULTS_DIR.mkdir(exist_ok=True)
    write_pgm(data[data.shape[0] // 2], str(RESULTS_DIR / "fig11_original.pgm"))
    for cname, codec in [
        ("sz2", SZ2()),
        ("sz3", SZ3()),
        ("zfp", ZFP()),
        ("mgard", MGARDPlus()),
        ("qoz", QoZ(metric="psnr")),
    ]:
        rel_eb, cr, blob = find_error_bound_for_cr(codec, data, TARGET_CR)
        recon = codec.decompress(blob)
        rows.append(
            [cname, round(cr, 1), f"{rel_eb:.3g}",
             round(psnr(data, recon), 2), round(ssim(data, recon), 4)]
        )
        write_pgm(
            recon[recon.shape[0] // 2],
            str(RESULTS_DIR / f"fig11_{cname}.pgm"),
        )
    return rows


def test_fig11_visual_quality_at_same_cr(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["codec", "achieved_cr", "rel_eb", "psnr", "ssim"],
        rows,
        title=f"Fig. 11 — quality at CR~{TARGET_CR} on SCALE-LETKF "
        "(paper PSNR: QoZ 45.4 > SZ3 43.2 > MGARD+ 35.6 > SZ2 33.6 > "
        "ZFP 27.1); PGM slices in benchmarks/results/",
    )
    record("fig11_visual_quality", table)
