"""Fig. 10: rate vs lag-1 autocorrelation of compression errors.

Paper: QoZ beats SZ3's autocorrelation at the same bit rate in both modes,
and the AC-preferred mode improves further over the PSNR-preferred mode
(up to 427% CR gain on Miranda at equal AC).
"""

from conftest import bench_dataset, record
from repro import QoZ, SZ3
from repro.analysis import format_table, rate_distortion_curve
from repro.datasets import dataset_names

REL_EBS = (1e-2, 3e-3, 1e-3, 3e-4)


def _run():
    rows = []
    for name in dataset_names():
        data = bench_dataset(name)
        for cname, codec in [
            ("sz3", SZ3()),
            ("qoz_psnr", QoZ(metric="psnr")),
            ("qoz_ac", QoZ(metric="ac")),
        ]:
            for pt in rate_distortion_curve(codec, data, REL_EBS,
                                            compute_ssim=False):
                rows.append(
                    [name, cname, pt.rel_eb, round(pt.bit_rate, 4),
                     round(pt.autocorr, 4)]
                )
    return rows


def test_fig10_rate_autocorrelation(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "codec", "rel_eb", "bit_rate", "lag1_ac"],
        rows,
        title="Fig. 10 — rate-autocorrelation series (paper: QoZ lower AC "
        "than SZ3 at equal rate; AC-preferred mode lowest)",
    )
    record("fig10_rate_ac", table)
