"""Fig. 12: ablation study — each QoZ component's rate-distortion gain.

Paper: on CESM-ATM and Miranda, adding anchor points (AP), sampled global
interpolator selection (S), level-wise interpolation selection (LIS) and
parameter auto-tuning (PA) to SZ3 improves rate-PSNR step by step.
"""

from conftest import bench_dataset, record
from repro import QoZ, SZ3
from repro.analysis import format_table, rate_distortion_curve

REL_EBS = (3e-3, 1e-3, 3e-4)

VARIANTS = [
    ("sz3", lambda: SZ3()),
    ("sz3+AP", lambda: QoZ(selection="none", tune=False)),
    ("sz3+AP+S", lambda: QoZ(selection="global", tune=False)),
    ("sz3+AP+S+LIS", lambda: QoZ(selection="level", tune=False)),
    ("qoz (full)", lambda: QoZ(selection="level", tune=True, metric="psnr")),
]


def _run():
    rows = []
    for name in ("cesm", "miranda"):
        data = bench_dataset(name)
        for vname, factory in VARIANTS:
            for pt in rate_distortion_curve(factory(), data, REL_EBS,
                                            compute_ssim=False):
                rows.append(
                    [name, vname, pt.rel_eb, round(pt.bit_rate, 4),
                     round(pt.psnr, 2)]
                )
    return rows


def test_fig12_ablation(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "variant", "rel_eb", "bit_rate", "psnr"],
        rows,
        title="Fig. 12 — ablation (paper: rate-distortion improves with "
        "each added component, full QoZ best)",
    )
    record("fig12_ablation", table)
