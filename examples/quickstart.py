"""Quickstart: compress a scientific field with QoZ, verify the bound.

Run: python examples/quickstart.py
"""

import numpy as np

from repro import QoZ, SZ3, psnr, ssim
from repro.datasets import get_dataset
from repro.metrics import compression_ratio, error_autocorrelation


def main() -> None:
    # a Miranda-like 3-D turbulence field (paper Table II stand-in)
    data = get_dataset("miranda", shape=(48, 64, 64), seed=0)
    print(f"input: {data.shape} {data.dtype}, {data.nbytes / 1e6:.1f} MB")

    # value-range-relative error bound, as in the paper's evaluation
    eps = 1e-3
    codec = QoZ(metric="cr")  # 'maximize compression ratio' tuning mode
    blob = codec.compress(data, rel_error_bound=eps)
    recon = codec.decompress(blob)

    eb = eps * float(data.max() - data.min())
    max_err = np.abs(recon.astype(np.float64) - data.astype(np.float64)).max()
    assert max_err <= eb, "error bound must hold on every point"

    report = codec.last_report
    print(f"compressed: {len(blob)} bytes "
          f"(CR = {compression_ratio(data, blob):.1f}x)")
    print(f"max |error| = {max_err:.3g} <= eb = {eb:.3g}")
    print(f"PSNR = {psnr(data, recon):.2f} dB, SSIM = {ssim(data, recon):.4f}, "
          f"lag-1 error AC = {error_autocorrelation(data, recon):+.3f}")
    print(f"auto-tuned alpha = {report.alpha}, beta = {report.beta}, "
          f"anchor stride = {report.anchor_stride}")

    # compare against the SZ3 baseline at the same bound
    sz3_blob = SZ3().compress(data, rel_error_bound=eps)
    print(f"SZ3 at the same bound: CR = {compression_ratio(data, sz3_blob):.1f}x")


if __name__ == "__main__":
    main()
