"""Quality-metric-driven compression of a climate field (paper §I use case).

Climate researchers judge reconstructed snapshots by visual/structural
quality (SSIM), not just point-wise error.  This example compresses a
CESM-ATM-like 2-D field with QoZ in three tuning modes under the *same*
error bound and shows how the user-specified metric changes the trade-off
— the paper's core contribution.

Run: python examples/climate_ssim.py
"""

import numpy as np

from repro import QoZ, psnr, ssim
from repro.analysis import write_pgm
from repro.datasets import get_dataset
from repro.metrics import bit_rate, compression_ratio


def main() -> None:
    data = get_dataset("cesm", shape=(256, 512), seed=7)
    eps = 1e-3
    print(f"CESM-like field {data.shape}, eps = {eps} (value-range relative)\n")
    print(f"{'mode':8} {'CR':>8} {'bits/pt':>8} {'PSNR':>8} {'SSIM':>8} "
          f"{'alpha':>6} {'beta':>5}")
    recons = {}
    for mode in ("cr", "psnr", "ssim"):
        codec = QoZ(metric=mode)
        blob = codec.compress(data, rel_error_bound=eps)
        recon = codec.decompress(blob)
        recons[mode] = recon
        r = codec.last_report
        print(f"{mode:8} {compression_ratio(data, blob):8.1f} "
              f"{bit_rate(data, blob):8.3f} {psnr(data, recon):8.2f} "
              f"{ssim(data, recon):8.4f} {r.alpha:6.2f} {r.beta:5.1f}")

    # every mode respects the same bound — only the rate/quality mix moves
    eb = eps * float(data.max() - data.min())
    for mode, recon in recons.items():
        err = np.abs(recon.astype(np.float64) - data.astype(np.float64)).max()
        assert err <= eb, mode

    write_pgm(data, "cesm_original.pgm")
    write_pgm(recons["ssim"], "cesm_recon_ssim.pgm")
    print("\nwrote cesm_original.pgm / cesm_recon_ssim.pgm for inspection")


if __name__ == "__main__":
    main()
