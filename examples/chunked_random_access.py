"""Chunked out-of-core compression with random-access decompression.

Tiles a 3-D turbulence field into 32^3 blocks, compresses each block
independently into a multi-chunk container on disk, then decodes a single
chunk and an arbitrary hyperslab — reading only the byte ranges of the
chunks touched, never the whole stream.

Run: python examples/chunked_random_access.py
"""

import numpy as np

from repro.chunked import ChunkedFile, compress_chunked_to_file
from repro.datasets import get_dataset

PATH = "miranda_chunked.rpz"


def main() -> None:
    data = get_dataset("miranda", shape=(48, 64, 64), seed=0)
    print(f"input: {data.shape} {data.dtype}, {data.nbytes / 1e6:.1f} MB")

    # relative bound resolved against the FULL field's value range, then
    # applied to every chunk — same guarantee as the unchunked path
    eps = 1e-3
    info = compress_chunked_to_file(
        data, PATH, codec="sz3", chunks=32, rel_error_bound=eps
    )
    eb = info.header.error_bound
    print(f"container: {info.total_bytes} bytes "
          f"(CR = {data.nbytes / info.total_bytes:.1f}x), "
          f"grid {info.grid.grid_shape} of {info.grid.chunk_shape} chunks, "
          f"abs eb = {eb:.3g}")

    with ChunkedFile(PATH) as f:
        # --- single-chunk random access -------------------------------
        i = f.n_chunks // 2
        entry = f.info.entries[i]
        chunk = f.chunk(i)  # one seek + one read of entry.nbytes
        err = np.abs(chunk.astype(np.float64)
                     - data[entry.slices].astype(np.float64)).max()
        assert err <= eb, "bound must hold on the chunk"
        print(f"chunk {i} at {entry.start}: decoded {entry.nbytes} of "
              f"{info.total_bytes} container bytes "
              f"({100 * entry.nbytes / info.total_bytes:.1f}%), "
              f"max |error| = {err:.3g}")

        # --- hyperslab extraction -------------------------------------
        slab = (slice(10, 40), slice(0, 30), slice(8, 24))
        touched = f.grid.chunks_for_slab(slab)
        sub = f.read(slab)
        slab_bytes = sum(f.info.entries[j].nbytes for j in touched)
        err = np.abs(sub.astype(np.float64)
                     - data[slab].astype(np.float64)).max()
        assert err <= eb, "bound must hold on the hyperslab"
        print(f"hyperslab {sub.shape}: decoded {len(touched)}/{f.n_chunks} "
              f"chunks ({100 * slab_bytes / info.total_bytes:.1f}% of the "
              f"container), max |error| = {err:.3g}")

        # --- full reconstruction matches the pieces -------------------
        full = f.to_array()
        np.testing.assert_array_equal(full[entry.slices], chunk)
        np.testing.assert_array_equal(full[slab], sub)
        print(f"full reconstruction: max |error| = "
              f"{np.abs(full.astype(np.float64) - data.astype(np.float64)).max():.3g} "
              f"<= eb = {eb:.3g}")


if __name__ == "__main__":
    main()
