"""Compressing an evolving seismic wavefield (RTM use case, paper §I).

Reverse time migration stores thousands of wavefield snapshots; this
example propagates an acoustic wave with the built-in FD solver and
compresses snapshots at several times, showing how compressibility drops
as the wavefront fills the domain — and that QoZ's advantage over SZ3
grows on the later, regionally heterogeneous snapshots (the anchor-point
effect, paper §V-B1).

Run: python examples/seismic_rtm.py
"""

import numpy as np

from repro import QoZ, SZ3
from repro.datasets import WaveSimulator
from repro.metrics import compression_ratio


def main() -> None:
    sim = WaveSimulator((48, 64, 64), seed=0)
    eps = 1e-3
    print("step   nonzero%   SZ3 CR    QoZ CR")
    for checkpoint in (10, 25, 40, 60):
        sim.step(checkpoint - sim.step_count)
        snap = sim.snapshot()
        peak = np.abs(snap).max() or 1.0
        snap = (snap / peak).astype(np.float32)
        occupancy = 100.0 * np.mean(np.abs(snap) > 1e-4)
        cr_sz3 = compression_ratio(
            snap, SZ3().compress(snap, rel_error_bound=eps)
        )
        cr_qoz = compression_ratio(
            snap, QoZ(metric="cr").compress(snap, rel_error_bound=eps)
        )
        print(f"{checkpoint:4d} {occupancy:9.1f}% {cr_sz3:9.1f} {cr_qoz:9.1f}")

    print("\nearly snapshots are mostly quiet -> extreme ratios; the "
          "wavefront fills the volume and ratios settle (paper Table III "
          "RTM row)")


if __name__ == "__main__":
    main()
