"""White-noise-like compression errors for turbulence analysis.

Some analyses (spectra, correlation functions) are biased by *correlated*
compression errors; users then prefer the codec whose errors look like
white noise (paper §III, Fig. 10).  This example compares the lag-k error
autocorrelation of SZ3 against QoZ's AC-preferred mode on a Miranda-like
turbulence field.

Run: python examples/turbulence_autocorr.py
"""

from repro import QoZ, SZ3
from repro.datasets import get_dataset
from repro.metrics import autocorrelation_profile, bit_rate, compression_ratio


def main() -> None:
    data = get_dataset("miranda", shape=(48, 64, 64), seed=3)
    eps = 1e-3

    print(f"Miranda-like field {data.shape}, eps = {eps}\n")
    for name, codec in [
        ("SZ3", SZ3()),
        ("QoZ (PSNR mode)", QoZ(metric="psnr")),
        ("QoZ (AC mode)", QoZ(metric="ac")),
    ]:
        blob = codec.compress(data, rel_error_bound=eps)
        recon = codec.decompress(blob)
        prof = autocorrelation_profile(data, recon, max_lag=4)
        lags = " ".join(f"{v:+.3f}" for v in prof)
        print(f"{name:18} CR={compression_ratio(data, blob):6.1f} "
              f"rate={bit_rate(data, blob):6.3f} b/pt  AC(1..4)= {lags}")

    print("\nlower |AC| = errors closer to white noise (paper Fig. 10)")


if __name__ == "__main__":
    main()
