"""Parallel multi-field compression + dump/load modeling (paper Fig. 14).

Scientific dumps hold many fields; this example compresses a batch of
Hurricane-like fields across worker processes, then feeds the measured
compression ratio and throughput into the Bebop-like parallel-I/O model
to show where the high-ratio codec starts winning the end-to-end dump.

Run: python examples/parallel_io.py
"""

import time

import numpy as np

from repro.datasets import get_dataset
from repro.metrics import compression_ratio
from repro.parallel import (
    IOSystemModel,
    compress_fields_parallel,
    dump_load_series,
)


def main() -> None:
    fields = [
        get_dataset("hurricane", shape=(24, 64, 64), seed=s) for s in range(4)
    ]
    total_mb = sum(f.nbytes for f in fields) / 1e6

    stats = {}
    for codec_name, kwargs in [("zfp", {}), ("sz3", {}),
                               ("qoz", {"metric": "cr"})]:
        t0 = time.perf_counter()
        blobs = compress_fields_parallel(
            fields, codec_name, codec_kwargs=kwargs,
            rel_error_bound=1e-3, processes=2,
        )
        dt = time.perf_counter() - t0
        cr = float(
            np.mean([compression_ratio(f, b) for f, b in zip(fields, blobs)])
        )
        # pair our measured CR with the paper's native per-core speeds
        # (Table IV); pure-Python compute would otherwise hide the I/O term
        native = {"zfp": (137.0, 321.0), "sz3": (127.0, 279.0),
                  "qoz": (119.0, 278.0)}[codec_name]
        stats[codec_name] = {
            "cr": cr,
            "compress_mbps": native[0],
            "decompress_mbps": native[1],
        }
        print(f"{codec_name:5} CR={cr:6.1f}  parallel compress "
              f"{total_mb / dt:6.1f} MB/s here (2 workers), "
              f"{native[0]:.0f} MB/s native")

    print("\nmodeled dump time on a Bebop-like system (1.3 GB/core):")
    rows = dump_load_series(IOSystemModel(), [1024, 8192], stats)
    print(f"{'codec':6} {'cores':>6} {'dump_s':>8} {'load_s':>8}")
    for r in rows:
        print(f"{r['codec']:6} {r['cores']:6d} {r['dump_s']:8.1f} "
              f"{r['load_s']:8.1f}")
    print("\nat 8K cores the PFS saturates and the best-CR codec wins "
          "(paper Fig. 14)")


if __name__ == "__main__":
    main()
