"""Rate-distortion sweeps — the engine behind every figure benchmark."""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Iterable, List

import numpy as np

from repro.compressors.base import Compressor
from repro.metrics import (
    bit_rate,
    compression_ratio,
    error_autocorrelation,
    max_abs_error,
    psnr,
    ssim,
)


@dataclass
class RatePoint:
    """One (error bound -> compression result) measurement."""

    codec: str
    rel_eb: float
    abs_eb: float
    bit_rate: float
    compression_ratio: float
    psnr: float
    ssim: float
    autocorr: float
    max_error: float
    compress_mbps: float
    decompress_mbps: float

    def as_dict(self) -> dict:
        """Plain-dict view (for CSV/JSON emission by callers)."""
        return asdict(self)


def evaluate_once(
    codec: Compressor,
    data: np.ndarray,
    rel_eb: float,
    compute_ssim: bool = True,
) -> RatePoint:
    """Compress/decompress once and collect every evaluation metric."""
    t0 = time.perf_counter()
    blob = codec.compress(data, rel_error_bound=rel_eb)
    t1 = time.perf_counter()
    recon = codec.decompress(blob)
    t2 = time.perf_counter()
    vrange = float(data.max() - data.min())
    return RatePoint(
        codec=codec.name,
        rel_eb=rel_eb,
        abs_eb=rel_eb * vrange,
        bit_rate=bit_rate(data, blob),
        compression_ratio=compression_ratio(data, blob),
        psnr=psnr(data, recon),
        ssim=ssim(data, recon) if compute_ssim else float("nan"),
        autocorr=error_autocorrelation(data, recon),
        max_error=max_abs_error(data, recon),
        compress_mbps=data.nbytes / 1e6 / max(t1 - t0, 1e-9),
        decompress_mbps=data.nbytes / 1e6 / max(t2 - t1, 1e-9),
    )


def rate_distortion_curve(
    codec: Compressor,
    data: np.ndarray,
    rel_ebs: Iterable[float],
    compute_ssim: bool = True,
) -> List[RatePoint]:
    """Sweep relative error bounds (one curve of Figs. 8-10)."""
    return [
        evaluate_once(codec, data, float(e), compute_ssim=compute_ssim)
        for e in rel_ebs
    ]
