"""Plain-text table formatting for benchmark output (paper-style rows)."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Fixed-width ASCII table (benchmarks print these next to the paper's
    numbers so EXPERIMENTS.md can record paper-vs-measured directly)."""
    cells: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
