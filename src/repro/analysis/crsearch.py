"""Find the error bound that hits a target compression ratio.

Fig. 11 compares codecs at the *same* compression ratio (65 on
SCALE-LETKF); CR is monotone in the bound, so a bisection on log10(eb)
converges in a few compressions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.compressors.base import Compressor
from repro.metrics import compression_ratio


def find_error_bound_for_cr(
    codec: Compressor,
    data: np.ndarray,
    target_cr: float,
    rel_tol: float = 0.05,
    lo: float = 1e-6,
    hi: float = 1e-1,
    max_iter: int = 18,
) -> Tuple[float, float, bytes]:
    """Bisection for the relative bound achieving ``target_cr``.

    Returns ``(rel_eb, achieved_cr, blob)`` for the closest bound found.
    """
    llo, lhi = np.log10(lo), np.log10(hi)
    best = None
    for _ in range(max_iter):
        mid = 0.5 * (llo + lhi)
        rel_eb = float(10.0**mid)
        blob = codec.compress(data, rel_error_bound=rel_eb)
        cr = compression_ratio(data, blob)
        if best is None or abs(np.log(cr / target_cr)) < abs(
            np.log(best[1] / target_cr)
        ):
            best = (rel_eb, cr, blob)
        if abs(cr - target_cr) <= rel_tol * target_cr:
            return rel_eb, cr, blob
        if cr < target_cr:
            llo = mid  # need a looser bound
        else:
            lhi = mid
    return best
