"""Experiment harness: rate-distortion sweeps, CR-targeted search, reports."""

from repro.analysis.experiment import RatePoint, rate_distortion_curve, evaluate_once
from repro.analysis.crsearch import find_error_bound_for_cr
from repro.analysis.report import format_table
from repro.analysis.visualize import write_pgm

__all__ = [
    "RatePoint",
    "rate_distortion_curve",
    "evaluate_once",
    "find_error_bound_for_cr",
    "format_table",
    "write_pgm",
]
