"""Dependency-free field visualization (PGM images, Fig. 11 support)."""

from __future__ import annotations

import numpy as np


def write_pgm(field: np.ndarray, path: str) -> None:
    """Save a 2-D field (or a slice of one) as an 8-bit binary PGM image.

    PGM needs no plotting stack, so the visual-quality benchmark can emit
    comparable snapshots on any machine.
    """
    a = np.asarray(field, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"write_pgm expects a 2-D array, got {a.ndim}-D")
    lo, hi = float(a.min()), float(a.max())
    scale = 255.0 / (hi - lo) if hi > lo else 0.0
    img = ((a - lo) * scale).astype(np.uint8)
    header = f"P5\n{a.shape[1]} {a.shape[0]}\n255\n".encode()
    with open(path, "wb") as f:
        f.write(header + img.tobytes())
