"""Long-lived async compression service (serve, don't re-tune).

The library and CLI paths pay QoZ's derivation cost — sampling,
interpolator selection, (alpha, beta) tuning — on every call.  A service
holding state across requests can amortize it: this package wraps the
existing chunked subsystem and process-pool executor in an asyncio front
end with a bounded scheduler, per-codec batching, backpressure, and an
LRU of :class:`~repro.core.plan_cache.FrozenPlan` objects keyed by
(codec config, bound request, field signature), so warm traffic on a
field family executes plans instead of deriving them.  See DESIGN.md §9.

Admission is *cost-aware* (DESIGN.md §10): every request's work is
predicted in units from its metadata (elements x per-codec work class,
with a surcharge for cold plan derivation), and the service admits by
predicted units — not request count — with ``interactive`` / ``batch``
priority lanes and per-client token-bucket quotas.  A versioned STATS
snapshot (``repro serve-stats``) exposes queue depth in units,
admit/reject/retry counts by class, plan-cache hit rate, per-codec
throughput EWMAs, and batch fill.

Quickstart::

    # server
    #   $ repro serve --port 9753 --processes 4
    # client
    from repro.service import RemoteClient

    with RemoteClient(port=9753) as svc:
        blob = svc.compress(field, codec="qoz", rel_error_bound=1e-3)
        sub = svc.read(blob, (slice(0, 16), slice(None), slice(8, 24)))

    # or fully in-process (tests, embedding):
    from repro.service import ServiceClient

    with ServiceClient() as svc:
        blob = svc.compress(field, codec="qoz", rel_error_bound=1e-3)

Served bytes are identical to :func:`repro.chunked.compress_chunked`
output — the scheduler runs the same derivation, the same chunk
execution, and the same container writer, just asynchronously and with
the derivation half cached.

``repro serve --shards N`` (DESIGN.md §14) multiplies the whole stack
across N processes behind one address: each shard owns a full
:class:`ShardRuntime` (scheduler + admission + pool + plan cache), the
kernel or a consistent-hash front router distributes connections, and
derived plans replicate shard-to-shard over a pipe bus so a plan paid
for once is warm everywhere.  Served bytes stay identical regardless of
which shard answers.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionLimits,
    AdmissionSnapshot,
    AdmitDecision,
    CostModel,
    ServiceMetrics,
    WorkEstimate,
    aggregate_snapshots,
    decide,
    format_stats_line,
)
from repro.service.client import RemoteClient, ServiceClient
from repro.service.scheduler import CompressionService, ServiceConfig
from repro.service.server import ServiceServer, ShardRuntime, run_server
from repro.service.sharding import (
    reuseport_available,
    run_sharded,
    shard_for_key,
)

__all__ = [
    "AdmissionController",
    "AdmissionLimits",
    "AdmissionSnapshot",
    "AdmitDecision",
    "CompressionService",
    "CostModel",
    "RemoteClient",
    "ServiceClient",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceServer",
    "ShardRuntime",
    "WorkEstimate",
    "aggregate_snapshots",
    "decide",
    "format_stats_line",
    "reuseport_available",
    "run_server",
    "run_sharded",
    "shard_for_key",
]
