"""Multi-process serve runtime: ``repro serve --shards N`` (DESIGN.md §14).

Topology: a thin parent **supervisor** and N child **shard** processes,
each running one complete :class:`~repro.service.server.ShardRuntime`
(its own event loop, scheduler, admission controller, metrics, plan
cache, worker pool).  Shards share *nothing* mutable — the only
inter-process channel is the plan replication bus
(:mod:`repro.service.planbus`), a pipe star centered on the supervisor.

Two accept-distribution modes (``--router``):

* ``reuseport`` (the default where available, i.e. Linux): every shard
  binds the *same* public (host, port) with ``SO_REUSEPORT`` and the
  kernel distributes incoming connections across the listeners.  Zero
  userspace forwarding cost; placement is the kernel's 4-tuple hash, so
  plan warmth comes from the replication bus rather than routing.
* ``hash``: shards bind private loopback ports (announced over the bus)
  and the supervisor runs a :class:`FrontRouter` on the public port.
  The router peeks at each connection's first frame, extracts its
  routing key (:func:`repro.service.protocol.routing_key` — explicit
  ``shard_key`` meta, else the compress ``family=`` tag), and splices
  the connection to ``shard_for_key(key) = blake2b(key) mod N`` — so
  repeat family traffic lands on the shard whose
  :class:`~repro.core.plan_cache.PlanLRU` derived the plan, without
  waiting for replication.  Keyless requests round-robin.

The supervisor is deliberately boring: a single-threaded asyncio loop
that (1) respawns crashed shards (fresh bus pipe, bounded budget, the
peers re-warm the newcomer's cache organically as they publish), (2)
serves the **admin endpoint** — the same binary protocol, STATS/PING
only — whose STATS response is the all-shards aggregate
(:func:`repro.service.admission.aggregate_snapshots`) with per-shard
``shardN_``-prefixed rows, and (3) in hash mode, runs the front router.
Because it never compresses anything, forking a new shard from it is
always safe.

A dead shard is therefore invisible to clients in reuseport mode beyond
its in-flight connections (the kernel stops offering the dead listener;
:class:`~repro.service.client.RemoteClient` with ``reconnects > 0``
transparently lands on a live shard), and a brief connect-refused window
in hash mode (the router falls over to the next live shard until the
respawn re-announces).
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import os
import signal
import socket
import struct
import sys
from hashlib import blake2b
from typing import Dict, List, Optional, Tuple

from multiprocessing.connection import Connection

from repro.errors import ConfigurationError, ProtocolError
from repro.service import protocol
from repro.service.admission import aggregate_snapshots
from repro.service.planbus import BusHub, PlanBusEndpoint
from repro.service.scheduler import ServiceConfig
from repro.service.server import ShardRuntime

ROUTER_MODES = ("auto", "reuseport", "hash")

#: a crashed shard is restarted after this many seconds, at most
#: MAX_RESPAWNS times — enough to ride out transient failures without
#: hot-looping on a persistent one
RESPAWN_DELAY = 0.5
MAX_RESPAWNS = 10

_SPLICE_CHUNK = 1 << 16


def shard_for_key(key: str, n_shards: int) -> int:
    """Stable consistent placement of a routing key onto a shard.

    blake2b (not ``hash()``) so the mapping is identical across
    processes and Python invocations — clients, tests, and the router
    must all agree where a key lives.
    """
    if n_shards < 1:
        raise ConfigurationError("n_shards must be >= 1")
    digest = blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int(struct.unpack("<Q", digest)[0] % n_shards)


def reuseport_available() -> bool:
    """True when the platform supports SO_REUSEPORT accept sharding."""
    return hasattr(socket, "SO_REUSEPORT")


def resolve_router(mode: str) -> str:
    if mode not in ROUTER_MODES:
        raise ConfigurationError(
            f"unknown router mode {mode!r} (expected one of {ROUTER_MODES})"
        )
    if mode == "auto":
        return "reuseport" if reuseport_available() else "hash"
    if mode == "reuseport" and not reuseport_available():
        raise ConfigurationError(
            "SO_REUSEPORT is not available on this platform; "
            "use --router hash"
        )
    return mode


# --------------------------------------------------------------------------
# shard child process
# --------------------------------------------------------------------------

def _shard_main(
    config: ServiceConfig,
    host: str,
    port: int,
    reuse_port: bool,
    conn: Connection,
    shard_id: int,
) -> None:
    """Entry point of one shard process: serve until told to stop.

    The shard builds its entire runtime *after* the fork — plan cache,
    metrics, admission, pool all start empty and private (RL011); the
    inherited ``conn`` is its only link to the rest of the deployment.
    """
    endpoint = PlanBusEndpoint(conn, shard_id)

    async def _main() -> None:
        runtime = ShardRuntime(
            config, host, port, reuse_port=reuse_port, bus=endpoint
        )
        await runtime.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        loop.add_signal_handler(signal.SIGTERM, stop.set)
        loop.add_signal_handler(signal.SIGINT, stop.set)
        serve = asyncio.ensure_future(runtime.serve_forever())
        waiter = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait(
                {serve, waiter}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            serve.cancel()
            waiter.cancel()
            await runtime.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


# --------------------------------------------------------------------------
# fallback front router (hash mode)
# --------------------------------------------------------------------------

class FrontRouter:
    """Consistent-hash connection router for platforms without SO_REUSEPORT.

    Routes per *connection*: the first frame's routing key pins every
    subsequent frame on that connection to the same shard (so a client's
    ``stats()`` after a compress reports the shard that served it).
    After routing the first frame the router degrades to a dumb
    bidirectional byte splice — it never decodes payloads.
    """

    def __init__(
        self, hub: BusHub, host: str, port: int, n_shards: int
    ) -> None:
        self.hub = hub
        self.host = host
        self.port = port
        self.n_shards = n_shards
        self._server: Optional[asyncio.AbstractServer] = None
        self._rr = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _pick_shard(self, key: Optional[str]) -> List[int]:
        """Preferred shard first, then live fallbacks (failover order)."""
        live = [s for s in self.hub.live_shards() if self.hub.ports.get(s)]
        if not live:
            return []
        if key is not None:
            # hash over the CONFIGURED count, not the live set: the
            # key -> shard mapping must not reshuffle when a shard is
            # briefly down (failover below covers the gap)
            first = shard_for_key(key, self.n_shards)
        else:
            first = live[self._rr % len(live)]
            self._rr += 1
        ordered = [first] + [s for s in live if s != first]
        return [s for s in ordered if self.hub.ports.get(s)]

    async def _connect(
        self, candidates: List[int]
    ) -> Optional[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]:
        for shard_id in candidates:
            port = self.hub.ports.get(shard_id)
            if not port:
                continue
            try:
                return await asyncio.open_connection("127.0.0.1", port)
            except OSError:
                continue
        return None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                body = await protocol.read_frame(reader)
            except ProtocolError:
                body = None
            if body is None:
                return
            backend = await self._connect(
                self._pick_shard(protocol.routing_key(body))
            )
            if backend is None:
                writer.write(
                    protocol.frame(
                        protocol.encode_error("no shards available")
                    )
                )
                await writer.drain()
                return
            up_reader, up_writer = backend
            try:
                up_writer.write(protocol.frame(body))
                await up_writer.drain()
                await asyncio.gather(
                    _splice(reader, up_writer),
                    _splice(up_reader, writer),
                )
            finally:
                up_writer.close()
                try:
                    await up_writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


async def _splice(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """One direction of a byte splice; EOF propagates, errors end it."""
    try:
        while True:
            chunk = await reader.read(_SPLICE_CHUNK)
            if not chunk:
                break
            writer.write(chunk)
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError, OSError):
        return
    try:
        writer.write_eof()
    except (OSError, RuntimeError):
        pass


# --------------------------------------------------------------------------
# admin endpoint (aggregated stats)
# --------------------------------------------------------------------------

class _AdminServer:
    """STATS/PING-only protocol endpoint on the supervisor.

    A STATS frame answers with the all-shards aggregate plus
    ``shardN_``-prefixed per-shard rows and supervisor-level keys
    (``shards``, ``shards_reporting``, ``shard_respawns``) — the data
    behind ``repro serve-stats --all-shards``.
    """

    def __init__(self, supervisor: "_Supervisor", host: str, port: int) -> None:
        self.supervisor = supervisor
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    body = await protocol.read_frame(reader)
                except ProtocolError as exc:
                    writer.write(
                        protocol.frame(protocol.encode_error(str(exc)))
                    )
                    await writer.drain()
                    break
                if body is None:
                    break
                writer.write(protocol.frame(await self._respond(body)))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, body: bytes) -> bytes:
        try:
            request = protocol.decode_request(body)
        except (ProtocolError, ValueError, TypeError) as exc:
            return protocol.encode_error(str(exc))
        if isinstance(request, protocol.PingRequest):
            return protocol.encode_ok_empty()
        if isinstance(request, protocol.StatsRequest):
            return protocol.encode_ok_kv(
                await self.supervisor.aggregated_stats()
            )
        return protocol.encode_error(
            "admin endpoint serves STATS and PING only; send work "
            "requests to the public port"
        )


# --------------------------------------------------------------------------
# supervisor
# --------------------------------------------------------------------------

class _Supervisor:
    """Parent-process state: shard processes, bus hub, respawn logic."""

    def __init__(
        self,
        config: ServiceConfig,
        host: str,
        public_port: int,
        shards: int,
        router: str,
    ) -> None:
        self.config = config
        self.host = host
        self.public_port = public_port
        self.shards = shards
        self.router = router
        self.hub = BusHub()
        self.procs: Dict[int, multiprocessing.process.BaseProcess] = {}
        self.respawns: Dict[int, int] = {i: 0 for i in range(shards)}
        self.closing = False
        self._mp = multiprocessing.get_context()
        self._reserve_sock: Optional[socket.socket] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------ spawning
    def reserve_public_port(self) -> None:
        """Resolve ``--port 0`` under reuseport *before* spawning.

        Every shard must bind the same number, so the supervisor binds a
        SO_REUSEPORT socket first and keeps it open — bound but never
        listening, so the kernel hands connections only to the shards'
        listening sockets — and the shards join its reuseport group.
        """
        if self.router != "reuseport" or self.public_port != 0:
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.host, 0))
        self._reserve_sock = sock
        self.public_port = sock.getsockname()[1]

    def _shard_config(self, shard_id: int) -> ServiceConfig:
        return dataclasses.replace(
            self.config, shard_id=shard_id, n_shards=self.shards
        )

    def spawn_shard(self, shard_id: int) -> None:
        conn = self.hub.add_shard(shard_id)
        if self.router == "reuseport":
            bind_host, bind_port, reuse = self.host, self.public_port, True
        else:
            bind_host, bind_port, reuse = "127.0.0.1", 0, False
        proc = self._mp.Process(
            target=_shard_main,
            args=(
                self._shard_config(shard_id),
                bind_host,
                bind_port,
                reuse,
                conn,
                shard_id,
            ),
            name=f"repro-shard-{shard_id}",
        )
        proc.start()
        conn.close()  # the child owns this end now
        self.procs[shard_id] = proc
        if self._loop is not None and proc.sentinel is not None:
            self._loop.add_reader(
                proc.sentinel, self._on_shard_exit, shard_id, proc
            )

    def watch_shards(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        for shard_id, proc in self.procs.items():
            loop.add_reader(
                proc.sentinel, self._on_shard_exit, shard_id, proc
            )

    def _on_shard_exit(
        self, shard_id: int, proc: multiprocessing.process.BaseProcess
    ) -> None:
        if self._loop is not None:
            self._loop.remove_reader(proc.sentinel)
        proc.join()
        if self.closing:
            return
        self.respawns[shard_id] += 1
        if self.respawns[shard_id] > MAX_RESPAWNS:
            print(
                f"repro shard {shard_id} exceeded {MAX_RESPAWNS} respawns; "
                "leaving it down",
                file=sys.stderr,
                flush=True,
            )
            return
        print(
            f"repro shard {shard_id} exited (code {proc.exitcode}); "
            f"respawning in {RESPAWN_DELAY}s",
            file=sys.stderr,
            flush=True,
        )
        assert self._loop is not None
        self._loop.call_later(RESPAWN_DELAY, self._respawn, shard_id)

    def _respawn(self, shard_id: int) -> None:
        if not self.closing:
            self.spawn_shard(shard_id)

    # ------------------------------------------------------------ shutdown
    def shutdown(self) -> None:
        self.closing = True
        for proc in self.procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs.values():
            proc.join(timeout=10)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5)
        self.hub.close()
        if self._reserve_sock is not None:
            self._reserve_sock.close()
            self._reserve_sock = None

    # --------------------------------------------------------------- stats
    async def aggregated_stats(self) -> Dict[str, object]:
        snaps = await self.hub.collect_stats()
        out = aggregate_snapshots(snaps, per_shard=True)
        out["shards"] = self.shards
        out["shard_respawns"] = sum(self.respawns.values())
        out["router_hash"] = int(self.router == "hash")
        return dict(out)


def run_sharded(
    host: str = "127.0.0.1",
    port: int = 9753,
    config: Optional[ServiceConfig] = None,
    shards: int = 2,
    router: str = "auto",
    admin_port: Optional[int] = None,
) -> int:
    """Blocking entry point for ``repro serve --shards N`` (N >= 2).

    Prints, in order, once everything is up::

        repro shard I/N pid=PID listening on HOST:PORT   (per shard)
        repro admin listening on HOST:APORT
        repro service listening on HOST:PORT

    The last line matches the single-shard format exactly, so anything
    that parses ``repro serve`` output keeps working.  The admin port
    defaults to public port + 1 (0 picks a free one).
    """
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    router = resolve_router(router)
    sup = _Supervisor(
        config or ServiceConfig(), host, port, shards, router
    )
    sup.reserve_public_port()
    for shard_id in range(shards):
        sup.spawn_shard(shard_id)

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        loop.add_signal_handler(signal.SIGTERM, stop.set)
        loop.add_signal_handler(signal.SIGINT, stop.set)
        sup.hub.attach(loop)
        sup.watch_shards(loop)
        await sup.hub.wait_ready()
        front: Optional[FrontRouter] = None
        if router == "hash":
            front = FrontRouter(sup.hub, host, sup.public_port, shards)
            await front.start()
            public_port = front.port
        else:
            public_port = sup.public_port
        resolved_admin = (
            admin_port if admin_port is not None else public_port + 1
        )
        admin = _AdminServer(sup, host, resolved_admin)
        await admin.start()
        for shard_id in sorted(sup.hub.ports):
            if router == "reuseport":
                shard_host, shard_port = host, public_port
            else:
                shard_host, shard_port = "127.0.0.1", sup.hub.ports[shard_id]
            print(
                f"repro shard {shard_id}/{shards} "
                f"pid={sup.hub.pids[shard_id]} listening on "
                f"{shard_host}:{shard_port}",
                flush=True,
            )
        print(
            f"repro admin listening on {host}:{admin.port}", flush=True
        )
        print(
            f"repro service listening on {host}:{public_port}", flush=True
        )
        try:
            await stop.wait()
        finally:
            await admin.close()
            if front is not None:
                await front.close()
            sup.hub.detach()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        sup.shutdown()
    return 0


__all__ = [
    "ROUTER_MODES",
    "shard_for_key",
    "reuseport_available",
    "resolve_router",
    "FrontRouter",
    "run_sharded",
]
