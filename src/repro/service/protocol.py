"""Wire protocol of the compression service (length-prefixed binary).

Every message — request or response — is one *frame*::

    u32 little-endian body length | body

The body starts with ``u8 protocol version`` + ``u8 opcode/status`` and
continues with opcode-specific fields built from four primitives: scalars
(``struct`` little-endian), short strings (u16 length + UTF-8), payloads
(u64 length + raw bytes), and typed key/value maps (for codec kwargs and
stats).  Arrays travel as (dtype string, shape, C-order raw bytes).  The
format is deliberately stdlib-only — no msgpack/pickle — and versioned,
so a client/server mismatch fails with a clean :class:`ProtocolError`
instead of a silent misparse.

Requests decode into the small dataclasses at the bottom; those same
dataclasses are the in-process API (``ServiceClient`` hands them straight
to the scheduler without serializing), which keeps the socket path and
the test path running identical handler code.

Frame bodies are capped (:data:`MAX_FRAME`) so a forged length prefix
cannot size an allocation beyond the declared limit — the same
decode-side discipline the codec streams adopted in PR 2.

Protocol v2 (this version) extends v1 with admission metadata and richer
backpressure/observability frames:

* every request body carries a *meta kv* immediately after the
  version/opcode bytes — ``priority`` (``interactive``/``batch``),
  ``client_id`` (per-client quota key), ``attempt`` (0 on the first
  send; a retrying client increments it so the server can count retried
  admissions), and ``shard_key`` (an explicit routing-affinity tag for
  the sharded runtime's hash router; unknown meta keys are ignored, so
  the vocabulary extends without a version bump).  Only non-default
  entries are written, so the common case costs two bytes;
* RETRY responses carry a ``reason`` string after the ``retry_after``
  hint (``queue-full`` / ``capacity`` / ``class-capacity`` /
  ``client-quota``), so clients and dashboards can tell *why* they were
  shed;
* STATS responses are a flat typed kv whose layout is versioned by its
  own ``stats_version`` key (see :mod:`repro.service.admission`) —
  independent of the protocol version, so stats keys can evolve without
  a wire break.
"""

from __future__ import annotations

import asyncio
import math
import socket
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import (
    CompressionError,
    ProtocolError,
    ServiceConnectionError,
)
from repro.utils import BoundLike, normalize_bound

PROTOCOL_VERSION = 2

#: admission priority classes, in scheduling order (first = served first)
PRIORITIES = ("interactive", "batch")

#: hard ceiling on one frame's body (1 GiB) — service requests carry at
#: most one field plus small metadata; bigger fields belong in the
#: out-of-core CLI path, not a socket round-trip
MAX_FRAME = 1 << 30

# request opcodes
OP_PING = 1
OP_COMPRESS = 2
OP_DECOMPRESS = 3
OP_READ_SLAB = 4
OP_STATS = 5

# response statuses
ST_OK = 0
ST_ERROR = 1
ST_RETRY = 2

# slab dimension flags
_SLAB_HAS_START = 1
_SLAB_HAS_STOP = 2

_KV_TAGS = {int: b"i", float: b"f", bool: b"b", str: b"s"}


# --------------------------------------------------------------------------
# primitives
# --------------------------------------------------------------------------

class _Writer:
    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def u8(self, v: int) -> None:
        self._parts.append(struct.pack("<B", v))

    def u16(self, v: int) -> None:
        self._parts.append(struct.pack("<H", v))

    def u32(self, v: int) -> None:
        self._parts.append(struct.pack("<I", v))

    def u64(self, v: int) -> None:
        self._parts.append(struct.pack("<Q", v))

    def i64(self, v: int) -> None:
        self._parts.append(struct.pack("<q", v))

    def f64(self, v: float) -> None:
        self._parts.append(struct.pack("<d", v))

    def string(self, s: str) -> None:
        raw = s.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise ProtocolError(f"string field too long ({len(raw)} bytes)")
        self.u16(len(raw))
        self._parts.append(raw)

    def blob(self, b: bytes) -> None:
        self.u64(len(b))
        self._parts.append(bytes(b))

    def kv(self, mapping: Optional[Dict]) -> None:
        """Typed key/value map (int/float/bool/str values only)."""
        items = sorted((mapping or {}).items())
        self.u16(len(items))
        for key, value in items:
            tag = _KV_TAGS.get(type(value))
            if tag is None:
                raise ProtocolError(
                    f"kwarg {key!r} has unsupported type {type(value).__name__}"
                    " (int/float/bool/str only)"
                )
            self.string(str(key))
            self._parts.append(tag)
            if tag == b"i":
                self.i64(value)
            elif tag == b"f":
                self.f64(value)
            elif tag == b"b":
                self.u8(1 if value else 0)
            else:
                self.string(value)

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    def __init__(self, buf: bytes) -> None:
        self._buf = buf
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._buf):
            raise ProtocolError("frame truncated mid-field")
        out = self._buf[self._pos:self._pos + n]
        self._pos += n
        return out

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self._take(8))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self._take(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    def string(self) -> str:
        n = self.u16()
        return self._take(n).decode("utf-8")

    def blob(self) -> bytes:
        n = self.u64()
        if n > MAX_FRAME:
            raise ProtocolError(f"blob length {n} exceeds frame cap")
        return self._take(n)

    def kv(self) -> Dict:
        out: Dict = {}
        for _ in range(self.u16()):
            key = self.string()
            tag = self._take(1)
            if tag == b"i":
                out[key] = self.i64()
            elif tag == b"f":
                out[key] = self.f64()
            elif tag == b"b":
                out[key] = bool(self.u8())
            elif tag == b"s":
                out[key] = self.string()
            else:
                raise ProtocolError(f"unknown kv tag {tag!r}")
        return out

    def done(self) -> None:
        if self._pos != len(self._buf):
            raise ProtocolError(
                f"{len(self._buf) - self._pos} trailing bytes after message"
            )


def _pack_array(w: _Writer, array: np.ndarray) -> None:
    array = np.ascontiguousarray(array)
    w.string(array.dtype.str)
    w.u8(array.ndim)
    for dim in array.shape:
        w.u64(dim)
    w.blob(array.tobytes())


def _unpack_array(r: _Reader) -> np.ndarray:
    dtype = np.dtype(r.string())
    ndim = r.u8()
    shape = tuple(r.u64() for _ in range(ndim))
    raw = r.blob()
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    if len(raw) != expected:
        raise ProtocolError(
            f"array payload is {len(raw)} bytes but dtype/shape imply {expected}"
        )
    # bytearray -> writable array without a second copy on the numpy side
    return np.frombuffer(bytearray(raw), dtype=dtype).reshape(shape)


def _pack_slab(w: _Writer, slab: Sequence[object]) -> None:
    w.u8(len(slab))
    for dim in slab:
        if dim is None:
            dim = slice(None)
        elif isinstance(dim, tuple):
            dim = slice(dim[0], dim[1])
        elif not isinstance(dim, slice):
            raise ProtocolError(f"bad slab dimension {dim!r}")
        if dim.step not in (None, 1):
            raise ProtocolError("strided slabs are not supported")
        flags = 0
        if dim.start is not None:
            flags |= _SLAB_HAS_START
        if dim.stop is not None:
            flags |= _SLAB_HAS_STOP
        w.u8(flags)
        w.i64(dim.start if dim.start is not None else 0)
        w.i64(dim.stop if dim.stop is not None else 0)


def _unpack_slab(r: _Reader) -> Tuple[slice, ...]:
    out = []
    for _ in range(r.u8()):
        flags = r.u8()
        start = r.i64()
        stop = r.i64()
        out.append(
            slice(
                start if flags & _SLAB_HAS_START else None,
                stop if flags & _SLAB_HAS_STOP else None,
            )
        )
    return tuple(out)


# --------------------------------------------------------------------------
# request dataclasses (also the in-process API surface)
# --------------------------------------------------------------------------

@dataclass
class PingRequest:
    pass


@dataclass
class CompressRequest:
    """Compress one field into a chunked container.

    ``family`` opts the request into cross-field plan sharing (see
    :func:`repro.core.plan_cache.field_signature`); empty/None keeps the
    byte-identical content-keyed default.  ``priority`` / ``client_id``
    / ``attempt`` are the admission metadata every schedulable request
    carries (see the module docstring).

    The error bound may be the unified ``bound``
    (:class:`~repro.utils.ErrorBound` or any spelling it parses) or
    exactly one of the legacy kwarg pair; all three spellings normalize
    to the same ``(mode u8, value f64)`` wire fields, so the frame
    bytes never depend on which one the caller used.
    """

    data: np.ndarray
    codec: str = "qoz"
    codec_kwargs: Dict = field(default_factory=dict)
    error_bound: Optional[float] = None
    rel_error_bound: Optional[float] = None
    chunks: Union[int, Tuple[int, ...], None] = None
    family: Optional[str] = None
    per_chunk_tuning: bool = False
    priority: str = "interactive"
    client_id: Optional[str] = None
    attempt: int = 0
    deadline_ms: Optional[float] = None
    bound: Optional[BoundLike] = None
    shard_key: Optional[str] = None


@dataclass
class DecompressRequest:
    blob: bytes
    priority: str = "interactive"
    client_id: Optional[str] = None
    attempt: int = 0
    deadline_ms: Optional[float] = None
    shard_key: Optional[str] = None


@dataclass
class ReadSlabRequest:
    """Hyperslab read from a container: inline bytes or a server-side path."""

    source: Union[bytes, str]
    slab: Tuple[slice, ...]
    priority: str = "interactive"
    client_id: Optional[str] = None
    attempt: int = 0
    deadline_ms: Optional[float] = None
    shard_key: Optional[str] = None


@dataclass
class StatsRequest:
    pass


Request = Union[
    PingRequest, CompressRequest, DecompressRequest, ReadSlabRequest, StatsRequest
]


# --------------------------------------------------------------------------
# request encode/decode
# --------------------------------------------------------------------------

def validate_priority(priority: str) -> str:
    if priority not in PRIORITIES:
        raise ProtocolError(
            f"unknown priority {priority!r} (expected one of {PRIORITIES})"
        )
    return priority


def validate_deadline_ms(deadline_ms) -> float:
    """A deadline is a finite, positive budget in milliseconds."""
    try:
        value = float(deadline_ms)
    except (TypeError, ValueError):
        raise ProtocolError(f"bad deadline_ms {deadline_ms!r}") from None
    if not math.isfinite(value) or value <= 0:
        raise ProtocolError(f"bad deadline_ms {deadline_ms!r}")
    return value


def _request_writer(op: int, req: Request) -> _Writer:
    """Version + opcode + the v2 meta kv (non-default entries only)."""
    w = _Writer()
    w.u8(PROTOCOL_VERSION)
    w.u8(op)
    meta: Dict = {}
    priority = getattr(req, "priority", "interactive")
    if priority != "interactive":
        meta["priority"] = validate_priority(priority)
    client_id = getattr(req, "client_id", None)
    if client_id:
        meta["client_id"] = str(client_id)
    attempt = int(getattr(req, "attempt", 0))
    if attempt:
        meta["attempt"] = attempt
    deadline_ms = getattr(req, "deadline_ms", None)
    if deadline_ms is not None:
        meta["deadline_ms"] = validate_deadline_ms(deadline_ms)
    shard_key = getattr(req, "shard_key", None)
    if shard_key:
        meta["shard_key"] = str(shard_key)
    w.kv(meta)
    return w


def _apply_meta(req: Request, meta: Dict) -> Request:
    if hasattr(req, "priority"):
        req.priority = validate_priority(str(meta.get("priority", "interactive")))
        req.client_id = str(meta["client_id"]) if meta.get("client_id") else None
        attempt = meta.get("attempt", 0)
        if not isinstance(attempt, int) or attempt < 0:
            raise ProtocolError(f"bad attempt counter {attempt!r}")
        req.attempt = attempt
        deadline_ms = meta.get("deadline_ms")
        if deadline_ms is not None:
            deadline_ms = validate_deadline_ms(deadline_ms)
        req.deadline_ms = deadline_ms
        shard_key = meta.get("shard_key")
        req.shard_key = str(shard_key) if shard_key else None
    return req


def encode_request(req: Request) -> bytes:
    if isinstance(req, PingRequest):
        return _request_writer(OP_PING, req).getvalue()
    if isinstance(req, CompressRequest):
        w = _request_writer(OP_COMPRESS, req)
        w.string(req.codec)
        w.kv(req.codec_kwargs)
        try:
            spec = normalize_bound(
                req.bound, req.error_bound, req.rel_error_bound
            )
        except CompressionError as exc:
            raise ProtocolError(str(exc)) from None
        w.u8(1 if spec.is_relative else 0)
        w.f64(spec.value)
        # scalar (broadcast to every axis) and per-axis tuple are distinct
        # specs — a (4,) tuple must round-trip as a rank-1 requirement,
        # not silently become a broadcast 4
        if req.chunks is None:
            w.u8(0)
        elif isinstance(req.chunks, int):
            w.u8(1)
            w.u32(req.chunks)
        else:
            w.u8(2)
            w.u8(len(req.chunks))
            for c in req.chunks:
                w.u32(c)
        w.string(req.family or "")
        w.u8(1 if req.per_chunk_tuning else 0)
        _pack_array(w, req.data)
        return w.getvalue()
    if isinstance(req, DecompressRequest):
        w = _request_writer(OP_DECOMPRESS, req)
        w.blob(req.blob)
        return w.getvalue()
    if isinstance(req, ReadSlabRequest):
        w = _request_writer(OP_READ_SLAB, req)
        if isinstance(req.source, (bytes, bytearray, memoryview)):
            w.u8(0)
            w.blob(bytes(req.source))
        else:
            w.u8(1)
            w.string(str(req.source))
        _pack_slab(w, req.slab)
        return w.getvalue()
    if isinstance(req, StatsRequest):
        return _request_writer(OP_STATS, req).getvalue()
    raise ProtocolError(f"cannot encode request of type {type(req).__name__}")


def decode_request(body: bytes) -> Request:
    r = _Reader(body)
    version = r.u8()
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version} not supported (this side speaks "
            f"{PROTOCOL_VERSION})"
        )
    op = r.u8()
    if op not in (OP_PING, OP_COMPRESS, OP_DECOMPRESS, OP_READ_SLAB, OP_STATS):
        # validate before touching the meta kv so a bad opcode reports
        # itself instead of a misleading truncation error
        raise ProtocolError(f"unknown request opcode {op}")
    meta = r.kv()
    if op == OP_PING:
        req: Request = PingRequest()
    elif op == OP_COMPRESS:
        codec = r.string()
        kwargs = r.kv()
        eb_mode = r.u8()
        bound = r.f64()
        chunks_kind = r.u8()
        chunks: Union[int, Tuple[int, ...], None]
        if chunks_kind == 0:
            chunks = None
        elif chunks_kind == 1:
            chunks = r.u32()
        elif chunks_kind == 2:
            chunks = tuple(r.u32() for _ in range(r.u8()))
        else:
            raise ProtocolError(f"unknown chunk-spec kind {chunks_kind}")
        family = r.string() or None
        per_chunk = bool(r.u8())
        data = _unpack_array(r)
        req = CompressRequest(
            data=data,
            codec=codec,
            codec_kwargs=kwargs,
            error_bound=bound if eb_mode == 0 else None,
            rel_error_bound=bound if eb_mode == 1 else None,
            chunks=chunks,
            family=family,
            per_chunk_tuning=per_chunk,
        )
    elif op == OP_DECOMPRESS:
        req = DecompressRequest(blob=r.blob())
    elif op == OP_READ_SLAB:
        kind = r.u8()
        source: Union[bytes, str]
        if kind == 0:
            source = r.blob()
        elif kind == 1:
            source = r.string()
        else:
            raise ProtocolError(f"unknown read source kind {kind}")
        req = ReadSlabRequest(source=source, slab=_unpack_slab(r))
    elif op == OP_STATS:
        req = StatsRequest()
    else:
        raise ProtocolError(f"unknown request opcode {op}")
    r.done()
    return _apply_meta(req, meta)


def routing_key(body: bytes) -> Optional[str]:
    """Routing-affinity key of an encoded request, for the hash router.

    Decodes only as far as needed: the meta kv's ``shard_key`` wins when
    present; otherwise a compress request's ``family=`` tag routes as
    ``"family:NAME"`` (repeat family traffic should land on the shard
    whose plan cache is already warm).  Everything else — content-keyed
    compresses, decompresses, pings, stats — returns ``None``, meaning
    "no affinity, balance freely".

    Never raises: the router peeks at frames *before* a shard validates
    them, so garbage here must fall through to a shard (which will answer
    with the proper ERROR frame), not kill the router.
    """
    try:
        r = _Reader(body)
        if r.u8() != PROTOCOL_VERSION:
            return None
        op = r.u8()
        if op not in (OP_PING, OP_COMPRESS, OP_DECOMPRESS, OP_READ_SLAB,
                      OP_STATS):
            return None
        meta = r.kv()
        shard_key = meta.get("shard_key")
        if shard_key:
            return str(shard_key)
        if op != OP_COMPRESS:
            return None
        r.string()  # codec
        r.kv()  # codec kwargs
        r.u8()  # eb mode
        r.f64()  # bound value
        chunks_kind = r.u8()
        if chunks_kind == 1:
            r.u32()
        elif chunks_kind == 2:
            for _ in range(r.u8()):
                r.u32()
        elif chunks_kind != 0:
            return None
        family = r.string()
        return f"family:{family}" if family else None
    except (ProtocolError, UnicodeDecodeError):
        return None


# --------------------------------------------------------------------------
# response encode/decode
# --------------------------------------------------------------------------

def _response_writer(status: int) -> _Writer:
    w = _Writer()
    w.u8(PROTOCOL_VERSION)
    w.u8(status)
    return w


def encode_ok_empty() -> bytes:
    return _response_writer(ST_OK).getvalue()


def encode_ok_bytes(blob: bytes) -> bytes:
    w = _response_writer(ST_OK)
    w.blob(blob)
    return w.getvalue()


def encode_ok_array(array: np.ndarray) -> bytes:
    w = _response_writer(ST_OK)
    _pack_array(w, array)
    return w.getvalue()


def encode_ok_kv(mapping: Dict) -> bytes:
    w = _response_writer(ST_OK)
    w.kv(mapping)
    return w.getvalue()


def encode_error(message: str) -> bytes:
    w = _response_writer(ST_ERROR)
    # one line, bounded — tracebacks stay on the server
    w.string(message.splitlines()[0][:1024] if message else "internal error")
    return w.getvalue()


def encode_retry(retry_after: float, reason: str = "overloaded") -> bytes:
    w = _response_writer(ST_RETRY)
    w.f64(retry_after)
    w.string(reason)
    return w.getvalue()


@dataclass
class Response:
    """Decoded response: exactly one payload field is set for ST_OK."""

    status: int
    blob: Optional[bytes] = None
    array: Optional[np.ndarray] = None
    mapping: Optional[Dict] = None
    message: Optional[str] = None
    retry_after: Optional[float] = None
    reason: Optional[str] = None


def decode_response(body: bytes, op: int) -> Response:
    """Decode a response body; ``op`` is the request opcode it answers."""
    r = _Reader(body)
    version = r.u8()
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version} not supported (this side speaks "
            f"{PROTOCOL_VERSION})"
        )
    status = r.u8()
    if status == ST_ERROR:
        resp = Response(status=status, message=r.string())
    elif status == ST_RETRY:
        resp = Response(status=status, retry_after=r.f64(), reason=r.string())
    elif status == ST_OK:
        if op == OP_COMPRESS:
            resp = Response(status=status, blob=r.blob())
        elif op in (OP_DECOMPRESS, OP_READ_SLAB):
            resp = Response(status=status, array=_unpack_array(r))
        elif op == OP_STATS:
            resp = Response(status=status, mapping=r.kv())
        else:
            resp = Response(status=status)
    else:
        raise ProtocolError(f"unknown response status {status}")
    r.done()
    return resp


# --------------------------------------------------------------------------
# framing
# --------------------------------------------------------------------------

def frame(body: bytes) -> bytes:
    """Prefix a message body with its u32 length."""
    if len(body) > MAX_FRAME:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds cap {MAX_FRAME}"
        )
    return struct.pack("<I", len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one frame body; None on clean EOF at a frame boundary."""
    try:
        head = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame-header") from exc
    (length,) = struct.unpack("<I", head)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds cap {MAX_FRAME}")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc


def read_frame_sync(sock: socket.socket) -> bytes:
    """Blocking frame read from a ``socket.socket`` (client side)."""
    head = _recv_exact(sock, 4)
    (length,) = struct.unpack("<I", head)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds cap {MAX_FRAME}")
    return _recv_exact(sock, length)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    parts = []
    remaining = n
    while remaining:
        part = sock.recv(min(remaining, 1 << 20))
        if not part:
            # ServiceConnectionError is-a ProtocolError, so existing
            # callers keep working — but reconnect-capable clients can
            # now tell "peer vanished" from "peer sent garbage"
            raise ServiceConnectionError("connection closed mid-frame")
        parts.append(part)
        remaining -= len(part)
    return b"".join(parts)


def op_for_request(req: Request) -> int:
    if isinstance(req, PingRequest):
        return OP_PING
    if isinstance(req, CompressRequest):
        return OP_COMPRESS
    if isinstance(req, DecompressRequest):
        return OP_DECOMPRESS
    if isinstance(req, ReadSlabRequest):
        return OP_READ_SLAB
    if isinstance(req, StatsRequest):
        return OP_STATS
    raise ProtocolError(f"unknown request type {type(req).__name__}")


__all__ = [
    "PROTOCOL_VERSION",
    "PRIORITIES",
    "MAX_FRAME",
    "OP_PING",
    "OP_COMPRESS",
    "OP_DECOMPRESS",
    "OP_READ_SLAB",
    "OP_STATS",
    "ST_OK",
    "ST_ERROR",
    "ST_RETRY",
    "PingRequest",
    "CompressRequest",
    "DecompressRequest",
    "ReadSlabRequest",
    "StatsRequest",
    "Request",
    "Response",
    "encode_request",
    "decode_request",
    "routing_key",
    "encode_ok_empty",
    "encode_ok_bytes",
    "encode_ok_array",
    "encode_ok_kv",
    "encode_error",
    "encode_retry",
    "decode_response",
    "validate_priority",
    "validate_deadline_ms",
    "frame",
    "read_frame",
    "read_frame_sync",
    "op_for_request",
]
