"""Inter-shard plan replication bus (the sharded runtime's only IPC).

Each shard of a ``repro serve --shards N`` deployment owns a private
:class:`~repro.core.plan_cache.PlanLRU`; sharing the *object* across
processes is exactly what RL011 forbids.  What shards share instead is
the **work product**: a freshly derived
:class:`~repro.core.plan_cache.FrozenPlan` is ~224 B pickled, and
derivation is deterministic, so broadcasting the pickle and installing
it on every peer makes the whole fleet warm for the price of one
derivation — with byte-identical output from any shard by construction.

Topology is a star: the parent supervisor holds one
:class:`multiprocessing.Pipe` per shard (:class:`BusHub`); each shard
holds the other end (:class:`PlanBusEndpoint`).  A PLAN message from
shard *i* is fanned out by the hub to every other shard *verbatim* —
the raw payload bytes are forwarded, never re-encoded, so the pickle a
receiver unpickles is the exact pickle the deriver produced.  The same
bus carries shard hellos (backend port discovery for the hash router)
and stats pulls (the ``serve-stats --all-shards`` view), so the
runtime needs exactly one IPC channel per shard.

Wire format (``PLAN_BUS_VERSION``, registered in
:mod:`repro.lint.wire_registry`): every message is one
``Connection.send_bytes`` payload —

    u8 version | u8 kind | u16 shard_id | kind-specific body

* ``MSG_HELLO``  — u32 backend port (0 in SO_REUSEPORT mode), u32 pid;
* ``MSG_PLAN``   — blob pickled cache key, blob pickled FrozenPlan;
* ``MSG_STATS_REQ``  — empty (hub -> shard pull);
* ``MSG_STATS_RESP`` — typed kv stats snapshot (shard -> hub).

The bus is a *trusted* channel — both ends are processes forked from one
``repro serve`` invocation, connected by an inherited pipe that never
touches a network socket.  That is why ``pickle`` is acceptable here
(same trust story as the pool's plan broadcast in
``repro/parallel/executor.py``, which RL008 already allowlists) while
the client-facing protocol remains pickle-free.  Payloads are still
bounded (:data:`MAX_BUS_MSG`) and version-checked: a malformed message
means a bug, and the endpoint drops it loudly rather than misparsing.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import threading
from typing import Callable, Dict, Hashable, Mapping, Optional, Tuple, Union

from multiprocessing.connection import Connection

from repro.core.plan_cache import FrozenPlan, PlanLRU
from repro.errors import ProtocolError
from repro.service.protocol import _Reader, _Writer

#: bump when the message layout changes (mirrored in wire_registry)
PLAN_BUS_VERSION = 1

#: one Connection.send_bytes payload may not exceed this (plans are
#: ~224 B pickled; stats snapshots a few KB — 1 MiB is generous)
MAX_BUS_MSG = 1 << 20

# message kinds
MSG_HELLO = 1
MSG_PLAN = 2
MSG_STATS_REQ = 3
MSG_STATS_RESP = 4

StatsDict = Dict[str, Union[int, float]]


# --------------------------------------------------------------------------
# message encode/decode
# --------------------------------------------------------------------------

def _header(kind: int, shard_id: int) -> _Writer:
    w = _Writer()
    w.u8(PLAN_BUS_VERSION)
    w.u8(kind)
    w.u16(shard_id)
    return w


def encode_hello(shard_id: int, port: int, pid: int) -> bytes:
    w = _header(MSG_HELLO, shard_id)
    w.u32(port)
    w.u32(pid)
    return w.getvalue()


def encode_plan(shard_id: int, key: Hashable, plan: FrozenPlan) -> bytes:
    w = _header(MSG_PLAN, shard_id)
    w.blob(pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL))
    w.blob(pickle.dumps(plan, protocol=pickle.HIGHEST_PROTOCOL))
    body = w.getvalue()
    if len(body) > MAX_BUS_MSG:
        raise ProtocolError(
            f"plan bus message of {len(body)} bytes exceeds cap {MAX_BUS_MSG}"
        )
    return body


def encode_stats_req(shard_id: int) -> bytes:
    return _header(MSG_STATS_REQ, shard_id).getvalue()


def encode_stats_resp(shard_id: int, stats: Mapping[str, object]) -> bytes:
    w = _header(MSG_STATS_RESP, shard_id)
    w.kv(dict(stats))
    return w.getvalue()


class BusMessage:
    """One decoded bus message (kind-specific fields default to empty)."""

    __slots__ = ("kind", "shard_id", "port", "pid", "key", "plan", "stats")

    def __init__(
        self,
        kind: int,
        shard_id: int,
        port: int = 0,
        pid: int = 0,
        key: Hashable = None,
        plan: Optional[FrozenPlan] = None,
        stats: Optional[StatsDict] = None,
    ) -> None:
        self.kind = kind
        self.shard_id = shard_id
        self.port = port
        self.pid = pid
        self.key = key
        self.plan = plan
        self.stats = stats


def decode_message(body: bytes) -> BusMessage:
    """Decode one bus payload; raises :class:`ProtocolError` on garbage."""
    if len(body) > MAX_BUS_MSG:
        raise ProtocolError(
            f"plan bus message of {len(body)} bytes exceeds cap {MAX_BUS_MSG}"
        )
    r = _Reader(body)
    version = r.u8()
    if version != PLAN_BUS_VERSION:
        raise ProtocolError(
            f"plan bus version {version} not supported (this side speaks "
            f"{PLAN_BUS_VERSION})"
        )
    kind = r.u8()
    shard_id = r.u16()
    if kind == MSG_HELLO:
        msg = BusMessage(kind, shard_id, port=r.u32(), pid=r.u32())
    elif kind == MSG_PLAN:
        key_raw = r.blob()
        plan_raw = r.blob()
        key = pickle.loads(key_raw)
        plan = pickle.loads(plan_raw)
        if not isinstance(plan, FrozenPlan):
            raise ProtocolError(
                f"plan bus PLAN payload is {type(plan).__name__}, "
                "not FrozenPlan"
            )
        msg = BusMessage(kind, shard_id, key=key, plan=plan)
    elif kind == MSG_STATS_REQ:
        msg = BusMessage(kind, shard_id)
    elif kind == MSG_STATS_RESP:
        msg = BusMessage(kind, shard_id, stats=r.kv())
    else:
        raise ProtocolError(f"unknown plan bus message kind {kind}")
    r.done()
    return msg


def _drain(conn: Connection) -> "list[bytes]":
    """Every payload currently readable on ``conn`` (non-blocking)."""
    out = []
    while conn.poll():
        out.append(conn.recv_bytes(MAX_BUS_MSG))
    return out


# --------------------------------------------------------------------------
# shard side
# --------------------------------------------------------------------------

class PlanBusEndpoint:
    """A shard's end of the replication bus.

    ``publish_plan`` is the :class:`PlanLRU` ``on_derive`` hook: it runs
    on whatever executor thread finished the derivation, so sends are
    serialized by a lock.  Publishing is best-effort — if the parent is
    gone the shard keeps serving (it just stops sharing), and the
    failure is counted, never raised into the compress path.

    ``attach`` wires the receiving half into the shard's event loop:
    incoming PLAN messages install into the local cache, STATS_REQ pulls
    answer with the provided snapshot callable.
    """

    def __init__(self, conn: Connection, shard_id: int) -> None:
        self._conn = conn
        self.shard_id = shard_id
        self._send_lock = threading.Lock()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.plans_published = 0
        self.plans_received = 0
        self.plans_installed = 0
        self.publish_failures = 0

    # ------------------------------------------------------------- sending
    def _send(self, payload: bytes) -> bool:
        try:
            with self._send_lock:
                self._conn.send_bytes(payload)
            return True
        except (OSError, ValueError):
            # parent died or pipe closed: shard degrades to solo mode
            self.publish_failures += 1
            return False

    def publish_plan(self, key: Hashable, plan: FrozenPlan) -> None:
        """``PlanLRU.on_derive`` hook: broadcast one fresh derivation."""
        if self._send(encode_plan(self.shard_id, key, plan)):
            self.plans_published += 1

    def hello(self, port: int) -> None:
        """Announce readiness (and the backend port, for the hash router)."""
        self._send(encode_hello(self.shard_id, port, os.getpid()))

    # ----------------------------------------------------------- receiving
    def attach(
        self,
        loop: asyncio.AbstractEventLoop,
        plans: PlanLRU,
        stats_fn: Callable[[], StatsDict],
    ) -> None:
        self._loop = loop
        loop.add_reader(
            self._conn.fileno(), self._on_readable, plans, stats_fn
        )

    def detach(self) -> None:
        if self._loop is not None:
            self._loop.remove_reader(self._conn.fileno())
            self._loop = None

    def _on_readable(
        self, plans: PlanLRU, stats_fn: Callable[[], StatsDict]
    ) -> None:
        try:
            payloads = _drain(self._conn)
        except (EOFError, OSError):
            self.detach()
            return
        for payload in payloads:
            msg = decode_message(payload)
            if msg.kind == MSG_PLAN and msg.plan is not None:
                self.plans_received += 1
                if plans.install(msg.key, msg.plan):
                    self.plans_installed += 1
            elif msg.kind == MSG_STATS_REQ:
                self._send(encode_stats_resp(self.shard_id, stats_fn()))
            # HELLO/STATS_RESP are hub-bound; a shard ignores them

    # -------------------------------------------------------------- stats
    def stats(self) -> StatsDict:
        return {
            "bus_plans_published": self.plans_published,
            "bus_plans_received": self.plans_received,
            "bus_plans_installed": self.plans_installed,
            "bus_publish_failures": self.publish_failures,
        }


# --------------------------------------------------------------------------
# parent side
# --------------------------------------------------------------------------

class BusHub:
    """The parent supervisor's fan-out hub: one pipe per shard.

    PLAN payloads are forwarded to peers *verbatim* (raw bytes, no
    decode/re-encode round trip), which is what makes the replicated
    pickle byte-identical to the published one.  HELLO messages populate
    :attr:`ports` (hash-router backends) and resolve :meth:`wait_ready`;
    STATS_REQ broadcasts collect per-shard snapshots for the aggregated
    ``serve-stats`` view.
    """

    def __init__(self) -> None:
        self._conns: Dict[int, Connection] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.ports: Dict[int, int] = {}
        self.pids: Dict[int, int] = {}
        self._hello_events: Dict[int, asyncio.Event] = {}
        self._stats_waiters: Dict[int, "asyncio.Future[StatsDict]"] = {}
        self.plans_forwarded = 0

    def add_shard(self, shard_id: int) -> Connection:
        """(Re)create the pipe for a shard; returns the child end.

        Used both at first spawn and at respawn after a crash — the old
        parent end (if any) is detached and closed, because a fresh
        process needs a fresh pipe.
        """
        import multiprocessing as mp

        old = self._conns.pop(shard_id, None)
        if old is not None:
            if self._loop is not None:
                self._loop.remove_reader(old.fileno())
            old.close()
        self.ports.pop(shard_id, None)
        self.pids.pop(shard_id, None)
        parent_conn, child_conn = mp.Pipe(duplex=True)
        self._conns[shard_id] = parent_conn
        self._hello_events[shard_id] = asyncio.Event()
        if self._loop is not None:
            self._attach_one(shard_id, parent_conn)
        return child_conn

    def attach(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        for shard_id, conn in self._conns.items():
            self._attach_one(shard_id, conn)

    def _attach_one(self, shard_id: int, conn: Connection) -> None:
        assert self._loop is not None
        self._loop.add_reader(conn.fileno(), self._on_readable, shard_id)

    def detach(self) -> None:
        if self._loop is not None:
            for conn in self._conns.values():
                self._loop.remove_reader(conn.fileno())
            self._loop = None

    def close(self) -> None:
        self.detach()
        for conn in self._conns.values():
            conn.close()
        self._conns.clear()

    # ----------------------------------------------------------- receiving
    def _on_readable(self, shard_id: int) -> None:
        conn = self._conns.get(shard_id)
        if conn is None:
            return
        try:
            payloads = _drain(conn)
        except (EOFError, OSError):
            # shard died; the supervisor notices via the process sentinel
            # and calls add_shard again on respawn
            if self._loop is not None:
                self._loop.remove_reader(conn.fileno())
            return
        for payload in payloads:
            self._dispatch(shard_id, payload)

    def _dispatch(self, shard_id: int, payload: bytes) -> None:
        msg = decode_message(payload)
        if msg.kind == MSG_PLAN:
            self._forward(shard_id, payload)
        elif msg.kind == MSG_HELLO:
            self.ports[msg.shard_id] = msg.port
            self.pids[msg.shard_id] = msg.pid
            event = self._hello_events.get(msg.shard_id)
            if event is not None:
                event.set()
        elif msg.kind == MSG_STATS_RESP and msg.stats is not None:
            waiter = self._stats_waiters.pop(msg.shard_id, None)
            if waiter is not None and not waiter.done():
                waiter.set_result(msg.stats)

    def _forward(self, origin: int, payload: bytes) -> None:
        for shard_id, conn in self._conns.items():
            if shard_id == origin:
                continue
            try:
                conn.send_bytes(payload)
                self.plans_forwarded += 1
            except (OSError, ValueError):
                # dead shard: respawn handling owns cleanup
                continue

    # --------------------------------------------------------------- waits
    async def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every registered shard has sent HELLO."""
        waits = [
            event.wait() for event in self._hello_events.values()
        ]
        if waits:
            await asyncio.wait_for(asyncio.gather(*waits), timeout)

    async def collect_stats(
        self, timeout: float = 2.0
    ) -> Dict[int, StatsDict]:
        """Pull one snapshot from every live shard (missing shards skipped)."""
        assert self._loop is not None, "attach() first"
        waiters: Dict[int, "asyncio.Future[StatsDict]"] = {}
        for shard_id, conn in self._conns.items():
            try:
                conn.send_bytes(encode_stats_req(shard_id))
            except (OSError, ValueError):
                continue
            waiters[shard_id] = self._loop.create_future()
        self._stats_waiters.update(waiters)
        if waiters:
            await asyncio.wait(waiters.values(), timeout=timeout)
        out: Dict[int, StatsDict] = {}
        for shard_id, fut in waiters.items():
            if fut.done() and not fut.cancelled():
                # done future: the await resumes immediately, no block
                out[shard_id] = await fut
            else:
                fut.cancel()
                self._stats_waiters.pop(shard_id, None)
        return out

    def live_shards(self) -> Tuple[int, ...]:
        return tuple(sorted(self._conns))


__all__ = [
    "PLAN_BUS_VERSION",
    "MAX_BUS_MSG",
    "MSG_HELLO",
    "MSG_PLAN",
    "MSG_STATS_REQ",
    "MSG_STATS_RESP",
    "BusMessage",
    "encode_hello",
    "encode_plan",
    "encode_stats_req",
    "encode_stats_resp",
    "decode_message",
    "PlanBusEndpoint",
    "BusHub",
]
