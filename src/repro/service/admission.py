"""Cost-aware admission control and the service metrics registry.

PR 4's scheduler admitted work by queue depth alone: a 512-cubed
compress request consumed exactly one slot of ``max_queue``, the same as
a 16-cubed one, so a handful of large requests could legally occupy a
"short" queue that then takes minutes to drain — and every small
interactive request admitted behind them inherited that latency.  This
module makes admission *cost-aware*:

* :class:`CostModel` predicts a request's cost in **work units** before
  it is queued, from metadata only (element count x a per-codec
  calibration class, with a derivation surcharge when the plan cache
  cannot possibly be warm).  One work unit is roughly the cost of
  *executing* one megaelement of warm interpolation-codec work; the
  absolute scale cancels out of admission decisions, which only compare
  predicted units against unit budgets and against the observed drain
  rate.
* :func:`decide` is the admission policy itself — a **pure function** of
  (cost, priority, :class:`AdmissionSnapshot`, :class:`AdmissionLimits`).
  Purity is load-bearing: the property tests replay snapshots and the
  decision must be byte-for-byte reproducible, and the scheduler can log
  any decision knowing the snapshot fully explains it.
* :class:`AdmissionController` owns the mutable half: queued work units
  per priority class, per-client token buckets (quotas), and the drain
  EWMA that turns "how much work is queued" into "how long until it is
  your turn" (the ``retry_after`` hint).
* :class:`ServiceMetrics` is the observability registry: admit / reject
  / retry counters by class, per-codec throughput EWMAs, batch fill,
  queue-wait EWMAs — updated on every job transition (admitted,
  started, finished) and snapshotted into the versioned STATS frame.

Priority semantics: ``interactive`` requests may use the whole work-unit
budget and are always dequeued ahead of ``batch`` requests; ``batch``
requests may only occupy ``batch_share`` of the budget, so a flood of
bulk traffic cannot starve interactive latency.  A job is never rejected
for *size* alone — when its class has nothing queued it is admitted even
if its predicted cost exceeds the budget (capacity bounds queueing, not
job size; an oversized singleton still makes progress).

Per-client quotas: a request carrying a ``client_id`` draws its
predicted units from that client's token bucket (``client_rate`` units/s
refill up to ``client_burst``).  A full bucket admits any single
request, whatever its size, so quotas — like capacity — bound *rates*,
never feasibility.  Anonymous requests (no client id) share no bucket.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.header import parse_header
from repro.errors import ReproError
from repro.core.plan_cache import PlanLRU, field_signature, plan_cache_key
from repro.service.protocol import (
    PRIORITIES,
    CompressRequest,
    DecompressRequest,
    ReadSlabRequest,
    Request,
)

#: version of the stats snapshot layout (the ``stats_version`` key every
#: snapshot carries); bump when keys are renamed or change meaning
STATS_VERSION = 1

#: calibration table: work units per megaelement of *execution*, by
#: codec.  Scaled so the interpolation engine (qoz/sz3) is the 1.0
#: reference class; the exact numbers only need to be ordinally right —
#: they are refined at runtime by the drain-rate EWMA, which converts
#: units to seconds from observed completions.
CODEC_WORK_CLASS: Dict[str, float] = {
    "zfp": 0.8,
    "qoz": 1.0,
    "sz3": 1.0,
    "sz2": 1.4,
    "mgard": 2.0,
}
DEFAULT_WORK_CLASS = 1.0

#: codecs whose compression runs sampling/selection/tuning before
#: execution (the plan-cache-amortizable half)
PLAN_CODECS = frozenset({"qoz", "sz3"})

#: cold-plan surcharge: derivation (sampling + the memoized Eq. 5 trial
#: grid) costs roughly this many times the execution pass over the same
#: elements, so a cold request is (1 + surcharge) x the warm cost
DERIVE_SURCHARGE = 3.0

#: decode work per megaelement relative to the 1.0 compress class
DECODE_WORK_CLASS = 0.5

#: floor so even empty/tiny requests carry nonzero queue weight
MIN_UNITS = 1.0 / 1024.0

#: fallback estimate (in megaelements) for a path-based hyperslab read
#: whose extent cannot be computed from the request alone
DEFAULT_READ_MELEM = 1.0

#: units/s assumed for retry hints before any job has completed
DEFAULT_DRAIN_RATE = 8.0


class Ewma:
    """Exponentially weighted moving average (None until first sample)."""

    __slots__ = ("alpha", "value")

    def __init__(self, alpha: float = 0.2) -> None:
        self.alpha = float(alpha)
        self.value: Optional[float] = None

    def update(self, sample: float) -> float:
        if self.value is None:
            self.value = float(sample)
        else:
            self.value += self.alpha * (float(sample) - self.value)
        return self.value

    def get(self, default: float = 0.0) -> float:
        return default if self.value is None else self.value


# --------------------------------------------------------------------------
# cost prediction
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkEstimate:
    """Predicted cost of one request, fixed at admission time."""

    units: float
    elements: int
    nbytes: int
    codec: str
    kind: str  # "compress" | "decompress" | "read" | "other"
    warm: bool


class CostModel:
    """Predict request cost in work units from metadata only.

    Prediction must be cheap enough to run synchronously in the event
    loop at admission time, so it never touches payload *content*: the
    compress estimate is ``elements x codec class``, plus the derivation
    surcharge unless the plan cache is *provably* warm.  Warmth is only
    checked for ``family``-tagged requests — their cache key
    (:func:`repro.core.plan_cache.field_signature`) is O(1), while a
    content-keyed request would need a full blake2b pass just to ask.
    Content-keyed requests are therefore assumed cold; over-predicting
    cost is the safe direction for admission.
    """

    def __init__(self, calibration: Optional[Dict[str, float]] = None) -> None:
        self.calibration = dict(CODEC_WORK_CLASS)
        if calibration:
            self.calibration.update(calibration)

    # ------------------------------------------------------------- internals
    def _work_class(self, codec: str) -> float:
        return self.calibration.get(codec, DEFAULT_WORK_CLASS)

    @staticmethod
    def _units(melem: float, work_class: float) -> float:
        return max(MIN_UNITS, melem * work_class)

    def _compress_estimate(
        self, req: CompressRequest, plans: Optional[PlanLRU]
    ) -> WorkEstimate:
        data = np.asanyarray(req.data)
        elements = int(data.size)
        melem = elements / 1e6
        work_class = self._work_class(req.codec)
        warm = False
        if (
            req.codec in PLAN_CODECS
            and not req.per_chunk_tuning
            and req.family
            and plans is not None
        ):
            mode, bound = (
                ("abs", req.error_bound)
                if req.error_bound is not None
                else ("rel", req.rel_error_bound)
            )
            if bound is not None:
                key = plan_cache_key(
                    req.codec,
                    req.codec_kwargs,
                    mode,
                    bound,
                    field_signature(data, req.family),
                )
                warm = plans.peek(key) is not None
        cold_derive = req.codec in PLAN_CODECS and not warm
        units = self._units(
            melem, work_class * (1.0 + (DERIVE_SURCHARGE if cold_derive else 0.0))
        )
        return WorkEstimate(
            units=units,
            elements=elements,
            nbytes=int(data.nbytes),
            codec=req.codec,
            kind="compress",
            warm=warm,
        )

    def _decompress_estimate(self, req: DecompressRequest) -> WorkEstimate:
        blob = req.blob
        elements, nbytes = _declared_field(blob)
        if elements is None:
            # unparseable header: fall back to the payload size (the job
            # will fail cleanly in the scheduler; the estimate only has
            # to be finite and monotone in the request size)
            nbytes = len(blob)
            elements = max(1, len(blob) // 4)
        units = self._units(elements / 1e6, DECODE_WORK_CLASS)
        return WorkEstimate(
            units=units,
            elements=elements,
            nbytes=nbytes,
            codec="",
            kind="decompress",
            warm=False,
        )

    def _read_estimate(self, req: ReadSlabRequest) -> WorkEstimate:
        shape: Optional[Tuple[int, ...]] = None
        itemsize = 8
        if isinstance(req.source, (bytes, bytearray, memoryview)):
            shape = _declared_shape(bytes(req.source))
        elements = _slab_elements(req.slab, shape)
        if elements is None:
            elements = int(DEFAULT_READ_MELEM * 1e6)
        units = self._units(elements / 1e6, DECODE_WORK_CLASS)
        return WorkEstimate(
            units=units,
            elements=elements,
            nbytes=elements * itemsize,
            codec="",
            kind="read",
            warm=False,
        )

    # ------------------------------------------------------------------- api
    def predict(
        self, request: Request, plans: Optional[PlanLRU] = None
    ) -> WorkEstimate:
        """Predicted :class:`WorkEstimate` for one request.

        Never raises on malformed payloads — a bad request still gets a
        finite estimate and fails with its real error in the scheduler.
        """
        if isinstance(request, CompressRequest):
            return self._compress_estimate(request, plans)
        if isinstance(request, DecompressRequest):
            return self._decompress_estimate(request)
        if isinstance(request, ReadSlabRequest):
            return self._read_estimate(request)
        return WorkEstimate(
            units=MIN_UNITS, elements=0, nbytes=0, codec="", kind="other",
            warm=False,
        )


def _declared_field(blob: bytes) -> Tuple[Optional[int], int]:
    """(elements, nbytes) a stream header declares, or (None, 0)."""
    try:
        header, _ = parse_header(blob[:64])
    except ReproError:
        # malformed/truncated header: the request still gets a finite
        # estimate here and fails with its real error in the scheduler
        return None, 0
    elements = 1
    for n in header.shape:
        elements *= int(n)
    return elements, elements * header.dtype.itemsize


def _declared_shape(blob: bytes) -> Optional[Tuple[int, ...]]:
    try:
        header, _ = parse_header(blob[:64])
    except ReproError:
        return None
    return tuple(int(n) for n in header.shape)


def _slab_elements(
    slab: Tuple[slice, ...], shape: Optional[Tuple[int, ...]]
) -> Optional[int]:
    """Element count a hyperslab request will materialize, if computable.

    Dimensions with open ends fall back to the container shape when one
    is known; otherwise the extent is unknowable at admission time and
    the caller uses :data:`DEFAULT_READ_MELEM`.
    """
    total = 1
    ndim = max(len(slab), len(shape) if shape else 0)
    for i in range(ndim):
        dim = slab[i] if i < len(slab) else slice(None)
        start, stop = dim.start, dim.stop
        if start is not None and stop is not None and 0 <= start <= stop:
            total *= stop - start
        elif shape is not None and i < len(shape):
            total *= shape[i]
        else:
            return None
    return total


# --------------------------------------------------------------------------
# the admission policy (pure)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class AdmissionLimits:
    """Static budgets of one service instance."""

    max_queue_jobs: int = 64
    max_work_units: float = 64.0
    batch_share: float = 0.5
    min_retry_after: float = 0.05
    max_retry_after: float = 5.0


@dataclass(frozen=True)
class AdmissionSnapshot:
    """Everything :func:`decide` may look at, frozen at one instant."""

    queued_jobs: int
    interactive_units: float
    batch_units: float
    drain_rate: float = DEFAULT_DRAIN_RATE
    client_tokens: float = math.inf
    client_rate: float = math.inf
    client_burst: float = math.inf

    @property
    def total_units(self) -> float:
        return self.interactive_units + self.batch_units


@dataclass(frozen=True)
class AdmitDecision:
    admitted: bool
    retry_after: float
    reason: str  # "ok" | "queue-full" | "client-quota" | "class-capacity" | "capacity"


def _retry_hint(
    excess_units: float, drain_rate: float, limits: AdmissionLimits
) -> float:
    """Seconds until ~``excess_units`` of queued work should have drained."""
    rate = drain_rate if drain_rate > 1e-9 else DEFAULT_DRAIN_RATE
    return min(
        limits.max_retry_after,
        max(limits.min_retry_after, excess_units / rate),
    )


def decide(
    units: float,
    priority: str,
    snapshot: AdmissionSnapshot,
    limits: AdmissionLimits,
) -> AdmitDecision:
    """The admission policy: PURE — same inputs, same decision, always.

    Checks, in order: job-count backstop, per-client quota, batch-class
    budget, total work budget.  The empty-queue overrides ("a job is
    never rejected for size alone") are part of the policy, not the
    controller: with nothing queued in the relevant scope, any cost is
    admitted.
    """
    if priority not in PRIORITIES:
        raise ValueError(f"unknown priority class {priority!r}")
    if snapshot.queued_jobs >= limits.max_queue_jobs:
        avg = snapshot.total_units / max(1, snapshot.queued_jobs)
        return AdmitDecision(
            False, _retry_hint(avg, snapshot.drain_rate, limits), "queue-full"
        )
    # a *full* bucket admits any single request (quotas bound rates, not
    # feasibility); otherwise the bucket must cover the predicted units
    if (
        snapshot.client_tokens < units
        and snapshot.client_tokens < snapshot.client_burst
    ):
        need = min(units, snapshot.client_burst) - snapshot.client_tokens
        rate = snapshot.client_rate if snapshot.client_rate > 1e-9 else 1.0
        return AdmitDecision(
            False,
            min(limits.max_retry_after, max(limits.min_retry_after, need / rate)),
            "client-quota",
        )
    if priority == "batch" and snapshot.batch_units > 0.0:
        budget = limits.batch_share * limits.max_work_units
        if snapshot.batch_units + units > budget:
            excess = snapshot.batch_units + units - budget
            return AdmitDecision(
                False,
                _retry_hint(excess, snapshot.drain_rate, limits),
                "class-capacity",
            )
    if snapshot.total_units > 0.0:
        if snapshot.total_units + units > limits.max_work_units:
            excess = snapshot.total_units + units - limits.max_work_units
            return AdmitDecision(
                False,
                _retry_hint(excess, snapshot.drain_rate, limits),
                "capacity",
            )
    return AdmitDecision(True, 0.0, "ok")


# --------------------------------------------------------------------------
# the mutable half
# --------------------------------------------------------------------------

class TokenBucket:
    """Lazily refilled token bucket, clocked by the caller."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)  # start full: first contact never throttles
        self.stamp = float(now)

    def refill(self, now: float) -> float:
        if now > self.stamp:
            self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = max(self.stamp, now)
        return self.tokens

    def consume(self, units: float, now: float) -> None:
        self.refill(now)
        # may go negative (a full bucket admits an oversized request);
        # the debt is bounded at one burst so it cannot grow unpaybale
        self.tokens = max(-self.burst, self.tokens - units)


class AdmissionController:
    """Mutable admission state: queued units, buckets, drain EWMA.

    All methods are called from the service's event-loop thread only
    (admission is synchronous in ``submit`` and release runs in future
    done-callbacks, which asyncio schedules on the loop), so there is no
    internal locking.
    """

    def __init__(
        self,
        limits: Optional[AdmissionLimits] = None,
        *,
        client_rate: float = 16.0,
        client_burst: float = 48.0,
        max_clients: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.limits = limits or AdmissionLimits()
        self.client_rate = float(client_rate)
        self.client_burst = float(client_burst)
        self.max_clients = int(max_clients)
        self._clock = clock
        self._units: Dict[str, float] = {cls: 0.0 for cls in PRIORITIES}
        self._jobs = 0
        self._drain = Ewma(alpha=0.2)
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()

    # ------------------------------------------------------------- snapshots
    def _bucket(self, client_id: str, now: float) -> TokenBucket:
        bucket = self._buckets.pop(client_id, None)
        if bucket is None:
            bucket = TokenBucket(self.client_rate, self.client_burst, now)
        self._buckets[client_id] = bucket  # (re-)insert at MRU end
        while len(self._buckets) > self.max_clients:
            self._buckets.popitem(last=False)
        return bucket

    @property
    def drain_rate(self) -> float:
        return self._drain.get(DEFAULT_DRAIN_RATE)

    def snapshot(
        self, client_id: Optional[str] = None, now: Optional[float] = None
    ) -> AdmissionSnapshot:
        now = self._clock() if now is None else now
        tokens = rate = burst = math.inf
        if client_id:
            bucket = self._bucket(client_id, now)
            tokens = bucket.refill(now)
            rate, burst = bucket.rate, bucket.burst
        return AdmissionSnapshot(
            queued_jobs=self._jobs,
            interactive_units=self._units["interactive"],
            batch_units=self._units["batch"],
            drain_rate=self.drain_rate,
            client_tokens=tokens,
            client_rate=rate,
            client_burst=burst,
        )

    # ------------------------------------------------------------ transitions
    def try_admit(
        self,
        units: float,
        priority: str,
        client_id: Optional[str] = None,
        depth_only: bool = False,
    ) -> AdmitDecision:
        """Decide, and commit the queue/bucket state on an admit.

        ``depth_only`` reproduces the pre-admission-control policy (job
        count is the only check) — kept as a measurable baseline for the
        load generator, not a recommended mode.
        """
        now = self._clock()
        snap = self.snapshot(client_id, now)
        if depth_only:
            if snap.queued_jobs >= self.limits.max_queue_jobs:
                decision = AdmitDecision(
                    False, self.limits.min_retry_after, "queue-full"
                )
            else:
                decision = AdmitDecision(True, 0.0, "ok")
        else:
            decision = decide(units, priority, snap, self.limits)
        if decision.admitted:
            self._jobs += 1
            self._units[priority] += units
            if client_id and not depth_only:
                self._buckets[client_id].consume(units, now)
        return decision

    def release(self, units: float, priority: str) -> None:
        """A previously admitted job left the system (done, failed, or
        cancelled) — return its weight to the budget."""
        self._jobs = max(0, self._jobs - 1)
        self._units[priority] = max(0.0, self._units[priority] - units)

    def observe_drain(self, units: float, seconds: float) -> None:
        """Feed one completed job into the drain-rate calibration."""
        if seconds > 1e-9 and units > 0.0:
            self._drain.update(units / seconds)

    # -------------------------------------------------------------- reporting
    def stats(self) -> Dict[str, Union[int, float]]:
        return {
            "queue_units_interactive": round(self._units["interactive"], 6),
            "queue_units_batch": round(self._units["batch"], 6),
            "work_capacity_units": self.limits.max_work_units,
            "batch_share": self.limits.batch_share,
            "drain_rate_units_s": round(self.drain_rate, 4),
            "quota_clients_tracked": len(self._buckets),
        }


# --------------------------------------------------------------------------
# metrics registry
# --------------------------------------------------------------------------

class ServiceMetrics:
    """Counters + EWMAs, updated on every job transition.

    The snapshot is a *flat* ``str -> int|float`` mapping because that is
    what the STATS wire frame carries (the protocol's typed kv map); the
    layout is versioned by the ``stats_version`` key
    (:data:`STATS_VERSION`).  Mutation happens on the event-loop thread
    only, like :class:`AdmissionController`.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._t0 = clock()
        self.admitted = {cls: 0 for cls in PRIORITIES}
        self.rejected = {cls: 0 for cls in PRIORITIES}
        self.retried = {cls: 0 for cls in PRIORITIES}
        self.completed = {cls: 0 for cls in PRIORITIES}
        self.failed = {cls: 0 for cls in PRIORITIES}
        self.reject_reasons: Dict[str, int] = {}
        self.kind_done = {"compress": 0, "decompress": 0, "read": 0, "other": 0}
        self.batches = 0
        self.batch_fill = Ewma(alpha=0.2)
        self.queue_wait_ms = {cls: Ewma(alpha=0.2) for cls in PRIORITIES}
        self.codec_jobs: Dict[str, int] = {}
        self.codec_mbps: Dict[str, Ewma] = {}
        self.connections_total = 0
        self.connections_open = 0
        self.deadline_shed = {cls: 0 for cls in PRIORITIES}
        self.deadline_timeouts = {cls: 0 for cls in PRIORITIES}
        self._pool_lock = threading.Lock()
        self.pool_events: Dict[str, int] = {}

    # ------------------------------------------------------------ transitions
    def admit(self, priority: str, attempt: int = 0) -> None:
        self.admitted[priority] += 1
        if attempt > 0:
            self.retried[priority] += 1

    def reject(self, priority: str, reason: str) -> None:
        self.rejected[priority] += 1
        self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1

    def job_started(self, priority: str, wait_s: float) -> None:
        self.queue_wait_ms[priority].update(wait_s * 1e3)

    def job_finished(
        self,
        priority: str,
        kind: str,
        ok: bool,
        duration_s: float,
        nbytes: int,
        codec: str = "",
    ) -> None:
        (self.completed if ok else self.failed)[priority] += 1
        self.kind_done[kind] = self.kind_done.get(kind, 0) + 1
        if kind == "compress" and codec:
            self.codec_jobs[codec] = self.codec_jobs.get(codec, 0) + 1
            if ok and duration_s > 1e-9 and nbytes > 0:
                self.codec_mbps.setdefault(codec, Ewma(alpha=0.2)).update(
                    nbytes / 1e6 / duration_s
                )

    def batch_dispatched(self, size: int, capacity: int) -> None:
        self.batches += 1
        self.batch_fill.update(size / max(1, capacity))

    def connection_opened(self) -> None:
        self.connections_total += 1
        self.connections_open += 1

    def connection_closed(self) -> None:
        self.connections_open = max(0, self.connections_open - 1)

    def deadline_missed(self, priority: str, stage: str) -> None:
        """A job missed its client deadline while queued or running."""
        table = self.deadline_shed if stage == "queued" else self.deadline_timeouts
        table[priority] += 1

    def pool_event(self, kind: str) -> None:
        """One worker-pool supervisor transition (crash/retry/respawn/
        poisoned/degraded/promoted/probe-failure).  Thread-safe: the
        supervisor reports from executor callback threads, not the loop.
        """
        with self._pool_lock:
            self.pool_events[kind] = self.pool_events.get(kind, 0) + 1

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> Dict[str, Union[int, float]]:
        out: Dict[str, Union[int, float]] = {
            "stats_version": STATS_VERSION,
            "uptime_s": round(self._clock() - self._t0, 3),
            "batches": self.batches,
            "batch_fill_ewma": round(self.batch_fill.get(), 4),
            "connections_total": self.connections_total,
            "connections_open": self.connections_open,
            "jobs_compress": self.kind_done["compress"],
            "jobs_decompress": self.kind_done["decompress"],
            "jobs_read": self.kind_done["read"],
        }
        for cls in PRIORITIES:
            out[f"admitted_{cls}"] = self.admitted[cls]
            out[f"rejected_{cls}"] = self.rejected[cls]
            out[f"retried_{cls}"] = self.retried[cls]
            out[f"completed_{cls}"] = self.completed[cls]
            out[f"failed_{cls}"] = self.failed[cls]
            out[f"queue_wait_ms_{cls}"] = round(self.queue_wait_ms[cls].get(), 3)
        for cls in PRIORITIES:
            out[f"deadline_shed_{cls}"] = self.deadline_shed[cls]
            out[f"deadline_timeout_{cls}"] = self.deadline_timeouts[cls]
        for reason, count in sorted(self.reject_reasons.items()):
            out[f"rejects_{reason.replace('-', '_')}"] = count
        with self._pool_lock:
            pool_events = dict(self.pool_events)
        for kind in sorted(pool_events):
            out[f"pool_{kind.replace('-', '_')}"] = pool_events[kind]
        for codec in sorted(self.codec_jobs):
            out[f"jobs_codec_{codec}"] = self.codec_jobs[codec]
        for codec in sorted(self.codec_mbps):
            out[f"throughput_{codec}_mbps"] = round(
                self.codec_mbps[codec].get(), 3
            )
        return out


#: aggregation policy for :func:`aggregate_snapshots`: keys where the
#: fleet value is the max of the shard values (identical-by-construction
#: config plus "oldest shard" uptime) ...
_AGG_MAX = frozenset(
    {"stats_version", "uptime_s", "n_shards", "cost_aware", "batch_share"}
)
#: ... keys where it is the mean (EWMAs of per-request quantities —
#: summing a latency EWMA across shards would be nonsense) ...
_AGG_MEAN_PREFIXES = ("queue_wait_ms_",)
_AGG_MEAN = frozenset({"batch_fill_ewma"})
#: ... keys dropped from the aggregate (per-shard identity; the
#: per-shard prefixed rows keep them)
_AGG_DROP = frozenset({"shard_id"})


def aggregate_snapshots(
    snaps: Mapping[int, Mapping[str, Union[int, float]]],
    per_shard: bool = False,
) -> Dict[str, Union[int, float]]:
    """Fold per-shard STATS snapshots into one fleet view.

    Default policy: counters, queue depths, capacities, drain rates, and
    throughput EWMAs **sum** (they read as fleet totals — e.g.
    ``work_capacity_units`` becomes the whole deployment's admission
    budget); per-request EWMAs (queue wait, batch fill) **average** over
    the shards that report them; version/config keys take the **max**
    (identical across shards by construction).  ``plan_cache_hit_rate``
    is recomputed from the summed hit/miss counters rather than averaged,
    so it reconciles exactly with them.  ``shards_reporting`` records how
    many snapshots the aggregate is built from (a dead shard is absent,
    not zero-filled).

    ``per_shard=True`` additionally carries every input row through as
    ``shard{i}_{key}`` — the detail view behind
    ``repro serve-stats --per-shard``.
    """
    out: Dict[str, Union[int, float]] = {"shards_reporting": len(snaps)}
    counts: Dict[str, int] = {}
    for snap in snaps.values():
        for key, value in snap.items():
            if key in _AGG_DROP:
                continue
            counts[key] = counts.get(key, 0) + 1
            if key in _AGG_MAX:
                prev = out.get(key)
                out[key] = value if prev is None else max(prev, value)
            else:
                out[key] = out.get(key, 0) + value
    for key in list(out):
        if key in _AGG_MEAN or key.startswith(_AGG_MEAN_PREFIXES):
            out[key] = round(float(out[key]) / max(1, counts.get(key, 1)), 4)
    hits = out.get("plan_cache_hits", 0)
    misses = out.get("plan_cache_misses", 0)
    lookups = hits + misses
    out["plan_cache_hit_rate"] = (
        round(float(hits) / lookups, 4) if lookups else 0.0
    )
    if per_shard:
        for shard_id in sorted(snaps):
            for key, value in snaps[shard_id].items():
                out[f"shard{shard_id}_{key}"] = value
    return out


def format_stats_line(stats: Dict[str, Union[int, float]]) -> str:
    """One compact ``key=value`` line for the server's periodic log."""
    admit = sum(stats.get(f"admitted_{c}", 0) for c in PRIORITIES)
    reject = sum(stats.get(f"rejected_{c}", 0) for c in PRIORITIES)
    units = stats.get("queue_units_interactive", 0.0) + stats.get(
        "queue_units_batch", 0.0
    )
    hits = stats.get("plan_cache_hits", 0)
    misses = stats.get("plan_cache_misses", 0)
    hit_pct = 100.0 * hits / (hits + misses) if (hits + misses) else 0.0
    parts = [
        "repro service stats:",
        f"v={stats.get('stats_version', STATS_VERSION)}",
    ]
    if "shards_reporting" in stats:
        parts.append(f"shards={stats['shards_reporting']:.0f}")
    elif stats.get("n_shards", 1) > 1:
        parts.append(
            f"shard={stats.get('shard_id', 0):.0f}/{stats['n_shards']:.0f}"
        )
    parts += [
        f"up={stats.get('uptime_s', 0):.0f}s",
        f"conns={stats.get('connections_open', 0)}",
        f"queue={stats.get('queue_depth', 0)}",
        f"units={units:.2f}/{stats.get('work_capacity_units', 0):.0f}",
        f"admit={admit}",
        f"reject={reject}",
        f"plan_hit={hit_pct:.0f}%",
        f"batch_fill={stats.get('batch_fill_ewma', 0.0):.2f}",
        f"drain={stats.get('drain_rate_units_s', 0.0):.1f}u/s",
    ]
    return " ".join(parts)


__all__ = [
    "STATS_VERSION",
    "CODEC_WORK_CLASS",
    "PLAN_CODECS",
    "DERIVE_SURCHARGE",
    "DECODE_WORK_CLASS",
    "MIN_UNITS",
    "DEFAULT_DRAIN_RATE",
    "Ewma",
    "WorkEstimate",
    "CostModel",
    "AdmissionLimits",
    "AdmissionSnapshot",
    "AdmitDecision",
    "decide",
    "TokenBucket",
    "AdmissionController",
    "ServiceMetrics",
    "aggregate_snapshots",
    "format_stats_line",
]
