"""Asyncio front end: ``python -m repro serve`` (or ``repro serve``).

One :class:`~repro.service.scheduler.CompressionService` serves every
connection; each connection handler reads frames sequentially (request
concurrency comes from having many connections, which is how the shared
scheduler queue sees interleaved traffic to batch).  Errors are mapped to
protocol responses at this boundary:

* :class:`ServiceOverloadedError` -> RETRY with the suggested delay and
  the rejecting admission rule's name — the *normal* outcome under
  burst load, not a failure;
* any :class:`ReproError` / ``ValueError`` / ``KeyError`` / ``OSError``
  -> ERROR with a one-line message (tracebacks stay server-side);
* a malformed frame -> ERROR, then the connection is dropped (framing
  can no longer be trusted).

With ``stats_interval`` > 0 in the service config the server also logs
one compact snapshot line per interval (queue depth in work units,
admit / reject counts, plan-cache hit rate, batch fill, drain rate) —
rendered from the same snapshot dict the STATS frame serves, so a log
line and a ``repro serve-stats`` table never disagree.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Union

import numpy as np

from repro.core.plan_cache import PlanLRU
from repro.errors import (
    ProtocolError,
    ReproError,
    ServiceOverloadedError,
)
from repro.service import protocol
from repro.service.admission import format_stats_line
from repro.service.planbus import PlanBusEndpoint
from repro.service.scheduler import CompressionService, ServiceConfig


class ServiceServer:
    """Wrap a :class:`CompressionService` in an asyncio stream server.

    ``reuse_port=True`` binds with ``SO_REUSEPORT`` so N shard processes
    can listen on one (host, port) and let the kernel distribute accepts
    (DESIGN.md §14); the default is a plain exclusive bind.
    """

    def __init__(
        self,
        service: CompressionService,
        host: str = "127.0.0.1",
        port: int = 0,
        reuse_port: bool = False,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # 0 = pick a free port; updated once listening
        self.reuse_port = reuse_port
        self._server: Optional[asyncio.AbstractServer] = None
        self._stats_task: Optional[asyncio.Task] = None

    async def start(self) -> None:
        await self.service.start()
        kwargs = {"reuse_port": True} if self.reuse_port else {}
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, **kwargs
        )
        self.port = self._server.sockets[0].getsockname()[1]
        interval = getattr(self.service.config, "stats_interval", 0.0)
        if interval and interval > 0:
            self._stats_task = asyncio.ensure_future(
                self._log_stats_periodically(float(interval))
            )

    async def close(self) -> None:
        if self._stats_task is not None:
            self._stats_task.cancel()
            try:
                await self._stats_task
            except asyncio.CancelledError:
                pass
            self._stats_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def _log_stats_periodically(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            print(format_stats_line(self.service.stats()), flush=True)

    # ------------------------------------------------------------- plumbing
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.service.metrics.connection_opened()
        try:
            while True:
                try:
                    body = await protocol.read_frame(reader)
                except ProtocolError as exc:
                    writer.write(protocol.frame(protocol.encode_error(str(exc))))
                    await writer.drain()
                    break
                if body is None:
                    break
                response = await self._respond(body)
                writer.write(protocol.frame(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # server shutdown while blocked on read_frame; returning (not
            # re-raising) keeps asyncio.streams' connection_made callback
            # from logging the retrieved CancelledError at close
            pass
        finally:
            self.service.metrics.connection_closed()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, body: bytes) -> bytes:
        try:
            request = protocol.decode_request(body)
        except (ProtocolError, ValueError, TypeError) as exc:
            # beyond ProtocolError, a forged body can fail deeper in the
            # decode (np.dtype on a garbage string -> TypeError, invalid
            # UTF-8 -> UnicodeDecodeError, reshape -> ValueError); all of
            # them are "malformed frame" and get the ERROR response
            return protocol.encode_error(str(exc))
        try:
            result = await self.service.handle(request)
        except ServiceOverloadedError as exc:
            return protocol.encode_retry(exc.retry_after, exc.reason)
        except Exception as exc:
            # this is THE error-mapping boundary: anything a handler can
            # raise (ReproError, KeyError, OSError, MemoryError, ...)
            # becomes a one-line ERROR frame and the connection lives on.
            # CancelledError is a BaseException and still propagates.
            msg = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
            return protocol.encode_error(str(msg) or type(exc).__name__)
        if isinstance(request, protocol.CompressRequest):
            response = protocol.encode_ok_bytes(result)
        elif isinstance(
            request, (protocol.DecompressRequest, protocol.ReadSlabRequest)
        ):
            response = protocol.encode_ok_array(np.asarray(result))
        elif isinstance(request, protocol.StatsRequest):
            response = protocol.encode_ok_kv(result)
        else:
            response = protocol.encode_ok_empty()
        if len(response) > protocol.MAX_FRAME:
            # a result that cannot be framed must degrade to an ERROR
            # response, not let frame() raise past the error boundary
            # and kill the connection after the work was already done
            return protocol.encode_error(
                f"result of {len(response)} bytes exceeds the "
                f"{protocol.MAX_FRAME}-byte frame cap"
            )
        return response


class ShardRuntime:
    """One shard's complete serve stack, wired and reusable.

    This is the unit the multi-process mode replicates: config ->
    plan cache (with the replication hook when a bus endpoint is given)
    -> :class:`CompressionService` -> :class:`ServiceServer`.  The
    single-shard ``repro serve`` path builds exactly one of these with no
    bus; ``repro serve --shards N`` builds one per child process with a
    :class:`~repro.service.planbus.PlanBusEndpoint` connecting it to its
    peers (see :mod:`repro.service.sharding`).

    The shard's own mutable state — plan cache, metrics, admission —
    lives entirely inside this object and never crosses a process
    boundary (RL011); only pickled :class:`FrozenPlan` payloads and
    stats snapshots travel, over the bus.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        reuse_port: bool = False,
        bus: Optional[PlanBusEndpoint] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.bus = bus
        self.plans = PlanLRU(
            self.config.plan_cache_size,
            on_derive=bus.publish_plan if bus is not None else None,
        )
        self.service = CompressionService(
            self.config,
            plans=self.plans,
            extra_stats=bus.stats if bus is not None else None,
        )
        self.server = ServiceServer(
            self.service, host, port, reuse_port=reuse_port
        )

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    async def start(self) -> None:
        """Start serving; then announce readiness on the bus (if any)."""
        await self.server.start()
        if self.bus is not None:
            self.bus.attach(
                asyncio.get_running_loop(), self.plans, self.stats
            )
            self.bus.hello(self.server.port)

    async def close(self) -> None:
        if self.bus is not None:
            self.bus.detach()
        await self.server.close()

    async def serve_forever(self) -> None:
        await self.server.serve_forever()

    def stats(self) -> Dict[str, Union[int, float]]:
        return self.service.stats()


def run_server(
    host: str = "127.0.0.1",
    port: int = 9753,
    config: Optional[ServiceConfig] = None,
) -> int:
    """Blocking entry point for the CLI: serve until interrupted.

    Prints one ``repro service listening on HOST:PORT`` line once the
    socket is bound (``--port 0`` picks a free port, so callers — the CI
    smoke test included — parse the actual port from this line).

    This is the single-shard path: one :class:`ShardRuntime`, no bus.
    ``repro serve --shards N`` goes through
    :func:`repro.service.sharding.run_sharded` instead.
    """

    async def _main() -> None:
        runtime = ShardRuntime(config, host, port)
        await runtime.start()
        print(
            f"repro service listening on {runtime.host}:{runtime.port}",
            flush=True,
        )
        try:
            await runtime.serve_forever()
        finally:
            await runtime.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


__all__ = ["ServiceServer", "ShardRuntime", "run_server"]
