"""Bounded async job scheduler with plan-cached compression.

The service's execution model, front to back:

* Requests enter through :meth:`CompressionService.handle` and pass
  **cost-aware admission** (:mod:`repro.service.admission`): the cost
  model predicts the request's work units from its metadata, and the
  admission controller checks that prediction against the work-unit
  budget, the batch-class share, and the client's token bucket — not
  just a job count.  A rejected request fails immediately with
  :class:`ServiceOverloadedError` (carrying a drain-rate-derived
  ``retry_after`` and the rejecting rule's name) instead of buffering
  unboundedly — load sheds at the door, which keeps both memory *and
  queueing latency* proportional to the configured budget rather than
  to the burst.
* Admitted jobs join one of two priority deques; the scheduler drains
  ``interactive`` strictly ahead of ``batch``, so bulk traffic can fill
  its share of the budget without sitting in front of latency-sensitive
  requests.
* One scheduler task drains the queues.  Each cycle it takes every job
  that is already waiting (up to ``batch_max``, interactive first) and
  groups the compress jobs by codec configuration — *per-codec
  batching*: all chunks of all fields in a group are dispatched to the
  process pool as one burst, so small requests from different
  connections share fork/IPC overhead the way chunks of one big field
  already do.
* Every job transition (admitted / rejected / started / finished) feeds
  the :class:`~repro.service.admission.ServiceMetrics` registry, and
  :meth:`CompressionService.stats` snapshots it — the versioned STATS
  frame the server, clients, and ``repro serve-stats`` render.
* Per-field work splits into the derivation and execution halves from
  PR 3 (:mod:`repro.core.plan_cache`).  Derivation — sampling, Algorithm
  1 selection, the Eq. 5 (alpha, beta) search — is the amortizable half,
  so its result is kept in a :class:`~repro.core.plan_cache.PlanLRU`
  keyed by (codec config, bound request, field signature).  Warm traffic
  on a field family skips tuning entirely and goes straight to
  execution; the quantizer still enforces the error bound point-wise on
  every request, so a cache hit can never loosen the guarantee.
* Execution runs off the event loop: chunk jobs go to the long-lived
  process pool (:class:`~repro.parallel.executor.ChunkWorkPool`) when
  ``processes > 1``, otherwise to a small thread executor (numpy releases
  the GIL for the hot kernels, and tests stay fork-free).

Container bytes are assembled with the same :class:`ChunkedWriter` walk
as :func:`repro.chunked.api.compress_chunked_to_file`, and hyperslab
reads execute the same :meth:`ChunkedFile.slab_plan` the library path
runs — byte/bit identity between served and in-process results is by
construction, and pinned in ``tests/service``.
"""

from __future__ import annotations

import asyncio
import io
import math
import os
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    Awaitable,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.chunked.api import (
    ChunkedFile,
    _resolve_eb_streaming,
    compress_chunked,
)
from repro.chunked.container import ChunkedWriter
from repro.chunked.tiling import Slab, grid_for
from repro.compressors.base import decompress_any, get_compressor
from repro.core.header import parse_header
from repro.core.plan_cache import PlanLRU, field_signature, plan_cache_key
from repro.errors import (
    DeadlineExceededError,
    DecompressionError,
    ServiceOverloadedError,
)
from repro.parallel.executor import ChunkWorkPool, _decompress_one
from repro.parallel.slab import Slab as ShmSlab
from repro.service.admission import (
    AdmissionController,
    AdmissionLimits,
    CostModel,
    ServiceMetrics,
    WorkEstimate,
)
from repro.service.protocol import (
    MAX_FRAME,
    PRIORITIES,
    CompressRequest,
    DecompressRequest,
    PingRequest,
    ReadSlabRequest,
    Request,
    StatsRequest,
    validate_deadline_ms,
    validate_priority,
)
from repro.utils import normalize_bound, validate_field_lazy


#: chunks packed per shared-memory slab batch on the pooled compress
#: path; with the 4x-workers resident-chunk window this yields
#: 2x-workers in-flight batches — enough to keep every worker busy with
#: one batch queued behind it, while one submit amortizes the dispatch
#: overhead of _COMPRESS_BATCH_CHUNKS chunks (matches the default
#: batch sizing of compress_chunks_streaming)
_COMPRESS_BATCH_CHUNKS = 2


@dataclass
class ServiceConfig:
    """Knobs of one service instance.

    ``processes <= 1`` keeps execution in-process (thread executor, no
    forks) — the right default for tests and small deployments; larger
    values fan chunk jobs out over a persistent process pool.

    ``serve_root`` gates path-based hyperslab reads: ``None`` (the
    default) refuses them outright, and a directory restricts them to
    containers under it — a remote client must never get an arbitrary
    file-read/probe primitive over the server's filesystem.

    Admission knobs (see :mod:`repro.service.admission`):
    ``max_work_units`` bounds the *predicted work* queued at once (the
    latency budget), ``batch_share`` the fraction of it bulk-priority
    traffic may occupy, and ``client_rate`` / ``client_burst`` the
    per-client token-bucket quota (units/s, units) applied to requests
    that carry a ``client_id``.  ``cost_aware=False`` degrades to the
    PR 4 depth-only policy (single FIFO, job-count bound) — kept as a
    measurable baseline for the load generator.  ``stats_interval`` > 0
    makes the server log one snapshot line that often (seconds).
    """

    processes: int = 1
    max_queue: int = 64
    batch_max: int = 8
    plan_cache_size: int = 128
    retry_after: float = 0.05
    io_threads: int = 4
    open_files: int = 8
    serve_root: Optional[str] = None
    max_work_units: float = 64.0
    batch_share: float = 0.5
    client_rate: float = 16.0
    client_burst: float = 48.0
    cost_aware: bool = True
    stats_interval: float = 0.0
    #: identity of this instance within a sharded deployment (DESIGN.md
    #: §14); the default (0 of 1) is the unsharded single-process serve
    shard_id: int = 0
    n_shards: int = 1


@dataclass
class _Job:
    request: Request
    future: "asyncio.Future"
    estimate: WorkEstimate
    priority: str
    enqueued: float
    started: float = 0.0
    #: absolute ``time.monotonic()`` deadline (None = no client deadline)
    deadline: Optional[float] = None
    deadline_ms: float = 0.0


@dataclass
class _PreparedCompress:
    """Everything derivation resolved for one compress job."""

    codec_name: str
    codec_kwargs: Dict
    codec_inst: object
    grid: object
    eb: float
    plan: Optional[object]
    data: np.ndarray
    dtype: np.dtype


class CompressionService:
    """Async compression service: bounded queue, batching, plan cache."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        plans: Optional[PlanLRU] = None,
        extra_stats: Optional[
            Callable[[], Dict[str, Union[int, float]]]
        ] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self._pending: Dict[str, "Deque[_Job]"] = {
            cls: deque() for cls in PRIORITIES
        }
        self._wakeup = asyncio.Event()
        # a sharded runtime injects a PlanLRU wired with its replication
        # hook (repro.service.planbus); standalone use builds a plain one
        self.plans = (
            plans if plans is not None else PlanLRU(self.config.plan_cache_size)
        )
        self._extra_stats = extra_stats
        self.metrics = ServiceMetrics()
        self.cost_model = CostModel()
        self.admission = AdmissionController(
            AdmissionLimits(
                max_queue_jobs=max(1, self.config.max_queue),
                max_work_units=self.config.max_work_units,
                batch_share=self.config.batch_share,
                min_retry_after=self.config.retry_after,
            ),
            client_rate=self.config.client_rate,
            client_burst=self.config.client_burst,
        )
        # the pool supervisor reports crash/retry/respawn/degrade events
        # straight into the metrics registry (pool_event is thread-safe)
        self._pool = ChunkWorkPool(
            self.config.processes, on_event=self.metrics.pool_event
        )
        self._threads = ThreadPoolExecutor(
            max_workers=max(2, self.config.io_threads),
            thread_name_prefix="repro-svc",
        )
        self._files: "OrderedDict[str, Tuple[Tuple[int, int], ChunkedFile]]" = (
            OrderedDict()
        )
        self._task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        if self._task is None:
            self._task = asyncio.create_task(self._run(), name="repro-scheduler")

    async def close(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        # jobs the scheduler was processing when cancelled are resolved
        # by _run's CancelledError handler; here drain the still-queued
        # ones — no caller may hang on a future nobody will resolve
        for pending in self._pending.values():
            while pending:
                job = pending.popleft()
                if not job.future.done():
                    job.future.set_exception(
                        ServiceOverloadedError(
                            self.config.retry_after, "shutting-down"
                        )
                    )
        for _, (_, cf) in self._files.items():
            cf.close()
        self._files.clear()
        self._pool.shutdown()
        self._threads.shutdown(wait=True)

    # ------------------------------------------------------------ admission
    def submit(self, request: Request) -> "asyncio.Future":
        """Admit and enqueue a job, or raise :class:`ServiceOverloadedError`.

        Admission is synchronous and non-blocking by design: the caller
        (one connection handler among many) must learn *immediately*
        whether the job was accepted, so it can push the RETRY response
        instead of holding the connection while the queue drains.  The
        decision is cost-aware — the cost model's predicted work units
        are checked against the work budget, the batch-class share, and
        the client's token bucket (see :mod:`repro.service.admission`).
        """
        loop = asyncio.get_running_loop()
        if (
            isinstance(request, CompressRequest)
            and request.bound is not None
        ):
            # fold the unified bound= spelling into the legacy kwarg pair
            # once, at admission, so the cost model, the plan-cache key,
            # and derivation all see one canonical form
            spec = normalize_bound(
                request.bound, request.error_bound, request.rel_error_bound
            )
            request.bound = None
            request.error_bound = None if spec.is_relative else spec.value
            request.rel_error_bound = spec.value if spec.is_relative else None
        priority = validate_priority(
            getattr(request, "priority", "interactive")
        )
        attempt = int(getattr(request, "attempt", 0))
        client_id = getattr(request, "client_id", None)
        estimate = self.cost_model.predict(request, self.plans)
        decision = self.admission.try_admit(
            estimate.units,
            priority,
            client_id,
            depth_only=not self.config.cost_aware,
        )
        if not decision.admitted:
            self.metrics.reject(priority, decision.reason)
            raise ServiceOverloadedError(decision.retry_after, decision.reason)
        self.metrics.admit(priority, attempt)
        future = loop.create_future()
        deadline_ms = getattr(request, "deadline_ms", None)
        if deadline_ms is not None:
            deadline_ms = validate_deadline_ms(deadline_ms)
        now = time.monotonic()
        job = _Job(
            request=request,
            future=future,
            estimate=estimate,
            priority=priority,
            enqueued=now,
            deadline=(
                now + deadline_ms / 1e3 if deadline_ms is not None else None
            ),
            deadline_ms=deadline_ms or 0.0,
        )
        future.add_done_callback(lambda fut, job=job: self._on_job_done(job, fut))
        # depth-only mode is also FIFO-only: everything shares one lane,
        # which is exactly the PR 4 behavior the load generator compares
        # against
        lane = priority if self.config.cost_aware else "interactive"
        self._pending[lane].append(job)
        self._wakeup.set()
        return future

    def _on_job_done(self, job: _Job, fut: "asyncio.Future") -> None:
        """Single exit point for admitted jobs (done/failed/cancelled)."""
        self.admission.release(job.estimate.units, job.priority)
        ok = (not fut.cancelled()) and fut.exception() is None
        duration = time.monotonic() - job.started if job.started else 0.0
        if ok and duration > 0.0:
            self.admission.observe_drain(job.estimate.units, duration)
        self.metrics.job_finished(
            job.priority,
            job.estimate.kind,
            ok,
            duration,
            job.estimate.nbytes,
            job.estimate.codec,
        )

    async def handle(self, request: Request) -> object:
        """Process one request end-to-end (the in-process entry point)."""
        if isinstance(request, PingRequest):
            return None
        if isinstance(request, StatsRequest):
            return self.stats()
        return await self.submit(request)

    def stats(self) -> Dict[str, Union[int, float]]:
        """Structured snapshot: scheduler + admission + metrics + plans.

        This is the versioned STATS frame payload (``stats_version``
        names the layout).  Flat int/float values only — the wire format
        is the protocol's typed kv map.
        """
        out: Dict[str, Union[int, float]] = {
            "shard_id": self.config.shard_id,
            "n_shards": self.config.n_shards,
            "queue_depth": sum(len(q) for q in self._pending.values()),
            "queue_depth_interactive": len(self._pending["interactive"]),
            "queue_depth_batch": len(self._pending["batch"]),
            "max_queue": self.config.max_queue,
            "batch_max": self.config.batch_max,
            "processes": self.config.processes,
            "cost_aware": int(self.config.cost_aware),
            "open_containers": len(self._files),
        }
        health = self._pool.health()
        out["pool_degraded"] = int(health["pool_mode"] == "serial")
        out["pool_generation"] = int(health["pool_generation"])
        out["pool_consecutive_crashes"] = int(
            health["pool_consecutive_crashes"]
        )
        out.update(self.metrics.snapshot())
        out.update(self.admission.stats())
        out.update(self.plans.stats())
        if self._extra_stats is not None:
            out.update(self._extra_stats())
        return out

    # ------------------------------------------------------------ scheduler
    async def _collect_batch(self) -> List[_Job]:
        """Up to ``batch_max`` waiting jobs, interactive strictly first.

        In cost-aware mode at most ONE batch-lane job rides per dispatch
        group: a group is executed to completion before the lanes are
        consulted again, so every batch job in it is head-of-line delay
        for any interactive request that arrives mid-group.  Capping the
        batch lane at one bounds that delay to a single batch job's
        service time — the same worst case an unsaturated service has —
        at no throughput cost (an empty interactive lane just yields
        back-to-back one-job groups).
        """
        while True:
            batch: List[_Job] = []
            for cls in PRIORITIES:
                limit = self.config.batch_max
                if cls == "batch" and self.config.cost_aware:
                    limit = min(limit, len(batch) + 1)
                pending = self._pending[cls]
                while pending and len(batch) < limit:
                    batch.append(pending.popleft())
            if batch:
                return batch
            self._wakeup.clear()
            await self._wakeup.wait()

    async def _run(self) -> None:
        while True:
            collected = await self._collect_batch()
            now = time.monotonic()
            batch: List[_Job] = []
            for job in collected:
                # queued-past-deadline jobs are shed here, at dispatch:
                # the work has not started, so failing fast costs nothing
                # and frees their admission units for live requests
                if job.deadline is not None and now >= job.deadline:
                    self.metrics.deadline_missed(job.priority, "queued")
                    if not job.future.done():
                        job.future.set_exception(
                            DeadlineExceededError(job.deadline_ms, "queued")
                        )
                    continue
                job.started = now
                self.metrics.job_started(job.priority, now - job.enqueued)
                batch.append(job)
            if not batch:
                continue
            self.metrics.batch_dispatched(len(batch), self.config.batch_max)
            try:
                await self._run_batch(batch)
            except asyncio.CancelledError:
                # close() cancelled us mid-batch: resolve the in-flight
                # futures so no caller blocks forever on .result()
                for j in batch:
                    if not j.future.done():
                        j.future.set_exception(
                            ServiceOverloadedError(
                                self.config.retry_after, "shutting-down"
                            )
                        )
                raise
            except Exception as exc:  # last resort: fail the batch's jobs,
                for j in batch:       # never the scheduler task itself
                    if not j.future.done():
                        j.future.set_exception(exc)

    async def _run_batch(self, batch: List[_Job]) -> None:
        # group compress jobs by codec configuration; everything else
        # runs individually (reads are already chunk-concurrent inside)
        groups: Dict[tuple, List[_Job]] = {}
        singles: List[_Job] = []
        for job in batch:
            if isinstance(job.request, CompressRequest):
                req = job.request
                key = (req.codec, tuple(sorted(req.codec_kwargs.items())))
                groups.setdefault(key, []).append(job)
            else:
                singles.append(job)
        for group in groups.values():
            await self._run_compress_group(group)
        for job in singles:
            await self._run_single(job)

    async def _guard(self, job: _Job, coro: Awaitable[object]) -> None:
        """Await a job coroutine, routing the outcome into its future.

        A job with a client deadline runs under ``asyncio.wait_for``:
        hitting the deadline cancels the work coroutine (which cascades
        into the wrapped pool futures, so abandoned chunk results are
        dropped by the pool supervisor) and resolves the job's future
        with :class:`DeadlineExceededError` — releasing its admission
        units through the ordinary ``_on_job_done`` exit path.
        """
        try:
            if job.deadline is not None:
                remaining = job.deadline - time.monotonic()
                result = await asyncio.wait_for(coro, max(0.0, remaining))
            else:
                result = await coro
        except asyncio.TimeoutError:
            self.metrics.deadline_missed(job.priority, "running")
            if not job.future.done():
                job.future.set_exception(
                    DeadlineExceededError(job.deadline_ms, "running")
                )
        except (Exception, asyncio.CancelledError) as exc:
            if isinstance(exc, asyncio.CancelledError):
                raise
            if not job.future.done():
                job.future.set_exception(exc)
        else:
            if not job.future.done():
                job.future.set_result(result)

    # ------------------------------------------------------------- compress
    async def _run_compress_group(self, jobs: List[_Job]) -> None:
        loop = asyncio.get_running_loop()
        prepared: List[Optional[_PreparedCompress]] = []
        for job in jobs:
            try:
                prep = await loop.run_in_executor(
                    self._threads, self._prepare_compress, job.request
                )
            except Exception as exc:
                if not job.future.done():
                    job.future.set_exception(exc)
                prepared.append(None)
            else:
                prepared.append(prep)

        if self._pool.parallel:
            # every job in the group submits into the shared pool
            # concurrently (the per-codec batching win), but a group-wide
            # window bounds in-flight slab batches: with
            # _COMPRESS_BATCH_CHUNKS chunks per slab this is the same
            # 4x-workers cap on resident chunk copies that
            # compress_chunks_streaming uses, so a batch of large fields
            # cannot hold 2x-everything resident at once.  _guard routes
            # any failure (incl. a BrokenProcessPool on submit) into the
            # job's future, never into the scheduler.
            window = asyncio.Semaphore(
                max(
                    1,
                    4 * max(1, self.config.processes)
                    // _COMPRESS_BATCH_CHUNKS,
                )
            )
            await asyncio.gather(*[
                self._guard(job, self._compress_pooled(prep, window))
                for job, prep in zip(jobs, prepared)
                if prep is not None
            ])
        else:
            for job, prep in zip(jobs, prepared):
                if prep is None:
                    continue
                await self._guard(
                    job, self._compress_inprocess(job.request, prep)
                )

    def _prepare_compress(self, req: CompressRequest) -> _PreparedCompress:
        """Blocking half: validate, resolve the bound, get/derive the plan."""
        data = validate_field_lazy(req.data)
        codec_inst = get_compressor(req.codec, **req.codec_kwargs)
        grid = grid_for(data.shape, req.chunks)
        spec = normalize_bound(None, req.error_bound, req.rel_error_bound)
        eb, vrange = _resolve_eb_streaming(data, grid, spec)
        plan = None
        if not req.per_chunk_tuning and hasattr(codec_inst, "derive_plan"):
            key = plan_cache_key(
                req.codec,
                req.codec_kwargs,
                spec.mode,
                spec.value,
                field_signature(data, req.family),
            )
            plan = self.plans.get_or_derive(
                key,
                lambda: codec_inst.derive_plan(
                    data, error_bound=eb, data_range=vrange
                ),
            )
        return _PreparedCompress(
            codec_name=req.codec,
            codec_kwargs=req.codec_kwargs,
            codec_inst=codec_inst,
            grid=grid,
            eb=eb,
            plan=plan,
            data=data,
            dtype=data.dtype,
        )

    def _fill_slab(
        self, prep: _PreparedCompress, indices: List[int]
    ) -> Tuple[ShmSlab, List[tuple]]:
        """Blocking half of one slab batch: slice, allocate, pack.

        Runs on the thread executor (slab fill is a memcpy).  On a pack
        failure the slab is released here — afterwards the caller owns
        it and releases it when the pool future resolves.
        """
        views = [prep.data[prep.grid.chunk_slices(i)] for i in indices]
        slab = ShmSlab.create(max(1, sum(int(v.nbytes) for v in views)))
        try:
            descriptors = slab.pack(views)
        except BaseException:
            slab.release()
            raise
        return slab, list(descriptors)

    async def _compress_pooled(
        self, prep: _PreparedCompress, window: asyncio.Semaphore
    ) -> bytes:
        loop = asyncio.get_running_loop()
        size = _COMPRESS_BATCH_CHUNKS

        async def one_batch(indices: List[int]) -> List[bytes]:
            async with window:  # held from slab fill to completion: the
                # bytes of live slabs never exceed the window's batches
                slab, descriptors = await loop.run_in_executor(
                    self._threads, self._fill_slab, prep, indices
                )
                try:
                    blobs = await asyncio.wrap_future(
                        self._pool.submit_compress_batch(
                            prep.codec_name, prep.codec_kwargs,
                            slab.name, descriptors, prep.eb, prep.plan,
                        )
                    )
                finally:
                    # every exit path — success, job failure, deadline
                    # cancellation — unlinks the slab; a worker that is
                    # still mapped keeps its view alive until it closes
                    slab.release()
                return list(blobs)

        indices = [i for i in prep.grid]
        groups = [
            indices[k:k + size] for k in range(0, len(indices), size)
        ]
        blob_lists = await asyncio.gather(*[one_batch(g) for g in groups])
        blobs = [b for lst in blob_lists for b in lst]
        return await loop.run_in_executor(
            self._threads, self._assemble_container, prep, blobs
        )

    async def _compress_inprocess(
        self, req: CompressRequest, prep: _PreparedCompress
    ) -> bytes:
        """In-process execution IS the library path: ``compress_chunked``
        with the resolved absolute bound and the (cached) plan injected —
        byte parity is shared code, not a parallel implementation."""
        loop = asyncio.get_running_loop()

        def run() -> bytes:
            return compress_chunked(
                prep.data,
                codec=prep.codec_name,
                chunks=req.chunks,
                codec_kwargs=prep.codec_kwargs,
                error_bound=prep.eb,
                per_chunk_tuning=req.per_chunk_tuning,
                plan=prep.plan,
            )

        return await loop.run_in_executor(self._threads, run)

    def _assemble_container(
        self, prep: _PreparedCompress, blobs: List[bytes]
    ) -> bytes:
        """Pack chunk streams exactly like ``compress_chunked_to_file``."""
        buf = io.BytesIO()
        with ChunkedWriter(
            buf, prep.codec_inst.codec_id, prep.dtype, prep.grid, prep.eb
        ) as w:
            for i, blob in enumerate(blobs):
                w.write_chunk(i, blob)
        return buf.getvalue()

    # ------------------------------------------------------ decompress/read
    @staticmethod
    def _check_decode_size(
        shape: Sequence[int], dtype: "np.dtype[np.generic]", what: str
    ) -> None:
        """Cap attacker-declared output sizes at the protocol frame cap.

        A forged container header can declare an arbitrarily large field
        in a few bytes; the response has to fit in one frame anyway, so
        anything bigger than :data:`MAX_FRAME` is rejected *before* the
        allocation (exact big-int arithmetic — no int64 wraparound)."""
        nbytes = math.prod(int(n) for n in shape) * np.dtype(dtype).itemsize
        if nbytes > MAX_FRAME:
            raise DecompressionError(
                f"declared {what} of {nbytes} bytes exceeds the "
                f"{MAX_FRAME}-byte service frame cap"
            )

    async def _run_single(self, job: _Job) -> None:
        req = job.request
        if isinstance(req, DecompressRequest):
            await self._guard(job, self._decompress(req))
        elif isinstance(req, ReadSlabRequest):
            await self._guard(job, self._read_slab(req))
        else:
            if not job.future.done():
                job.future.set_exception(
                    TypeError(f"unschedulable request {type(req).__name__}")
                )

    async def _decompress(self, req: DecompressRequest) -> np.ndarray:
        blob = req.blob
        header, _ = parse_header(blob[:64])
        self._check_decode_size(header.shape, header.dtype, "field")
        if not header.is_chunked:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._threads, decompress_any, blob
            )
        cf = ChunkedFile(blob)
        try:
            full = tuple(slice(0, n) for n in cf.shape)
            return await self._read_from(cf, full)
        finally:
            cf.close()

    async def _read_slab(self, req: ReadSlabRequest) -> np.ndarray:
        if isinstance(req.source, (bytes, bytearray, memoryview)):
            cf = ChunkedFile(bytes(req.source))
            try:
                # wire-delivered container: its declared field size is as
                # attacker-controlled as a DECOMPRESS blob's
                self._check_decode_size(cf.shape, cf.dtype, "field")
                return await self._read_from(cf, req.slab)
            finally:
                cf.close()
        cf = await self._open_container(self._resolve_path(str(req.source)))
        return await self._read_from(cf, req.slab)

    def _resolve_path(self, path: str) -> str:
        """Confine path-based reads to ``serve_root`` (refuse without one).

        The resolved real path must stay under the root — symlinks and
        ``..`` segments cannot escape it, and the error for a refused
        path never echoes whether it exists.
        """
        root = self.config.serve_root
        if root is None:
            raise PermissionError(
                "path-based reads are disabled (server started without "
                "a serve root); send the container bytes inline instead"
            )
        root_real = os.path.realpath(root)
        candidate = os.path.realpath(os.path.join(root_real, path))
        if candidate != root_real and not candidate.startswith(
            root_real + os.sep
        ):
            raise PermissionError(
                f"path {path!r} is outside the configured serve root"
            )
        return candidate

    async def _open_container(self, path: str) -> ChunkedFile:
        """Open (or reuse) a server-side container, LRU + mtime-validated."""
        loop = asyncio.get_running_loop()
        st = await loop.run_in_executor(self._threads, os.stat, path)
        stamp = (st.st_mtime_ns, st.st_size)
        cached = self._files.pop(path, None)
        if cached is not None and cached[0] == stamp:
            self._files[path] = cached  # re-insert = move to MRU end
            return cached[1]
        if cached is not None:
            cached[1].close()
        cf = await loop.run_in_executor(self._threads, ChunkedFile, path)
        self._files[path] = (stamp, cf)
        while len(self._files) > self.config.open_files:
            _, (_, old) = self._files.popitem(last=False)
            old.close()
        return cf

    async def _read_from(self, cf: ChunkedFile, slab: Slab) -> np.ndarray:
        """Concurrent-decode execution of ``ChunkedFile.slab_plan``."""
        loop = asyncio.get_running_loop()
        norm, parts = cf.slab_plan(slab)
        out_shape = tuple(s.stop - s.start for s in norm)
        self._check_decode_size(out_shape, cf.dtype, "hyperslab")
        if not parts:
            return np.empty(out_shape, dtype=cf.dtype)
        blobs = await asyncio.gather(*[
            loop.run_in_executor(self._threads, cf.chunk_bytes, i)
            for i, _, _ in parts
        ])
        if self._pool.parallel and len(parts) > 1:
            jobs = [
                (
                    blob,
                    tuple((s.start, s.stop) for s in src),
                    tuple((d.start, d.stop) for d in dst),
                )
                for (_, src, dst), blob in zip(parts, blobs)
            ]
            return await self._read_pooled(out_shape, cf.dtype, jobs)
        out = np.empty(out_shape, dtype=cf.dtype)
        chunks = await asyncio.gather(*[
            loop.run_in_executor(self._threads, _decompress_one, b)
            for b in blobs
        ])
        for (i, src, dst), chunk in zip(parts, chunks):
            out[dst] = chunk[src]
        return out

    async def _read_pooled(
        self,
        out_shape: Tuple[int, ...],
        dtype: "np.dtype[np.generic]",
        jobs: List[Tuple[bytes, tuple, tuple]],
    ) -> np.ndarray:
        """Slab-batched decode: workers write regions into a shared
        output slab (decoded chunks never pickle back), one batch per
        worker times two so stragglers interleave.  The plan's regions
        are disjoint, so concurrent writes never overlap.
        """
        loop = asyncio.get_running_loop()
        dtype = np.dtype(dtype)
        n_batches = max(
            1, min(len(jobs), 2 * max(1, self.config.processes))
        )
        nbytes = dtype.itemsize * math.prod(int(n) for n in out_shape)
        out_slab = await loop.run_in_executor(
            self._threads, ShmSlab.create, max(1, nbytes)
        )
        try:
            await asyncio.gather(*[
                asyncio.wrap_future(
                    self._pool.submit_decompress_into(
                        out_slab.name, out_shape, dtype.str,
                        tuple(jobs[b::n_batches]),
                    )
                )
                for b in range(n_batches)
            ])

            def copy_out() -> np.ndarray:
                view = out_slab.view(0, out_shape, dtype)
                result = np.array(view)
                del view  # the view must not outlive the release below
                return result

            return await loop.run_in_executor(self._threads, copy_out)
        finally:
            out_slab.release()


__all__ = ["CompressionService", "ServiceConfig"]
