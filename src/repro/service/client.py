"""Clients for the compression service.

Two clients, one surface:

* :class:`ServiceClient` is *in-process*: it runs a private event loop on
  a daemon thread, hosts its own
  :class:`~repro.service.scheduler.CompressionService`, and hands request
  dataclasses straight to the scheduler — no sockets, no serialization.
  It exercises the full admission/batching/plan-cache machinery, which is
  exactly what the unit tests want (and what an application embedding the
  service as a library gets).
* :class:`RemoteClient` speaks the length-prefixed binary protocol over a
  plain blocking TCP socket to a ``repro serve`` process.  RETRY
  responses (backpressure) raise :class:`ServiceOverloadedError` by
  default; ``retries > 0`` opts into honoring the server's
  ``retry_after`` hint with a bounded retry loop.

Both expose ``compress`` / ``decompress`` / ``read`` / ``stats`` /
``ping`` with the same signatures and are context managers.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import (
    ProtocolError,
    RemoteServiceError,
    ServiceOverloadedError,
)
from repro.service import protocol
from repro.service.scheduler import CompressionService, ServiceConfig


def _compress_request(
    data: np.ndarray,
    codec: str,
    error_bound: Optional[float],
    rel_error_bound: Optional[float],
    chunks,
    codec_kwargs: Optional[Dict],
    family: Optional[str],
    per_chunk_tuning: bool,
) -> protocol.CompressRequest:
    if chunks is not None and not isinstance(chunks, int):
        chunks = tuple(chunks)
    return protocol.CompressRequest(
        data=np.asarray(data),
        codec=codec,
        codec_kwargs=dict(codec_kwargs or {}),
        error_bound=error_bound,
        rel_error_bound=rel_error_bound,
        chunks=chunks,
        family=family,
        per_chunk_tuning=per_chunk_tuning,
    )


class ServiceClient:
    """In-process client: private loop thread + embedded service."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        self.service = CompressionService(config)
        self._call(self.service.start())

    def _call(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    # ----------------------------------------------------------------- api
    def ping(self) -> None:
        self._call(self.service.handle(protocol.PingRequest()))

    def compress(
        self,
        data: np.ndarray,
        codec: str = "qoz",
        error_bound: Optional[float] = None,
        rel_error_bound: Optional[float] = None,
        chunks: Union[int, Sequence[int], None] = None,
        codec_kwargs: Optional[Dict] = None,
        family: Optional[str] = None,
        per_chunk_tuning: bool = False,
    ) -> bytes:
        req = _compress_request(
            data, codec, error_bound, rel_error_bound, chunks,
            codec_kwargs, family, per_chunk_tuning,
        )
        return self._call(self.service.handle(req))

    def decompress(self, blob: bytes) -> np.ndarray:
        return self._call(
            self.service.handle(protocol.DecompressRequest(blob=bytes(blob)))
        )

    def read(self, source: Union[bytes, str], slab) -> np.ndarray:
        return self._call(
            self.service.handle(
                protocol.ReadSlabRequest(source=source, slab=tuple(slab))
            )
        )

    def stats(self) -> Dict:
        return self._call(self.service.handle(protocol.StatsRequest()))

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._call(self.service.close())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class RemoteClient:
    """Blocking socket client for a running ``repro serve`` endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9753,
        timeout: float = 300.0,
        retries: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.retries = retries
        self._sock = socket.create_connection((host, port), timeout=timeout)

    # ----------------------------------------------------------------- rpc
    def _rpc(self, request: protocol.Request):
        op = protocol.op_for_request(request)
        payload = protocol.frame(protocol.encode_request(request))
        attempts = self.retries + 1
        for attempt in range(attempts):
            self._sock.sendall(payload)
            resp = protocol.decode_response(
                protocol.read_frame_sync(self._sock), op
            )
            if resp.status == protocol.ST_OK:
                return resp
            if resp.status == protocol.ST_ERROR:
                raise RemoteServiceError(resp.message or "remote error")
            # ST_RETRY: honor the hint if the caller allowed retries
            if attempt + 1 >= attempts:
                raise ServiceOverloadedError(resp.retry_after or 0.05)
            time.sleep(resp.retry_after or 0.05)
        raise ProtocolError("unreachable")  # pragma: no cover

    # ----------------------------------------------------------------- api
    def ping(self) -> None:
        self._rpc(protocol.PingRequest())

    def compress(
        self,
        data: np.ndarray,
        codec: str = "qoz",
        error_bound: Optional[float] = None,
        rel_error_bound: Optional[float] = None,
        chunks: Union[int, Sequence[int], None] = None,
        codec_kwargs: Optional[Dict] = None,
        family: Optional[str] = None,
        per_chunk_tuning: bool = False,
    ) -> bytes:
        req = _compress_request(
            data, codec, error_bound, rel_error_bound, chunks,
            codec_kwargs, family, per_chunk_tuning,
        )
        return self._rpc(req).blob

    def decompress(self, blob: bytes) -> np.ndarray:
        return self._rpc(protocol.DecompressRequest(blob=bytes(blob))).array

    def read(self, source: Union[bytes, str], slab) -> np.ndarray:
        return self._rpc(
            protocol.ReadSlabRequest(source=source, slab=tuple(slab))
        ).array

    def stats(self) -> Dict:
        return self._rpc(protocol.StatsRequest()).mapping

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


__all__ = ["ServiceClient", "RemoteClient"]
