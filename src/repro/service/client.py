"""Clients for the compression service.

Two clients, one surface:

* :class:`ServiceClient` is *in-process*: it runs a private event loop on
  a daemon thread, hosts its own
  :class:`~repro.service.scheduler.CompressionService`, and hands request
  dataclasses straight to the scheduler — no sockets, no serialization.
  It exercises the full admission/batching/plan-cache machinery, which is
  exactly what the unit tests want (and what an application embedding the
  service as a library gets).
* :class:`RemoteClient` speaks the length-prefixed binary protocol over a
  plain blocking TCP socket to a ``repro serve`` process.  RETRY
  responses (backpressure) raise :class:`ServiceOverloadedError` by
  default; ``retries > 0`` opts into honoring the server's
  ``retry_after`` hint with a bounded retry loop.  The retry sleep is
  *jittered* — ``hint * (0.5 + rng.random())`` — so a burst of clients
  rejected together does not reconverge on the server as a thundering
  herd one hint later; each retry also re-encodes the request with a
  bumped ``attempt`` counter, which is how the server's ``retried_*``
  stats distinguish retries from fresh arrivals.

  ``reconnects > 0`` additionally survives the *connection* dying
  mid-request (a shard killed under a sharded deployment, a proxy reset):
  a send/receive that fails with
  :class:`~repro.errors.ServiceConnectionError` / ``OSError`` closes the
  socket, dials a fresh connection (jittered backoff, growing with
  consecutive drops), and resends — safe because every service request
  is idempotent.  Under ``repro serve --shards N`` the fresh connection
  lands on a live shard, which serves byte-identical results, so a shard
  death costs the client one reconnect and nothing else.  Once the
  per-request budget is exhausted the failure surfaces as
  :class:`~repro.errors.ServiceConnectionError`.  RETRY backpressure
  hints are honored independently of (and in addition to) this path.

Both expose ``compress`` / ``decompress`` / ``read`` / ``stats`` /
``ping`` with the same signatures and are context managers.  Work
requests accept ``priority`` (``interactive`` / ``batch``) and
``client_id`` keywords; a constructor-level ``client_id`` is the default
identity for per-client quota accounting.  ``deadline_ms`` attaches a
server-enforced deadline: a job still queued past it is shed, a running
one is cancelled, and either way the client gets a one-line error
(:class:`~repro.errors.DeadlineExceededError` in-process, an ERROR frame
over the wire) instead of an unbounded wait.
"""

from __future__ import annotations

import asyncio
import os
import random
import socket
import threading
import time
from typing import (
    Any,
    Coroutine,
    Dict,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
    Union,
    cast,
)

import numpy as np

from repro.errors import (
    ProtocolError,
    RemoteServiceError,
    ServiceConnectionError,
    ServiceOverloadedError,
)
from repro.service import protocol
from repro.service.scheduler import CompressionService, ServiceConfig
from repro.utils import BoundLike

_T = TypeVar("_T")

#: hyperslab spec as clients accept it (mirrors repro.chunked.tiling.Slab)
SlabArg = Sequence[Union[slice, Tuple[int, int], None]]


def _compress_request(
    data: np.ndarray,
    codec: str,
    error_bound: Optional[float],
    rel_error_bound: Optional[float],
    chunks: Union[int, Sequence[int], None],
    codec_kwargs: Optional[Dict],
    family: Optional[str],
    per_chunk_tuning: bool,
    priority: str,
    client_id: Optional[str],
    deadline_ms: Optional[float] = None,
    bound: Optional[BoundLike] = None,
    shard_key: Optional[str] = None,
) -> protocol.CompressRequest:
    if chunks is not None and not isinstance(chunks, int):
        chunks = tuple(chunks)
    protocol.validate_priority(priority)
    if deadline_ms is not None:
        deadline_ms = protocol.validate_deadline_ms(deadline_ms)
    return protocol.CompressRequest(
        data=np.asarray(data),
        codec=codec,
        codec_kwargs=dict(codec_kwargs or {}),
        error_bound=error_bound,
        rel_error_bound=rel_error_bound,
        chunks=chunks,
        family=family,
        per_chunk_tuning=per_chunk_tuning,
        priority=priority,
        client_id=client_id,
        deadline_ms=deadline_ms,
        bound=bound,
        shard_key=shard_key,
    )


class ServiceClient:
    """In-process client: private loop thread + embedded service."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        client_id: Optional[str] = None,
    ) -> None:
        self.client_id = client_id
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        self.service = CompressionService(config)
        self._call(self.service.start())

    def _call(self, coro: Coroutine[Any, Any, _T]) -> _T:
        # synchronous bridge onto the private loop thread; .result() here
        # blocks the *caller's* thread, never the loop (RL002's concern)
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    # ----------------------------------------------------------------- api
    def ping(self) -> None:
        self._call(self.service.handle(protocol.PingRequest()))

    def compress(
        self,
        data: np.ndarray,
        codec: str = "qoz",
        error_bound: Optional[float] = None,
        rel_error_bound: Optional[float] = None,
        chunks: Union[int, Sequence[int], None] = None,
        codec_kwargs: Optional[Dict] = None,
        family: Optional[str] = None,
        per_chunk_tuning: bool = False,
        priority: str = "interactive",
        client_id: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        bound: Optional[BoundLike] = None,
        shard_key: Optional[str] = None,
    ) -> bytes:
        req = _compress_request(
            data, codec, error_bound, rel_error_bound, chunks,
            codec_kwargs, family, per_chunk_tuning,
            priority, client_id or self.client_id, deadline_ms, bound,
            shard_key,
        )
        return cast(bytes, self._call(self.service.handle(req)))

    def decompress(
        self,
        blob: bytes,
        priority: str = "interactive",
        client_id: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        protocol.validate_priority(priority)
        return cast(
            np.ndarray,
            self._call(
                self.service.handle(
                    protocol.DecompressRequest(
                        blob=bytes(blob),
                        priority=priority,
                        client_id=client_id or self.client_id,
                        deadline_ms=deadline_ms,
                    )
                )
            ),
        )

    def read(
        self,
        source: Union[bytes, str],
        slab: SlabArg,
        priority: str = "interactive",
        client_id: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        protocol.validate_priority(priority)
        return cast(
            np.ndarray,
            self._call(
                self.service.handle(
                    protocol.ReadSlabRequest(
                        source=source,
                        slab=tuple(slab),
                        priority=priority,
                        client_id=client_id or self.client_id,
                        deadline_ms=deadline_ms,
                    )
                )
            ),
        )

    def stats(self) -> Dict[str, Union[int, float]]:
        return cast(
            Dict[str, Union[int, float]],
            self._call(self.service.handle(protocol.StatsRequest())),
        )

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        if self._loop.is_closed():
            return
        try:
            self._call(self.service.close())
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: object,
    ) -> None:
        self.close()


class RemoteClient:
    """Blocking socket client for a running ``repro serve`` endpoint.

    ``retries`` bounds backpressure (RETRY-frame) retries; ``reconnects``
    bounds transport recovery after the connection dies mid-request (see
    the module docstring).  ``shard_key`` sets a default routing-affinity
    tag carried in every work request's meta — under a hash-routed
    sharded deployment all of this client's traffic then lands on one
    shard (per-request ``shard_key=`` overrides it).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9753,
        timeout: float = 300.0,
        retries: int = 0,
        client_id: Optional[str] = None,
        reconnects: int = 0,
        shard_key: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.reconnects = reconnects
        self.client_id = client_id
        self.shard_key = shard_key
        # Per-client RNG for retry jitter.  Seeded from the OS, not the
        # default global state: many client processes forked from one
        # parent (the load generator, an MPI job) must not share a seed,
        # or the jitter degenerates back into lockstep retries.
        self._jitter_rng = random.Random(os.urandom(8))
        self._sock = self._connect()

    def _connect(self) -> socket.socket:
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def _reconnect(self, drops: int) -> None:
        """Replace a dead connection; backoff grows with consecutive drops."""
        try:
            self._sock.close()
        except OSError:
            pass
        self._retry_sleep(0.05 * drops)
        self._sock = self._connect()

    # ----------------------------------------------------------------- rpc
    def _retry_sleep(self, hint: float) -> float:
        """Jittered backoff: sleep ``hint * (0.5 + U[0, 1))`` seconds.

        Two clients rejected by the same overload event receive the same
        ``retry_after`` hint; sleeping it verbatim would wake them in the
        same scheduler tick and reproduce the original collision.  The
        multiplicative jitter spreads wakeups across [0.5h, 1.5h) while
        keeping the server's hint as the expected value.
        """
        delay = hint * (0.5 + self._jitter_rng.random())
        time.sleep(delay)
        return delay

    def _send_all(self, payload: bytes) -> None:
        """Send every byte, looping over partial writes explicitly.

        ``socket.sendall`` gives up with the write position unknowable
        once any single ``send`` fails — after a timeout mid-frame the
        connection is unusable but the caller cannot tell how much
        leaked.  An explicit loop always knows the offset, so the error
        can say how far the frame got (and tests can drive tiny
        ``SO_SNDBUF`` sockets through the partial-write path).
        """
        view = memoryview(payload)
        sent = 0
        while sent < len(view):
            n = self._sock.send(view[sent:])
            if n == 0:
                raise ServiceConnectionError(
                    f"connection closed mid-send ({sent} of "
                    f"{len(view)} bytes written)"
                )
            sent += n

    def _rpc(self, request: protocol.Request) -> protocol.Response:
        op = protocol.op_for_request(request)
        attempts = self.retries + 1
        attempt = 0
        drops = 0
        while attempt < attempts:
            if hasattr(request, "attempt"):
                request.attempt = attempt
            payload = protocol.frame(protocol.encode_request(request))
            try:
                self._send_all(payload)
                resp = protocol.decode_response(
                    protocol.read_frame_sync(self._sock), op
                )
            except (ServiceConnectionError, OSError) as exc:
                # Transport death, not backpressure: the request is
                # idempotent, so redial and resend without consuming the
                # RETRY budget or bumping ``attempt`` (the server's
                # retried_* stats count admission retries, not drops).
                err: Exception = exc
                while True:
                    drops += 1
                    if drops > self.reconnects:
                        raise ServiceConnectionError(
                            f"connection to {self.host}:{self.port} lost "
                            f"mid-request ({drops} drop(s), reconnect "
                            f"budget {self.reconnects}): {err}"
                        ) from err
                    try:
                        # A failed dial (shard still respawning) burns
                        # budget like a drop; the growing backoff gives
                        # the supervisor time to bring a shard back.
                        self._reconnect(drops)
                        break
                    except OSError as dial_exc:
                        err = dial_exc
                continue
            if resp.status == protocol.ST_OK:
                return resp
            if resp.status == protocol.ST_ERROR:
                raise RemoteServiceError(resp.message or "remote error")
            # ST_RETRY: honor the hint if the caller allowed retries
            attempt += 1
            if attempt >= attempts:
                raise ServiceOverloadedError(
                    resp.retry_after or 0.05, resp.reason or "overloaded"
                )
            self._retry_sleep(resp.retry_after or 0.05)
        raise ProtocolError("unreachable")  # pragma: no cover

    # ----------------------------------------------------------------- api
    def ping(self) -> None:
        self._rpc(protocol.PingRequest())

    def compress(
        self,
        data: np.ndarray,
        codec: str = "qoz",
        error_bound: Optional[float] = None,
        rel_error_bound: Optional[float] = None,
        chunks: Union[int, Sequence[int], None] = None,
        codec_kwargs: Optional[Dict] = None,
        family: Optional[str] = None,
        per_chunk_tuning: bool = False,
        priority: str = "interactive",
        client_id: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        bound: Optional[BoundLike] = None,
        shard_key: Optional[str] = None,
    ) -> bytes:
        req = _compress_request(
            data, codec, error_bound, rel_error_bound, chunks,
            codec_kwargs, family, per_chunk_tuning,
            priority, client_id or self.client_id, deadline_ms, bound,
            shard_key or self.shard_key,
        )
        blob = self._rpc(req).blob
        assert blob is not None  # ST_OK compress responses always carry one
        return blob

    def decompress(
        self,
        blob: bytes,
        priority: str = "interactive",
        client_id: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        shard_key: Optional[str] = None,
    ) -> np.ndarray:
        protocol.validate_priority(priority)
        array = self._rpc(
            protocol.DecompressRequest(
                blob=bytes(blob),
                priority=priority,
                client_id=client_id or self.client_id,
                deadline_ms=deadline_ms,
                shard_key=shard_key or self.shard_key,
            )
        ).array
        assert array is not None
        return array

    def read(
        self,
        source: Union[bytes, str],
        slab: SlabArg,
        priority: str = "interactive",
        client_id: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        shard_key: Optional[str] = None,
    ) -> np.ndarray:
        protocol.validate_priority(priority)
        array = self._rpc(
            protocol.ReadSlabRequest(
                source=source,
                slab=tuple(slab),
                priority=priority,
                client_id=client_id or self.client_id,
                deadline_ms=deadline_ms,
                shard_key=shard_key or self.shard_key,
            )
        ).array
        assert array is not None
        return array

    def stats(self) -> Dict[str, Union[int, float]]:
        mapping = self._rpc(protocol.StatsRequest()).mapping
        assert mapping is not None
        return mapping

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: object,
    ) -> None:
        self.close()


__all__ = ["ServiceClient", "RemoteClient"]
