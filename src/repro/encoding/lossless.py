"""Lossless coding of float arrays and raw bytes.

Anchor points in QoZ must be stored exactly.  Scientific fields are smooth,
so adjacent anchors share high-order bits: we XOR-delta the raw IEEE bit
patterns, byte-shuffle the deltas into planes, and entropy-code the result
with the shared symbol-stream codec (RLE + Huffman).  Falls back to raw
storage when the model does not help (e.g. noise).
"""

from __future__ import annotations

import numpy as np

from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.codec import decode_symbol_stream, encode_symbol_stream
from repro.errors import DecompressionError
from repro.utils import dtype_code, dtype_from_code

_RAW, _CODED = 0, 1


def compress_bytes(data: bytes) -> bytes:
    """Entropy-code a byte string (raw fallback when incompressible)."""
    if len(data) == 0:
        return bytes([0, _RAW])
    buf = np.frombuffer(data, dtype=np.uint8)
    coded = encode_symbol_stream(buf.astype(np.int64))
    if len(coded) < len(data):
        return bytes([1, _CODED]) + coded
    return bytes([1, _RAW]) + data


def decompress_bytes(blob: bytes, max_size: int | None = None) -> bytes:
    """Inverse of :func:`compress_bytes`.

    ``max_size`` bounds the decoded byte count when the caller knows it
    (forwarded to :func:`decode_symbol_stream`'s bomb guard).
    """
    if len(blob) < 2:
        raise DecompressionError("truncated lossless byte stream")
    nonempty, mode = blob[0], blob[1]
    if not nonempty:
        return b""
    if mode == _RAW:
        return blob[2:]
    if mode == _CODED:
        decoded = decode_symbol_stream(blob[2:], max_size=max_size)
        return decoded.astype(np.uint8).tobytes()
    raise DecompressionError(f"unknown lossless mode {mode}")


def compress_floats_lossless(values: np.ndarray) -> bytes:
    """Exactly encode a 1-D float array (XOR-delta + byte shuffle + codec)."""
    values = np.ascontiguousarray(values)
    uint_t = np.uint32 if values.dtype == np.float32 else np.uint64
    bits = values.view(uint_t)
    delta = np.empty_like(bits)
    delta[0:1] = bits[0:1]
    np.bitwise_xor(bits[1:], bits[:-1], out=delta[1:])
    itemsize = values.dtype.itemsize
    planes = delta.view(np.uint8).reshape(values.size, itemsize).T
    payload = compress_bytes(np.ascontiguousarray(planes).tobytes())
    writer = BitWriter()
    writer.write_uint(values.size, 64)
    writer.write_uint(dtype_code(values.dtype), 8)
    writer.write_uint(len(payload), 64)
    header = writer.getvalue()
    return header + payload


def decompress_floats_lossless(
    blob: bytes, max_values: int | None = None
) -> np.ndarray:
    """Inverse of :func:`compress_floats_lossless`.

    ``max_values`` is the caller's bound on the element count (e.g. the
    size of the field the values belong to); the declared count is
    checked against it before any decode allocation.
    """
    reader = BitReader(blob[:17])
    n = reader.read_uint(64)
    dtype = dtype_from_code(reader.read_uint(8))
    if max_values is not None and n > max_values:
        raise DecompressionError(
            f"lossless float stream declares {n} values, "
            f"caller expects at most {max_values}"
        )
    payload_len = reader.read_uint(64)
    if payload_len > len(blob) - 17:
        raise DecompressionError("truncated lossless float stream")
    raw = decompress_bytes(
        blob[17 : 17 + payload_len], max_size=n * dtype.itemsize
    )
    itemsize = dtype.itemsize
    if len(raw) != n * itemsize:
        raise DecompressionError(
            f"lossless float payload holds {len(raw)} bytes, "
            f"expected {n * itemsize}"
        )
    planes = np.frombuffer(raw, dtype=np.uint8).reshape(itemsize, n)
    delta = np.ascontiguousarray(planes.T).reshape(n * itemsize)
    uint_t = np.uint32 if dtype == np.float32 else np.uint64
    bits = delta.view(uint_t)
    out = np.bitwise_xor.accumulate(bits)
    return out.view(dtype)
