"""Canonical, length-limited Huffman coding over a dense integer alphabet.

Encoding is fully vectorized (table lookup + :class:`BitWriter`).  Decoding
uses a first-level lookup table over 16-bit windows built from the packed
stream, with a canonical bit-by-bit fallback for longer codes; this keeps the
per-symbol Python loop tiny (the only non-vectorized hot loop in the
package, as noted in DESIGN.md §6).
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.encoding.bitstream import BitReader, BitWriter
from repro.errors import DecompressionError

#: longest admissible code; 32 keeps codes in uint64 math comfortably
MAX_CODE_LENGTH = 32
#: first-level decode table width
_TABLE_BITS = 16
_ESCAPE = 255


def _tree_lengths(freqs: np.ndarray) -> np.ndarray:
    """Code length per symbol from a frequency table (0 for absent symbols)."""
    nz = np.flatnonzero(freqs)
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    if nz.size == 0:
        return lengths
    if nz.size == 1:
        lengths[nz[0]] = 1
        return lengths
    # heap items: (weight, tiebreak, leaf_symbols)
    heap = [(int(freqs[s]), int(s), [int(s)]) for s in nz]
    heapq.heapify(heap)
    tick = int(freqs.size)
    depth = {int(s): 0 for s in nz}
    while len(heap) > 1:
        w1, _, l1 = heapq.heappop(heap)
        w2, _, l2 = heapq.heappop(heap)
        for s in l1:
            depth[s] += 1
        for s in l2:
            depth[s] += 1
        tick += 1
        heapq.heappush(heap, (w1 + w2, tick, l1 + l2))
    for s, d in depth.items():
        lengths[s] = d
    return lengths


def _build_lengths(freqs: np.ndarray) -> np.ndarray:
    """Length-limited code lengths: flatten the histogram until it fits."""
    freqs = freqs.astype(np.int64, copy=True)
    while True:
        lengths = _tree_lengths(freqs)
        if lengths.max(initial=0) <= MAX_CODE_LENGTH:
            return lengths
        nz = freqs > 0
        freqs[nz] = (freqs[nz] + 1) // 2


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codes ordered by (length, symbol)."""
    codes = np.zeros(lengths.size, dtype=np.uint64)
    order = np.lexsort((np.arange(lengths.size), lengths))
    order = order[lengths[order] > 0]
    code = 0
    prev_len = 0
    for sym in order:
        ln = int(lengths[sym])
        code <<= ln - prev_len
        codes[sym] = code
        code += 1
        prev_len = ln
    return codes


class HuffmanCode:
    """A canonical Huffman code over symbols ``0..alphabet_size-1``."""

    def __init__(self, lengths: np.ndarray):
        self.lengths = np.asarray(lengths, dtype=np.uint8)
        self.codes = _canonical_codes(self.lengths)
        self._decode_table: Optional[tuple] = None

    # ------------------------------------------------------------------ build
    @classmethod
    def from_frequencies(cls, freqs: np.ndarray) -> "HuffmanCode":
        """Build a code from a dense frequency table."""
        return cls(_build_lengths(np.asarray(freqs, dtype=np.int64)))

    @classmethod
    def from_symbols(cls, symbols: np.ndarray, alphabet_size: int) -> "HuffmanCode":
        """Build a code from observed symbols."""
        freqs = np.bincount(symbols, minlength=alphabet_size)
        return cls.from_frequencies(freqs)

    @property
    def alphabet_size(self) -> int:
        """Number of symbols the code covers (incl. zero-length ones)."""
        return int(self.lengths.size)

    def encoded_bit_count(self, freqs: np.ndarray) -> int:
        """Exact payload size in bits for symbols with the given histogram."""
        n = min(freqs.size, self.lengths.size)
        return int(
            (freqs[:n].astype(np.int64) * self.lengths[:n].astype(np.int64)).sum()
        )

    # ----------------------------------------------------------------- encode
    def encode(self, symbols: np.ndarray, writer: BitWriter) -> None:
        """Append the codes of ``symbols`` to ``writer`` (vectorized)."""
        symbols = np.asarray(symbols)
        if symbols.size == 0:
            return
        lens = self.lengths[symbols]
        if (lens == 0).any():
            raise ValueError("attempt to encode a symbol with no code")
        writer.write_array(self.codes[symbols], lens)

    # ----------------------------------------------------------------- decode
    def _ensure_decode_table(self):
        if self._decode_table is not None:
            return self._decode_table
        lengths = self.lengths
        maxlen = int(lengths.max(initial=0))
        t = min(maxlen, _TABLE_BITS) if maxlen else 1
        size = 1 << t
        table_sym = np.zeros(size, dtype=np.int64)
        table_len = np.full(size, _ESCAPE, dtype=np.uint8)
        syms = np.flatnonzero(lengths)
        short = syms[lengths[syms] <= t]
        if short.size:
            lens_s = lengths[short].astype(np.int64)
            reps = np.int64(1) << (t - lens_s)
            starts = (self.codes[short].astype(np.int64)) << (t - lens_s)
            order = np.argsort(starts, kind="stable")
            table_sym = np.repeat(short[order].astype(np.int64), reps[order])
            table_len = np.repeat(lengths[short][order], reps[order])
            if table_sym.size != size:  # gaps only if long codes exist
                full_sym = np.zeros(size, dtype=np.int64)
                full_len = np.full(size, _ESCAPE, dtype=np.uint8)
                pos = starts[order]
                idx = np.repeat(pos, reps[order]) + _ragged_offsets(reps[order])
                full_sym[idx] = table_sym
                full_len[idx] = table_len
                table_sym, table_len = full_sym, full_len
        # canonical fallback arrays for codes longer than t
        first_code = np.zeros(maxlen + 2, dtype=np.int64)
        count = np.bincount(lengths[syms], minlength=maxlen + 2).astype(np.int64)
        index = np.zeros(maxlen + 2, dtype=np.int64)
        code = 0
        total = 0
        for ln in range(1, maxlen + 1):
            code <<= 1
            first_code[ln] = code
            index[ln] = total
            code += count[ln]
            total += count[ln]
        sorted_syms = syms[np.lexsort((syms, lengths[syms]))]
        self._decode_table = (
            t,
            table_sym.tolist(),
            table_len.tolist(),
            maxlen,
            first_code.tolist(),
            count.tolist(),
            index.tolist(),
            sorted_syms.tolist(),
        )
        return self._decode_table

    def decode(self, reader: BitReader, count: int) -> np.ndarray:
        """Decode ``count`` symbols from ``reader``."""
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        (t, table_sym, table_len, maxlen, first_code, length_count, index,
         sorted_syms) = self._ensure_decode_table()
        bits, pos = reader.bits_view()
        # 32-bit big-endian windows at every byte offset (padded tail)
        packed = np.packbits(bits)
        pad = np.zeros(8, dtype=np.uint8)
        b = np.concatenate([packed, pad]).astype(np.uint32)
        w32 = ((b[:-3] << 24) | (b[1:-2] << 16) | (b[2:-1] << 8) | b[3:]).tolist()
        mask = (1 << t) - 1
        shift_base = 32 - t
        out = [0] * count
        bl = bits.tolist() if maxlen > t else None
        nbits_total = bits.size
        for i in range(count):
            key = (w32[pos >> 3] >> (shift_base - (pos & 7))) & mask
            ln = table_len[key]
            if ln != _ESCAPE:
                out[i] = table_sym[key]
                pos += ln
            else:
                # canonical walk for long codes
                code = 0
                ln = 0
                p = pos
                while True:
                    if p >= nbits_total:
                        raise DecompressionError("huffman stream exhausted")
                    code = (code << 1) | bl[p]
                    p += 1
                    ln += 1
                    if ln > maxlen:
                        raise DecompressionError("invalid huffman code")
                    off = code - first_code[ln]
                    if 0 <= off < length_count[ln]:
                        out[i] = sorted_syms[index[ln] + off]
                        pos = p
                        break
        if pos > nbits_total:
            raise DecompressionError("huffman stream exhausted")
        reader.advance(pos - reader.position)
        return np.asarray(out, dtype=np.int64)

    # -------------------------------------------------------------- serialize
    def serialize(self, writer: BitWriter) -> None:
        """Write the code table (lengths only; codes are canonical)."""
        lengths = self.lengths
        writer.write_uint(lengths.size, 32)
        nz = np.flatnonzero(lengths)
        writer.write_uint(nz.size, 32)
        dense = nz.size * 38 >= lengths.size * 6
        writer.write_uint(1 if dense else 0, 1)
        if dense:
            writer.write_array(lengths.astype(np.uint64), 6)
        else:
            writer.write_array(nz.astype(np.uint64), 32)
            writer.write_array(lengths[nz].astype(np.uint64), 6)

    @classmethod
    def deserialize(cls, reader: BitReader) -> "HuffmanCode":
        """Read a code table written by :meth:`serialize`."""
        size = reader.read_uint(32)
        nnz = reader.read_uint(32)
        dense = reader.read_uint(1)
        lengths = np.zeros(size, dtype=np.uint8)
        if dense:
            lengths[:] = reader.read_array(size, 6).astype(np.uint8)
        else:
            syms = reader.read_array(nnz, 32).astype(np.int64)
            lens = reader.read_array(nnz, 6).astype(np.uint8)
            if nnz and syms.max(initial=0) >= size:
                raise DecompressionError("corrupt huffman table")
            lengths[syms] = lens
        if (lengths > MAX_CODE_LENGTH).any():
            raise DecompressionError("corrupt huffman table (length overflow)")
        return cls(lengths)


def _ragged_offsets(reps: np.ndarray) -> np.ndarray:
    """[0..reps[0]), [0..reps[1]), ... concatenated."""
    total = int(reps.sum())
    ends = np.cumsum(reps)
    starts = ends - reps
    return np.arange(total, dtype=np.int64) - np.repeat(starts, reps)
