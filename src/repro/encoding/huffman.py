"""Canonical, length-limited Huffman coding over a dense integer alphabet.

Both directions are fully vectorized.  Encoding is a table lookup +
:class:`BitWriter`.  Decoding works in bounded bit-blocks: gather a 32-bit
window at *every* bit offset of the block straight from the packed bytes,
resolve each offset's (symbol, code length) through a 16-bit first-level
table (with a vectorized canonical pass for longer codes), then extract the
actual codeword chain by pointer doubling over the per-offset "next
position" array.  No per-symbol Python loop, and peak memory is bounded by
the block size, not the stream (DESIGN.md §6).
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from repro.encoding.bitstream import BitReader, BitWriter
from repro.errors import DecompressionError

#: longest admissible code; 32 keeps codes in uint64 math comfortably
MAX_CODE_LENGTH = 32
#: first-level decode table width
_TABLE_BITS = 16
_ESCAPE = 255
#: escape marker in the fused table's 6-bit length field
_ESCAPE_LEN = 63
#: bits examined per decode round; bounds peak decode memory (a handful of
#: int64 arrays of this many elements) independently of stream size
_BLOCK_BITS = 1 << 17


def _tree_lengths(freqs: np.ndarray) -> np.ndarray:
    """Code length per symbol from a frequency table (0 for absent symbols)."""
    nz = np.flatnonzero(freqs)
    lengths = np.zeros(freqs.size, dtype=np.uint8)
    if nz.size == 0:
        return lengths
    if nz.size == 1:
        lengths[nz[0]] = 1
        return lengths
    # heap items: (weight, tiebreak, leaf_symbols)
    heap = [(int(freqs[s]), int(s), [int(s)]) for s in nz]
    heapq.heapify(heap)
    tick = int(freqs.size)
    depth = {int(s): 0 for s in nz}
    while len(heap) > 1:
        w1, _, l1 = heapq.heappop(heap)
        w2, _, l2 = heapq.heappop(heap)
        for s in l1:
            depth[s] += 1
        for s in l2:
            depth[s] += 1
        tick += 1
        heapq.heappush(heap, (w1 + w2, tick, l1 + l2))
    for s, d in depth.items():
        lengths[s] = d
    return lengths


def _build_lengths(freqs: np.ndarray) -> np.ndarray:
    """Length-limited code lengths: flatten the histogram until it fits."""
    freqs = freqs.astype(np.int64, copy=True)
    while True:
        lengths = _tree_lengths(freqs)
        if lengths.max(initial=0) <= MAX_CODE_LENGTH:
            return lengths
        nz = freqs > 0
        freqs[nz] = (freqs[nz] + 1) // 2


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codes ordered by (length, symbol)."""
    codes = np.zeros(lengths.size, dtype=np.uint64)
    order = np.lexsort((np.arange(lengths.size), lengths))
    order = order[lengths[order] > 0]
    code = 0
    prev_len = 0
    for sym in order:
        ln = int(lengths[sym])
        code <<= ln - prev_len
        codes[sym] = code
        code += 1
        prev_len = ln
    return codes


class HuffmanCode:
    """A canonical Huffman code over symbols ``0..alphabet_size-1``."""

    def __init__(self, lengths: np.ndarray):
        self.lengths = np.asarray(lengths, dtype=np.uint8)
        self.codes = _canonical_codes(self.lengths)
        self._decode_table: Optional[tuple] = None

    # ------------------------------------------------------------------ build
    @classmethod
    def from_frequencies(cls, freqs: np.ndarray) -> "HuffmanCode":
        """Build a code from a dense frequency table."""
        return cls(_build_lengths(np.asarray(freqs, dtype=np.int64)))

    @classmethod
    def from_symbols(cls, symbols: np.ndarray, alphabet_size: int) -> "HuffmanCode":
        """Build a code from observed symbols."""
        freqs = np.bincount(symbols, minlength=alphabet_size)
        return cls.from_frequencies(freqs)

    @property
    def alphabet_size(self) -> int:
        """Number of symbols the code covers (incl. zero-length ones)."""
        return int(self.lengths.size)

    def encoded_bit_count(self, freqs: np.ndarray) -> int:
        """Exact payload size in bits for symbols with the given histogram.

        Raises ``ValueError`` if the histogram puts mass on symbols the
        code cannot encode — outside the alphabet or with no code —
        instead of silently undercounting them as 0 bits (which would
        corrupt codec/stage size comparisons built on this estimate).
        """
        freqs = np.asarray(freqs, dtype=np.int64)
        n = min(freqs.size, self.lengths.size)
        if freqs[n:].any():
            raise ValueError(
                "histogram has mass outside the code's alphabet "
                f"(size {self.lengths.size})"
            )
        head = freqs[:n]
        lens = self.lengths[:n].astype(np.int64)
        if (head[lens == 0] > 0).any():
            raise ValueError("histogram has mass on symbols with no code")
        return int((head * lens).sum())

    # ----------------------------------------------------------------- encode
    def encode(self, symbols: np.ndarray, writer: BitWriter) -> None:
        """Append the codes of ``symbols`` to ``writer`` (vectorized)."""
        symbols = np.asarray(symbols)
        if symbols.size == 0:
            return
        lens = self.lengths[symbols]
        if (lens == 0).any():
            raise ValueError("attempt to encode a symbol with no code")
        writer.write_array(self.codes[symbols], lens)

    # ----------------------------------------------------------------- decode
    def _ensure_decode_table(self):
        if self._decode_table is not None:
            return self._decode_table
        lengths = self.lengths
        maxlen = int(lengths.max(initial=0))
        t = min(maxlen, _TABLE_BITS) if maxlen else 1
        size = 1 << t
        table_sym = np.zeros(size, dtype=np.int64)
        table_len = np.full(size, _ESCAPE, dtype=np.uint8)
        syms = np.flatnonzero(lengths)
        short = syms[lengths[syms] <= t]
        if short.size:
            lens_s = lengths[short].astype(np.int64)
            reps = np.int64(1) << (t - lens_s)
            starts = (self.codes[short].astype(np.int64)) << (t - lens_s)
            order = np.argsort(starts, kind="stable")
            # each short code owns 2^(t-len) consecutive table rows, so
            # the repeats can never exceed the 2^t-entry table
            assert int(reps.sum()) <= size
            table_sym = np.repeat(short[order].astype(np.int64), reps[order])
            table_len = np.repeat(lengths[short][order], reps[order])
            if table_sym.size != size:  # gaps only if long codes exist
                full_sym = np.zeros(size, dtype=np.int64)
                full_len = np.full(size, _ESCAPE, dtype=np.uint8)
                pos = starts[order]
                idx = np.repeat(pos, reps[order]) + _ragged_offsets(reps[order])
                full_sym[idx] = table_sym
                full_len[idx] = table_len
                table_sym, table_len = full_sym, full_len
        # canonical fallback arrays for codes longer than t
        first_code = np.zeros(maxlen + 2, dtype=np.int64)
        count = np.bincount(lengths[syms], minlength=maxlen + 2).astype(np.int64)
        index = np.zeros(maxlen + 2, dtype=np.int64)
        code = 0
        total = 0
        for ln in range(1, maxlen + 1):
            code <<= 1
            first_code[ln] = code
            index[ln] = total
            code += count[ln]
            total += count[ln]
        sorted_syms = syms[np.lexsort((syms, lengths[syms]))]
        # fused (symbol, length) entry: one gather resolves both.  The
        # length field is 6 bits (max length 32 < 63); 63 marks escapes.
        combo = (table_sym.astype(np.int64) << np.int64(6)) | np.where(
            table_len == _ESCAPE, np.int64(_ESCAPE_LEN), table_len.astype(np.int64)
        )
        self._decode_table = (
            t,
            combo,
            maxlen,
            first_code,
            count,
            index,
            sorted_syms.astype(np.int64),
            bool((table_len == _ESCAPE).any()),
        )
        return self._decode_table

    def _resolve_escapes(self, reader, pos, entry, step, esc, tables):
        """Vectorized canonical decode for windows the first-level table
        cannot resolve (codes longer than the table width, or gaps left by
        a non-Kraft-complete table).  Unresolvable windows are marked with
        symbol -1 / step 1; they only matter if the codeword chain actually
        visits them, in which case :meth:`decode` raises."""
        t, _, maxlen, first_code, length_count, index, sorted_syms = tables[:7]
        w = reader.peek_windows_at(pos + esc, 32)
        sym_e = np.full(esc.size, -1, dtype=np.int64)
        step_e = np.ones(esc.size, dtype=np.int64)
        open_mask = np.ones(esc.size, dtype=bool)
        for ln in range(t + 1, maxlen + 1):
            if length_count[ln] == 0:
                continue
            off = (w >> np.uint64(32 - ln)).astype(np.int64) - first_code[ln]
            hit = open_mask & (off >= 0) & (off < length_count[ln])
            if hit.any():
                sym_e[hit] = sorted_syms[index[ln] + off[hit]]
                step_e[hit] = ln
                open_mask &= ~hit
        entry[esc] = (sym_e << np.int64(6)) | step_e
        step[esc] = step_e

    @staticmethod
    def _extract_chain(nxt, span, m):
        """Positions after 0..m codewords, following ``nxt`` from offset 0.

        ``nxt`` maps every offset in ``[0, span)`` to the offset after one
        codeword and self-loops past ``span``, so the chain saturates at
        the first position outside the block.  Small chains use pointer
        doubling (log2(m) full passes over ``nxt``); larger ones compose
        ``nxt`` only a few times, walk stride-sized anchor hops, then
        advance all anchor lanes in lockstep — O(m) gathers total instead
        of a full composition pass per doubling round.
        """
        if m < 512:
            chain = np.empty(m + 1, dtype=np.intp)
            chain[0] = 0
            filled = 1
            while filled < m + 1:
                if chain[filled - 1] >= span:  # saturated: tail is constant
                    chain[filled:] = chain[filled - 1]
                    break
                take = min(filled, m + 1 - filled)
                chain[filled : filled + take] = nxt[chain[:take]]
                filled += take
                if filled < m + 1:
                    nxt = nxt[nxt]  # now jumps `filled` codewords
            return chain
        # each composition pass costs O(span); each halving of the anchor
        # walk saves m/stride scalar steps — balance the two
        c = max(2, min(7, (m // 600).bit_length() - 1))
        stride = 1 << c
        stride_jump = nxt
        for _ in range(c):
            stride_jump = stride_jump[stride_jump]
        n_anchor = m // stride + 1
        anchors = np.empty(n_anchor, dtype=np.intp)
        a = 0
        for i in range(n_anchor):
            anchors[i] = a
            if a >= span:
                anchors[i:] = a  # saturated: every later anchor is the same
                break
            a = int(stride_jump[a])
        lanes = np.empty((stride, n_anchor), dtype=np.intp)
        lanes[0] = anchors
        cur = anchors
        for r in range(1, stride):
            cur = nxt[cur]
            lanes[r] = cur
        return lanes.T.reshape(-1)[: m + 1]

    def decode(self, reader: BitReader, count: int) -> np.ndarray:
        """Decode ``count`` symbols from ``reader`` (vectorized).

        Works in blocks of at most ``_BLOCK_BITS`` bits.  Per block, every
        bit offset is resolved to a speculative (symbol, next offset) pair
        in one numpy pass — a single gather through the fused
        symbol/length table, plus a canonical pass for the rare windows
        the table cannot resolve; the true codeword chain — starting at
        the current position and following next-offset links — is then
        materialized by :meth:`_extract_chain`, and exactly the symbols
        on the chain are emitted.  Offsets that are never on the chain
        may hold garbage; that is fine, they are never read.
        """
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        if count > reader.remaining:  # every codeword costs >= 1 bit
            raise DecompressionError("huffman stream exhausted")
        tables = self._ensure_decode_table()
        t, combo, maxlen, has_escapes = (
            tables[0],
            tables[1],
            tables[2],
            tables[7],
        )
        pos = reader.position
        start_pos = pos
        nbits_total = reader.bit_length
        out = np.empty(count, dtype=np.int64)
        produced = 0
        while produced < count:
            if pos >= nbits_total:
                raise DecompressionError("huffman stream exhausted")
            # never examine more bits than the remaining symbols could use
            span = min(
                _BLOCK_BITS,
                nbits_total - pos,
                (count - produced) * max(maxlen, 1),
            )
            # chain-length budget: the worst case is one codeword per bit,
            # but after the first block the observed bits-per-codeword
            # bounds it far tighter (undershoot only costs an extra lap)
            m = min(count - produced, span)
            if produced:
                avg_bits = (pos - start_pos) / produced
                m = min(m, int(span / avg_bits * 1.3) + 64)
            entry = combo[reader.peek_windows(pos, span, t)]
            step = entry & np.int64(_ESCAPE_LEN)
            n_esc = 0
            if has_escapes:
                esc = np.flatnonzero(step == _ESCAPE_LEN)
                n_esc = esc.size
                if n_esc:
                    self._resolve_escapes(reader, pos, entry, step, esc, tables)
            # next-offset links, saturating at the first offset past the
            # block (chain entries there keep their value so the block
            # boundary position survives the jump composition)
            ext = span + MAX_CODE_LENGTH + 1
            nxt = np.arange(ext, dtype=np.intp)
            nxt[:span] += step
            chain = self._extract_chain(nxt, span, m)
            # symbols whose codeword starts inside this block; the >> 6
            # runs on just the chain entries, not every bit offset
            k = min(int(np.searchsorted(chain, span, side="left")), m)
            emitted = entry[chain[:k]] >> np.int64(6)
            if n_esc and emitted.min(initial=0) < 0:
                raise DecompressionError("invalid huffman code")
            out[produced : produced + k] = emitted
            produced += k
            pos += int(chain[k])
        if pos > nbits_total:
            raise DecompressionError("huffman stream exhausted")
        reader.advance(pos - reader.position)
        return out

    # -------------------------------------------------------------- serialize
    def serialize(self, writer: BitWriter) -> None:
        """Write the code table (lengths only; codes are canonical)."""
        lengths = self.lengths
        writer.write_uint(lengths.size, 32)
        nz = np.flatnonzero(lengths)
        writer.write_uint(nz.size, 32)
        dense = nz.size * 38 >= lengths.size * 6
        writer.write_uint(1 if dense else 0, 1)
        if dense:
            writer.write_array(lengths.astype(np.uint64), 6)
        else:
            writer.write_array(nz.astype(np.uint64), 32)
            writer.write_array(lengths[nz].astype(np.uint64), 6)

    @classmethod
    def deserialize(cls, reader: BitReader) -> "HuffmanCode":
        """Read a code table written by :meth:`serialize`."""
        size = reader.read_uint(32)
        nnz = reader.read_uint(32)
        dense = reader.read_uint(1)
        # reject count fields that promise more table entries than the
        # stream has bits for, before they size any allocation; the
        # alphabet cap matches from_frequencies' practical limit and stops
        # a flipped sparse-table size field from allocating gigabytes
        if size > (1 << 28):
            raise DecompressionError("corrupt huffman table (alphabet size)")
        if nnz > size or (6 * size if dense else 38 * nnz) > reader.remaining:
            raise DecompressionError("corrupt huffman table (truncated)")
        lengths = np.zeros(size, dtype=np.uint8)
        if dense:
            lengths[:] = reader.read_array(size, 6).astype(np.uint8)
        else:
            syms = reader.read_array(nnz, 32).astype(np.int64)
            lens = reader.read_array(nnz, 6).astype(np.uint8)
            if nnz and syms.max(initial=0) >= size:
                raise DecompressionError("corrupt huffman table")
            lengths[syms] = lens
        if (lengths > MAX_CODE_LENGTH).any():
            raise DecompressionError("corrupt huffman table (length overflow)")
        # canonical code assignment only stays within each length's code
        # space if the lengths satisfy Kraft's inequality; a corrupt table
        # that violates it would otherwise corrupt the decode-table build
        nz = lengths[lengths > 0].astype(np.int64)
        if nz.size:
            kraft = (np.int64(1) << (MAX_CODE_LENGTH - nz)).sum(dtype=np.int64)
            if kraft > np.int64(1) << MAX_CODE_LENGTH:
                raise DecompressionError("corrupt huffman table (kraft)")
        return cls(lengths)


def _ragged_offsets(reps: np.ndarray) -> np.ndarray:
    """[0..reps[0]), [0..reps[1]), ... concatenated."""
    total = int(reps.sum())
    ends = np.cumsum(reps)
    starts = ends - reps
    return np.arange(total, dtype=np.int64) - np.repeat(starts, reps)
