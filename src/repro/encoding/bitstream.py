"""Vectorized bit-level I/O.

The writer accumulates (value, nbits) chunks and expands them into a packed
byte buffer in one numpy pass at flush time.  The reader is *byte-windowed*:
every read gathers 40-bit windows (5 bytes) around the requested bit
positions straight from the packed buffer — there is no whole-stream
``unpackbits`` expansion, so peak reader memory is a small constant multiple
of the compressed buffer regardless of how it is sliced.  Bits are MSB-first
within each value and within each byte, so streams are byte-order
independent and diffable.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import DecompressionError

_MAX_BITS = 64
#: widest field a single 5-byte window can serve at any bit offset (7 + 33 <= 40)
_NARROW = 33
#: window-cache granularity: bytes of the packed stream whose 40-bit windows
#: are materialized at once (bounds reader scratch memory at 8x this)
_WINDOW_CACHE_BYTES = 1 << 16


class BitWriter:
    """Accumulate values with explicit bit widths; emit packed bytes.

    Scalar ``write_uint`` calls are buffered in plain Python lists and
    folded into one numpy chunk only when an array write or a flush needs
    them — header/param-block writers issue hundreds of scalar fields, and
    materializing a one-element array per field dominated their cost.
    """

    def __init__(self) -> None:
        self._values: List[np.ndarray] = []
        self._lengths: List[np.ndarray] = []
        self._pending_vals: List[int] = []
        self._pending_bits: List[int] = []
        self._total_bits = 0

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._total_bits

    def _flush_scalars(self) -> None:
        """Fold buffered scalar writes into one array chunk (order kept)."""
        if self._pending_vals:
            self._values.append(np.array(self._pending_vals, dtype=np.uint64))
            self._lengths.append(np.array(self._pending_bits, dtype=np.uint8))
            self._pending_vals = []
            self._pending_bits = []

    def write_uint(self, value: int, nbits: int) -> None:
        """Write a single unsigned integer using ``nbits`` bits (0..64)."""
        if nbits == 0:
            return
        if not 0 < nbits <= _MAX_BITS:
            raise ValueError(f"nbits must be in 1..{_MAX_BITS}, got {nbits}")
        value = int(value)
        if value < 0 or (nbits < 64 and value >> nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._pending_vals.append(value)
        self._pending_bits.append(nbits)
        self._total_bits += nbits

    def write_array(
        self, values: np.ndarray, nbits: "int | np.integer | np.ndarray"
    ) -> None:
        """Write many unsigned integers.

        ``nbits`` may be a scalar (same width for all) or a per-element
        uint8 array.  Elements with width 0 contribute nothing.
        """
        values = np.ascontiguousarray(values, dtype=np.uint64)
        if np.isscalar(nbits) or getattr(nbits, "ndim", 1) == 0:
            w = int(nbits)
            if w == 0 or values.size == 0:
                return
            lengths = np.full(values.shape, w, dtype=np.uint8)
        else:
            lengths = np.ascontiguousarray(nbits, dtype=np.uint8)
            if lengths.shape != values.shape:
                raise ValueError("values/nbits shape mismatch")
            if values.size == 0:
                return
        self._flush_scalars()
        self._values.append(values.ravel())
        self._lengths.append(lengths.ravel())
        self._total_bits += int(lengths.sum(dtype=np.int64))

    def getvalue(self) -> bytes:
        """Pack everything written so far into bytes (zero-padded tail)."""
        if self._total_bits == 0:
            return b""
        self._flush_scalars()
        values = np.concatenate(self._values)
        lengths = np.concatenate(self._lengths).astype(np.int64)
        total = int(lengths.sum())
        # bit position just past each value in the output stream
        ends = np.cumsum(lengths)
        # for output bit i coming from value v: its in-value shift is
        # (end_of_v - 1 - i), so two repeats (value, end) cover the whole
        # spread — no per-bit source-index gather or offset array needed
        shift = np.repeat(ends, lengths)
        shift -= 1
        shift -= np.arange(total, dtype=np.int64)
        bits = (
            (np.repeat(values, lengths) >> shift.astype(np.uint64)) & np.uint64(1)
        ).astype(np.uint8)
        return np.packbits(bits).tobytes()


class BitReader:
    """Serve scalar/vector reads straight from a packed MSB-first buffer.

    All vector reads go through one primitive: gather the 5-byte (40-bit)
    big-endian window that starts at the byte containing each field's first
    bit, then shift/mask the field out.  Fields wider than 33 bits are
    split into two window reads.  The only allocation proportional to the
    stream is a single zero-padded copy of the packed bytes, built lazily
    on the first vector read.
    """

    def __init__(self, data: bytes, bit_length: int | None = None) -> None:
        self._buf = np.frombuffer(data, dtype=np.uint8)
        self._nbits = self._buf.size * 8
        if bit_length is not None:
            if bit_length > self._nbits:
                raise DecompressionError("bit stream shorter than declared length")
            self._nbits = int(bit_length)
        self._padded: np.ndarray | None = None
        self._wstart = 0  # first byte covered by the cached windows
        self._wins: np.ndarray | None = None
        self._pos = 0

    @property
    def position(self) -> int:
        """Current bit offset."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Bits left to read."""
        return self._nbits - self._pos

    @property
    def bit_length(self) -> int:
        """Total readable bits in the stream."""
        return self._nbits

    # ------------------------------------------------------------ primitives
    def _pad(self) -> np.ndarray:
        """The packed bytes followed by 8 zero bytes (window overrun room)."""
        if self._padded is None:
            self._padded = np.concatenate(
                [self._buf, np.zeros(8, dtype=np.uint8)]
            )
        return self._padded

    def _windows40(self, first_byte: int, last_byte: int) -> np.ndarray:
        """Cached 40-bit big-endian windows ``W[i] = bytes[wstart+i .. +5)``.

        Covers at least ``[first_byte, last_byte]``; rebuilt (in chunks of
        ``_WINDOW_CACHE_BYTES``) whenever a read leaves the cached range,
        so sequential readers build each window exactly once and scratch
        memory stays bounded no matter how large the stream is.
        """
        W = self._wins
        if W is None or first_byte < self._wstart or last_byte >= self._wstart + W.size:
            p = self._pad()
            n = max(last_byte - first_byte + 1, _WINDOW_CACHE_BYTES)
            n = min(n, p.size - 4 - first_byte)
            W = p[first_byte : first_byte + n].astype(np.uint64)
            for k in range(1, 5):
                W <<= np.uint64(8)
                W |= p[first_byte + k : first_byte + k + n]
            self._wstart = first_byte
            self._wins = W
        return W

    def _extract(
        self, starts: np.ndarray, widths: "int | np.ndarray"
    ) -> np.ndarray:
        """Fields of ``widths`` (<= 33) bits at sorted bit positions
        ``starts``.

        ``starts`` must lie inside the padded buffer; fields past the
        logical end read as zero bits (callers bound-check).
        """
        W = self._windows40(int(starts[0]) >> 3, int(starts[-1]) >> 3)
        idx = (starts >> 3) - self._wstart
        off = starts & 7
        if np.isscalar(widths):
            shift = (40 - int(widths) - off).astype(np.uint64)
            mask = np.uint64((1 << int(widths)) - 1)
        else:
            shift = (40 - widths - off).astype(np.uint64)
            mask = (np.uint64(1) << widths.astype(np.uint64)) - np.uint64(1)
        return (W[idx] >> shift) & mask

    def peek_windows(self, start: int, count: int, width: int) -> np.ndarray:
        """``width``-bit (<= 33) windows at ``count`` consecutive bit
        positions ``start, start+1, ...`` without consuming anything.

        Windows may run past the logical stream end (they then read the
        buffer's zero tail padding); callers must validate the final bit
        position of whatever they decode from them.  This is the primitive
        behind the vectorized Huffman decoder.
        """
        if count == 0:
            return np.zeros(0, dtype=np.uint64)
        if not 0 < width <= _NARROW:
            raise ValueError(f"window width must be in 1..{_NARROW}")
        if start < 0 or start >= self._nbits:
            raise DecompressionError("window start outside bit stream")
        # consecutive positions visit every bit phase of every byte, so the
        # gather degenerates: shift the byte windows once per phase and
        # interleave, which is ~2 passes instead of a full-size gather
        first_byte = start >> 3
        last_byte = (start + count - 1) >> 3
        W = self._windows40(first_byte, last_byte)
        Wv = W[first_byte - self._wstart : last_byte - self._wstart + 1]
        phased = np.empty((Wv.size, 8), dtype=np.uint64)
        mask = np.uint64((1 << width) - 1)
        for phase in range(8):
            np.bitwise_and(
                Wv >> np.uint64(40 - width - phase), mask, out=phased[:, phase]
            )
        lo = start - 8 * first_byte
        return phased.reshape(-1)[lo : lo + count]

    def peek_windows_at(self, positions: np.ndarray, width: int) -> np.ndarray:
        """``width``-bit (<= 33) windows at sorted in-stream bit
        ``positions`` (ascending), without consuming anything.  Same
        end-of-stream caveat as :meth:`peek_windows`."""
        if positions.size == 0:
            return np.zeros(0, dtype=np.uint64)
        if not 0 < width <= _NARROW:
            raise ValueError(f"window width must be in 1..{_NARROW}")
        if int(positions[0]) < 0 or int(positions[-1]) >= self._nbits:
            raise DecompressionError("window position outside bit stream")
        return self._extract(positions, width)

    # ----------------------------------------------------------------- reads
    def read_uint(self, nbits: int) -> int:
        """Read one unsigned integer of ``nbits`` bits."""
        if nbits == 0:
            return 0
        if nbits > self.remaining:
            raise DecompressionError("bit stream exhausted")
        pos = self._pos
        first = pos >> 3
        last = (pos + nbits + 7) >> 3
        word = int.from_bytes(self._buf[first:last].tobytes(), "big")
        self._pos = pos + nbits
        drop = 8 * (last - first) - (pos - 8 * first) - nbits
        return (word >> drop) & ((1 << nbits) - 1)

    def read_array(self, count: int, nbits: int) -> np.ndarray:
        """Read ``count`` fixed-width unsigned integers (vectorized)."""
        if count == 0:
            return np.zeros(0, dtype=np.uint64)
        if nbits == 0:
            # zero-width symbols consume no stream bits, so the usual
            # need<=remaining backstop does not apply; every in-tree call
            # site passes a count derived from an already-validated
            # header quantity or an actual read
            return np.zeros(count, dtype=np.uint64)  # reprolint: disable=RL001
        need = count * nbits
        if need > self.remaining:
            raise DecompressionError("bit stream exhausted")
        starts = self._pos + np.arange(count, dtype=np.int64) * nbits
        if nbits <= _NARROW:
            out = self._extract(starts, nbits)
        else:
            hi_w = nbits - 32
            hi = self._extract(starts, hi_w)
            lo = self._extract(starts + hi_w, 32)
            out = (hi << np.uint64(32)) | lo
        self._pos += need
        return out

    def read_varwidth_array(self, widths: np.ndarray) -> np.ndarray:
        """Read integers with per-element widths (uint8 array, 0 allowed)."""
        widths = np.asarray(widths, dtype=np.int64)
        total = int(widths.sum())
        if total > self.remaining:
            raise DecompressionError("bit stream exhausted")
        if widths.size == 0:
            return np.zeros(0, dtype=np.uint64)
        ends = np.cumsum(widths)
        starts = self._pos + ends - widths
        self._pos += total
        narrow = widths <= _NARROW
        if narrow.all():
            return self._extract(starts, widths)
        out = np.zeros(widths.size, dtype=np.uint64)
        if narrow.any():
            out[narrow] = self._extract(starts[narrow], widths[narrow])
        wide = ~narrow
        hi_w = widths[wide] - 32
        hi = self._extract(starts[wide], hi_w)
        lo = self._extract(starts[wide] + hi_w, 32)
        out[wide] = (hi << np.uint64(32)) | lo
        return out

    def advance(self, nbits: int) -> None:
        """Skip ``nbits`` bits (used by the Huffman decoder)."""
        if nbits > self.remaining:
            raise DecompressionError("bit stream exhausted")
        self._pos += nbits
