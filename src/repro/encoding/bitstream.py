"""Vectorized bit-level I/O.

The writer accumulates (value, nbits) chunks and expands them into a packed
byte buffer in one numpy pass at flush time; the reader unpacks the whole
buffer to a bit array once and serves scalar and vectorized reads from it.
Bits are MSB-first within each value and within each byte, so streams are
byte-order independent and diffable.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import DecompressionError

_MAX_BITS = 64


class BitWriter:
    """Accumulate values with explicit bit widths; emit packed bytes."""

    def __init__(self) -> None:
        self._values: List[np.ndarray] = []
        self._lengths: List[np.ndarray] = []
        self._total_bits = 0

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._total_bits

    def write_uint(self, value: int, nbits: int) -> None:
        """Write a single unsigned integer using ``nbits`` bits (0..64)."""
        if nbits == 0:
            return
        if not 0 < nbits <= _MAX_BITS:
            raise ValueError(f"nbits must be in 1..{_MAX_BITS}, got {nbits}")
        value = int(value)
        if value < 0 or (nbits < 64 and value >> nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._values.append(np.array([value], dtype=np.uint64))
        self._lengths.append(np.array([nbits], dtype=np.uint8))
        self._total_bits += nbits

    def write_array(self, values: np.ndarray, nbits) -> None:
        """Write many unsigned integers.

        ``nbits`` may be a scalar (same width for all) or a per-element
        uint8 array.  Elements with width 0 contribute nothing.
        """
        values = np.ascontiguousarray(values, dtype=np.uint64)
        if np.isscalar(nbits) or getattr(nbits, "ndim", 1) == 0:
            w = int(nbits)
            if w == 0 or values.size == 0:
                return
            lengths = np.full(values.shape, w, dtype=np.uint8)
        else:
            lengths = np.ascontiguousarray(nbits, dtype=np.uint8)
            if lengths.shape != values.shape:
                raise ValueError("values/nbits shape mismatch")
            if values.size == 0:
                return
        self._values.append(values.ravel())
        self._lengths.append(lengths.ravel())
        self._total_bits += int(lengths.sum(dtype=np.int64))

    def getvalue(self) -> bytes:
        """Pack everything written so far into bytes (zero-padded tail)."""
        if self._total_bits == 0:
            return b""
        values = np.concatenate(self._values)
        lengths = np.concatenate(self._lengths).astype(np.int64)
        total = int(lengths.sum())
        # position of the first bit of each value in the output stream
        ends = np.cumsum(lengths)
        starts = ends - lengths
        # per-output-bit index of the source value and the in-value offset
        src = np.repeat(np.arange(values.size, dtype=np.int64), lengths)
        offs = np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)
        shift = (np.repeat(lengths, lengths) - 1 - offs).astype(np.uint64)
        bits = ((values[src] >> shift) & np.uint64(1)).astype(np.uint8)
        return np.packbits(bits).tobytes()


class BitReader:
    """Serve scalar/vector reads from a packed MSB-first bit buffer."""

    def __init__(self, data: bytes, bit_length: int | None = None) -> None:
        buf = np.frombuffer(data, dtype=np.uint8)
        self._bits = np.unpackbits(buf)
        if bit_length is not None:
            if bit_length > self._bits.size:
                raise DecompressionError("bit stream shorter than declared length")
            self._bits = self._bits[:bit_length]
        self._pos = 0

    @property
    def position(self) -> int:
        """Current bit offset."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Bits left to read."""
        return self._bits.size - self._pos

    def read_uint(self, nbits: int) -> int:
        """Read one unsigned integer of ``nbits`` bits."""
        if nbits == 0:
            return 0
        if nbits > self.remaining:
            raise DecompressionError("bit stream exhausted")
        chunk = self._bits[self._pos : self._pos + nbits]
        self._pos += nbits
        out = 0
        for b in chunk:
            out = (out << 1) | int(b)
        return out

    def read_array(self, count: int, nbits: int) -> np.ndarray:
        """Read ``count`` fixed-width unsigned integers (vectorized)."""
        if count == 0:
            return np.zeros(0, dtype=np.uint64)
        if nbits == 0:
            return np.zeros(count, dtype=np.uint64)
        need = count * nbits
        if need > self.remaining:
            raise DecompressionError("bit stream exhausted")
        chunk = self._bits[self._pos : self._pos + need]
        self._pos += need
        mat = chunk.reshape(count, nbits).astype(np.uint64)
        weights = (np.uint64(1) << np.arange(nbits - 1, -1, -1, dtype=np.uint64))
        return mat @ weights

    def read_varwidth_array(self, widths: np.ndarray) -> np.ndarray:
        """Read integers with per-element widths (uint8 array, 0 allowed)."""
        widths = np.asarray(widths, dtype=np.int64)
        total = int(widths.sum())
        if total > self.remaining:
            raise DecompressionError("bit stream exhausted")
        if widths.size == 0:
            return np.zeros(0, dtype=np.uint64)
        chunk = self._bits[self._pos : self._pos + total].astype(np.uint64)
        self._pos += total
        out = np.zeros(widths.size, dtype=np.uint64)
        if total == 0:
            return out
        ends = np.cumsum(widths)
        starts = ends - widths
        src = np.repeat(np.arange(widths.size, dtype=np.int64), widths)
        offs = np.arange(total, dtype=np.int64) - np.repeat(starts, widths)
        shift = (np.repeat(widths, widths) - 1 - offs).astype(np.uint64)
        np.add.at(out, src, chunk << shift)
        return out

    def bits_view(self) -> Tuple[np.ndarray, int]:
        """Expose the raw bit array and current position (Huffman decoder)."""
        return self._bits, self._pos

    def advance(self, nbits: int) -> None:
        """Skip ``nbits`` bits (used together with :meth:`bits_view`)."""
        if nbits > self.remaining:
            raise DecompressionError("bit stream exhausted")
        self._pos += nbits
