"""The composed symbol-stream codec used for quantization indices.

Pipeline: alphabet remap (offset to the observed [min, max] range) ->
optional zero-run tokenization (:mod:`repro.encoding.rle`) -> canonical
Huffman.  Also provides a fast Shannon-entropy size estimator used by QoZ's
online tuning, which must predict the bit rate without building streams.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.huffman import HuffmanCode
from repro.encoding.rle import (
    RUN_CLASSES,
    detokenize_runs,
    run_token_histogram,
    run_token_widths,
    tokenize_runs,
)
from repro.errors import DecompressionError

#: apply run tokenization when the dominant symbol covers this fraction
RLE_DOMINANCE_THRESHOLD = 0.25


def _dominant_symbol(symbols: np.ndarray, lo: int) -> tuple[int, int]:
    """(most frequent symbol value, its count)."""
    counts = np.bincount(symbols - lo)
    dom = int(np.argmax(counts))
    return dom + lo, int(counts[dom])


def encode_symbol_stream(codes: np.ndarray, use_rle: bool = True) -> bytes:
    """Encode a non-negative int array into a self-describing byte string."""
    codes = np.ascontiguousarray(codes, dtype=np.int64)
    writer = BitWriter()
    writer.write_uint(codes.size, 64)
    if codes.size == 0:
        return writer.getvalue()
    if codes.min() < 0:
        raise ValueError("symbol codes must be non-negative")
    lo = int(codes.min())
    hi = int(codes.max())
    syms = codes - lo
    alphabet = hi - lo + 1
    dom, dom_count = _dominant_symbol(codes, lo)
    rle = bool(use_rle) and dom_count >= RLE_DOMINANCE_THRESHOLD * codes.size
    writer.write_uint(lo, 32)
    writer.write_uint(alphabet, 32)
    writer.write_uint(1 if rle else 0, 1)
    if rle:
        writer.write_uint(dom - lo, 32)
        tokens, extra_vals, extra_widths = tokenize_runs(syms, dom - lo, alphabet)
        writer.write_uint(tokens.size, 64)
        code = HuffmanCode.from_symbols(tokens, alphabet + RUN_CLASSES)
        code.serialize(writer)
        code.encode(tokens, writer)
        writer.write_array(extra_vals, extra_widths)
    else:
        code = HuffmanCode.from_symbols(syms, alphabet)
        code.serialize(writer)
        code.encode(syms, writer)
    return writer.getvalue()


def decode_symbol_stream(blob: bytes, max_size: int | None = None) -> np.ndarray:
    """Inverse of :func:`encode_symbol_stream`.

    ``max_size`` is the caller's upper bound on how many symbols the
    stream may legitimately hold (e.g. the element count of the field
    being reconstructed).  Run-length tokens let a tiny forged stream
    declare an arbitrarily large count, so callers that know a bound
    should always pass it — the declared count is then rejected *before*
    it sizes any allocation.
    """
    reader = BitReader(blob)
    n = reader.read_uint(64)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if max_size is not None and n > max_size:
        raise DecompressionError(
            f"stream declares {n} symbols, caller expects at most {max_size}"
        )
    lo = reader.read_uint(32)
    alphabet = reader.read_uint(32)
    rle = reader.read_uint(1)
    # every non-run symbol costs >= 1 payload bit, so without run tokens
    # a declared count beyond the stream length is corrupt — reject it
    # before sizing any output allocation off it
    if not rle and n > reader.remaining:
        raise DecompressionError("symbol count exceeds stream length")
    if rle:
        dom = reader.read_uint(32)
        n_tokens = reader.read_uint(64)
        if n_tokens > n:
            raise DecompressionError(
                "token count exceeds declared symbol count"
            )
        code = HuffmanCode.deserialize(reader)
        tokens = code.decode(reader, n_tokens)
        widths = run_token_widths(tokens, alphabet)
        extra_vals = reader.read_varwidth_array(widths)
        syms = detokenize_runs(
            tokens, extra_vals, dom, alphabet, expected_size=n
        )
    else:
        code = HuffmanCode.deserialize(reader)
        syms = code.decode(reader, n)
    if syms.size != n:
        raise DecompressionError(
            f"symbol stream decoded to {syms.size} symbols, expected {n}"
        )
    syms += lo  # in-place: syms is freshly allocated by the decoder
    return syms


def shannon_bits(freqs: np.ndarray) -> float:
    """Shannon information content (bits) of a histogram."""
    freqs = freqs[freqs > 0].astype(np.float64)
    total = freqs.sum()
    if total == 0:
        return 0.0
    p = freqs / total
    return float(-(freqs * np.log2(p)).sum())


def estimate_stream_bits(codes: np.ndarray, use_rle: bool = True) -> float:
    """Predict the encoded size of ``codes`` in bits without encoding.

    Scores the token histogram with its Shannon entropy plus the run extra
    bits plus an approximate table cost.  The histogram comes straight
    from the run-length decomposition (:func:`run_token_histogram`) — the
    token stream itself is never materialized, because QoZ's (alpha, beta)
    auto-tuning calls this for every candidate trial and the tokenizer's
    ``np.repeat`` expansion dominated its cost.
    """
    codes = np.ascontiguousarray(codes, dtype=np.int64)
    if codes.size == 0:
        return 0.0
    lo = int(codes.min())
    syms = codes - lo
    counts = np.bincount(syms)
    dom = int(np.argmax(counts))
    header = 64 + 32 + 32 + 1
    if use_rle and counts[dom] >= RLE_DOMINANCE_THRESHOLD * codes.size:
        tok_counts, extra_bits = run_token_histogram(syms, dom, counts)
        payload = shannon_bits(tok_counts) + float(extra_bits)
        table = 38 * int(np.count_nonzero(tok_counts))
        return header + 96 + payload + table
    payload = shannon_bits(counts)
    table = 38 * int(np.count_nonzero(counts))
    return header + payload + table
