"""Zero-run tokenizer — the stand-in for SZ's zstd "dictionary" stage.

On quantization-index streams nearly all of zstd's gain over plain Huffman
comes from long runs of the dominant (perfect-prediction) bin.  We capture
exactly that effect with deflate-style run tokens: a run of the dominant
symbol with length ``L`` becomes token ``base + k`` where ``k = floor(log2
L)``, plus ``k`` extra bits storing ``L - 2**k``.  Every other symbol passes
through as a literal token.  The transform is fully vectorized both ways.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import DecompressionError

#: number of run-length classes (supports runs up to 2**63 - 1)
RUN_CLASSES = 64


def _floor_log2(x: np.ndarray) -> np.ndarray:
    """Exact floor(log2(x)) for positive int64 values."""
    k = np.floor(np.log2(x.astype(np.float64))).astype(np.int64)
    # repair float rounding at class boundaries
    too_high = (x >> np.minimum(k, 62)) == 0
    k[too_high] -= 1
    too_low = (x >> np.minimum(k + 1, 62)) > 0
    k[too_low] += 1
    return k


def _run_lengths(symbols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(run start values, run lengths) of a 1-D symbol array."""
    n = symbols.size
    change = np.flatnonzero(symbols[1:] != symbols[:-1]) + 1
    starts = np.concatenate([[0], change])
    lens = np.diff(np.concatenate([starts, [n]]))
    return symbols[starts], lens


def tokenize_runs(
    symbols: np.ndarray, dominant: int, alphabet_size: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Replace runs of ``dominant`` with run tokens.

    Returns ``(tokens, extra_values, extra_widths)`` where tokens live in
    ``[0, alphabet_size + RUN_CLASSES)`` and the extras encode run-length
    remainders (aligned with run tokens, in stream order).
    """
    symbols = np.ascontiguousarray(symbols, dtype=np.int64)
    if symbols.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.astype(np.uint64), empty.astype(np.uint8)
    vals, lens = _run_lengths(symbols)
    is_dom = vals == dominant
    k = np.zeros(lens.size, dtype=np.int64)
    if is_dom.any():
        k[is_dom] = _floor_log2(lens[is_dom])
    token_vals = np.where(is_dom, alphabet_size + k, vals)
    out_counts = np.where(is_dom, 1, lens)
    tokens = np.repeat(token_vals, out_counts)
    extra_values = (lens[is_dom] - (np.int64(1) << k[is_dom])).astype(np.uint64)
    extra_widths = k[is_dom].astype(np.uint8)
    return tokens, extra_values, extra_widths


def run_token_histogram(
    symbols: np.ndarray, dominant: int, counts: np.ndarray | None = None
) -> Tuple[np.ndarray, int]:
    """Token histogram + total extra bits of :func:`tokenize_runs`, without
    materializing the token stream.

    Literal tokens are exactly the non-dominant symbols (one per
    occurrence), so their histogram is the symbol histogram with the
    dominant bin zeroed; run tokens contribute one count per dominant run
    at class ``floor(log2(len))``.  Returns ``(freqs, extra_bits)`` where
    ``freqs`` lists literal counts (ascending symbol) followed by run-class
    counts (ascending class) — the same positive-entry sequence
    ``np.bincount(tokens)`` would produce, which is what makes the Shannon
    estimator over it bit-for-bit identical to scoring real tokens.
    """
    symbols = np.ascontiguousarray(symbols, dtype=np.int64)
    if counts is None:
        counts = np.bincount(symbols) if symbols.size else np.zeros(1, np.int64)
    literals = counts.copy()
    if dominant < literals.size:
        literals[dominant] = 0
    if symbols.size == 0:
        return literals, 0
    vals, lens = _run_lengths(symbols)
    dom_lens = lens[vals == dominant]
    if dom_lens.size == 0:
        return literals, 0
    k = _floor_log2(dom_lens)
    run_hist = np.bincount(k)
    return np.concatenate([literals, run_hist]), int(k.sum())


def detokenize_runs(
    tokens: np.ndarray,
    extra_values: np.ndarray,
    dominant: int,
    alphabet_size: int,
    expected_size: int | None = None,
) -> np.ndarray:
    """Inverse of :func:`tokenize_runs`.

    Every run length is validated *before* any expansion is allocated: a
    run token of class ``k`` must carry an extra value below ``2**k``
    (the tokenizer never emits more), and with ``expected_size`` given
    the run lengths must sum to exactly that many symbols.  A corrupt or
    malicious stream therefore raises :class:`DecompressionError` instead
    of silently mis-decoding or ballooning ``np.repeat`` into an
    attacker-controlled allocation.
    """
    tokens = np.ascontiguousarray(tokens, dtype=np.int64)
    if tokens.size == 0:
        if expected_size not in (None, 0):
            raise DecompressionError("run token stream decoded to 0 symbols")
        return np.zeros(0, dtype=np.int64)
    is_run = tokens >= alphabet_size
    k = tokens[is_run] - alphabet_size
    if (k >= RUN_CLASSES).any() or (tokens < 0).any():
        raise DecompressionError("corrupt run token stream")
    if int(is_run.sum()) != extra_values.size:
        raise DecompressionError("run-token/extras count mismatch")
    extras = extra_values.astype(np.int64, copy=False)
    if extras.size and (
        (extras < 0).any() or (extras >> np.minimum(k, 62)).any()
    ):
        raise DecompressionError("run length remainder out of range")
    lens = np.ones(tokens.size, dtype=np.int64)
    lens[is_run] = (np.int64(1) << k) + extras
    if (lens <= 0).any():  # int64 overflow from a hostile k=63 run
        raise DecompressionError("run length out of range")
    # int64 lens.sum() wraps silently (e.g. four class-62 runs sum to 8),
    # which would defeat the size check below — bound the total with
    # monotone float arithmetic before trusting integer summation
    if float(lens.sum(dtype=np.float64)) > 2.0**62:
        raise DecompressionError("run lengths overflow")
    if expected_size is not None and int(lens.sum()) != expected_size:
        raise DecompressionError(
            "run token stream does not decode to the declared symbol count"
        )
    out_vals = np.where(is_run, dominant, tokens)
    return np.repeat(out_vals, lens)


def run_token_widths(tokens: np.ndarray, alphabet_size: int) -> np.ndarray:
    """Per-run-token extra-bit widths, recoverable from the tokens alone."""
    is_run = tokens >= alphabet_size
    return (tokens[is_run] - alphabet_size).astype(np.uint8)
