"""Entropy-coding substrates shared by every compressor in the package.

Layout:

- :mod:`repro.encoding.bitstream` — vectorized bit-level writer/reader.
- :mod:`repro.encoding.huffman` — canonical Huffman coder (length-limited).
- :mod:`repro.encoding.rle` — zero-run tokenizer (the zstd-stage stand-in).
- :mod:`repro.encoding.lossless` — lossless float coder (xor-delta +
  byte-shuffle + Huffman) used for anchor points.
- :mod:`repro.encoding.codec` — the composed symbol-stream codec used for
  quantization indices (remap -> RLE -> Huffman) plus a fast size estimator.
"""

from repro.encoding.bitstream import BitWriter, BitReader
from repro.encoding.huffman import HuffmanCode
from repro.encoding.rle import tokenize_runs, detokenize_runs
from repro.encoding.lossless import (
    compress_floats_lossless,
    decompress_floats_lossless,
    compress_bytes,
    decompress_bytes,
)
from repro.encoding.codec import (
    encode_symbol_stream,
    decode_symbol_stream,
    estimate_stream_bits,
)

__all__ = [
    "BitWriter",
    "BitReader",
    "HuffmanCode",
    "tokenize_runs",
    "detokenize_runs",
    "compress_floats_lossless",
    "decompress_floats_lossless",
    "compress_bytes",
    "decompress_bytes",
    "encode_symbol_stream",
    "decode_symbol_stream",
    "estimate_stream_bits",
]
