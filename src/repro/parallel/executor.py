"""Multi-process compression of many fields (per-node parallelism).

Scientific dumps contain many independent fields (the paper's RTM has
3600, Hurricane 48x13); compressing them is embarrassingly parallel.  The
executor ships (codec name, constructor kwargs, field) tuples to worker
processes — codecs are reconstructed per worker because compressor
instances hold per-call state (``last_report``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.compressors.base import decompress_any, get_compressor


def _compress_one(args) -> bytes:
    name, kwargs, field, eb_kwargs = args
    codec = get_compressor(name, **kwargs)
    return codec.compress(field, **eb_kwargs)


def _decompress_one(blob: bytes) -> np.ndarray:
    return decompress_any(blob)


def compress_fields_parallel(
    fields: Sequence[np.ndarray],
    codec_name: str,
    codec_kwargs: Optional[Dict] = None,
    error_bound: Optional[float] = None,
    rel_error_bound: Optional[float] = None,
    processes: Optional[int] = None,
) -> List[bytes]:
    """Compress every field with its own worker process.

    With ``processes=1`` (or a single field) everything runs in-process,
    which keeps unit tests cheap and avoids fork overhead for tiny inputs.
    """
    codec_kwargs = codec_kwargs or {}
    eb_kwargs = {}
    if error_bound is not None:
        eb_kwargs["error_bound"] = error_bound
    if rel_error_bound is not None:
        eb_kwargs["rel_error_bound"] = rel_error_bound
    jobs = [(codec_name, codec_kwargs, f, eb_kwargs) for f in fields]
    if processes == 1 or len(jobs) <= 1:
        return [_compress_one(j) for j in jobs]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(_compress_one, jobs))


def decompress_blobs_parallel(
    blobs: Sequence[bytes], processes: Optional[int] = None
) -> List[np.ndarray]:
    """Decompress many streams in parallel (codec-routing per stream)."""
    if processes == 1 or len(blobs) <= 1:
        return [_decompress_one(b) for b in blobs]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(_decompress_one, blobs))
