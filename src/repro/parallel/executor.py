"""Multi-process compression of many fields or chunks (per-node parallelism).

Scientific dumps contain many independent fields (the paper's RTM has
3600, Hurricane 48x13); compressing them is embarrassingly parallel.  The
executor ships (codec name, constructor kwargs, field) tuples to worker
processes — codecs are reconstructed per worker because compressor
instances hold per-call state (``last_report``).

The same fan-out applies *within* one field once it is tiled by
:mod:`repro.chunked`: every chunk is an independent compression job under
one shared absolute bound (:func:`compress_chunks_parallel`).  Chunk jobs
are typically smaller and more numerous than field jobs, so they are
batched onto workers with a map chunksize to amortize IPC.

Chunk jobs optionally carry a :class:`~repro.core.plan_cache.FrozenPlan`
derived once from the full field: workers then run only the execution
half of the codec (no per-chunk sampling / selection / tuning), which is
where chunked QoZ compression used to burn most of its time.  The plan
pickles in a few hundred bytes, so broadcasting it is free next to the
chunk payloads themselves.

Chunk *payloads* no longer ride the pickle channel at all: the streaming
path and the service pool pack many chunks into one shared-memory slab
(:mod:`repro.parallel.slab`), workers attach by name and compress sliced
views, and the submitted job is just ``(slab_name, descriptors, codec,
…)`` — a few hundred bytes for a whole batch.  Batching many chunks per
submit also amortizes the per-job dispatch overhead that used to
dominate small-chunk fan-outs.  Decompression reverses the flow: blobs
(small) ship pickled, workers write decoded regions straight into a
shared *output* slab owned by the caller.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import (
    Future,
    InvalidStateError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.compressors.base import decompress_any, get_compressor
from repro.errors import WorkerCrashError
from repro.parallel.slab import Slab, attach_slab, detach_slab


def _compress_one(args) -> bytes:
    name, kwargs, field, eb_kwargs, plan = args
    codec = get_compressor(name, **kwargs)
    if plan is not None:
        return codec.compress_with_plan(field, plan, **eb_kwargs)
    return codec.compress(field, **eb_kwargs)


def _probe_job(_arg: int = 0) -> int:
    """Trivial job used to test whether a candidate pool's workers live."""
    return _arg + 1


def _check_plan(plan, codec_name: str) -> None:
    """Fail fast (in the caller, not a pool worker) on a plan the target
    codec cannot execute."""
    if plan is not None and getattr(plan, "codec", None) != codec_name:
        raise ValueError(
            f"plan was derived by codec {getattr(plan, 'codec', None)!r} "
            f"and cannot drive {codec_name!r} workers"
        )


def _decompress_one(blob: bytes) -> np.ndarray:
    return decompress_any(blob)


def _compress_batch(args) -> List[bytes]:
    """Worker: compress every chunk described by one slab batch.

    ``args`` is ``(slab_name, descriptors, codec_name, codec_kwargs,
    eb_kwargs, plan)`` where each descriptor is ``(offset, shape,
    dtype)`` into the named input slab (layout pinned by
    ``slab.SLAB_DESCRIPTOR_LAYOUT`` in the wire registry).  The worker
    never takes slab ownership; re-dispatch after a crash ships the
    identical descriptors, so retried streams stay byte-identical.
    """
    slab_name, descriptors, codec_name, codec_kwargs, eb_kwargs, plan = args
    codec = get_compressor(codec_name, **codec_kwargs)
    shm = attach_slab(slab_name)
    try:
        blobs: List[bytes] = []
        for offset, shape, dtype in descriptors:
            view = np.ndarray(
                tuple(shape), dtype=np.dtype(dtype),
                buffer=shm.buf, offset=offset,
            )
            if plan is not None:
                blobs.append(codec.compress_with_plan(view, plan, **eb_kwargs))
            else:
                blobs.append(codec.compress(view, **eb_kwargs))
            del view  # views must die before the mapping closes
        return blobs
    finally:
        detach_slab(shm)


def _decompress_into_batch(args) -> int:
    """Worker: decode blobs and write regions into a shared output slab.

    ``args`` is ``(slab_name, out_shape, out_dtype, parts)`` with each
    part ``(blob, src_bounds, dst_bounds)``; bounds are per-axis
    ``(start, stop)`` pairs (plain ints pickle smaller than slice
    objects and keep the job layout introspectable).  Writes are
    idempotent — a crash retry rewrites the same values — so this rides
    the supervisor's heal/retry paths unchanged.
    """
    slab_name, out_shape, out_dtype, parts = args
    shm = attach_slab(slab_name)
    try:
        out = np.ndarray(
            tuple(out_shape), dtype=np.dtype(out_dtype), buffer=shm.buf
        )
        for blob, src_bounds, dst_bounds in parts:
            src = tuple(slice(a, b) for a, b in src_bounds)
            dst = tuple(slice(a, b) for a, b in dst_bounds)
            out[dst] = decompress_any(blob)[src]
        done = len(parts)
        del out  # views must die before the mapping closes
        return done
    finally:
        detach_slab(shm)


def compress_fields_parallel(
    fields: Sequence[np.ndarray],
    codec_name: str,
    codec_kwargs: Optional[Dict] = None,
    error_bound: Optional[float] = None,
    rel_error_bound: Optional[float] = None,
    processes: Optional[int] = None,
) -> List[bytes]:
    """Compress every field with its own worker process.

    With ``processes=1`` (or a single field) everything runs in-process,
    which keeps unit tests cheap and avoids fork overhead for tiny inputs.
    """
    codec_kwargs = codec_kwargs or {}
    eb_kwargs = {}
    if error_bound is not None:
        eb_kwargs["error_bound"] = error_bound
    if rel_error_bound is not None:
        eb_kwargs["rel_error_bound"] = rel_error_bound
    jobs = [(codec_name, codec_kwargs, f, eb_kwargs, None) for f in fields]
    if processes == 1 or len(jobs) <= 1:
        return [_compress_one(j) for j in jobs]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(_compress_one, jobs))


def compress_chunks_parallel(
    chunks: Sequence[np.ndarray],
    codec_name: str,
    codec_kwargs: Optional[Dict] = None,
    error_bound: Optional[float] = None,
    processes: Optional[int] = None,
    plan=None,
) -> List[bytes]:
    """Compress the chunks of ONE field with a process-pool fan-out.

    Unlike :func:`compress_fields_parallel`, every job shares a single
    *absolute* ``error_bound`` — the caller must resolve any relative
    bound against the full field first, otherwise each chunk would scale
    the bound by its local value range and the container would not match
    the unchunked stream's guarantee.  Results keep input order.

    ``plan`` (a :class:`~repro.core.plan_cache.FrozenPlan`) makes every
    worker execute the shared plan instead of re-deriving one per chunk.
    """
    if error_bound is None:
        raise ValueError("compress_chunks_parallel needs an absolute error_bound")
    _check_plan(plan, codec_name)
    codec_kwargs = codec_kwargs or {}
    if processes == 1 or len(chunks) <= 1:
        jobs = [
            (codec_name, codec_kwargs, c, {"error_bound": error_bound}, plan)
            for c in chunks
        ]
        return [_compress_one(j) for j in jobs]
    # multi-process: ride the slab-batched streaming fan-out so both
    # entry points share one IPC mechanism (and its byte-identity tests)
    results: List[Optional[bytes]] = [None] * len(chunks)
    for i, blob in compress_chunks_streaming(
        enumerate(chunks),
        codec_name,
        codec_kwargs,
        error_bound=error_bound,
        processes=processes,
        plan=plan,
    ):
        results[i] = blob
    return results  # type: ignore[return-value]  # every index was yielded


def compress_chunks_streaming(
    chunks: "Iterable[Tuple[int, np.ndarray]]",
    codec_name: str,
    codec_kwargs: Optional[Dict] = None,
    error_bound: Optional[float] = None,
    processes: Optional[int] = None,
    window: Optional[int] = None,
    plan=None,
    batch_chunks: Optional[int] = None,
):
    """Yield ``(index, blob)`` for a stream of chunk jobs, in submit order.

    One process pool serves the whole iteration (no per-batch pool
    startup).  Chunks are packed ``batch_chunks`` at a time into a
    shared-memory slab (:mod:`repro.parallel.slab`) and submitted as one
    descriptor job, so the pickle channel carries bytes proportional to
    the batch *count*, not the chunk payloads.  At most ``window``
    chunks (default ``4 * workers``) are slab-resident at a time — peak
    memory stays bounded by the window, not the field, even when
    ``chunks`` lazily slices a memory-mapped array.  Every slab is
    released as soon as its batch's results are consumed, and
    unconditionally when the generator is closed early or a job raises.
    Same absolute-bound contract (and same optional shared ``plan``) as
    :func:`compress_chunks_parallel`.
    """
    if error_bound is None:
        raise ValueError("compress_chunks_streaming needs an absolute error_bound")
    _check_plan(plan, codec_name)
    codec_kwargs = codec_kwargs or {}
    workers = max(1, processes or os.cpu_count() or 1)
    win = window or 4 * workers
    if batch_chunks is None:
        # enough batches to keep every worker busy twice over the window
        batch_chunks = max(1, win // (2 * workers))
    eb_kwargs = {"error_bound": error_bound}
    with ProcessPoolExecutor(max_workers=processes) as pool:
        #: in-flight batches: (chunk indices, owning slab, inner future)
        pending: "Deque[Tuple[List[int], Slab, Future]]" = deque()
        inflight = 0
        batch_idx: List[int] = []
        batch_arrays: List[np.ndarray] = []

        def flush_batch() -> None:
            nonlocal inflight
            if not batch_idx:
                return
            slab = Slab.create(
                max(1, sum(int(a.nbytes) for a in batch_arrays))
            )
            descriptors = slab.pack(batch_arrays)
            job = (
                slab.name, tuple(descriptors), codec_name, codec_kwargs,
                eb_kwargs, plan,
            )
            fut = pool.submit(_compress_batch, job)
            pending.append((list(batch_idx), slab, fut))
            inflight += len(batch_idx)
            batch_idx.clear()
            batch_arrays.clear()

        def drain_oldest() -> "List[Tuple[int, bytes]]":
            nonlocal inflight
            indices, slab, fut = pending.popleft()
            try:
                blobs = fut.result()
            finally:
                slab.release()
            inflight -= len(indices)
            return list(zip(indices, blobs))

        try:
            for index, array in chunks:
                batch_idx.append(index)
                batch_arrays.append(array)
                if len(batch_idx) >= batch_chunks:
                    flush_batch()
                while inflight >= win:
                    for pair in drain_oldest():
                        yield pair
            flush_batch()
            while pending:
                for pair in drain_oldest():
                    yield pair
        finally:
            # early close / job failure: no slab outlives the generator
            while pending:
                _, slab, fut = pending.popleft()
                fut.cancel()
                slab.release()


def decompress_blobs_parallel(
    blobs: Sequence[bytes], processes: Optional[int] = None
) -> List[np.ndarray]:
    """Decompress many streams in parallel (codec-routing per stream)."""
    if processes == 1 or len(blobs) <= 1:
        return [_decompress_one(b) for b in blobs]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(_decompress_one, blobs))


def decompress_parts_parallel(
    parts: Sequence[Tuple[bytes, tuple, tuple]],
    out_shape: Sequence[int],
    out_dtype,
    processes: Optional[int] = None,
) -> np.ndarray:
    """Decode ``(blob, src_bounds, dst_bounds)`` parts into one array.

    Workers write decoded regions straight into a shared output slab —
    decoded chunks are never pickled back.  The regions of a hyperslab
    plan are disjoint by construction, so concurrent writes never
    overlap.  Parts are dealt round-robin into one batch per worker
    (times two, for stragglers) to amortize dispatch.
    """
    out_dtype = np.dtype(out_dtype)
    out_shape = tuple(int(n) for n in out_shape)
    workers = max(1, processes or os.cpu_count() or 1)
    nbytes = out_dtype.itemsize * int(np.prod(out_shape, dtype=np.int64))
    slab = Slab.create(max(1, nbytes))
    try:
        with ProcessPoolExecutor(max_workers=processes) as pool:
            n_batches = max(1, min(len(parts), workers * 2))
            futures = [
                pool.submit(
                    _decompress_into_batch,
                    (
                        slab.name, out_shape, out_dtype.str,
                        tuple(parts[b::n_batches]),
                    ),
                )
                for b in range(n_batches)
            ]
            for fut in futures:
                fut.result()
        view = slab.view(0, out_shape, out_dtype)
        result = np.array(view)  # copy out before the slab is unlinked
        del view
        return result
    finally:
        slab.release()


class ChunkWorkPool:
    """Long-lived, *self-healing* process pool for service workloads.

    The batch helpers above spin a pool up per call, which is the right
    shape for a CLI run but exactly wrong for a long-lived server: fork
    cost per request would swamp small jobs.  This wrapper keeps ONE
    ``ProcessPoolExecutor`` alive across requests (spawned lazily on the
    first submit, so constructing a service with ``processes <= 1`` never
    forks at all) and exposes submit-level access, which is what an
    asyncio scheduler needs — ``concurrent.futures`` futures it can wrap
    with ``asyncio.wrap_future`` and interleave across requests.

    On top of that sits a supervisor (see DESIGN.md §12): a worker dying
    of OOM/segfault bricks a raw ``ProcessPoolExecutor`` permanently
    (every in-flight future gets ``BrokenProcessPool`` and every later
    submit re-raises it), so callers never see raw pool futures.  Each
    submit returns an *outer* future; the supervisor routes the inner
    pool future's outcome into it and, on a pool break:

    * the first observer of a break (generation-checked, so a batch of
      simultaneous failures heals once) tears the pool down; the next
      dispatch builds a fresh one;
    * the jobs that died are re-dispatched with a bounded per-job crash
      budget — a job that breaks the pool ``max_job_crashes`` times is
      *poisoned* and fails alone with :class:`WorkerCrashError` instead
      of taking the batch (or the pool) with it;
    * ``max_consecutive_crashes`` breaks with no intervening success
      degrade the pool to an in-process serial lane (a one-thread
      executor — submits stay non-blocking), and a periodic probe job on
      a candidate pool re-promotes to process workers once one survives.

    Every supervisor transition is reported through ``on_event`` (the
    service wires this to ``ServiceMetrics.pool_event``), and the
    current mode is visible via :meth:`health`.

    Chunk jobs reuse the exact module-level worker functions of the batch
    paths (:func:`_compress_one`, :func:`_decompress_one`,
    :func:`_compress_batch`, :func:`_decompress_into_batch`), so a
    stream compressed through the pool is byte-identical to one
    compressed by :func:`compress_chunks_parallel` or inline — crash
    retries included, because the payload (or slab descriptor) re-ships
    verbatim.  Slab-batched submits keep slab OWNERSHIP with the caller:
    the pool never unlinks a slab, so heal/retry/poison can re-dispatch
    the same descriptors, and the caller releases the slab once the
    outer future resolves (or is cancelled by a deadline shed).
    """

    def __init__(
        self,
        processes: Optional[int] = None,
        max_job_crashes: int = 2,
        max_consecutive_crashes: int = 3,
        probe_interval: float = 5.0,
        on_event: Optional[Callable[[str], None]] = None,
        mp_context=None,
    ) -> None:
        self.processes = processes
        self.max_job_crashes = int(max_job_crashes)
        self.max_consecutive_crashes = int(max_consecutive_crashes)
        self.probe_interval = float(probe_interval)
        self._on_event = on_event
        self._mp_context = mp_context
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._serial: Optional[ThreadPoolExecutor] = None
        self._generation = 0
        self._consecutive = 0
        self._degraded = False
        self._closed = False
        self._ever_built = False
        self._probe_inflight = False
        self._last_probe = 0.0

    @property
    def parallel(self) -> bool:
        """Whether submits actually fan out to worker processes."""
        return self.processes is not None and self.processes > 1

    @property
    def degraded(self) -> bool:
        """True while jobs run on the in-process serial fallback lane."""
        return self._degraded

    def health(self) -> Dict[str, Any]:
        """Supervisor state for the service stats snapshot."""
        with self._lock:
            return {
                "pool_mode": "serial" if self._degraded else "process",
                "pool_generation": self._generation,
                "pool_consecutive_crashes": self._consecutive,
            }

    # ------------------------------------------------------------ supervisor
    def _emit(self, kind: str) -> None:
        if self._on_event is not None:
            self._on_event(kind)

    def _acquire_lane(self):
        """Pick the executor for one dispatch attempt.

        Returns ``(lane, generation, process_lane, probe_needed)``; the
        probe kick happens in the caller, outside the lock, because a
        probe whose future completes synchronously would re-enter it.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot submit to a shut-down ChunkWorkPool")
            if self._degraded:
                if self._serial is None:
                    self._serial = ThreadPoolExecutor(
                        max_workers=1, thread_name_prefix="repro-serial"
                    )
                now = time.monotonic()
                probe = (
                    not self._probe_inflight
                    and now - self._last_probe >= self.probe_interval
                )
                if probe:
                    self._probe_inflight = True
                    self._last_probe = now
                return self._serial, self._generation, False, probe
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.processes, mp_context=self._mp_context
                )
                if self._ever_built:
                    self._emit("respawn")
                self._ever_built = True
            return self._pool, self._generation, True, False

    def _note_crash(self, gen: int) -> None:
        """Heal one pool break: teardown now, a fresh pool on next dispatch.

        Every in-flight job of a broken pool observes the same break;
        the generation counter makes the first observer do the healing
        and turns the rest into no-ops.
        """
        with self._lock:
            if self._closed or gen != self._generation:
                return
            self._generation += 1
            self._consecutive += 1
            dead, self._pool = self._pool, None
            degraded_now = (
                not self._degraded
                and self._consecutive >= self.max_consecutive_crashes
            )
            if degraded_now:
                self._degraded = True
                self._last_probe = time.monotonic()
        if dead is not None:
            try:
                dead.shutdown(wait=False, cancel_futures=True)
            except (OSError, RuntimeError):
                pass  # a broken executor may refuse; it is already dead
        self._emit("crash")
        if degraded_now:
            self._emit("degraded")

    def _note_success(self, gen: int) -> None:
        with self._lock:
            if gen == self._generation:
                self._consecutive = 0

    def _start_probe(self) -> None:
        """Try one job on a candidate process pool; adopt it if it lives."""
        candidate = ProcessPoolExecutor(
            max_workers=self.processes, mp_context=self._mp_context
        )
        try:
            fut = candidate.submit(_probe_job)
        except (BrokenProcessPool, RuntimeError):
            self._probe_failed(candidate)
            return
        fut.add_done_callback(lambda f: self._probe_done(f, candidate))

    def _probe_done(self, fut: Future, candidate: ProcessPoolExecutor) -> None:
        ok = not fut.cancelled() and fut.exception() is None
        with self._lock:
            adopt = ok and self._degraded and not self._closed
            if adopt:
                self._pool = candidate
                self._degraded = False
                self._consecutive = 0
                self._generation += 1
            self._probe_inflight = False
        if adopt:
            self._emit("promoted")
        else:
            self._probe_failed(candidate, emit=not ok)

    def _probe_failed(
        self, candidate: ProcessPoolExecutor, emit: bool = True
    ) -> None:
        with self._lock:
            self._probe_inflight = False
        try:
            candidate.shutdown(wait=False, cancel_futures=True)
        except (OSError, RuntimeError):
            pass
        if emit:
            self._emit("probe-failure")

    # -------------------------------------------------------------- dispatch
    def _submit(self, fn: Callable, payload) -> "Future":
        outer: Future = Future()
        self._dispatch(fn, payload, outer, crashes=0)
        return outer

    def _dispatch(self, fn: Callable, payload, outer: "Future", crashes: int) -> None:
        while not outer.cancelled():
            lane, gen, process_lane, probe = self._acquire_lane()
            if probe:
                self._start_probe()
            try:
                inner = lane.submit(fn, payload)
            except BrokenProcessPool:
                # the pool broke between two of our submits; heal and
                # retry the dispatch (this is a pool fault, not a job
                # fault — the job never ran, so its crash budget is
                # untouched)
                self._note_crash(gen)
                continue
            inner.add_done_callback(
                lambda f: self._job_done(f, fn, payload, outer, crashes, gen, process_lane)
            )
            return

    def _job_done(
        self,
        inner: "Future",
        fn: Callable,
        payload,
        outer: "Future",
        crashes: int,
        gen: int,
        process_lane: bool,
    ) -> None:
        if outer.cancelled():
            return
        if inner.cancelled():
            # only shutdown cancels queued inner futures; mirror it
            outer.cancel()
            return
        exc = inner.exception()
        if isinstance(exc, BrokenProcessPool):
            self._note_crash(gen)
            crashes += 1
            if crashes >= self.max_job_crashes:
                self._emit("poisoned")
                self._set_exception(
                    outer,
                    WorkerCrashError(
                        f"job killed its worker {crashes} times "
                        f"(pool healed; this job is poisoned)"
                    ),
                )
                return
            self._emit("retry")
            self._dispatch(fn, payload, outer, crashes)
            return
        if exc is not None:
            self._set_exception(outer, exc)
            return
        if process_lane:
            self._note_success(gen)
        self._set_result(outer, inner.result())

    @staticmethod
    def _set_result(outer: "Future", value) -> None:
        if not outer.cancelled():
            try:
                outer.set_result(value)
            except InvalidStateError:
                pass  # lost a race with a caller-side cancel

    @staticmethod
    def _set_exception(outer: "Future", exc: BaseException) -> None:
        if not outer.cancelled():
            try:
                outer.set_exception(exc)
            except InvalidStateError:
                pass  # lost a race with a caller-side cancel

    # ------------------------------------------------------------------- api
    def submit_compress(
        self,
        codec_name: str,
        codec_kwargs: Optional[Dict],
        chunk: np.ndarray,
        error_bound: float,
        plan=None,
    ):
        """Submit one chunk compression; returns a concurrent future."""
        _check_plan(plan, codec_name)
        job = (
            codec_name, codec_kwargs or {}, chunk,
            {"error_bound": error_bound}, plan,
        )
        return self._submit(_compress_one, job)

    def submit_decompress(self, blob: bytes):
        """Submit one stream decode; returns a concurrent future."""
        return self._submit(_decompress_one, blob)

    def submit_compress_batch(
        self,
        codec_name: str,
        codec_kwargs: Optional[Dict],
        slab_name: str,
        descriptors: Sequence[Tuple[int, Tuple[int, ...], str]],
        error_bound: float,
        plan=None,
    ):
        """Submit one slab batch of chunk compressions (one future, many
        chunks).  The future resolves to the list of streams in
        descriptor order.  The caller owns the slab and must keep it
        alive until the future resolves — crash retries re-attach it.
        """
        _check_plan(plan, codec_name)
        job = (
            slab_name, tuple(descriptors), codec_name, codec_kwargs or {},
            {"error_bound": error_bound}, plan,
        )
        return self._submit(_compress_batch, job)

    def submit_decompress_into(
        self,
        slab_name: str,
        out_shape: Sequence[int],
        out_dtype: str,
        parts: Sequence[Tuple[bytes, tuple, tuple]],
    ):
        """Submit one batch of region decodes into a shared output slab.

        Each part is ``(blob, src_bounds, dst_bounds)`` with per-axis
        ``(start, stop)`` pairs; the worker writes ``decoded[src]`` into
        ``out[dst]``.  Writes are idempotent, so the supervisor's retry
        path needs no special casing.  Slab ownership stays with the
        caller (same contract as :meth:`submit_compress_batch`).
        """
        job = (
            slab_name,
            tuple(int(n) for n in out_shape),
            str(out_dtype),
            tuple(parts),
        )
        return self._submit(_decompress_into_batch, job)

    def shutdown(self) -> None:
        """Idempotent teardown that tolerates an already-broken pool."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
            serial, self._serial = self._serial, None
        for lane in (pool, serial):
            if lane is None:
                continue
            try:
                lane.shutdown(wait=True, cancel_futures=True)
            except (OSError, RuntimeError):
                pass  # a broken executor may raise on shutdown; it is gone
