"""Multi-process compression of many fields or chunks (per-node parallelism).

Scientific dumps contain many independent fields (the paper's RTM has
3600, Hurricane 48x13); compressing them is embarrassingly parallel.  The
executor ships (codec name, constructor kwargs, field) tuples to worker
processes — codecs are reconstructed per worker because compressor
instances hold per-call state (``last_report``).

The same fan-out applies *within* one field once it is tiled by
:mod:`repro.chunked`: every chunk is an independent compression job under
one shared absolute bound (:func:`compress_chunks_parallel`).  Chunk jobs
are typically smaller and more numerous than field jobs, so they are
batched onto workers with a map chunksize to amortize IPC.

Chunk jobs optionally carry a :class:`~repro.core.plan_cache.FrozenPlan`
derived once from the full field: workers then run only the execution
half of the codec (no per-chunk sampling / selection / tuning), which is
where chunked QoZ compression used to burn most of its time.  The plan
pickles in a few hundred bytes, so broadcasting it is free next to the
chunk payloads themselves.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.compressors.base import decompress_any, get_compressor


def _compress_one(args) -> bytes:
    name, kwargs, field, eb_kwargs, plan = args
    codec = get_compressor(name, **kwargs)
    if plan is not None:
        return codec.compress_with_plan(field, plan, **eb_kwargs)
    return codec.compress(field, **eb_kwargs)


def _check_plan(plan, codec_name: str) -> None:
    """Fail fast (in the caller, not a pool worker) on a plan the target
    codec cannot execute."""
    if plan is not None and getattr(plan, "codec", None) != codec_name:
        raise ValueError(
            f"plan was derived by codec {getattr(plan, 'codec', None)!r} "
            f"and cannot drive {codec_name!r} workers"
        )


def _decompress_one(blob: bytes) -> np.ndarray:
    return decompress_any(blob)


def compress_fields_parallel(
    fields: Sequence[np.ndarray],
    codec_name: str,
    codec_kwargs: Optional[Dict] = None,
    error_bound: Optional[float] = None,
    rel_error_bound: Optional[float] = None,
    processes: Optional[int] = None,
) -> List[bytes]:
    """Compress every field with its own worker process.

    With ``processes=1`` (or a single field) everything runs in-process,
    which keeps unit tests cheap and avoids fork overhead for tiny inputs.
    """
    codec_kwargs = codec_kwargs or {}
    eb_kwargs = {}
    if error_bound is not None:
        eb_kwargs["error_bound"] = error_bound
    if rel_error_bound is not None:
        eb_kwargs["rel_error_bound"] = rel_error_bound
    jobs = [(codec_name, codec_kwargs, f, eb_kwargs, None) for f in fields]
    if processes == 1 or len(jobs) <= 1:
        return [_compress_one(j) for j in jobs]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(_compress_one, jobs))


def compress_chunks_parallel(
    chunks: Sequence[np.ndarray],
    codec_name: str,
    codec_kwargs: Optional[Dict] = None,
    error_bound: Optional[float] = None,
    processes: Optional[int] = None,
    plan=None,
) -> List[bytes]:
    """Compress the chunks of ONE field with a process-pool fan-out.

    Unlike :func:`compress_fields_parallel`, every job shares a single
    *absolute* ``error_bound`` — the caller must resolve any relative
    bound against the full field first, otherwise each chunk would scale
    the bound by its local value range and the container would not match
    the unchunked stream's guarantee.  Results keep input order.

    ``plan`` (a :class:`~repro.core.plan_cache.FrozenPlan`) makes every
    worker execute the shared plan instead of re-deriving one per chunk.
    """
    if error_bound is None:
        raise ValueError("compress_chunks_parallel needs an absolute error_bound")
    _check_plan(plan, codec_name)
    codec_kwargs = codec_kwargs or {}
    jobs = [
        (codec_name, codec_kwargs, c, {"error_bound": error_bound}, plan)
        for c in chunks
    ]
    if processes == 1 or len(jobs) <= 1:
        return [_compress_one(j) for j in jobs]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        workers = processes or os.cpu_count() or 1
        chunksize = max(1, len(jobs) // (workers * 4))
        return list(pool.map(_compress_one, jobs, chunksize=chunksize))


def compress_chunks_streaming(
    chunks: "Iterable[Tuple[int, np.ndarray]]",
    codec_name: str,
    codec_kwargs: Optional[Dict] = None,
    error_bound: Optional[float] = None,
    processes: Optional[int] = None,
    window: Optional[int] = None,
    plan=None,
):
    """Yield ``(index, blob)`` for a stream of chunk jobs, in submit order.

    One process pool serves the whole iteration (no per-batch pool
    startup), and at most ``window`` jobs (default ``4 * workers``) are
    in flight at a time — so peak memory is bounded by the window, not
    the field, even when ``chunks`` lazily slices a memory-mapped array.
    Same absolute-bound contract (and same optional shared ``plan``) as
    :func:`compress_chunks_parallel`.
    """
    if error_bound is None:
        raise ValueError("compress_chunks_streaming needs an absolute error_bound")
    _check_plan(plan, codec_name)
    codec_kwargs = codec_kwargs or {}
    win = window or 4 * max(1, processes or os.cpu_count() or 1)
    with ProcessPoolExecutor(max_workers=processes) as pool:
        pending: Deque = deque()
        for index, array in chunks:
            job = (
                codec_name, codec_kwargs, array,
                {"error_bound": error_bound}, plan,
            )
            pending.append((index, pool.submit(_compress_one, job)))
            if len(pending) >= win:
                i, fut = pending.popleft()
                yield i, fut.result()
        while pending:
            i, fut = pending.popleft()
            yield i, fut.result()


def decompress_blobs_parallel(
    blobs: Sequence[bytes], processes: Optional[int] = None
) -> List[np.ndarray]:
    """Decompress many streams in parallel (codec-routing per stream)."""
    if processes == 1 or len(blobs) <= 1:
        return [_decompress_one(b) for b in blobs]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        return list(pool.map(_decompress_one, blobs))


class ChunkWorkPool:
    """Long-lived process pool for service-style chunk workloads.

    The batch helpers above spin a pool up per call, which is the right
    shape for a CLI run but exactly wrong for a long-lived server: fork
    cost per request would swamp small jobs.  This wrapper keeps ONE
    ``ProcessPoolExecutor`` alive across requests (spawned lazily on the
    first submit, so constructing a service with ``processes <= 1`` never
    forks at all) and exposes submit-level access, which is what an
    asyncio scheduler needs — ``concurrent.futures`` futures it can wrap
    with ``asyncio.wrap_future`` and interleave across requests.

    Chunk jobs reuse the exact module-level worker functions of the batch
    paths (:func:`_compress_one`, :func:`_decompress_one`), so a stream
    compressed through the pool is byte-identical to one compressed by
    :func:`compress_chunks_parallel` or inline.
    """

    def __init__(self, processes: Optional[int] = None) -> None:
        self.processes = processes
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def parallel(self) -> bool:
        """Whether submits actually fan out to worker processes."""
        return self.processes is not None and self.processes > 1

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.processes)
        return self._pool

    def submit_compress(
        self,
        codec_name: str,
        codec_kwargs: Optional[Dict],
        chunk: np.ndarray,
        error_bound: float,
        plan=None,
    ):
        """Submit one chunk compression; returns a concurrent future."""
        _check_plan(plan, codec_name)
        job = (
            codec_name, codec_kwargs or {}, chunk,
            {"error_bound": error_bound}, plan,
        )
        return self._ensure_pool().submit(_compress_one, job)

    def submit_decompress(self, blob: bytes):
        """Submit one stream decode; returns a concurrent future."""
        return self._ensure_pool().submit(_decompress_one, blob)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
