"""Parallel data dumping/loading: analytic model + process-pool executor.

The paper's Fig. 14 measures Hurricane-Isabel dump/load times on 1K-8K
Bebop cores, where each core compresses 1.3 GB and the Lustre aggregate
bandwidth saturates — so at scale the codec with the best compression
ratio wins despite slower compute.  :mod:`repro.parallel.iomodel`
implements exactly that mechanism with measured CR/throughput inputs;
:mod:`repro.parallel.executor` provides real multi-process compression
for the per-node parallelism we can actually exercise here.
"""

from repro.parallel.iomodel import IOSystemModel, dump_load_series
from repro.parallel.executor import (
    ChunkWorkPool,
    compress_chunks_parallel,
    compress_chunks_streaming,
    compress_fields_parallel,
    decompress_blobs_parallel,
    decompress_parts_parallel,
)
from repro.parallel.slab import ChunkDescriptor, Slab, active_slab_names

__all__ = [
    "ChunkDescriptor",
    "ChunkWorkPool",
    "IOSystemModel",
    "Slab",
    "active_slab_names",
    "dump_load_series",
    "compress_chunks_parallel",
    "compress_chunks_streaming",
    "compress_fields_parallel",
    "decompress_blobs_parallel",
    "decompress_parts_parallel",
]
