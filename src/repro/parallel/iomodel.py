"""Analytic model of parallel data dumping/loading through a shared PFS.

``T_dump = data_per_core / compress_rate + total_compressed / BW(cores)``
(and symmetrically for loading), with the aggregate parallel-filesystem
bandwidth following a saturating curve ``BW(c) = BW_peak * c / (c + c_half)``
— small runs are compute-bound, large runs are bandwidth-bound, which is
what produces Fig. 14's crossover where the highest-CR codec wins.
Defaults approximate Bebop's Lustre system (~100 GB/s peak).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class IOSystemModel:
    """A cluster + parallel-filesystem performance model."""

    peak_bandwidth_gbs: float = 100.0  # aggregate PFS GB/s at saturation
    half_saturation_cores: int = 512  # cores at which BW reaches half peak
    per_core_gb: float = 1.3  # paper: 1.3 GB per core

    def aggregate_bandwidth_gbs(self, cores: int) -> float:
        """Saturating aggregate bandwidth for a run of ``cores`` cores."""
        if cores <= 0:
            raise ConfigurationError("cores must be positive")
        return (
            self.peak_bandwidth_gbs * cores / (cores + self.half_saturation_cores)
        )

    def dump_time_s(
        self, cores: int, compression_ratio: float, compress_mbps: float
    ) -> float:
        """Seconds to compress + write everything (compression overlaps
        across cores, writes share the PFS)."""
        if compression_ratio <= 0 or compress_mbps <= 0:
            raise ConfigurationError("CR and throughput must be positive")
        compute = self.per_core_gb * 1024.0 / compress_mbps
        total_gb = self.per_core_gb * cores / compression_ratio
        write = total_gb / self.aggregate_bandwidth_gbs(cores)
        return compute + write

    def load_time_s(
        self, cores: int, compression_ratio: float, decompress_mbps: float
    ) -> float:
        """Seconds to read + decompress everything."""
        if compression_ratio <= 0 or decompress_mbps <= 0:
            raise ConfigurationError("CR and throughput must be positive")
        total_gb = self.per_core_gb * cores / compression_ratio
        read = total_gb / self.aggregate_bandwidth_gbs(cores)
        compute = self.per_core_gb * 1024.0 / decompress_mbps
        return read + compute

    def raw_dump_time_s(self, cores: int) -> float:
        """Baseline without compression (pure PFS write)."""
        total_gb = self.per_core_gb * cores
        return total_gb / self.aggregate_bandwidth_gbs(cores)


def dump_load_series(
    model: IOSystemModel,
    core_counts: Iterable[int],
    codec_stats: Dict[str, Dict[str, float]],
) -> List[dict]:
    """Fig. 14 series: per codec per core count, dump and load seconds.

    ``codec_stats``: name -> dict with keys ``cr``, ``compress_mbps``,
    ``decompress_mbps`` (measured on this host by the benchmark harness).
    """
    rows = []
    for cores in core_counts:
        for name, s in codec_stats.items():
            rows.append(
                {
                    "codec": name,
                    "cores": int(cores),
                    "dump_s": model.dump_time_s(
                        cores, s["cr"], s["compress_mbps"]
                    ),
                    "load_s": model.load_time_s(
                        cores, s["cr"], s["decompress_mbps"]
                    ),
                    "cr": s["cr"],
                }
            )
    return rows
