"""Shared-memory slabs: zero-copy chunk transport for the process pool.

Before this module, every chunk crossed the pool boundary as pickled
ndarray bytes twice — once out (the chunk payload inside the submitted
job tuple) and once back for decode results.  A slab moves the bulk
bytes into a named ``multiprocessing.shared_memory`` segment instead:
the parent copies chunk data into the slab **once**, workers attach by
name and operate on sliced ndarray views, and the pickled job shrinks to
a descriptor of a few dozen bytes per chunk
(:data:`SLAB_DESCRIPTOR_LAYOUT` — the layout is registered in
:mod:`repro.lint.wire_registry` because descriptors cross a process
boundary, exactly like struct formats cross a file boundary).

Ownership contract (DESIGN.md §13): the process that calls
:meth:`Slab.create` owns the segment and is the only one that may
unlink it.  Workers *attach* (:func:`attach_slab`) and never unlink —
see that function's docstring for how the resource-tracker
re-registration of an attach (bpo-39959) stays harmless in the pool's
parent/child topology.  Unlinking while workers still hold mappings is
safe on POSIX (the segment is freed when the last mapping closes),
which is what makes the owner-side cleanup unconditional:

* normal completion — the caller releases in a ``finally``/done-callback;
* worker crash / poison / deadline shed — the outer future resolves
  (exceptionally) and the same callback runs;
* interpreter exit — an ``atexit`` hook releases anything still live.

Every live slab is tracked in a module-level registry so tests (and the
chaos suite) can assert zero leaks; names carry :data:`SLAB_NAME_PREFIX`
so ``/dev/shm`` can be audited from outside the process too.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from collections import namedtuple
from typing import Dict, List, Sequence

import numpy as np

try:  # guarded: some minimal builds ship multiprocessing without _posixshmem
    from multiprocessing import shared_memory

    HAVE_SHARED_MEMORY = True
except ImportError:  # pragma: no cover - exercised only on exotic builds
    HAVE_SHARED_MEMORY = False

__all__ = [
    "HAVE_SHARED_MEMORY",
    "SLAB_BATCH_VERSION",
    "SLAB_DESCRIPTOR_LAYOUT",
    "SLAB_NAME_PREFIX",
    "ChunkDescriptor",
    "Slab",
    "active_slab_names",
    "attach_slab",
    "detach_slab",
]

#: version tag of the (slab name, descriptors) job layout shipped to
#: workers; bump together with the wire_registry entry when it changes
SLAB_BATCH_VERSION = 1

#: field order of one chunk descriptor as it crosses the pool boundary:
#: byte offset into the slab, chunk shape, dtype string.  Registered in
#: lint/wire_registry.py (RL003 pins this constant to the registry).
SLAB_DESCRIPTOR_LAYOUT = "offset,shape,dtype"

#: every segment this package creates is named with this prefix, so a
#: leak check can glob /dev/shm from outside the owning process
SLAB_NAME_PREFIX = "repro-slab"

ChunkDescriptor = namedtuple("ChunkDescriptor", SLAB_DESCRIPTOR_LAYOUT.split(","))

_LIVE: Dict[str, "Slab"] = {}
_LIVE_LOCK = threading.Lock()
_COUNTER = itertools.count()


def _purge_at_exit() -> None:
    """Interpreter-exit safety net: unlink every still-live slab."""
    with _LIVE_LOCK:
        leftover = list(_LIVE.values())
    for slab in leftover:
        slab.release()


atexit.register(_purge_at_exit)


def active_slab_names() -> List[str]:
    """Names of slabs this process owns and has not released (test hook)."""
    with _LIVE_LOCK:
        return sorted(_LIVE)


class Slab:
    """One owned shared-memory segment holding many chunks' bytes."""

    __slots__ = ("_shm", "name", "nbytes", "_released")

    def __init__(self, shm: "shared_memory.SharedMemory") -> None:
        self._shm = shm
        self.name: str = shm.name
        self.nbytes: int = shm.size
        self._released = False

    @classmethod
    def create(cls, nbytes: int) -> "Slab":
        """Allocate and register a new slab of at least ``nbytes`` bytes."""
        if not HAVE_SHARED_MEMORY:  # pragma: no cover - exotic builds
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable on this build"
            )
        if nbytes <= 0:
            raise ValueError(f"slab size must be positive, got {nbytes}")
        for _ in range(8):
            name = (
                f"{SLAB_NAME_PREFIX}-{os.getpid()}"
                f"-{next(_COUNTER)}-{os.urandom(3).hex()}"
            )
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=nbytes
                )
            except FileExistsError:
                continue
            slab = cls(shm)
            with _LIVE_LOCK:
                _LIVE[slab.name] = slab
            return slab
        raise RuntimeError("could not allocate a uniquely named slab")

    def view(
        self,
        offset: int,
        shape: Sequence[int],
        dtype: "np.dtype[np.generic] | str",
    ) -> np.ndarray:
        """Writable ndarray view into the slab (no copy)."""
        return np.ndarray(
            tuple(shape), dtype=np.dtype(dtype), buffer=self._shm.buf,
            offset=offset,
        )

    def pack(self, arrays: Sequence[np.ndarray]) -> List[ChunkDescriptor]:
        """Copy arrays into the slab back to back; return their descriptors.

        This is the ONE copy of the zero-copy path — it replaces the old
        pickle-encode in the parent plus pickle-decode in the worker.
        Inputs may be lazy views (memmap slices); ``np.copyto`` both
        materializes and compacts them into C order.
        """
        descriptors: List[ChunkDescriptor] = []
        offset = 0
        for array in arrays:
            desc = ChunkDescriptor(
                offset=offset,
                shape=tuple(int(n) for n in array.shape),
                dtype=np.dtype(array.dtype).str,
            )
            target = self.view(offset, desc.shape, desc.dtype)
            np.copyto(target, array, casting="no")
            del target
            offset += int(array.nbytes)
            descriptors.append(desc)
        if offset > self.nbytes:
            raise ValueError(
                f"packed {offset} bytes into a {self.nbytes}-byte slab"
            )
        return descriptors

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Unlink + close; idempotent, safe while workers still map it."""
        if self._released:
            return
        self._released = True
        with _LIVE_LOCK:
            _LIVE.pop(self.name, None)
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass  # already gone (e.g. purged by a resource tracker)
        try:
            self._shm.close()
        except BufferError:
            # a live ndarray view still pins the mapping; the segment is
            # already unlinked, so process teardown reclaims the memory
            pass


def attach_slab(name: str) -> "shared_memory.SharedMemory":
    """Attach to a slab by name from a worker (never takes ownership).

    On Python < 3.13 an attach re-registers the segment with the
    resource tracker (bpo-39959).  Pool workers are always children of
    the slab's owner and therefore SHARE the owner's tracker process, so
    the re-registration is a set no-op there — the owner's single
    registration stays the crash net for a SIGKILLed owner, and the
    owner's ``unlink`` retires it exactly once.  (Explicitly
    ``unregister``-ing here would strip the *owner's* entry from the
    shared tracker and make the owner's later unlink race a KeyError in
    the tracker process.)  On 3.13+ ``track=False`` skips the worker
    side registration entirely.
    """
    if not HAVE_SHARED_MEMORY:  # pragma: no cover - exotic builds
        raise RuntimeError(
            "multiprocessing.shared_memory is unavailable on this build"
        )
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass  # track= is 3.13+; older attaches tolerate the no-op re-register
    return shared_memory.SharedMemory(name=name)


def detach_slab(shm: "shared_memory.SharedMemory") -> None:
    """Close a worker-side attachment (views must be dropped first)."""
    try:
        shm.close()
    except BufferError:
        # a view outlived the batch; the worker process exit reclaims it
        pass
