"""Deprecated top-level entry points, kept alive as warning shims.

Before the :mod:`repro.api` facade, the chunked-container functions were
re-exported at the package top level (``repro.compress_chunked`` etc.).
Those spellings now route here: each emits a ``DeprecationWarning``
naming its facade replacement, then delegates unchanged — behavior and
bytes are identical, only the name is on notice.

The package-qualified originals (``repro.chunked.compress_chunked``,
...) are **not** deprecated; internal code and tests use them directly.
Lint rule RL010 keeps new first-party code off the deprecated top-level
spellings outside this module and the facade.
"""

from __future__ import annotations

import warnings
from typing import Any, BinaryIO, Optional, Union

import numpy as np

from repro.chunked import api as _chunked
from repro.chunked.api import PathLike
from repro.chunked.container import ContainerInfo
from repro.chunked.tiling import Slab

__all__ = [
    "compress_chunked",
    "compress_chunked_to_file",
    "decompress_chunked",
    "read_hyperslab",
]


def _warn(old: str, new: str) -> None:
    warnings.warn(
        f"repro.{old} is deprecated; use {new} "
        "(the repro.chunked.* spelling also remains supported)",
        DeprecationWarning,
        stacklevel=3,
    )


def compress_chunked(*args: Any, **kwargs: Any) -> bytes:
    _warn("compress_chunked", "repro.compress(..., chunks=...)")
    return _chunked.compress_chunked(*args, **kwargs)


def compress_chunked_to_file(*args: Any, **kwargs: Any) -> ContainerInfo:
    _warn("compress_chunked_to_file", "repro.compress(..., file=...)")
    return _chunked.compress_chunked_to_file(*args, **kwargs)


def decompress_chunked(
    source: Union[bytes, PathLike, BinaryIO],
    processes: Optional[int] = None,
) -> np.ndarray:
    _warn("decompress_chunked", "repro.decompress(source)")
    return _chunked.decompress_chunked(source, processes=processes)


def read_hyperslab(
    source: Union[bytes, PathLike, BinaryIO], slab: Slab
) -> np.ndarray:
    _warn("read_hyperslab", "repro.open(source).read(slab)")
    return _chunked.read_hyperslab(source, slab)
