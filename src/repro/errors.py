"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a compressor or experiment is configured inconsistently."""


class CompressionError(ReproError):
    """Raised when compression fails (bad input shape, dtype, or bound)."""


class DecompressionError(ReproError):
    """Raised when a compressed stream is malformed or truncated."""


class ProtocolError(ReproError):
    """Raised when a service protocol frame is malformed or oversized."""


class ServiceOverloadedError(ReproError):
    """Raised when the service queue is full (backpressure).

    ``retry_after`` is the server's suggested delay in seconds before the
    client retries; the wire protocol carries it in the RETRY response.
    """

    def __init__(self, retry_after: float = 0.05) -> None:
        super().__init__(
            f"service queue is full; retry after {retry_after:.3g}s"
        )
        self.retry_after = float(retry_after)


class RemoteServiceError(ReproError):
    """An error reported by a remote compression service.

    The server maps any request-handling exception to an ERROR response
    carrying one message line; the client re-raises it as this type (the
    original class does not survive the wire).
    """
