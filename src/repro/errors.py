"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a compressor or experiment is configured inconsistently."""


class CompressionError(ReproError):
    """Raised when compression fails (bad input shape, dtype, or bound)."""


class DecompressionError(ReproError):
    """Raised when a compressed stream is malformed or truncated."""
