"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a compressor or experiment is configured inconsistently."""


class CompressionError(ReproError):
    """Raised when compression fails (bad input shape, dtype, or bound)."""


class DecompressionError(ReproError):
    """Raised when a compressed stream is malformed or truncated."""


class ProtocolError(ReproError):
    """Raised when a service protocol frame is malformed or oversized."""


class ServiceOverloadedError(ReproError):
    """Raised when the service sheds a request (backpressure).

    ``retry_after`` is the server's suggested delay in seconds before the
    client retries and ``reason`` names the admission rule that rejected
    the request (``queue-full``, ``capacity``, ``class-capacity``,
    ``client-quota``); the wire protocol carries both in the RETRY
    response.
    """

    def __init__(
        self, retry_after: float = 0.05, reason: str = "overloaded"
    ) -> None:
        super().__init__(
            f"service overloaded ({reason}); retry after {retry_after:.3g}s"
        )
        self.retry_after = float(retry_after)
        self.reason = str(reason)


class RemoteServiceError(ReproError):
    """An error reported by a remote compression service.

    The server maps any request-handling exception to an ERROR response
    carrying one message line; the client re-raises it as this type (the
    original class does not survive the wire).
    """
