"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a compressor or experiment is configured inconsistently."""


class CompressionError(ReproError):
    """Raised when compression fails (bad input shape, dtype, or bound)."""


class DecompressionError(ReproError):
    """Raised when a compressed stream is malformed or truncated."""


class ProtocolError(ReproError):
    """Raised when a service protocol frame is malformed or oversized."""


class ServiceOverloadedError(ReproError):
    """Raised when the service sheds a request (backpressure).

    ``retry_after`` is the server's suggested delay in seconds before the
    client retries and ``reason`` names the admission rule that rejected
    the request (``queue-full``, ``capacity``, ``class-capacity``,
    ``client-quota``); the wire protocol carries both in the RETRY
    response.
    """

    def __init__(
        self, retry_after: float = 0.05, reason: str = "overloaded"
    ) -> None:
        super().__init__(
            f"service overloaded ({reason}); retry after {retry_after:.3g}s"
        )
        self.retry_after = float(retry_after)
        self.reason = str(reason)


class RemoteServiceError(ReproError):
    """An error reported by a remote compression service.

    The server maps any request-handling exception to an ERROR response
    carrying one message line; the client re-raises it as this type (the
    original class does not survive the wire).
    """


class ServiceConnectionError(RemoteServiceError, ProtocolError):
    """A service connection dropped mid-request (send or receive).

    Distinct from :class:`RemoteServiceError` proper — the server did not
    *report* anything; the transport died under the request (a shard was
    killed, the peer reset, a socket timed out mid-frame).  It descends
    from both :class:`RemoteServiceError` (the RPC failed) and
    :class:`ProtocolError` (the framing can no longer be trusted), so
    callers written against either family keep catching it.

    All service requests are idempotent, so
    :class:`~repro.service.client.RemoteClient` may transparently
    reconnect and resend when constructed with ``reconnects > 0``; once
    that budget is exhausted the last failure surfaces as this type.
    """


class WorkerCrashError(ReproError):
    """Raised when a job repeatedly crashes worker processes.

    The self-healing pool retries a job whose worker died (the whole
    batch is not failed for one bad chunk), but a job that breaks the
    pool ``max_job_crashes`` times is *poisoned*: it fails alone with
    this error instead of taking the pool down again.
    """


class DeadlineExceededError(ReproError):
    """Raised when a request misses its client-supplied deadline.

    Covers both lifecycles: a queued job shed before it ever ran, and a
    running job cancelled by the server-side timeout.  ``stage`` records
    which one (``"queued"`` or ``"running"``).
    """

    def __init__(self, deadline_ms: float, stage: str = "running") -> None:
        super().__init__(
            f"deadline of {deadline_ms:.3g}ms exceeded while {stage}"
        )
        self.deadline_ms = float(deadline_ms)
        self.stage = str(stage)


class ChunkCorruptionError(DecompressionError):
    """Raised when a stored chunk fails its integrity checksum.

    Carries the chunk's coordinates so callers (and ``repro verify``)
    can report exactly which region of the array is damaged instead of
    returning silently wrong bytes.
    """

    def __init__(
        self,
        index: int,
        start: tuple = (),
        shape: tuple = (),
        detail: str = "checksum mismatch",
    ) -> None:
        super().__init__(
            f"chunk {index} at start={tuple(start)} "
            f"shape={tuple(shape)}: {detail}"
        )
        self.index = int(index)
        self.start = tuple(start)
        self.shape = tuple(shape)
        self.detail = str(detail)
