"""The shared multi-level interpolation compression engine.

Both SZ3 and QoZ are thin wrappers around :func:`execute_passes`: they
differ only in the *plan* — per-level error bounds, interpolation method,
dimension order, and whether an anchor grid caps the level count.  The
engine also runs in *batched* mode over a stack of sampled blocks, which is
how QoZ's online selection and tuning evaluate candidate plans cheaply
(paper §VI) — one vectorized engine run scores every sampled block at once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.interpolation import CUBIC, predict_targets
from repro.core.levels import (
    ORDER_FORWARD,
    anchor_slices,
    dim_order,
    level_pass_specs,
    max_level_for_anchor,
    max_level_for_shape,
)
from repro.errors import ConfigurationError, DecompressionError
from repro.quantize.linear import DEFAULT_RADIUS, LinearQuantizer


@dataclass(frozen=True)
class LevelPlan:
    """Per-level knobs: error bound + interpolator."""

    eb: float
    method: int = CUBIC
    order_id: int = ORDER_FORWARD


@dataclass
class InterpPlan:
    """Complete plan for one interpolation compression run.

    ``levels[l]`` configures level ``l`` (1 = finest).  ``anchor_stride``
    of 0 means no anchors (SZ3 mode: single root point, level count from
    the shape).
    """

    levels: Dict[int, LevelPlan]
    anchor_stride: int = 0
    radius: int = DEFAULT_RADIUS
    cast_dtype: type = np.float64  # dtype delivered to the user (bound check)

    def max_level(self, shape: Sequence[int]) -> int:
        """Top interpolation level for a shape under this plan."""
        if self.anchor_stride:
            return min(
                max_level_for_anchor(self.anchor_stride), max_level_for_shape(shape)
            )
        return max_level_for_shape(shape)

    def level_plan(self, level: int) -> LevelPlan:
        """Plan for one level; levels above the top reuse the top's."""
        if level in self.levels:
            return self.levels[level]
        # levels above the configured ones reuse the highest configured one
        top = max(self.levels)
        if level > top:
            return self.levels[top]
        raise ConfigurationError(f"no plan for level {level}")


@dataclass
class PassStats:
    """Per-level absolute prediction error accumulator (Algorithm 1)."""

    abs_err_sum: Dict[int, float]
    count: Dict[int, int]

    def __init__(self) -> None:
        self.abs_err_sum = {}
        self.count = {}

    def record(self, level: int, abs_errors: np.ndarray) -> None:
        """Accumulate one pass's |value - prediction| samples."""
        self.abs_err_sum[level] = self.abs_err_sum.get(level, 0.0) + float(
            abs_errors.sum()
        )
        self.count[level] = self.count.get(level, 0) + abs_errors.size

    def mean_abs_error(self, level: int) -> float:
        """Mean absolute prediction error observed at a level."""
        n = self.count.get(level, 0)
        return self.abs_err_sum.get(level, 0.0) / n if n else 0.0


def execute_passes(
    work: np.ndarray,
    plan: InterpPlan,
    quantizer: LinearQuantizer,
    compress: bool,
    batch: bool = False,
    stats: Optional[PassStats] = None,
    only_level: Optional[int] = None,
    closed_loop: bool = True,
) -> None:
    """Run all prediction passes over ``work`` in place.

    Compression progressively replaces values with their reconstructions
    (so later passes predict from what the decompressor will see);
    decompression fills values in from the quantizer's stored streams in
    the identical order.  With ``batch=True`` the leading axis of ``work``
    is a stack of independent blocks sharing the same plan.  ``only_level``
    restricts execution to a single level (selection trials).

    ``closed_loop=False`` (compression only) keeps predicting from the
    *original* values instead of the reconstructions — the open-loop
    multilevel decomposition used by the MGARD+ stand-in, where
    quantization errors are handled by the decomposition's error budget
    rather than by prediction feedback.
    """
    shape = work.shape[1:] if batch else work.shape
    off = 1 if batch else 0
    top = plan.max_level(shape)
    levels = [only_level] if only_level is not None else range(top, 0, -1)
    for level in levels:
        lp = plan.level_plan(level)
        order = dim_order(len(shape), lp.order_id)
        for spec in level_pass_specs(shape, level, order):
            sl = ((slice(None),) if batch else ()) + spec.view_slices
            view = np.moveaxis(work[sl], spec.axis + off, -1)
            even = view[..., ::2]
            m = spec.grid_len // 2
            pred = predict_targets(even, m, lp.method)
            targets = view[..., 1::2]
            if compress:
                # quantize_block reads its inputs fully before returning,
                # and `targets` is only overwritten afterwards — the strided
                # view can be consumed in place, no contiguous copy needed
                if stats is not None:
                    stats.record(level, np.abs(targets - pred))
                recon = quantizer.quantize(targets, pred, lp.eb)
                if closed_loop:
                    targets[...] = recon
            else:
                recon = quantizer.dequantize(int(np.prod(pred.shape)), pred, lp.eb)
                targets[...] = recon


def seed_known_points(
    work: np.ndarray, plan: InterpPlan, batch: bool = False
) -> np.ndarray:
    """Extract the losslessly-kept points (anchor grid or root).

    On the compression side ``work`` holds the original data and the
    returned array is what must be stored; on the decompression side call
    :func:`plant_known_points` with the stored values instead.
    """
    shape = work.shape[1:] if batch else work.shape
    if plan.anchor_stride:
        sl = anchor_slices(len(shape), plan.anchor_stride)
        sl = ((slice(None),) if batch else ()) + sl
        return work[sl].copy()
    root = ((slice(None),) if batch else ()) + (0,) * len(shape)
    return np.atleast_1d(work[root]).copy()


def plant_known_points(
    work: np.ndarray, plan: InterpPlan, values: np.ndarray, batch: bool = False
) -> None:
    """Write the losslessly-stored points into a fresh work array."""
    shape = work.shape[1:] if batch else work.shape
    if plan.anchor_stride:
        sl = anchor_slices(len(shape), plan.anchor_stride)
        sl = ((slice(None),) if batch else ()) + sl
        work[sl] = values.reshape(work[sl].shape)
    elif batch:
        work[(slice(None),) + (0,) * len(shape)] = values.reshape(-1)
    else:
        work[(0,) * len(shape)] = float(values.reshape(-1)[0])


def interp_compress(
    data: np.ndarray,
    plan: InterpPlan,
    batch: bool = False,
    stats: Optional[PassStats] = None,
    keep_work: bool = True,
):
    """Full compression run.

    Returns ``(codes, outliers, known, work)`` — quantization codes in
    pass order, exact outlier values, losslessly-kept points, and the
    reconstruction the decompressor will produce (useful for online
    metric evaluation without a decompression round-trip).  Callers that
    discard the reconstruction should pass ``keep_work=False``: the full
    float64 work array is then released before the function returns
    (``work`` comes back as ``None``), so it is not alive while the
    caller entropy-codes the result.
    """
    work = data.astype(np.float64, copy=True)
    known = seed_known_points(work, plan, batch=batch)
    quantizer = LinearQuantizer(radius=plan.radius, cast_dtype=plan.cast_dtype)
    execute_passes(work, plan, quantizer, compress=True, batch=batch, stats=stats)
    codes, outliers = quantizer.harvest()
    if not keep_work:
        work = None
    return codes, outliers, known, work


def interp_decompress(
    shape: Sequence[int],
    plan: InterpPlan,
    codes: np.ndarray,
    outliers: np.ndarray,
    known: np.ndarray,
    batch_size: int = 0,
) -> np.ndarray:
    """Inverse of :func:`interp_compress`."""
    full_shape = (batch_size, *shape) if batch_size else tuple(shape)
    # every point is either a seeded known point or carries one quant
    # code; a mismatch means the header shape or the payload is corrupt —
    # check with exact int arithmetic before sizing any allocation off
    # the (attacker-controlled) shape
    total = math.prod(full_shape)
    if known.size + codes.size != total:
        raise DecompressionError(
            f"payload carries {known.size} known + {codes.size} coded "
            f"points for a shape of {total}"
        )
    work = np.zeros(full_shape, dtype=np.float64)
    plant_known_points(work, plan, known, batch=bool(batch_size))
    quantizer = LinearQuantizer(
        radius=plan.radius, codes=codes, outliers=outliers
    )
    execute_passes(work, plan, quantizer, compress=False, batch=bool(batch_size))
    return work
