"""Self-describing compressed-stream container.

Every codec's output starts with a fixed header (magic, version, codec id,
dtype, shape, absolute error bound) followed by length-prefixed sections so
codecs can store as many sub-streams as they need.  Decompression never
requires out-of-band information.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import DecompressionError
from repro.utils import dtype_code, dtype_from_code

MAGIC = b"RPZ1"
VERSION = 1
_FIXED = struct.Struct("<4sBBBBd")  # magic, version, codec, dtype, ndim, eb


@dataclass(frozen=True)
class StreamHeader:
    """Parsed fixed header of a compressed stream."""

    codec_id: int
    dtype: np.dtype
    shape: Tuple[int, ...]
    error_bound: float


def pack_header(
    codec_id: int, dtype: np.dtype, shape: Sequence[int], error_bound: float
) -> bytes:
    """Serialize the fixed header."""
    head = _FIXED.pack(
        MAGIC, VERSION, codec_id, dtype_code(dtype), len(shape), float(error_bound)
    )
    dims = struct.pack(f"<{len(shape)}Q", *shape)
    return head + dims


def parse_header(blob: bytes) -> Tuple[StreamHeader, int]:
    """Parse the fixed header; returns (header, payload offset)."""
    if len(blob) < _FIXED.size:
        raise DecompressionError("stream too short for header")
    magic, version, codec_id, dcode, ndim, eb = _FIXED.unpack_from(blob, 0)
    if magic != MAGIC:
        raise DecompressionError("bad magic (not a repro stream)")
    if version != VERSION:
        raise DecompressionError(f"unsupported stream version {version}")
    off = _FIXED.size
    if len(blob) < off + 8 * ndim:
        raise DecompressionError("stream truncated in shape header")
    shape = struct.unpack_from(f"<{ndim}Q", blob, off)
    off += 8 * ndim
    return (
        StreamHeader(
            codec_id=codec_id,
            dtype=dtype_from_code(dcode),
            shape=tuple(int(n) for n in shape),
            error_bound=float(eb),
        ),
        off,
    )


def pack_sections(sections: Sequence[bytes]) -> bytes:
    """Concatenate byte sections with u64 length prefixes."""
    parts: List[bytes] = [struct.pack("<I", len(sections))]
    for s in sections:
        parts.append(struct.pack("<Q", len(s)))
        parts.append(s)
    return b"".join(parts)


def unpack_sections(blob: bytes, offset: int = 0) -> List[bytes]:
    """Inverse of :func:`pack_sections`."""
    if len(blob) < offset + 4:
        raise DecompressionError("stream truncated in section table")
    (count,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    sections = []
    for _ in range(count):
        if len(blob) < offset + 8:
            raise DecompressionError("stream truncated in section length")
        (n,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        if len(blob) < offset + n:
            raise DecompressionError("stream truncated in section body")
        sections.append(blob[offset : offset + n])
        offset += n
    return sections
