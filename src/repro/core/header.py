"""Self-describing compressed-stream container.

Every codec's output starts with a fixed header (magic, version, codec id,
dtype, shape, flags, absolute error bound) followed by length-prefixed
sections so codecs can store as many sub-streams as they need.
Decompression never requires out-of-band information.

Two stream layouts share the header (``flags`` distinguishes them):

* a **plain stream** — header + one codec payload covering the whole array;
* a **chunked container** (``FLAG_CHUNKED``) — header + a chunk index
  (per-chunk start, shape, byte offset, byte length) + the concatenated
  per-chunk streams, enabling random access without reading the rest of
  the container (see :mod:`repro.chunked` and DESIGN.md §2/§5).

Version history: v1 had no flags byte and only described plain streams;
v2 adds ``flags``; v3 (``VERSION_CHECKSUM``) appends a u32 checksum of
the fixed header + dims, and its chunk-index entries each carry a u64
content digest of the chunk's stored bytes.  :func:`parse_header` still
reads v1 and v2 streams; plain codec streams keep writing v2 (no
per-chunk payloads to protect), only the chunked writer emits v3.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DecompressionError
from repro.utils import dtype_code, dtype_from_code

MAGIC = b"RPZ1"
VERSION = 2

#: stream version carrying integrity checksums: a u32 header checksum
#: after the dims and a u64 blake2s-8 digest per chunk-index entry
VERSION_CHECKSUM = 3

#: header flag: the payload is a chunk index + per-chunk streams, not a
#: single codec payload (``codec_id`` then names the *inner* codec)
FLAG_CHUNKED = 0x01

_PREFIX = struct.Struct("<4sB")  # magic, version
_FIXED_V1 = struct.Struct("<4sBBBBd")  # magic, version, codec, dtype, ndim, eb
_FIXED_V2 = struct.Struct("<4sBBBBBd")  # ... + flags before eb


def header_checksum(head: bytes) -> int:
    """u32 blake2s-4 checksum of the serialized fixed header + dims."""
    digest = hashlib.blake2s(head, digest_size=4).digest()
    (value,) = struct.unpack("<I", digest)
    return value


def chunk_digest(blob: bytes) -> int:
    """u64 blake2s-8 content digest of one stored chunk's bytes."""
    digest = hashlib.blake2s(blob, digest_size=8).digest()
    (value,) = struct.unpack("<Q", digest)
    return value


@dataclass(frozen=True)
class StreamHeader:
    """Parsed fixed header of a compressed stream."""

    codec_id: int
    dtype: np.dtype
    shape: Tuple[int, ...]
    error_bound: float
    version: int = VERSION
    flags: int = 0

    @property
    def is_chunked(self) -> bool:
        """True when the stream is a multi-chunk container."""
        return bool(self.flags & FLAG_CHUNKED)


def pack_header(
    codec_id: int,
    dtype: np.dtype,
    shape: Sequence[int],
    error_bound: float,
    flags: int = 0,
    version: int = VERSION,
) -> bytes:
    """Serialize the fixed header (v2 by default, v3 appends a checksum)."""
    if version not in (VERSION, VERSION_CHECKSUM):
        raise ValueError(f"cannot write stream version {version}")
    head = _FIXED_V2.pack(
        MAGIC,
        version,
        codec_id,
        dtype_code(dtype),
        len(shape),
        int(flags),
        float(error_bound),
    )
    dims = struct.pack(f"<{len(shape)}Q", *shape)
    if version == VERSION_CHECKSUM:
        return head + dims + struct.pack("<I", header_checksum(head + dims))
    return head + dims


def parse_header(blob: bytes) -> Tuple[StreamHeader, int]:
    """Parse the fixed header; returns (header, payload offset).

    Accepts every stream version ever written (v1 streams have no flags
    byte and are never chunked).
    """
    if len(blob) < _PREFIX.size:
        raise DecompressionError("stream too short for header")
    magic, version = _PREFIX.unpack_from(blob, 0)
    if magic != MAGIC:
        raise DecompressionError("bad magic (not a repro stream)")
    if version == 1:
        fixed = _FIXED_V1
    elif version in (VERSION, VERSION_CHECKSUM):
        fixed = _FIXED_V2
    else:
        raise DecompressionError(f"unsupported stream version {version}")
    if len(blob) < fixed.size:
        raise DecompressionError("stream too short for header")
    if version == 1:
        _, _, codec_id, dcode, ndim, eb = fixed.unpack_from(blob, 0)
        flags = 0
    else:
        _, _, codec_id, dcode, ndim, flags, eb = fixed.unpack_from(blob, 0)
    off = fixed.size
    if len(blob) < off + 8 * ndim:
        raise DecompressionError("stream truncated in shape header")
    shape = struct.unpack_from(f"<{ndim}Q", blob, off)
    off += 8 * ndim
    if version == VERSION_CHECKSUM:
        if len(blob) < off + 4:
            raise DecompressionError("stream truncated in header checksum")
        (stored,) = struct.unpack_from("<I", blob, off)
        if stored != header_checksum(blob[:off]):
            raise DecompressionError("header checksum mismatch")
        off += 4
    return (
        StreamHeader(
            codec_id=codec_id,
            dtype=dtype_from_code(dcode),
            shape=tuple(int(n) for n in shape),
            error_bound=float(eb),
            version=int(version),
            flags=int(flags),
        ),
        off,
    )


def pack_sections(sections: Sequence[bytes]) -> bytes:
    """Concatenate byte sections with u64 length prefixes."""
    parts: List[bytes] = [struct.pack("<I", len(sections))]
    for s in sections:
        parts.append(struct.pack("<Q", len(s)))
        parts.append(s)
    return b"".join(parts)


def unpack_sections(blob: bytes, offset: int = 0) -> List[bytes]:
    """Inverse of :func:`pack_sections`."""
    if len(blob) < offset + 4:
        raise DecompressionError("stream truncated in section table")
    (count,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    sections = []
    for _ in range(count):
        if len(blob) < offset + 8:
            raise DecompressionError("stream truncated in section length")
        (n,) = struct.unpack_from("<Q", blob, offset)
        offset += 8
        if len(blob) < offset + n:
            raise DecompressionError("stream truncated in section body")
        sections.append(blob[offset : offset + n])
        offset += n
    return sections


# --------------------------------------------------------------- chunk index
#
# The chunk index sits between the fixed header and the chunk payloads of a
# FLAG_CHUNKED container.  It has a *fixed, predictable size* for a given
# (ndim, n_chunks) so a streaming writer can reserve the bytes up front,
# write chunks as they are compressed, and patch the index afterwards.
#
# Layout:  ndim * u32 nominal chunk shape, u64 n_chunks, then per chunk:
# ndim * u64 start, ndim * u32 shape, u64 byte offset (relative to the
# first byte after the index), u64 byte length, and — in v3 containers
# only — a trailing u64 blake2s-8 digest of the chunk's stored bytes.
# Starts are u64 because they range over the full array extent (which the
# header stores as u64); chunk *shapes* are bounded by the nominal tile
# size and fit u32.


@dataclass(frozen=True)
class ChunkEntry:
    """One chunk's placement in the array and in the byte stream."""

    start: Tuple[int, ...]
    shape: Tuple[int, ...]
    offset: int  # bytes from the start of the data area
    nbytes: int
    checksum: Optional[int] = None  # u64 content digest (v3 containers)

    @property
    def slices(self) -> Tuple[slice, ...]:
        """Index of this chunk's region in the full array."""
        return tuple(slice(s, s + n) for s, n in zip(self.start, self.shape))


def chunk_index_size(
    ndim: int, n_chunks: int, with_checksums: bool = False
) -> int:
    """Exact byte size of a packed chunk index."""
    entry = (12 * ndim + 24) if with_checksums else (12 * ndim + 16)
    return 4 * ndim + 8 + n_chunks * entry


def pack_chunk_index(
    chunk_shape: Sequence[int],
    entries: Sequence[ChunkEntry],
    with_checksums: bool = False,
) -> bytes:
    """Serialize the chunk index (nominal tile shape + per-chunk entries)."""
    ndim = len(chunk_shape)
    parts = [
        struct.pack(f"<{ndim}I", *chunk_shape),
        struct.pack("<Q", len(entries)),
    ]
    for e in entries:
        parts.append(struct.pack(f"<{ndim}Q", *e.start))
        parts.append(struct.pack(f"<{ndim}I", *e.shape))
        parts.append(struct.pack("<QQ", e.offset, e.nbytes))
        if with_checksums:
            if e.checksum is None:
                raise ValueError(
                    "v3 chunk index requires a checksum on every entry"
                )
            parts.append(struct.pack("<Q", e.checksum))
    return b"".join(parts)


def unpack_chunk_index(
    blob: bytes, offset: int, ndim: int, with_checksums: bool = False
) -> Tuple[Tuple[int, ...], List[ChunkEntry], int]:
    """Inverse of :func:`pack_chunk_index`.

    Returns ``(chunk_shape, entries, end_offset)``.
    """
    if len(blob) < offset + 4 * ndim + 8:
        raise DecompressionError("stream truncated in chunk index header")
    chunk_shape = struct.unpack_from(f"<{ndim}I", blob, offset)
    offset += 4 * ndim
    (count,) = struct.unpack_from("<Q", blob, offset)
    offset += 8
    entry_size = (12 * ndim + 24) if with_checksums else (12 * ndim + 16)
    if len(blob) < offset + count * entry_size:
        raise DecompressionError("stream truncated in chunk index entries")
    entries = []
    for _ in range(count):
        start = struct.unpack_from(f"<{ndim}Q", blob, offset)
        shape = struct.unpack_from(f"<{ndim}I", blob, offset + 8 * ndim)
        off, nbytes = struct.unpack_from("<QQ", blob, offset + 12 * ndim)
        checksum: Optional[int] = None
        if with_checksums:
            (checksum,) = struct.unpack_from("<Q", blob, offset + 12 * ndim + 16)
        entries.append(
            ChunkEntry(
                start=tuple(int(s) for s in start),
                shape=tuple(int(n) for n in shape),
                offset=int(off),
                nbytes=int(nbytes),
                checksum=checksum,
            )
        )
        offset += entry_size
    return tuple(int(c) for c in chunk_shape), entries, offset
