"""Uniform block-based data sampling (paper §VI-A).

Blocks of a fixed (power-of-two) size are picked on a regular grid whose
stride realizes the requested sample rate: for a d-dimensional input,
``rate = (block / stride)**d``.  The sampled stack captures both local
patterns (inside each block) and the global picture (blocks spread across
the whole domain), and is what all of QoZ's online analysis runs on.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils import is_pow2


def sampling_stride(block: int, rate: float, ndim: int) -> int:
    """Stride that realizes ``rate`` for the given block size/dimension."""
    if not 0.0 < rate <= 1.0:
        raise ConfigurationError(f"sample rate must be in (0, 1], got {rate}")
    return max(block, int(round(block / rate ** (1.0 / ndim))))


def effective_block_size(shape: Sequence[int], block: int) -> int:
    """Largest power-of-two block size that fits the smallest extent."""
    if not is_pow2(block):
        raise ConfigurationError(f"block size must be a power of two, got {block}")
    limit = min(shape)
    while block > limit:
        block //= 2
    return max(block, 2)


#: lower bound on the number of sampled blocks; with too few blocks the
#: selection/tuning estimates are noise (the paper's datasets are large
#: enough that the nominal rates always yield many blocks — small inputs
#: here must compensate with a denser stride)
MIN_BLOCKS = 8


def sample_blocks(
    data: np.ndarray, block: int, rate: float
) -> Tuple[np.ndarray, int]:
    """Extract a uniform stack of sample blocks.

    Returns ``(blocks, block_size)`` with ``blocks`` of shape
    ``(n_blocks, b, b, ...)`` in float64.  The block size may be shrunk
    (power of two) to fit small inputs; the stride is tightened when the
    nominal rate would produce fewer than :data:`MIN_BLOCKS` blocks.
    """
    b = effective_block_size(data.shape, block)
    stride = sampling_stride(b, rate, data.ndim)
    per_axis = int(np.ceil(MIN_BLOCKS ** (1.0 / data.ndim)))
    starts_per_axis = []
    for n in data.shape:
        span = max(n - b, 0)
        axis_stride = stride
        if span > 0:
            # shrink the stride until this axis contributes enough starts
            axis_stride = min(stride, max(b, -(-span // (per_axis - 1))
                                          if per_axis > 1 else stride))
        starts = np.arange(0, span + 1, max(axis_stride, 1))
        starts_per_axis.append(starts)
    grids = np.meshgrid(*starts_per_axis, indexing="ij")
    origins = np.stack([g.ravel() for g in grids], axis=1)
    # keep the online-analysis cost bounded: never sample more than ~30%
    # of the input (tiny inputs would otherwise be re-compressed many
    # times over during tuning)
    max_blocks = max(1, int(0.3 * data.size / float(b) ** data.ndim))
    if origins.shape[0] > max_blocks:
        keep = np.linspace(0, origins.shape[0] - 1, max_blocks).astype(int)
        origins = origins[np.unique(keep)]
    blocks = np.empty((origins.shape[0],) + (b,) * data.ndim, dtype=np.float64)
    for i, origin in enumerate(origins):
        sel = tuple(slice(int(o), int(o) + b) for o in origin)
        blocks[i] = data[sel]
    return blocks, b
