"""Frozen compression plans: derive once, execute everywhere.

QoZ's online pipeline (paper Fig. 2) runs block sampling, Algorithm 1
interpolator selection, and the Eq. 5 (alpha, beta) grid search before a
single payload byte is produced.  All of that work answers one question —
*which plan to run* — and the answer does not change between the chunks of
one field compressed under one bound.  This module splits the two halves:

* :class:`FrozenPlan` is the small, picklable answer: tuned (alpha, beta),
  the selected per-level interpolators, and the geometry knobs.  It is
  shape-free — per-level bounds and the level count are re-derived for
  whatever array it is applied to, so one plan derived from a full field
  drives every chunk (and broadcasts cheaply to pool workers).
* :func:`execute_frozen_plan` is the execution half: expand the frozen
  plan into a concrete :class:`~repro.core.engine.InterpPlan` for one
  array and produce the standard interpolation payload.  It is the exact
  code path the inline compressors run after their own derivation, so a
  stream compressed with a frozen plan is byte-identical to inline
  compression that derived the same plan.

The error-bound guarantee is unaffected by plan sharing: the linear
quantizer verifies every point against the bound at execution time, so a
plan tuned on one sample can never violate the bound on another chunk —
only its compression ratio is (mildly) at stake.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import InterpPlan, interp_compress
from repro.core.levels import max_level_for_anchor, max_level_for_shape
from repro.core.stream import pack_interp_payload
from repro.core.tuning import build_plan
from repro.errors import CompressionError, ConfigurationError
from repro.quantize.linear import DEFAULT_RADIUS


@dataclass(frozen=True)
class FrozenPlan:
    """Everything QoZ/SZ3 derive online, frozen for reuse.

    ``interpolators`` maps level -> (method, order_id) with the usual
    fallback: levels above the highest recorded one reuse it (paper
    §VI-B).  ``eb`` records the absolute bound the plan was derived at;
    execution defaults to it but may override (alpha/beta rescale the
    per-level bounds from whatever bound is in force).  ``metric`` is
    provenance only — which quality metric the tuning optimized — and
    never affects execution.
    """

    codec: str
    eb: float
    alpha: float = 1.0
    beta: float = 1.0
    interpolators: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    anchor_stride: int = 0
    radius: int = DEFAULT_RADIUS
    metric: str = "cr"

    def interpolator(self, level: int) -> Tuple[int, int]:
        """Interpolator for a level (levels above the top reuse the top)."""
        if level in self.interpolators:
            return self.interpolators[level]
        return self.interpolators[max(self.interpolators)]

    def max_level(self, shape: Sequence[int]) -> int:
        """Top interpolation level for a concrete array shape."""
        if self.anchor_stride:
            return min(
                max_level_for_anchor(self.anchor_stride),
                max_level_for_shape(shape),
            )
        return max_level_for_shape(shape)

    def build_interp_plan(
        self,
        shape: Sequence[int],
        eb: float,
        cast_dtype: "np.dtype[np.generic] | type" = np.float64,
    ) -> Tuple[InterpPlan, int]:
        """Expand into a concrete engine plan for one array shape.

        Delegates to :func:`repro.core.tuning.build_plan` — the same
        Eq. 5 expansion the tuning trials run — so frozen-plan execution
        can never drift from what tuning scored.
        """
        if not self.interpolators:
            raise ConfigurationError("frozen plan has no interpolator levels")
        top = self.max_level(shape)
        plan = build_plan(
            eb, self.alpha, self.beta, self, top, self.anchor_stride, self.radius
        )
        plan.cast_dtype = cast_dtype
        return plan, top


@dataclass
class PlanExecution:
    """Diagnostics of one frozen-plan execution."""

    max_level: int
    n_codes: int
    n_outliers: int


def execute_frozen_plan(
    data: np.ndarray, frozen: FrozenPlan, eb: float
) -> Tuple[bytes, PlanExecution]:
    """Compress ``data`` under a frozen plan; returns (payload, stats).

    This is the shared execution half of the interpolation compressors:
    identical to what :meth:`QoZ._compress` / :meth:`SZ3._compress` run
    after inline derivation, which is what makes plan reuse byte-stable.
    """
    plan, top = frozen.build_interp_plan(data.shape, eb, cast_dtype=data.dtype)
    codes, outliers, known, _ = interp_compress(data, plan, keep_work=False)
    payload = pack_interp_payload(plan, top, known, codes, outliers, data.dtype)
    return payload, PlanExecution(
        max_level=top, n_codes=int(codes.size), n_outliers=int(outliers.size)
    )


class SharedPlanMixin:
    """Adds ``compress_with_plan`` to interpolation-engine compressors.

    Subclasses provide ``derive_plan`` (the analysis half differs per
    codec); execution is shared.  ``_note_plan_execution`` is a hook for
    codecs that expose a last-compression report.
    """

    def compress_with_plan(
        self,
        data: np.ndarray,
        plan: FrozenPlan,
        error_bound: float | None = None,
    ) -> bytes:
        """Compress ``data`` with a previously derived :class:`FrozenPlan`.

        Skips sampling, selection, and tuning entirely.  ``error_bound``
        defaults to the bound the plan was derived at; passing a different
        absolute bound rescales the per-level bounds through the plan's
        (alpha, beta).  The returned stream is a standard self-describing
        stream — decompression needs no plan.
        """
        from repro.core.header import pack_header
        from repro.utils import validate_error_bound, validate_input

        if plan.codec != self.name:
            raise CompressionError(
                f"plan was derived by codec {plan.codec!r}, not {self.name!r}"
            )
        data = validate_input(data)
        eb = (
            validate_error_bound(error_bound)
            if error_bound is not None
            else validate_error_bound(plan.eb)
        )
        payload, execution = execute_frozen_plan(data, plan, eb)
        self._note_plan_execution(plan, eb, execution)
        return pack_header(self.codec_id, data.dtype, data.shape, eb) + payload

    def _note_plan_execution(
        self, plan: FrozenPlan, eb: float, execution: PlanExecution
    ) -> None:
        """Hook: record diagnostics of a plan execution (default: none)."""


# --------------------------------------------------------------------------
# Cross-request plan reuse (the service layer's cache)
# --------------------------------------------------------------------------

def field_signature(
    data: np.ndarray, family: Optional[str] = None
) -> Tuple[str, ...]:
    """Identity of a field for plan-cache keying.

    Without a ``family`` tag the signature fingerprints the *content*
    (dtype, shape, 128-bit blake2b of the raw bytes): two requests hit the
    same cache slot only when they carry bit-identical fields, so a cached
    plan replays the exact plan inline derivation would produce and the
    output stays byte-identical.  A ``family`` tag opts into the looser —
    and far more valuable — sharing the paper's workloads want: sibling
    fields of one simulation dump (time steps, velocity components) tag
    themselves with one family name and reuse the plan derived from the
    first member.  The error bound is still enforced point-wise at
    execution time, so family sharing can only ever trade compression
    ratio, never correctness (see the module docstring).
    """
    data = np.asanyarray(data)
    if family is not None:
        return ("family", str(family), str(data.dtype))
    arr = np.ascontiguousarray(data)
    digest = hashlib.blake2b(
        memoryview(arr).cast("B"), digest_size=16
    ).hexdigest()
    return ("content", str(arr.dtype), repr(tuple(arr.shape)), digest)


def plan_cache_key(
    codec: str,
    codec_kwargs: Optional[Dict],
    eb_mode: str,
    bound: float,
    signature: Tuple[str, ...],
) -> Hashable:
    """Canonical cache key: (codec config, bound request, field identity).

    ``eb_mode`` is ``"abs"`` or ``"rel"`` and ``bound`` the user-specified
    number — the *request*, not the resolved absolute bound, so an
    absolute bound that happens to equal a resolved relative one cannot
    alias.  Codec kwargs are part of the codec's identity (a ``psnr``-mode
    QoZ derives a different plan than a ``cr``-mode one).
    """
    kwargs = tuple(sorted((codec_kwargs or {}).items()))
    return (codec, kwargs, eb_mode, float(bound), signature)


class PlanLRU:
    """Bounded, thread-safe LRU of :class:`FrozenPlan` objects.

    The service scheduler keys this by :func:`plan_cache_key`; a hit
    skips sampling, selection, and tuning entirely — the amortizable half
    of QoZ compression.  Counters (``hits`` / ``misses`` / ``derives``)
    are part of the public contract: tests pin "a warm request does not
    re-derive" on them.

    :meth:`get_or_derive` runs the derive callable *outside* the lock —
    derivation takes orders of magnitude longer than a dict move, and two
    racing derivations of the same key are deterministic and identical,
    so last-write-wins is safe (only duplicate work, never a wrong plan).

    ``on_derive`` is the replication hook of the sharded serve runtime
    (:mod:`repro.service.planbus`): called with ``(key, plan)`` after every
    *fresh* derivation — never on hits or on :meth:`install` — so one
    shard's derivation work can be published to its peers.  It runs
    outside the lock on the deriving thread; implementations must be
    thread-safe and must not raise (publishing is best-effort).
    :meth:`install` is the receiving half: idempotent, first-writer-wins,
    counted separately (``replicated``) so cache-warmth tests can observe
    replication without it masquerading as local derivation.
    """

    def __init__(
        self,
        capacity: int = 128,
        on_derive: Optional[Callable[[Hashable, FrozenPlan], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._plans: "OrderedDict[Hashable, FrozenPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self._on_derive = on_derive
        self.hits = 0
        self.misses = 0
        self.derives = 0
        self.replicated = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def get(self, key: Hashable) -> Optional[FrozenPlan]:
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._plans.move_to_end(key)
            self.hits += 1
            return plan

    def peek(self, key: Hashable) -> Optional[FrozenPlan]:
        """Cached plan without side effects: no counter bump, no LRU move.

        The admission cost model asks "would this request be warm?" on
        every submit; that question must not perturb the hit/miss
        counters the observability layer reports, nor refresh an entry's
        recency just for being asked about.
        """
        with self._lock:
            return self._plans.get(key)

    def put(self, key: Hashable, plan: FrozenPlan) -> None:
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)

    def install(self, key: Hashable, plan: FrozenPlan) -> bool:
        """Install a plan replicated from a peer; True if newly installed.

        First-writer-wins: a key already present (derived locally or
        replicated earlier) is left untouched — derivation is
        deterministic, so the entries are identical and keeping the
        resident one preserves its LRU recency.  Does not bump
        ``derives`` (no derivation happened here) nor ``hits``/``misses``
        (nobody asked); bumps ``replicated`` so warmth gained from peers
        is observable.
        """
        with self._lock:
            if key in self._plans:
                return False
            self._plans[key] = plan
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
            self.replicated += 1
            return True

    def get_or_derive(
        self, key: Hashable, derive: Callable[[], FrozenPlan]
    ) -> FrozenPlan:
        """Cached plan for ``key``, deriving (and caching) on a miss."""
        plan = self.get(key)
        if plan is not None:
            return plan
        plan = derive()
        with self._lock:
            self.derives += 1
        self.put(key, plan)
        if self._on_derive is not None:
            self._on_derive(key, plan)
        return plan

    def stats(self) -> Dict[str, float]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "plan_cache_size": len(self._plans),
                "plan_cache_capacity": self.capacity,
                "plan_cache_hits": self.hits,
                "plan_cache_misses": self.misses,
                "plan_cache_hit_rate": (
                    round(self.hits / lookups, 4) if lookups else 0.0
                ),
                "plan_derives": self.derives,
                "plan_replicated": self.replicated,
            }
