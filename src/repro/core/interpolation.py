"""Vectorized 1-D interpolation kernels for the multi-level predictor.

A prediction pass works on a *line view*: an array whose last axis walks the
current level's grid (coordinate = index * stride).  Even indices are known
(reconstructed at coarser levels or earlier passes); odd indices are the
pass's targets.  ``predict_targets`` returns the predictions for all targets
from the even samples in one shot — boundary targets fall back to the
widest stencil available, mirroring SZ3's interpolation fallbacks:

========================  =============================================
stencil                   formula (unit spacing, predict at 0)
========================  =============================================
-3, -1, +1, +3 (cubic)    (-a + 9b + 9c - d) / 16
-1, +1, +3                3/8 b + 3/4 c - 1/8 d
-3, -1, +1                -1/8 a + 3/4 b + 3/8 c
-1, +1 (linear)           (b + c) / 2
-3, -1 (extrapolate)      1.5 b - 0.5 a
-1 (copy)                 b
========================  =============================================

All stencil weights are exact Lagrange coefficients, so the kernels
reproduce polynomials of matching degree exactly (tested property).
"""

from __future__ import annotations

import numpy as np

#: interpolation method identifiers (stream-stable)
LINEAR = 0
CUBIC = 1

METHOD_NAMES = {LINEAR: "linear", CUBIC: "cubic"}
METHOD_IDS = {v: k for k, v in METHOD_NAMES.items()}


def target_count(grid_len: int) -> int:
    """Number of odd-index targets on a line-view axis of length grid_len."""
    return grid_len // 2


def _linear_predict(even: np.ndarray, m: int) -> np.ndarray:
    """Linear prediction of the m odd targets from even samples."""
    ge = even.shape[-1]
    pred = np.empty(even.shape[:-1] + (m,), dtype=np.float64)
    m_int = min(m, ge - 1)  # targets with both neighbors
    if m_int > 0:
        pred[..., :m_int] = 0.5 * (even[..., :m_int] + even[..., 1 : m_int + 1])
    if m > m_int:  # single tail target without a right neighbor
        if ge >= 2:
            pred[..., m - 1] = 1.5 * even[..., ge - 1] - 0.5 * even[..., ge - 2]
        else:
            pred[..., m - 1] = even[..., 0]
    return pred


def _cubic_predict(even: np.ndarray, m: int) -> np.ndarray:
    """Cubic-spline prediction of the m odd targets from even samples."""
    ge = even.shape[-1]
    pred = np.empty(even.shape[:-1] + (m,), dtype=np.float64)
    # interior: needs even[j-1] .. even[j+2]
    jhi = min(m - 1, ge - 3)  # inclusive
    if jhi >= 1:
        a = even[..., 0:jhi]
        b = even[..., 1 : jhi + 1]
        c = even[..., 2 : jhi + 2]
        d = even[..., 3 : jhi + 3]
        pred[..., 1 : jhi + 1] = (-a + 9.0 * b + 9.0 * c - d) / 16.0
    # first target (no left-left sample)
    if m >= 1:
        if ge >= 3:
            pred[..., 0] = (
                0.375 * even[..., 0] + 0.75 * even[..., 1] - 0.125 * even[..., 2]
            )
        elif ge >= 2:
            pred[..., 0] = 0.5 * (even[..., 0] + even[..., 1])
        else:
            pred[..., 0] = even[..., 0]
    # tail targets beyond the interior range
    for j in range(max(1, jhi + 1), m):
        has_r1 = j + 1 <= ge - 1
        has_r2 = j + 2 <= ge - 1
        if has_r1 and has_r2:
            pred[..., j] = (
                -even[..., j - 1]
                + 9.0 * even[..., j]
                + 9.0 * even[..., j + 1]
                - even[..., j + 2]
            ) / 16.0
        elif has_r1:
            pred[..., j] = (
                -0.125 * even[..., j - 1]
                + 0.75 * even[..., j]
                + 0.375 * even[..., j + 1]
            )
        else:
            pred[..., j] = 1.5 * even[..., j] - 0.5 * even[..., j - 1]
    return pred


def predict_targets(even: np.ndarray, m: int, method: int) -> np.ndarray:
    """Predict the ``m`` odd targets of a line view from its even samples.

    ``even``: float array ``(..., ge)`` of known samples along the last
    axis; ``m``: number of targets (``grid_len // 2``); ``method``:
    :data:`LINEAR` or :data:`CUBIC`.
    """
    even = np.asarray(even, dtype=np.float64)
    if m == 0:
        return np.empty(even.shape[:-1] + (0,), dtype=np.float64)
    if method == LINEAR:
        return _linear_predict(even, m)
    if method == CUBIC:
        return _cubic_predict(even, m)
    raise ValueError(f"unknown interpolation method {method}")
