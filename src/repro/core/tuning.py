"""Quality-metric-oriented (alpha, beta) auto-tuning (paper §VI-C).

The level-wise error bound is ``e_l = e / min(alpha**(l-1), beta)``
(paper Eq. 5).  Candidates are the paper's narrowed grid
(alpha in {1, 1.25, 1.5, 1.75, 2}, beta in {1.5, 2, 3, 4}).  Each candidate
is scored by a trial compression over the sampled blocks: estimated bit
rate (Shannon size of the quantization-bin token stream) plus the value of
the user's quality metric on the trial reconstruction.  Candidates are
compared pairwise with the paper's Table I logic; the "sophisticated"
cases (one candidate wins rate, the other wins quality) are resolved by a
second trial of the incumbent challenger at 0.8e / 1.2e and a line-side
test in (bit-rate, metric) space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.engine import InterpPlan, LevelPlan, interp_compress
from repro.core.selection import SelectionResult
from repro.encoding.codec import estimate_stream_bits
from repro.errors import ConfigurationError
from repro.metrics.autocorr import error_autocorrelation
from repro.metrics.psnr import psnr
from repro.metrics.ssim import ssim
from repro.quantize.linear import DEFAULT_RADIUS

#: paper §VI-C1 candidate grids
ALPHA_CANDIDATES: Tuple[float, ...] = (1.0, 1.25, 1.5, 1.75, 2.0)
BETA_CANDIDATES: Tuple[float, ...] = (1.5, 2.0, 3.0, 4.0)

#: supported tuning targets; 'cr' = maximize compression ratio only
TUNING_METRICS = ("cr", "psnr", "ssim", "ac")


def level_error_bounds(
    eb: float, alpha: float, beta: float, max_level: int
) -> Dict[int, float]:
    """Paper Eq. 5: ``e_l = e / min(alpha**(l-1), beta)`` for each level."""
    if alpha < 1.0 or beta < 1.0:
        raise ConfigurationError("alpha and beta must be >= 1")
    return {
        l: eb / min(alpha ** (l - 1), beta) if l > 1 else eb
        for l in range(1, max_level + 1)
    }


def build_plan(
    eb: float,
    alpha: float,
    beta: float,
    selection: SelectionResult,
    max_level: int,
    anchor_stride: int,
    radius: int = DEFAULT_RADIUS,
) -> InterpPlan:
    """Assemble a complete engine plan from tuned knobs.

    The single authoritative Eq. 5 expansion: tuning trials and
    frozen-plan execution (:meth:`FrozenPlan.build_interp_plan`) both run
    it.  ``selection`` is anything with an ``interpolator(level)`` method
    (a :class:`SelectionResult` or a :class:`FrozenPlan`).
    """
    ebs = level_error_bounds(eb, alpha, beta, max_level)
    levels = {}
    for l in range(1, max_level + 1):
        method, order_id = selection.interpolator(l)
        levels[l] = LevelPlan(eb=ebs[l], method=method, order_id=order_id)
    return InterpPlan(levels=levels, anchor_stride=anchor_stride, radius=radius)


@dataclass
class TrialResult:
    """(bit rate, metric) of one candidate on the sampled blocks."""

    alpha: float
    beta: float
    bit_rate: float
    metric: Optional[float]  # higher is better; None in 'cr' mode


@dataclass
class TuningOutcome:
    """Winner plus the full trace of candidate evaluations."""

    alpha: float
    beta: float
    trials: List[TrialResult] = field(default_factory=list)
    extra_trials: int = 0  # sophisticated-case re-trials (Table I cases 3/4)
    trial_compressions: int = 0  # engine runs actually executed
    cache_hits: int = 0  # trials answered from the bound-vector memo


def _evaluate_candidate(
    blocks: np.ndarray,
    eb: float,
    alpha: float,
    beta: float,
    selection: SelectionResult,
    max_level: int,
    metric: str,
    data_range: float,
    radius: int,
) -> TrialResult:
    """Trial-compress the sampled blocks and score (bit rate, metric)."""
    plan = build_plan(eb, alpha, beta, selection, max_level, 0, radius)
    # in 'cr' mode no reconstruction metric is evaluated, so the trial's
    # full-stack float64 reconstruction is dropped inside the engine
    codes, outliers, _known, work = interp_compress(
        blocks, plan, batch=True, keep_work=metric != "cr"
    )
    bits = estimate_stream_bits(codes) + 64.0 * outliers.size
    rate = bits / blocks.size
    value: Optional[float] = None
    if metric == "psnr":
        value = psnr_with_range(blocks, work, data_range)
    elif metric == "ssim":
        value = ssim(blocks, work, data_range=data_range, batch=True)
    elif metric == "ac":
        value = -abs(error_autocorrelation(blocks, work))
    return TrialResult(alpha=alpha, beta=beta, bit_rate=rate, metric=value)


def psnr_with_range(original, reconstructed, data_range: float) -> float:
    """PSNR against an externally-supplied value range (the full dataset's,
    not the sampled blocks')."""
    if data_range == 0.0:
        return float("inf")
    m = np.mean(
        (np.asarray(original, np.float64) - np.asarray(reconstructed, np.float64))
        ** 2
    )
    if m == 0.0:
        return float("inf")
    return float(20.0 * np.log10(data_range / np.sqrt(m)))


def _line_side_compare(
    incumbent: TrialResult,
    challenger: TrialResult,
    challenger_retrial: TrialResult,
) -> bool:
    """Table I cases 3/4: True when the challenger wins.

    The challenger's two results define a line in (bit-rate, metric)
    space; the incumbent loses if its point lies below that line
    (worse metric for its rate than the challenger's trade-off curve).
    """
    b1, m1 = incumbent.bit_rate, incumbent.metric
    b2, m2 = challenger.bit_rate, challenger.metric
    b3, m3 = challenger_retrial.bit_rate, challenger_retrial.metric
    if b3 == b2:
        return m2 > m1  # degenerate line: fall back to metric comparison
    slope = (m3 - m2) / (b3 - b2)
    m_line = m2 + slope * (b1 - b2)
    return m1 < m_line


def tune_parameters(
    blocks: np.ndarray,
    eb: float,
    selection: SelectionResult,
    max_level: int,
    metric: str = "cr",
    data_range: float = 1.0,
    radius: int = DEFAULT_RADIUS,
    alphas: Tuple[float, ...] = ALPHA_CANDIDATES,
    betas: Tuple[float, ...] = BETA_CANDIDATES,
) -> TuningOutcome:
    """Pick (alpha, beta) for the user's quality metric (paper Table I)."""
    if metric not in TUNING_METRICS:
        raise ConfigurationError(
            f"metric must be one of {TUNING_METRICS}, got {metric!r}"
        )
    outcome = TuningOutcome(alpha=1.0, beta=1.0)

    # Eq. 5 caps the per-level bounds at ``min(alpha**(l-1), beta)``, so
    # distinct (alpha, beta) pairs frequently share one bound vector (every
    # alpha=1 candidate does, and large alphas saturate beta quickly at
    # small max_level).  A trial's (bit rate, metric) depends only on that
    # vector, so trials are memoized by it — Table I re-trials at 0.8e/1.2e
    # hit the same cache.  Scores are reused bit-for-bit, which keeps the
    # winner identical to exhaustively re-running every candidate.
    memo: Dict[Tuple[float, ...], TrialResult] = {}

    def evaluate(eb_trial: float, alpha: float, beta: float) -> TrialResult:
        key = tuple(
            level_error_bounds(eb_trial, alpha, beta, max_level).values()
        )
        hit = memo.get(key)
        if hit is not None:
            outcome.cache_hits += 1
            return TrialResult(
                alpha=alpha, beta=beta, bit_rate=hit.bit_rate, metric=hit.metric
            )
        trial = _evaluate_candidate(
            blocks, eb_trial, alpha, beta, selection, max_level, metric,
            data_range, radius,
        )
        outcome.trial_compressions += 1
        memo[key] = trial
        return trial

    best: Optional[TrialResult] = None
    for alpha in alphas:
        for beta in betas:
            trial = evaluate(eb, alpha, beta)
            outcome.trials.append(trial)
            if best is None:
                best = trial
                continue
            if metric == "cr":
                if trial.bit_rate < best.bit_rate:
                    best = trial
                continue
            # Table I comparison: I = best (incumbent), II = trial
            if trial.bit_rate <= best.bit_rate and trial.metric >= best.metric:
                best = trial  # case 2 (from II's perspective): II dominates
            elif trial.bit_rate >= best.bit_rate and trial.metric <= best.metric:
                pass  # case 1: incumbent dominates
            else:
                # cases 3/4: re-trial the challenger at a shifted bound
                eb2 = 0.8 * eb if best.metric > trial.metric else 1.2 * eb
                retrial = evaluate(eb2, trial.alpha, trial.beta)
                outcome.extra_trials += 1
                if _line_side_compare(best, trial, retrial):
                    best = trial
    outcome.alpha, outcome.beta = best.alpha, best.beta
    return outcome
