"""QoZ — the paper's quality-metric-oriented error-bounded compressor.

Pipeline (paper Fig. 2): uniform block sampling -> level-wise best-fit
interpolator selection (Algorithm 1) -> (alpha, beta) auto-tuning for the
user's quality metric (Table I) -> anchored multi-level interpolation
prediction + linear quantization -> Huffman/RLE encoding.

Ablation knobs reproduce the paper's Fig. 12 variants:

====================  ==========================================
paper variant         constructor arguments
====================  ==========================================
SZ3                   use :class:`repro.compressors.sz3.SZ3`
SZ3 + AP              ``selection='none', tune=False``
SZ3 + AP + S          ``selection='global', tune=False``
SZ3 + AP + S + LIS    ``selection='level', tune=False``
QoZ (full)            defaults
====================  ==========================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.compressors.base import Compressor, register
from repro.core.engine import interp_decompress
from repro.core.interpolation import CUBIC
from repro.core.levels import (
    ORDER_FORWARD,
    max_level_for_anchor,
    max_level_for_shape,
)
from repro.core.plan_cache import (
    FrozenPlan,
    PlanExecution,
    SharedPlanMixin,
    execute_frozen_plan,
)
from repro.core.sampling import sample_blocks
from repro.core.selection import SelectionResult, select_interpolators
from repro.core.stream import unpack_interp_payload
from repro.core.tuning import (
    TUNING_METRICS,
    TuningOutcome,
    tune_parameters,
)
from repro.errors import ConfigurationError
from repro.quantize.linear import DEFAULT_RADIUS
from repro.utils import resolve_error_bound, validate_field_lazy, value_range

#: paper §VII-A4 experimental configuration.  One deviation: the paper
#: samples 16^3 blocks for 3-D data; at our reduced dataset sizes those
#: tiles are too shallow (their top interpolation level is boundary-
#: dominated) and mis-rank interpolators, so the default block matches the
#: anchor stride (32^3) — see EXPERIMENTS.md.
DEFAULTS_2D = dict(anchor_stride=64, sample_block=64, sample_rate=0.01)
DEFAULTS_3D = dict(anchor_stride=32, sample_block=32, sample_rate=0.005)

_SELECTION_MODES = ("none", "global", "level")


@dataclass
class CompressionReport:
    """Diagnostics of the last compression (tuning trace, choices made)."""

    alpha: float
    beta: float
    selection: Optional[SelectionResult]
    tuning: Optional[TuningOutcome]
    max_level: int
    anchor_stride: int
    n_outliers: int
    n_codes: int
    #: the frozen derivation behind this compression — reusable via
    #: :meth:`QoZ.compress_with_plan`; None when a shared plan was executed
    plan: Optional[FrozenPlan] = None
    #: True when this compression reused a plan instead of deriving one
    from_plan: bool = False


@register
class QoZ(SharedPlanMixin, Compressor):
    """Quality-metric-oriented error-bounded lossy compressor (SC22)."""

    name = "qoz"
    codec_id = 2

    def __init__(
        self,
        metric: str = "cr",
        anchor_stride: Optional[int] = None,
        sample_block: Optional[int] = None,
        sample_rate: Optional[float] = None,
        use_anchors: bool = True,
        selection: str = "level",
        tune: bool = True,
        alpha: Optional[float] = None,
        beta: Optional[float] = None,
        radius: int = DEFAULT_RADIUS,
    ) -> None:
        """Configure a QoZ codec.

        ``metric``: 'cr' (maximize compression ratio), 'psnr', 'ssim' or
        'ac' — the paper's user-specified inclined quality metric.
        ``alpha``/``beta``: fix Eq. 5's parameters instead of auto-tuning
        (both must be given; disables ``tune``).
        """
        if metric not in TUNING_METRICS:
            raise ConfigurationError(
                f"metric must be one of {TUNING_METRICS}, got {metric!r}"
            )
        if selection not in _SELECTION_MODES:
            raise ConfigurationError(
                f"selection must be one of {_SELECTION_MODES}, got {selection!r}"
            )
        if (alpha is None) != (beta is None):
            raise ConfigurationError("give both alpha and beta or neither")
        self.metric = metric
        self.anchor_stride = anchor_stride
        self.sample_block = sample_block
        self.sample_rate = sample_rate
        self.use_anchors = use_anchors
        self.selection = selection
        self.tune = tune and alpha is None
        self.fixed_alpha = alpha
        self.fixed_beta = beta
        self.radius = radius
        #: populated by every compress() call
        self.last_report: Optional[CompressionReport] = None

    # ----------------------------------------------------------- defaults
    def _resolved_config(self, ndim: int) -> Dict[str, float]:
        base = DEFAULTS_2D if ndim <= 2 else DEFAULTS_3D
        return dict(
            anchor_stride=self.anchor_stride or base["anchor_stride"],
            sample_block=self.sample_block or base["sample_block"],
            sample_rate=self.sample_rate or base["sample_rate"],
        )

    # ------------------------------------------------------ plan derivation
    def _derive(
        self, data: np.ndarray, eb: float, data_range: Optional[float] = None
    ) -> Tuple[FrozenPlan, SelectionResult, Optional[TuningOutcome]]:
        """The analysis half of Fig. 2: sampling + selection + tuning.

        Touches ``data`` only through block-sized reads (plus one min/max
        scan when a reconstruction metric needs the value range), so a
        memory-mapped field stays out of core.
        """
        cfg = self._resolved_config(data.ndim)
        anchor = int(cfg["anchor_stride"]) if self.use_anchors else 0
        if anchor:
            max_level = min(
                max_level_for_anchor(anchor), max_level_for_shape(data.shape)
            )
        else:
            max_level = max_level_for_shape(data.shape)

        needs_samples = self.selection != "none" or self.tune
        blocks = None
        if needs_samples:
            blocks, _b = sample_blocks(
                data, int(cfg["sample_block"]), float(cfg["sample_rate"])
            )

        selection = self._run_selection(blocks, eb)
        alpha, beta, tuning = self._run_tuning(
            blocks, eb, selection, max_level, data, data_range
        )
        frozen = FrozenPlan(
            codec=self.name,
            eb=eb,
            alpha=alpha,
            beta=beta,
            interpolators=dict(selection.per_level),
            anchor_stride=anchor,
            radius=self.radius,
            metric=self.metric,
        )
        return frozen, selection, tuning

    def derive_plan(
        self,
        data: np.ndarray,
        error_bound: Optional[float] = None,
        rel_error_bound: Optional[float] = None,
        data_range: Optional[float] = None,
    ) -> FrozenPlan:
        """Run sampling + selection + tuning only; return the frozen plan.

        The plan pickles small and is shape-free: apply it to the same
        field, to its chunks, or to sibling fields of the same dump via
        :meth:`compress_with_plan`.  ``data_range`` (max - min of the full
        field) short-circuits the value scan that a relative bound or a
        reconstruction metric would otherwise need — the chunked path
        passes the range it already computed while resolving the bound.
        """
        data = validate_field_lazy(data)
        if rel_error_bound is not None and data_range is None:
            data_range = value_range(data)  # one scan, shared with tuning
        eb = resolve_error_bound(
            data, error_bound, rel_error_bound, data_range=data_range
        )
        frozen, _selection, _tuning = self._derive(data, eb, data_range)
        return frozen

    # ----------------------------------------------------------- compress
    def _compress(self, data: np.ndarray, eb: float) -> bytes:
        frozen, selection, tuning = self._derive(data, eb)
        payload, execution = execute_frozen_plan(data, frozen, eb)
        self.last_report = CompressionReport(
            alpha=frozen.alpha,
            beta=frozen.beta,
            selection=selection if self.selection != "none" else None,
            tuning=tuning,
            max_level=execution.max_level,
            anchor_stride=frozen.anchor_stride,
            n_outliers=execution.n_outliers,
            n_codes=execution.n_codes,
            plan=frozen,
        )
        return payload

    def _note_plan_execution(
        self, plan: FrozenPlan, eb: float, execution: PlanExecution
    ) -> None:
        self.last_report = CompressionReport(
            alpha=plan.alpha,
            beta=plan.beta,
            selection=None,
            tuning=None,
            max_level=execution.max_level,
            anchor_stride=plan.anchor_stride,
            n_outliers=execution.n_outliers,
            n_codes=execution.n_codes,
            plan=None,
            from_plan=True,
        )

    def _run_selection(self, blocks, eb: float) -> SelectionResult:
        if self.selection == "none" or blocks is None:
            return SelectionResult(
                per_level={1: (CUBIC, ORDER_FORWARD)}, l1_errors={}
            )
        result = select_interpolators(blocks, eb, self.radius)
        if self.selection == "global":
            # one interpolator everywhere: reuse the finest level's winner
            # (it covers the bulk of the points)
            winner = result.per_level[1]
            return SelectionResult(per_level={1: winner}, l1_errors=result.l1_errors)
        return result

    def _run_tuning(
        self,
        blocks,
        eb: float,
        selection: SelectionResult,
        max_level: int,
        data,
        data_range: Optional[float] = None,
    ) -> Tuple[float, float, Optional[TuningOutcome]]:
        if self.fixed_alpha is not None:
            return float(self.fixed_alpha), float(self.fixed_beta), None
        if not self.tune or blocks is None:
            return 1.0, 1.0, None
        # only the reconstruction metrics consume the value range; 'cr' and
        # 'ac' tuning skip the full min/max scan entirely
        if data_range is None and self.metric in ("psnr", "ssim"):
            data_range = value_range(data)
        outcome = tune_parameters(
            blocks,
            eb,
            selection,
            max_level,
            metric=self.metric,
            data_range=1.0 if data_range is None else data_range,
            radius=self.radius,
        )
        return outcome.alpha, outcome.beta, outcome

    # --------------------------------------------------------- decompress
    def _decompress(self, payload: bytes, header) -> np.ndarray:
        plan, _top, known, codes, outliers = unpack_interp_payload(
            payload, header.dtype, max_points=math.prod(header.shape)
        )
        return interp_decompress(header.shape, plan, codes, outliers, known)
