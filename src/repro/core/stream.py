"""Serialization shared by the interpolation codecs (SZ3 and QoZ).

The payload records everything the decompressor needs to replay the pass
traversal: anchor stride, quantizer radius, and per-level (method, order,
error bound); then three data sections — losslessly-coded known points
(anchors or root), the entropy-coded quantization indices, and the exact
outlier values.

:func:`describe_stream` is the generic inspection entry point over *any*
repro stream (plain or chunked container) — it reads only headers and the
chunk index, never payloads, and backs ``python -m repro info``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.engine import InterpPlan, LevelPlan
from repro.core.header import pack_sections, parse_header, unpack_sections
from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.codec import decode_symbol_stream, encode_symbol_stream
from repro.encoding.lossless import (
    compress_floats_lossless,
    decompress_floats_lossless,
)
from repro.errors import DecompressionError


def describe_stream(blob: bytes) -> Dict:
    """Header-level summary of any repro stream, without decoding payloads.

    For a chunked container the summary includes the chunk grid and
    per-chunk byte statistics (parsed from the index alone).
    """
    header, _ = parse_header(blob)
    if header.is_chunked:
        from repro.chunked import ChunkedFile

        with ChunkedFile(blob) as f:
            info = f.describe()
        # size the actual blob, not just what the chunk index implies
        info["compressed_bytes"] = len(blob)
        info["compression_ratio"] = info["raw_bytes"] / max(1, len(blob))
        return info
    return summarize_header(header, len(blob))


def summarize_header(header, compressed_bytes: int) -> Dict:
    """Summary of a plain stream from its parsed header + total size alone.

    Needs no payload bytes, so callers with a file can pass the first 64
    bytes through :func:`repro.core.header.parse_header` and the on-disk
    size, never reading the stream body.
    """
    from repro.compressors.base import codec_name_for_id

    try:
        codec = codec_name_for_id(header.codec_id)
    except KeyError:
        codec = f"unknown (id {header.codec_id})"
    raw = int(np.prod(header.shape)) * header.dtype.itemsize
    return {
        "format": f"plain stream (RPZ1 v{header.version})",
        "codec": codec,
        "dtype": str(header.dtype),
        "shape": header.shape,
        "error_bound": header.error_bound,
        "compressed_bytes": compressed_bytes,
        "raw_bytes": raw,
        "compression_ratio": raw / max(1, compressed_bytes),
    }


def _float_bits(x: float) -> int:
    return int(np.float64(x).view(np.uint64))


def _bits_float(u: int) -> float:
    return float(np.uint64(u).view(np.float64))


def pack_interp_payload(
    plan: InterpPlan,
    max_level: int,
    known: np.ndarray,
    codes: np.ndarray,
    outliers: np.ndarray,
    dtype: np.dtype,
) -> bytes:
    """Serialize an interpolation compression result."""
    writer = BitWriter()
    writer.write_uint(plan.anchor_stride, 32)
    writer.write_uint(plan.radius, 32)
    writer.write_uint(max_level, 8)
    for level in range(1, max_level + 1):
        lp = plan.level_plan(level)
        writer.write_uint(lp.method, 1)
        writer.write_uint(lp.order_id, 1)
        writer.write_uint(_float_bits(lp.eb), 64)
    params = writer.getvalue()
    sections = [
        params,
        compress_floats_lossless(known.ravel().astype(dtype)),
        encode_symbol_stream(codes),
        compress_floats_lossless(outliers.astype(dtype)),
    ]
    return pack_sections(sections)


def unpack_interp_payload(
    payload: bytes, dtype: np.dtype, max_points: int | None = None
) -> Tuple[InterpPlan, int, np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_interp_payload`.

    Returns ``(plan, max_level, known, codes, outliers)``.  Callers that
    know the reconstructed field's element count should pass it as
    ``max_points``: every data section (known points, quant indices,
    outliers) holds at most that many values, and the bound stops a
    forged section from sizing an allocation beyond the field itself.
    """
    sections = unpack_sections(payload)
    if len(sections) != 4:
        raise DecompressionError("interpolation payload must have 4 sections")
    reader = BitReader(sections[0])
    anchor_stride = reader.read_uint(32)
    radius = reader.read_uint(32)
    max_level = reader.read_uint(8)
    levels = {}
    for level in range(1, max_level + 1):
        method = reader.read_uint(1)
        order_id = reader.read_uint(1)
        eb = _bits_float(reader.read_uint(64))
        levels[level] = LevelPlan(eb=eb, method=method, order_id=order_id)
    plan = InterpPlan(
        levels=levels, anchor_stride=anchor_stride, radius=radius, cast_dtype=dtype
    )
    known = decompress_floats_lossless(
        sections[1], max_values=max_points
    ).astype(np.float64)
    codes = decode_symbol_stream(sections[2], max_size=max_points)
    outliers = decompress_floats_lossless(
        sections[3], max_values=max_points
    ).astype(np.float64)
    return plan, max_level, known, codes, outliers
