"""Multi-level grid geometry: pass traversal and anchor-point layout.

A *level* ``l`` works with stride ``s = 2**(l-1)``.  Within a level the
dimensions are visited in a configurable order; the pass on axis ``d``
targets points whose ``d``-coordinate is an odd multiple of ``s`` while
axes visited earlier sit on the ``s`` grid and axes visited later on the
``2s`` grid (exactly SZ3's propagation policy, paper Fig. 3).  Every
non-anchor point is targeted by exactly one pass, and each pass's
predictions depend only on points finished in earlier passes — which is
what makes each pass fully vectorizable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils import ceil_div, is_pow2

#: dimension-order identifiers (paper §VI-B tests increasing/decreasing)
ORDER_FORWARD = 0
ORDER_BACKWARD = 1
ORDER_NAMES = {ORDER_FORWARD: "forward", ORDER_BACKWARD: "backward"}


def dim_order(ndim: int, order_id: int) -> Tuple[int, ...]:
    """Concrete axis order for an order identifier."""
    if order_id == ORDER_FORWARD:
        return tuple(range(ndim))
    if order_id == ORDER_BACKWARD:
        return tuple(range(ndim - 1, -1, -1))
    raise ConfigurationError(f"unknown dimension order {order_id}")


def max_level_for_shape(shape: Sequence[int]) -> int:
    """Smallest L with 2**L >= max extent: SZ3's level count."""
    top = max(shape)
    level = 0
    while (1 << level) < top:
        level += 1
    return max(level, 1)


def max_level_for_anchor(anchor_stride: int) -> int:
    """Interpolation level count when an anchor grid of this stride exists."""
    if not is_pow2(anchor_stride):
        raise ConfigurationError(
            f"anchor stride must be a power of two, got {anchor_stride}"
        )
    return max(anchor_stride.bit_length() - 1, 1)


@dataclass(frozen=True)
class PassSpec:
    """One vectorized prediction pass."""

    level: int  # 1 = finest
    stride: int  # 2**(level-1)
    axis: int  # axis being interpolated along
    view_slices: Tuple[slice, ...]  # line-view selector on the full array
    grid_len: int  # line-view length along `axis`
    n_targets: int  # total points quantized by this pass


def level_pass_specs(
    shape: Sequence[int], level: int, order: Sequence[int]
) -> Iterator[PassSpec]:
    """Yield the passes of one level in execution order."""
    s = 1 << (level - 1)
    ndim = len(shape)
    if sorted(order) != list(range(ndim)):
        raise ConfigurationError(f"invalid dimension order {order!r} for {ndim}-D")
    for pos, axis in enumerate(order):
        slices = [slice(None)] * ndim
        counts = []
        for other_pos, other_axis in enumerate(order):
            if other_axis == axis:
                continue
            step = s if other_pos < pos else 2 * s
            slices[other_axis] = slice(0, None, step)
            counts.append(ceil_div(shape[other_axis], step))
        slices[axis] = slice(0, None, s)
        g = ceil_div(shape[axis], s)
        m = g // 2
        if m == 0:
            continue
        n_targets = m * int(np.prod(counts, dtype=np.int64)) if counts else m
        yield PassSpec(
            level=level,
            stride=s,
            axis=axis,
            view_slices=tuple(slices),
            grid_len=g,
            n_targets=n_targets,
        )


def anchor_slices(ndim: int, anchor_stride: int) -> Tuple[slice, ...]:
    """Selector of the lossless anchor grid ``X[::A, ::A, ...]``."""
    return tuple(slice(0, None, anchor_stride) for _ in range(ndim))


def anchor_count(shape: Sequence[int], anchor_stride: int) -> int:
    """Number of anchor points for a shape."""
    return int(np.prod([ceil_div(n, anchor_stride) for n in shape], dtype=np.int64))


def total_pass_targets(shape: Sequence[int], max_level: int) -> int:
    """Total number of interpolated points across all levels.

    Used to sanity-check stream bookkeeping: anchors/root + targets must
    cover the array exactly once.
    """
    total = 0
    for level in range(max_level, 0, -1):
        for spec in level_pass_specs(shape, level, tuple(range(len(shape)))):
            total += spec.n_targets
    return total
