"""QoZ core: interpolation predictor, level machinery, tuning, compressor.

- :mod:`repro.core.interpolation` — vectorized 1-D spline prediction kernels.
- :mod:`repro.core.levels` — multi-level grid traversal + anchor geometry.
- :mod:`repro.core.engine` — the shared interpolation compression engine
  (used by both SZ3 and QoZ, optionally batched over sampled blocks).
- :mod:`repro.core.sampling` — uniform block sampling (paper §VI-A).
- :mod:`repro.core.selection` — level-adapted interpolator selection
  (paper Algorithm 1).
- :mod:`repro.core.tuning` — quality-metric-driven (alpha, beta)
  auto-tuning (paper §VI-C, Table I).
- :mod:`repro.core.plan_cache` — frozen derivation results
  (:class:`FrozenPlan`) split from execution, for chunk/worker reuse.
- :mod:`repro.core.qoz` — the public QoZ compressor.

The QoZ class is importable lazily via ``repro.core.qoz`` (kept out of this
module's import path so the engine substrates can be used standalone).
"""


def __getattr__(name):
    if name == "QoZ":
        from repro.core.qoz import QoZ

        return QoZ
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
