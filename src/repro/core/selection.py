"""Level-adapted best-fit interpolator selection (paper Algorithm 1).

Candidates are {linear, cubic} x {increasing, decreasing dimension order}
(the paper restricts the 2^d! permutations to the two index orders, which
"cover the best choices in almost all cases").  Selection runs trial
compression of one level at a time over the sampled blocks and keeps the
candidate whose quantization bins would code smallest (Shannon entropy; the
paper's mean-L1 criterion is a proxy for the same quantity and breaks
ties — see ``_trial_level``).  The chosen candidate's reconstruction
advances the block state so lower levels are selected against what the
decompressor will actually see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.engine import InterpPlan, LevelPlan, PassStats, execute_passes
from repro.core.interpolation import CUBIC, LINEAR
from repro.core.levels import (
    ORDER_BACKWARD,
    ORDER_FORWARD,
    dim_order,
    max_level_for_shape,
)
from repro.quantize.linear import DEFAULT_RADIUS, LinearQuantizer

#: the four interpolator candidates of Algorithm 1
CANDIDATES: Tuple[Tuple[int, int], ...] = (
    (LINEAR, ORDER_FORWARD),
    (LINEAR, ORDER_BACKWARD),
    (CUBIC, ORDER_FORWARD),
    (CUBIC, ORDER_BACKWARD),
)


def distinct_candidates(ndim: int) -> Tuple[Tuple[int, int], ...]:
    """The Algorithm 1 candidates with redundant trials removed.

    Two candidates are interchangeable when their order ids resolve to the
    same axis traversal (always the case for 1-D data, where forward and
    backward collapse) — trial-compressing both would score identical
    plans twice.  The first occurrence is kept, so selection outcomes are
    unchanged.
    """
    seen = set()
    out = []
    for method, order_id in CANDIDATES:
        key = (method, dim_order(ndim, order_id))
        if key in seen:
            continue
        seen.add(key)
        out.append((method, order_id))
    return tuple(out)


@dataclass
class SelectionResult:
    """Chosen interpolator per level plus the observed L1 errors."""

    per_level: Dict[int, Tuple[int, int]]  # level -> (method, order_id)
    l1_errors: Dict[int, float]  # level -> winning mean L1 error

    def interpolator(self, level: int) -> Tuple[int, int]:
        """Interpolator for a level; levels above the sampled blocks' top
        level reuse the highest selected one (paper §VI-B)."""
        if level in self.per_level:
            return self.per_level[level]
        return self.per_level[max(self.per_level)]


def _trial_level(
    work: np.ndarray, level: int, eb: float, method: int, order_id: int, radius: int
) -> Tuple[float, float, np.ndarray]:
    """Run one level with one candidate on a copy.

    Returns ``(score, l1, new_state)``.  The score is the estimated coded
    size of the level's quantization bins (Shannon bits per point, plus
    the exact-outlier cost).  The paper ranks candidates by mean absolute
    prediction error as a proxy for exactly this quantity; scoring the
    bins directly is more robust at the small sample sizes our reduced
    datasets force (see EXPERIMENTS.md), and they agree when L1 is
    informative.
    """
    trial = work.copy()
    plan = InterpPlan(
        levels={level: LevelPlan(eb=eb, method=method, order_id=order_id)},
        anchor_stride=0,
        radius=radius,
    )
    stats = PassStats()
    quantizer = LinearQuantizer(radius=radius)
    execute_passes(
        trial, plan, quantizer, compress=True, batch=True, stats=stats,
        only_level=level,
    )
    codes, outliers = quantizer.harvest()
    if codes.size:
        counts = np.bincount(codes - codes.min())
        counts = counts[counts > 0].astype(np.float64)
        p = counts / counts.sum()
        score = float(-(p * np.log2(p)).sum()) + 64.0 * outliers.size / codes.size
    else:
        score = 0.0
    return score, stats.mean_abs_error(level), trial


def select_interpolators(
    blocks: np.ndarray, eb: float, radius: int = DEFAULT_RADIUS
) -> SelectionResult:
    """Algorithm 1: per-level best-fit interpolator over sampled blocks."""
    block_shape = blocks.shape[1:]
    top = max_level_for_shape(block_shape)
    candidates = distinct_candidates(len(block_shape))
    work = blocks.astype(np.float64, copy=True)
    per_level: Dict[int, Tuple[int, int]] = {}
    l1: Dict[int, float] = {}
    for level in range(top, 0, -1):
        best_score = np.inf
        best_l1 = np.inf
        best = candidates[0]
        best_state = None
        for method, order_id in candidates:
            score, err, state = _trial_level(
                work, level, eb, method, order_id, radius
            )
            if (score, err) < (best_score, best_l1):
                best_score, best_l1 = score, err
                best, best_state = (method, order_id), state
        per_level[level] = best
        l1[level] = best_l1
        work = best_state  # advance with the winner's reconstruction
    return SelectionResult(per_level=per_level, l1_errors=l1)


def select_global_interpolator(
    blocks: np.ndarray, eb: float, radius: int = DEFAULT_RADIUS
) -> Tuple[int, int]:
    """SZ3-style selection: one interpolator for every level.

    Scores each candidate by total absolute prediction error of a full
    trial compression over the sampled blocks.
    """
    block_shape = blocks.shape[1:]
    top = max_level_for_shape(block_shape)
    best_err = np.inf
    best = CANDIDATES[0]
    for method, order_id in distinct_candidates(len(block_shape)):
        plan = InterpPlan(
            levels={
                l: LevelPlan(eb=eb, method=method, order_id=order_id)
                for l in range(1, top + 1)
            },
            anchor_stride=0,
            radius=radius,
        )
        stats = PassStats()
        quantizer = LinearQuantizer(radius=radius)
        execute_passes(
            blocks.astype(np.float64, copy=True),
            plan,
            quantizer,
            compress=True,
            batch=True,
            stats=stats,
        )
        total = sum(stats.abs_err_sum.values())
        if total < best_err:
            best_err, best = total, (method, order_id)
    return best
