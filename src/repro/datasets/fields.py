"""Application-like field generators (one per paper dataset).

Default shapes are laptop-scale stand-ins for the SDRBench fields (which
range up to 449x449x235 per field); every generator accepts a ``shape``
override, so the benchmarks can be scaled up on bigger machines.  All
fields are float32, matching the paper's datasets.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.datasets.spectral import gaussian_random_field
from repro.datasets.wave import WaveSimulator


def cesm_like(
    shape: Optional[Sequence[int]] = None, seed: int = 0
) -> np.ndarray:
    """2-D climate field (CESM-ATM stand-in).

    Multi-scale atmospheric structure: a strong zonal (latitude) gradient,
    a moderately rough spectral component, and a sharp front band —
    cloud-fraction-like fields mix smooth regions with discontinuities.
    """
    shape = tuple(shape) if shape else (450, 900)
    ny, nx = shape
    lat = np.linspace(-1.0, 1.0, ny)[:, None]
    base = 1.2 * (1.0 - lat * lat)  # warm equator, cold poles
    turb = 0.45 * gaussian_random_field(shape, slope=3.2, seed=seed)
    front = 0.5 * np.tanh(
        12.0 * (0.25 - np.abs(lat + 0.15 * np.sin(
            np.linspace(0, 4 * np.pi, nx)[None, :])))
    )
    return (base + turb + front).astype(np.float32)


def miranda_like(
    shape: Optional[Sequence[int]] = None, seed: int = 0
) -> np.ndarray:
    """3-D turbulent-mixing field (Miranda stand-in).

    Miranda's radiation-hydrodynamics fields are extremely smooth (the
    paper's highest compression ratios): a steep spectrum plus a smooth
    density interface between two mixing layers.
    """
    shape = tuple(shape) if shape else (64, 96, 96)
    nz = shape[0]
    depth = np.linspace(-1.0, 1.0, nz).reshape((-1,) + (1,) * (len(shape) - 1))
    interface = np.tanh(
        6.0 * (depth + 0.15 * gaussian_random_field(shape, slope=7.0, seed=seed))
    )
    smooth = 0.2 * gaussian_random_field(shape, slope=7.0, seed=seed + 1)
    return (1.5 + interface + smooth).astype(np.float32)


def nyx_like(
    shape: Optional[Sequence[int]] = None, seed: int = 0
) -> np.ndarray:
    """3-D cosmological baryon density (NYX stand-in).

    Log-normal density with a huge dynamic range and filamentary
    concentration — the paper's hardest dataset (lowest ratios).
    """
    shape = tuple(shape) if shape else (96, 96, 96)
    g = gaussian_random_field(shape, slope=3.0, seed=seed)
    return np.exp(1.5 * g).astype(np.float32)


def hurricane_like(
    shape: Optional[Sequence[int]] = None, seed: int = 0
) -> np.ndarray:
    """3-D storm wind-speed field (Hurricane-Isabel stand-in).

    A strong axisymmetric vortex whose core drifts with height, over
    moderately rough large-scale flow.
    """
    shape = tuple(shape) if shape else (32, 96, 96)
    nz, ny, nx = shape
    z = np.linspace(0.0, 1.0, nz)[:, None, None]
    y = np.linspace(-1.0, 1.0, ny)[None, :, None]
    x = np.linspace(-1.0, 1.0, nx)[None, None, :]
    cx = 0.25 * np.cos(2.5 * z)
    cy = 0.25 * np.sin(2.5 * z)
    r2 = (x - cx) ** 2 + (y - cy) ** 2
    rmax2 = 0.05
    speed = 55.0 * np.sqrt(r2 / rmax2) * np.exp(0.5 * (1.0 - r2 / rmax2))
    ambient = 5.0 * gaussian_random_field(shape, slope=4.0, seed=seed)
    decay = 1.0 - 0.5 * z
    return (speed * decay + ambient).astype(np.float32)


def scale_letkf_like(
    shape: Optional[Sequence[int]] = None, seed: int = 0
) -> np.ndarray:
    """3-D regional-weather state (SCALE-LETKF stand-in).

    Thin vertical extent with strongly layered structure plus horizontal
    mesoscale variability (the dataset is 98x1200x1200 in the paper).
    """
    shape = tuple(shape) if shape else (24, 160, 160)
    nz = shape[0]
    z = np.linspace(0.0, 1.0, nz).reshape((-1, 1, 1))
    profile = 300.0 * np.exp(-1.6 * z)  # pressure/temperature-like decay
    horizontal = 8.0 * gaussian_random_field(shape, slope=4.0, seed=seed)
    shear = 5.0 * np.sin(3.0 * np.pi * z)
    return (profile + horizontal * (0.4 + z) + shear).astype(np.float32)


def rtm_like(
    shape: Optional[Sequence[int]] = None,
    seed: int = 0,
    steps: Optional[int] = None,
) -> np.ndarray:
    """3-D seismic wavefield snapshot (RTM stand-in).

    Runs the FD acoustic solver long enough for the wavefront to span
    roughly half the domain: smooth oscillatory fronts over a quiescent
    background, which is why RTM compresses by factors of hundreds.
    """
    shape = tuple(shape) if shape else (64, 80, 80)
    sim = WaveSimulator(shape, seed=seed)
    if steps is None:
        steps = int(0.6 * max(shape))
    sim.step(steps)
    snap = sim.snapshot(dtype=np.float64)
    peak = np.abs(snap).max()
    if peak > 0:
        snap = snap / peak
    return snap.astype(np.float32)
