"""Finite-difference acoustic wave propagation (the RTM substrate).

Reverse time migration compresses snapshots of propagating seismic
wavefields.  This module implements the standard second-order-in-time,
second-order-in-space explicit scheme for the constant-density acoustic
wave equation ``p_tt = c^2 laplacian(p) + s`` with a Ricker-wavelet point
source and simple absorbing (damping sponge) boundaries — enough to
produce realistic smooth wavefronts over a quiescent background, the
structure that gives RTM its very high compression ratios.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


def ricker(t: np.ndarray, peak_frequency: float) -> np.ndarray:
    """Ricker (Mexican-hat) source wavelet."""
    a = (np.pi * peak_frequency * (t - 1.0 / peak_frequency)) ** 2
    return (1.0 - 2.0 * a) * np.exp(-a)


def _laplacian(p: np.ndarray, inv_h2: float) -> np.ndarray:
    """Second-order central-difference Laplacian, zero-padded borders."""
    lap = -2.0 * p.ndim * p
    for axis in range(p.ndim):
        lap += np.roll(p, 1, axis=axis) + np.roll(p, -1, axis=axis)
    return lap * inv_h2


class WaveSimulator:
    """Explicit FD solver for the acoustic wave equation (2-D or 3-D)."""

    def __init__(
        self,
        shape: Sequence[int],
        velocity: Optional[np.ndarray] = None,
        dx: float = 10.0,
        source: Optional[Tuple[int, ...]] = None,
        peak_frequency: float = 8.0,
        sponge: int = 8,
        seed: int = 0,
    ) -> None:
        self.shape = tuple(int(n) for n in shape)
        if len(self.shape) not in (2, 3):
            raise ConfigurationError("WaveSimulator supports 2-D and 3-D")
        if velocity is None:
            # smooth layered velocity model: 1500..4000 m/s with depth
            depth = np.linspace(0.0, 1.0, self.shape[0])
            v = 1500.0 + 2500.0 * depth
            velocity = np.broadcast_to(
                v.reshape((-1,) + (1,) * (len(self.shape) - 1)), self.shape
            ).copy()
            rng = np.random.default_rng(seed)
            velocity *= 1.0 + 0.05 * np.tanh(
                rng.standard_normal(self.shape)
            )
        self.velocity = np.asarray(velocity, dtype=np.float64)
        if self.velocity.shape != self.shape:
            raise ConfigurationError("velocity model shape mismatch")
        self.dx = float(dx)
        # CFL-stable time step
        vmax = float(self.velocity.max())
        self.dt = 0.4 * self.dx / (vmax * np.sqrt(len(self.shape)))
        self.source = source or tuple(n // 2 for n in self.shape)
        self.peak_frequency = float(peak_frequency)
        self._damp = self._sponge_profile(sponge)
        self.reset()

    def _sponge_profile(self, width: int) -> np.ndarray:
        """Multiplicative damping mask decaying toward every boundary."""
        damp = np.ones(self.shape)
        if width <= 0:
            return damp
        for axis, n in enumerate(self.shape):
            ramp = np.ones(n)
            edge = np.arange(width)
            decay = np.exp(-0.015 * (width - edge) ** 2)
            ramp[:width] = decay
            ramp[-width:] = decay[::-1]
            damp *= ramp.reshape(
                (1,) * axis + (-1,) + (1,) * (len(self.shape) - axis - 1)
            )
        return damp

    def reset(self) -> None:
        """Zero the pressure fields and the clock."""
        self.p = np.zeros(self.shape)
        self.p_prev = np.zeros(self.shape)
        self.step_count = 0

    def step(self, n: int = 1) -> None:
        """Advance ``n`` time steps."""
        c2dt2 = (self.velocity * self.dt) ** 2
        inv_h2 = 1.0 / (self.dx * self.dx)
        for _ in range(n):
            t = self.step_count * self.dt
            lap = _laplacian(self.p, inv_h2)
            p_next = 2.0 * self.p - self.p_prev + c2dt2 * lap
            p_next[self.source] += (
                ricker(np.array([t]), self.peak_frequency)[0] * self.dt**2
            )
            p_next *= self._damp
            self.p_prev = self.p * self._damp
            self.p = p_next
            self.step_count += 1

    def snapshot(self, dtype=np.float32) -> np.ndarray:
        """Copy of the current pressure field."""
        return self.p.astype(dtype)
