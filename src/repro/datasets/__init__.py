"""Synthetic stand-ins for the paper's six SDRBench application datasets.

The real datasets (CESM-ATM, Miranda, NYX, Hurricane-Isabel, SCALE-LETKF,
RTM; up to 635 GB) are not redistributable here, so each generator
synthesizes a field with the compressibility-relevant structure of its
application: spectral slope (local smoothness), dynamic-range distribution,
regional heterogeneity, and dimensionality.  See DESIGN.md §3 for the
substitution argument.  All generators are seeded and deterministic.
"""

from repro.datasets.spectral import gaussian_random_field
from repro.datasets.wave import WaveSimulator
from repro.datasets.fields import (
    cesm_like,
    hurricane_like,
    miranda_like,
    nyx_like,
    rtm_like,
    scale_letkf_like,
)
from repro.datasets.registry import DATASETS, get_dataset, dataset_names

__all__ = [
    "gaussian_random_field",
    "WaveSimulator",
    "cesm_like",
    "miranda_like",
    "nyx_like",
    "hurricane_like",
    "scale_letkf_like",
    "rtm_like",
    "DATASETS",
    "get_dataset",
    "dataset_names",
]
