"""Dataset registry mapping the paper's application names to generators."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.datasets import fields

#: paper dataset name -> (generator, domain, ndim)
DATASETS: Dict[str, Callable] = {
    "rtm": fields.rtm_like,
    "miranda": fields.miranda_like,
    "cesm": fields.cesm_like,
    "scale": fields.scale_letkf_like,
    "nyx": fields.nyx_like,
    "hurricane": fields.hurricane_like,
}

#: human-readable labels used by the benchmark tables
LABELS = {
    "rtm": "RTM (seismic wave)",
    "miranda": "Miranda (turbulence)",
    "cesm": "CESM-ATM (climate 2D)",
    "scale": "SCALE-LETKF (weather)",
    "nyx": "NYX (cosmology)",
    "hurricane": "Hurricane (weather)",
}


def dataset_names():
    """Names in the paper's Table II/III order."""
    return list(DATASETS)


def get_dataset(
    name: str, shape: Optional[Sequence[int]] = None, seed: int = 0
) -> np.ndarray:
    """Generate a dataset stand-in by paper name."""
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; have {sorted(DATASETS)}")
    return DATASETS[name](shape=shape, seed=seed)
