"""Spectral synthesis of Gaussian random fields.

A field with isotropic power spectrum ``P(k) ~ k**(-slope)`` is generated
by shaping white noise in Fourier space and transforming back.  The slope
controls smoothness — and therefore compressibility under prediction-based
coders: slope 5 is very smooth (Miranda-like), slope 3 is moderately rough
(climate-like), slope 2 approaches noise (hard).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _radial_wavenumber(shape: Sequence[int]) -> np.ndarray:
    """|k| grid for rfftn output layout."""
    freqs = [np.fft.fftfreq(n) for n in shape[:-1]]
    freqs.append(np.fft.rfftfreq(shape[-1]))
    grids = np.meshgrid(*freqs, indexing="ij")
    k2 = np.zeros_like(grids[0])
    for g in grids:
        k2 = k2 + g * g
    return np.sqrt(k2)


def gaussian_random_field(
    shape: Sequence[int],
    slope: float = 3.0,
    seed: int = 0,
    kmin: float = 1.0,
) -> np.ndarray:
    """Zero-mean, unit-std Gaussian random field with ``P(k) ~ k**-slope``.

    ``kmin`` (in units of the fundamental frequency) suppresses the power
    below that wavenumber, controlling the largest structure size.
    """
    shape = tuple(int(n) for n in shape)
    rng = np.random.default_rng(seed)
    white = rng.standard_normal(shape)
    spec = np.fft.rfftn(white)
    k = _radial_wavenumber(shape)
    kfund = 1.0 / max(shape)
    k0 = kmin * kfund
    amp = np.zeros_like(k)
    nz = k > 0
    amp[nz] = (np.maximum(k[nz], k0)) ** (-slope / 2.0)
    # NumPy 2.x deprecates s= without an explicit axes= sequence
    field = np.fft.irfftn(spec * amp, s=shape, axes=tuple(range(len(shape))))
    std = field.std()
    if std > 0:
        field /= std
    return field - field.mean()
