"""ZFP-like transform-based error-bounded compression (Lindstrom, TVCG 2014).

Structure follows ZFP's fixed-accuracy mode: the array is split into 4^d
blocks; each block is converted to block floating point (common exponent),
decorrelated with an exactly-invertible integer transform, reordered from
low to high "frequency", mapped to negabinary, and coded bit-plane by
bit-plane with a per-plane zero-group flag.  The number of planes kept per
block is derived from the tolerance and the block exponent, so precision
adapts per block exactly like ZFP's accuracy mode.

Deviations from real ZFP (documented in DESIGN.md §3): the decorrelating
transform is a two-level Haar (S-transform) cascade instead of ZFP's
non-orthogonal lift (ours is exactly invertible in integers, which keeps
the error analysis clean), and the embedded group-testing coder is
simplified to per-plane flags.  A final verification pass stores exact
values for any point that would violate the bound, making the bound strict
(real ZFP's accuracy mode is also conservative, but via analysis).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.compressors.base import Compressor, register
from repro.core.header import pack_sections, unpack_sections
from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.lossless import (
    compress_floats_lossless,
    decompress_floats_lossless,
)
from repro.errors import DecompressionError
from repro.utils import ceil_div

#: block edge (ZFP uses 4 in every dimension)
BLOCK = 4
#: fixed-point scale exponent: x in [-1,1) maps to round(x * 2**Q)
Q = 40
#: negabinary mask (alternating bits, covers Q + transform growth)
_NB_MASK = np.int64(0x2AAAAAAAAAAAAA)  # 54-bit 10-pattern
#: highest encoded bit-plane (fixed-point width + growth headroom)
P_TOP = Q + 8


def _s_forward(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Exactly invertible S-transform: (mean, difference)."""
    d = a - b
    s = b + (d >> 1)  # == floor((a + b) / 2)
    return s, d


def _s_inverse(s: np.ndarray, d: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    b = s - (d >> 1)
    a = b + d
    return a, b


def _transform_axis(blocks: np.ndarray, axis: int, inverse: bool) -> None:
    """Two-level Haar cascade along one length-4 axis, in place."""
    idx = [slice(None)] * blocks.ndim

    def pick(i):
        idx[axis] = i
        return tuple(idx)

    v0, v1, v2, v3 = (blocks[pick(i)].copy() for i in range(4))
    if not inverse:
        s0, d0 = _s_forward(v0, v1)
        s1, d1 = _s_forward(v2, v3)
        ss, ds = _s_forward(s0, s1)
        out = (ss, ds, d0, d1)
    else:
        ss, ds, d0, d1 = v0, v1, v2, v3
        s0, s1 = _s_inverse(ss, ds)
        a0, b0 = _s_inverse(s0, d0)
        a1, b1 = _s_inverse(s1, d1)
        out = (a0, b0, a1, b1)
    for i, arr in enumerate(out):
        blocks[pick(i)] = arr


#: per-position frequency level of the 1-D transform output [ss, ds, d0, d1]
_LEVEL_1D = np.array([0, 1, 2, 2])


def _scan_order(ndim: int) -> np.ndarray:
    """Flat permutation ordering coefficients from low to high frequency."""
    grids = np.meshgrid(*([_LEVEL_1D] * ndim), indexing="ij")
    level = np.zeros_like(grids[0])
    for g in grids:
        level = level + g
    return np.argsort(level.ravel(), kind="stable")


def _group_bounds(ndim: int):
    """Coefficient-group boundaries (by total frequency level, scan order).

    Bit planes are coded group by group with one zero-test flag each —
    the simplified stand-in for ZFP's embedded group testing.  High-
    frequency groups are almost always zero on the upper planes, so the
    flags prune most of the raw bits.
    """
    grids = np.meshgrid(*([_LEVEL_1D] * ndim), indexing="ij")
    level = np.zeros_like(grids[0])
    for g in grids:
        level = level + g
    sorted_levels = np.sort(level.ravel(), kind="stable")
    boundaries = np.flatnonzero(np.diff(sorted_levels)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [sorted_levels.size]])
    return list(zip(starts.tolist(), ends.tolist()))


def _to_negabinary(i: np.ndarray) -> np.ndarray:
    return ((i + _NB_MASK) ^ _NB_MASK).astype(np.uint64)


def _from_negabinary(u: np.ndarray) -> np.ndarray:
    return (u.astype(np.int64) ^ _NB_MASK) - _NB_MASK


def _pad_to_blocks(data: np.ndarray) -> np.ndarray:
    pads = [(0, (-n) % BLOCK) for n in data.shape]
    if not any(p[1] for p in pads):
        return np.asarray(data, dtype=np.float64)
    return np.pad(np.asarray(data, dtype=np.float64), pads, mode="edge")


def _blockify(data: np.ndarray) -> np.ndarray:
    """(n_blocks, 4, 4, ...) stack of blocks."""
    nd = data.ndim
    counts = [n // BLOCK for n in data.shape]
    shape = []
    for c in counts:
        shape.extend([c, BLOCK])
    view = data.reshape(shape)
    perm = list(range(0, 2 * nd, 2)) + list(range(1, 2 * nd, 2))
    return (
        view.transpose(perm).reshape((int(np.prod(counts)),) + (BLOCK,) * nd)
    )


def _unblockify(blocks: np.ndarray, shape) -> np.ndarray:
    nd = len(shape)
    counts = [n // BLOCK for n in shape]
    view = blocks.reshape(counts + [BLOCK] * nd)
    perm = []
    for d in range(nd):
        perm.extend([d, nd + d])
    return view.transpose(perm).reshape(tuple(shape))


def _plane_cut(emax: np.ndarray, eb: float, ndim: int) -> np.ndarray:
    """Lowest bit-plane that must be kept per block (accuracy mode).

    Dropping planes below ``k`` perturbs each transform coefficient by
    < 2**k; the inverse Haar cascade amplifies that by < 2**(2*ndim), and
    the fixed-point scale is 2**(emax - Q) — keep planes down to the k
    where the product stays under the tolerance.
    """
    gain_bits = 1  # empirically calibrated; violations go to the exact store
    k = np.floor(np.log2(eb)) - emax + Q - gain_bits
    return np.clip(k, 0, P_TOP).astype(np.int64)


@register
class ZFP(Compressor):
    """ZFP-style fixed-accuracy transform codec."""

    name = "zfp"
    codec_id = 4

    def _compress(self, data: np.ndarray, eb: float) -> bytes:
        padded = _pad_to_blocks(data)
        nd = padded.ndim
        blocks = _blockify(padded)
        nb = blocks.shape[0]
        m = BLOCK**nd

        flat = blocks.reshape(nb, m)
        maxabs = np.abs(flat).max(axis=1)
        nonzero = maxabs > 0
        emax = np.zeros(nb, dtype=np.int64)
        emax[nonzero] = np.frexp(maxabs[nonzero])[1]  # maxabs < 2**emax
        scale = np.ldexp(1.0, (Q - emax))
        ints = np.rint(flat * scale[:, None]).astype(np.int64)

        tblocks = ints.reshape((nb,) + (BLOCK,) * nd)
        for axis in range(1, nd + 1):
            _transform_axis(tblocks, axis, inverse=False)
        order = _scan_order(nd)
        coeffs = tblocks.reshape(nb, m)[:, order]

        u = _to_negabinary(coeffs)
        kcut = _plane_cut(emax, eb, nd)
        encode_block = nonzero & (kcut < P_TOP)

        # per-block top plane: position of the highest set bit among coeffs
        blockmax = u.max(axis=1)
        pstart = np.zeros(nb, dtype=np.int64)
        nz = blockmax > 0
        pstart[nz] = np.frexp(blockmax[nz].astype(np.float64))[1]  # < 2**pstart
        pstart = np.minimum(pstart, P_TOP)

        writer = BitWriter()
        writer.write_array(encode_block.astype(np.uint64), 1)
        writer.write_array((emax[encode_block] + 2048).astype(np.uint64), 12)
        writer.write_array(pstart[encode_block].astype(np.uint64), 6)
        groups = _group_bounds(nd)
        for p in range(P_TOP - 1, -1, -1):
            active = encode_block & (kcut <= p) & (p < pstart)
            if not active.any():
                continue
            plane = (u[active] >> np.uint64(p)) & np.uint64(1)
            for lo, hi in groups:
                width = hi - lo
                sub = plane[:, lo:hi]
                words = (sub << np.arange(width, dtype=np.uint64)).sum(
                    axis=1, dtype=np.uint64
                )
                flags = words != 0
                writer.write_array(flags.astype(np.uint64), 1)
                if flags.any():
                    writer.write_array(words[flags], width)
        body = writer.getvalue()

        # verification pass: exact storage for bound violations
        recon = self._reconstruct(
            u, encode_block, emax, kcut, nd, padded.shape
        )
        crop = tuple(slice(0, n) for n in data.shape)
        recon_crop = recon[crop]
        delivered = recon_crop.astype(data.dtype).astype(np.float64)
        bad = np.abs(np.asarray(data, np.float64) - delivered) > eb
        bad_idx = np.flatnonzero(bad.ravel())
        bad_vals = np.asarray(data, np.float64).ravel()[bad_idx]

        hw = BitWriter()
        hw.write_uint(0, 1)  # reserved
        hw.write_uint(len(body), 64)
        hw.write_uint(bad_idx.size, 64)
        hw.write_array(bad_idx.astype(np.uint64), 64)
        head = hw.getvalue()
        sections = [
            head,
            body,
            compress_floats_lossless(bad_vals.astype(data.dtype)),
        ]
        return pack_sections(sections)

    def _reconstruct(self, u, encode_block, emax, kcut, nd, padded_shape):
        """Shared decode path: coefficients -> field (float64)."""
        nb, m = u.shape
        # zero the dropped planes
        shift = kcut.astype(np.uint64)
        mask = (~np.uint64(0)) << shift  # per-block keep-mask
        u_kept = (u & mask[:, None]) * encode_block[:, None].astype(np.uint64)
        coeffs = _from_negabinary(u_kept)
        order = _scan_order(nd)
        inv_order = np.argsort(order)
        tblocks = coeffs[:, inv_order].reshape((nb,) + (BLOCK,) * nd)
        for axis in range(nd, 0, -1):
            _transform_axis(tblocks, axis, inverse=True)
        ints = tblocks.reshape(nb, m).astype(np.float64)
        scale = np.ldexp(1.0, (emax - Q))
        flat = ints * scale[:, None]
        return _unblockify(flat.reshape((nb,) + (BLOCK,) * nd), padded_shape)

    def _decompress(self, payload: bytes, header) -> np.ndarray:
        sections = unpack_sections(payload)
        if len(sections) != 3:
            raise DecompressionError("ZFP payload must have 3 sections")
        hr = BitReader(sections[0])
        hr.read_uint(1)
        body_len = hr.read_uint(64)
        n_bad = hr.read_uint(64)
        bad_idx = hr.read_array(n_bad, 64).astype(np.int64)
        bad_vals = decompress_floats_lossless(
            sections[2], max_values=int(np.prod(header.shape))
        ).astype(np.float64)

        shape = header.shape
        nd = len(shape)
        padded_shape = tuple(ceil_div(n, BLOCK) * BLOCK for n in shape)
        nb = int(np.prod([n // BLOCK for n in padded_shape]))
        m = BLOCK**nd
        eb = header.error_bound

        reader = BitReader(sections[1])
        encode_block = reader.read_array(nb, 1).astype(bool)
        n_enc = int(encode_block.sum())
        emax = np.zeros(nb, dtype=np.int64)
        emax[encode_block] = reader.read_array(n_enc, 12).astype(np.int64) - 2048
        pstart = np.zeros(nb, dtype=np.int64)
        pstart[encode_block] = reader.read_array(n_enc, 6).astype(np.int64)
        kcut = _plane_cut(emax, eb, nd)

        u = np.zeros((nb, m), dtype=np.uint64)
        groups = _group_bounds(nd)
        for p in range(P_TOP - 1, -1, -1):
            active = encode_block & (kcut <= p) & (p < pstart)
            n_active = int(active.sum())
            if n_active == 0:
                continue
            plane = np.zeros((n_active, m), dtype=np.uint64)
            for lo, hi in groups:
                width = hi - lo
                flags = reader.read_array(n_active, 1).astype(bool)
                words = np.zeros(n_active, dtype=np.uint64)
                if flags.any():
                    words[flags] = reader.read_array(int(flags.sum()), width)
                plane[:, lo:hi] = (
                    words[:, None] >> np.arange(width, dtype=np.uint64)
                ) & np.uint64(1)
            u_active = u[active]
            u_active |= plane << np.uint64(p)
            u[active] = u_active

        recon = self._reconstruct(u, encode_block, emax, kcut, nd, padded_shape)
        crop = tuple(slice(0, n) for n in shape)
        out = np.ascontiguousarray(recon[crop])
        if n_bad:
            if bad_vals.size != n_bad or int(bad_idx.min()) < 0 or int(
                bad_idx.max()
            ) >= out.size:
                raise DecompressionError("corrupt outlier index stream")
            flat = out.ravel()
            flat[bad_idx] = bad_vals
        return out
