"""Error-bounded lossy compressors.

- :mod:`repro.compressors.base` — common API + registry.
- :mod:`repro.compressors.sz3` — SZ3 (dynamic spline interpolation).
- :mod:`repro.compressors.sz2` — SZ2.1 (block Lorenzo + linear regression).
- :mod:`repro.compressors.zfp` — ZFP-like transform codec.
- :mod:`repro.compressors.mgard` — MGARD+-like multilevel codec.

The QoZ compressor lives in :mod:`repro.core.qoz` (it is the paper's
contribution, not a baseline) but registers itself here as well.
"""

from repro.compressors.base import (
    Compressor,
    available_compressors,
    decompress_any,
    get_compressor,
)

__all__ = [
    "Compressor",
    "available_compressors",
    "decompress_any",
    "get_compressor",
]
