"""Wavefront-vectorized first-order Lorenzo prediction.

The Lorenzo predictor estimates each point from its already-reconstructed
lower-index neighbors (1/3/7-term stencil in 1/2/3-D).  Decompression is
inherently sequential point-to-point, but points on a constant
coordinate-sum hyperplane only depend on planes with smaller sums — so we
sweep *wavefronts*, processing each anti-diagonal hyperplane as one numpy
gather/scatter (the hpc-parallel guide's "find tricks to avoid for loops"
applied to a data-dependent recurrence).

All kernels operate on a reconstruction array padded with one layer of
zeros on the low side of every axis, so border points implicitly predict
from zero exactly like SZ.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

#: Lorenzo stencil per dimensionality: (offset, sign) pairs
_STENCILS = {
    1: [((-1,), 1.0)],
    2: [((-1, 0), 1.0), ((0, -1), 1.0), ((-1, -1), -1.0)],
    3: [
        ((-1, 0, 0), 1.0),
        ((0, -1, 0), 1.0),
        ((0, 0, -1), 1.0),
        ((-1, -1, 0), -1.0),
        ((-1, 0, -1), -1.0),
        ((0, -1, -1), -1.0),
        ((-1, -1, -1), 1.0),
    ],
}


def lorenzo_stencil(ndim: int) -> List[Tuple[Tuple[int, ...], float]]:
    """(neighbor offset, inclusion-exclusion sign) pairs for ndim."""
    if ndim not in _STENCILS:
        raise ValueError(f"Lorenzo predictor supports 1..3 dims, got {ndim}")
    return _STENCILS[ndim]


def pad_low(recon_shape: Sequence[int]) -> np.ndarray:
    """Zero array with one guard layer on the low side of each axis."""
    return np.zeros(tuple(n + 1 for n in recon_shape), dtype=np.float64)


def wavefronts(coords: np.ndarray) -> List[np.ndarray]:
    """Split point coordinates into constant coordinate-sum groups.

    ``coords``: (n, ndim) int array.  Returns a list of (k_i, ndim)
    arrays ordered by increasing sum; every point in group g depends only
    on points in groups < g under the Lorenzo stencil.
    """
    if coords.size == 0:
        return []
    sums = coords.sum(axis=1)
    order = np.argsort(sums, kind="stable")
    sorted_coords = coords[order]
    sorted_sums = sums[order]
    boundaries = np.flatnonzero(np.diff(sorted_sums)) + 1
    return np.split(sorted_coords, boundaries)


def predict_wavefront(padded: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Lorenzo predictions for one wavefront from the padded recon array.

    ``pts`` are coordinates in the *unpadded* frame; the +1 guard shift is
    applied here.
    """
    ndim = pts.shape[1]
    pred = np.zeros(pts.shape[0], dtype=np.float64)
    base = [pts[:, d] + 1 for d in range(ndim)]
    for offset, sign in lorenzo_stencil(ndim):
        idx = tuple(base[d] + offset[d] for d in range(ndim))
        pred += sign * padded[idx]
    return pred


def scatter_wavefront(
    padded: np.ndarray, pts: np.ndarray, values: np.ndarray
) -> None:
    """Write reconstructed values for one wavefront into the padded array."""
    ndim = pts.shape[1]
    idx = tuple(pts[:, d] + 1 for d in range(ndim))
    padded[idx] = values


def lorenzo_estimate_error(data: np.ndarray) -> np.ndarray:
    """Per-point |Lorenzo residual| computed from *original* neighbors.

    This is SZ2's cheap selection estimate: it ignores quantization
    feedback, which is fine for choosing between predictors.
    """
    padded = pad_low(data.shape)
    padded[tuple(slice(1, None) for _ in data.shape)] = data
    pred = np.zeros_like(data, dtype=np.float64)
    inner = tuple(slice(1, None) for _ in data.shape)
    for offset, sign in lorenzo_stencil(data.ndim):
        sel = tuple(
            slice(1 + o, padded.shape[d] + o) for d, o in enumerate(offset)
        )
        pred += sign * padded[sel]
    return np.abs(np.asarray(data, dtype=np.float64) - pred)
