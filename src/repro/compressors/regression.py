"""Block-wise linear-regression predictor (SZ2's second predictor).

Each block is fit with a first-order polynomial ``f = c0 + sum_d c_d x_d``
by closed-form least squares (the regular grid makes coordinate axes
orthogonal, so each slope is an independent projection).  Coefficients are
stored as float32 and both sides predict from the rounded values, so the
predictor is bit-identical across compression and decompression.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def blockify(data: np.ndarray, block: int) -> np.ndarray:
    """Reshape (edge-padded) data into a (n_blocks, block**ndim) matrix.

    The input extents must be multiples of ``block`` (pad first).
    """
    nd = data.ndim
    for n in data.shape:
        if n % block:
            raise ValueError("blockify requires extents divisible by block")
    counts = [n // block for n in data.shape]
    # split each axis into (count, block) then bring the block axes last
    shape = []
    for c in counts:
        shape.extend([c, block])
    view = data.reshape(shape)
    perm = list(range(0, 2 * nd, 2)) + list(range(1, 2 * nd, 2))
    return view.transpose(perm).reshape(int(np.prod(counts)), block**nd)


def unblockify(
    blocks: np.ndarray, shape: Sequence[int], block: int
) -> np.ndarray:
    """Inverse of :func:`blockify`."""
    nd = len(shape)
    counts = [n // block for n in shape]
    view = blocks.reshape(counts + [block] * nd)
    perm = []
    for d in range(nd):
        perm.extend([d, nd + d])
    return view.transpose(perm).reshape(tuple(shape))


def _coordinate_basis(block: int, ndim: int) -> np.ndarray:
    """Centered coordinates per axis, flattened block order: (ndim, b**nd)."""
    axes = [np.arange(block, dtype=np.float64) - (block - 1) / 2.0] * ndim
    grids = np.meshgrid(*axes, indexing="ij")
    return np.stack([g.ravel() for g in grids])


def fit_plane(blocks: np.ndarray, block: int, ndim: int) -> np.ndarray:
    """Least-squares first-order fit per block.

    ``blocks``: (nb, block**ndim).  Returns float32 coefficients
    (nb, ndim + 1) as ``[c0, c1, ..., c_ndim]`` about centered coordinates.
    """
    basis = _coordinate_basis(block, ndim)  # (ndim, m)
    denom = (basis * basis).sum(axis=1)  # per-axis Σ x²
    c0 = blocks.mean(axis=1)
    slopes = blocks @ basis.T / denom  # (nb, ndim)
    return np.concatenate([c0[:, None], slopes], axis=1).astype(np.float32)


def predict_plane(coeffs: np.ndarray, block: int, ndim: int) -> np.ndarray:
    """Evaluate fitted planes: (nb, block**ndim) predictions (float64)."""
    basis = _coordinate_basis(block, ndim)
    c = coeffs.astype(np.float64)
    return c[:, :1] + c[:, 1:] @ basis


def regression_estimate_error(
    blocks: np.ndarray, block: int, ndim: int
) -> np.ndarray:
    """Per-block mean |residual| of the plane fit (selection estimate)."""
    coeffs = fit_plane(blocks, block, ndim)
    pred = predict_plane(coeffs, block, ndim)
    return np.abs(blocks - pred).mean(axis=1)
