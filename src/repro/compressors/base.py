"""Common compressor API and registry.

Every codec maps ``ndarray -> bytes`` and back; streams are self-describing
(:mod:`repro.core.header`), so :func:`decompress_any` can route a blob to
the codec that produced it.  Subclasses implement ``_compress`` /
``_decompress`` on float64 views and are guaranteed by the base class that
inputs are validated and the bound is an absolute one.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Type

import numpy as np

from repro.core.header import pack_header, parse_header
from repro.errors import DecompressionError
from repro.utils import resolve_error_bound, validate_input

_REGISTRY: Dict[str, Type["Compressor"]] = {}
_BY_ID: Dict[int, Type["Compressor"]] = {}


def register(cls: Type["Compressor"]) -> Type["Compressor"]:
    """Class decorator adding a codec to the registry."""
    if cls.name in _REGISTRY or cls.codec_id in _BY_ID:
        raise ValueError(f"duplicate codec registration: {cls.name}")
    _REGISTRY[cls.name] = cls
    _BY_ID[cls.codec_id] = cls
    return cls


def available_compressors() -> List[str]:
    """Names of all registered codecs."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_compressor(name: str, **kwargs) -> "Compressor":
    """Instantiate a codec by name (constructor kwargs pass through)."""
    _ensure_loaded()
    if name not in _REGISTRY:
        raise KeyError(f"unknown compressor {name!r}; have {sorted(_REGISTRY)}")
    return _REGISTRY[name](**kwargs)


def decompress_any(blob: bytes) -> np.ndarray:
    """Decompress a stream produced by any registered codec.

    Routes both plain streams and chunked containers
    (:mod:`repro.chunked`) — the header's ``FLAG_CHUNKED`` decides.
    """
    _ensure_loaded()
    header, _ = parse_header(blob)
    if header.is_chunked:
        from repro.chunked import decompress_chunked

        return decompress_chunked(blob)
    if header.codec_id not in _BY_ID:
        raise DecompressionError(f"unknown codec id {header.codec_id}")
    return _BY_ID[header.codec_id]().decompress(blob)


def codec_name_for_id(codec_id: int) -> str:
    """Registry name of a stream codec id (e.g. ``2 -> 'qoz'``)."""
    _ensure_loaded()
    if codec_id not in _BY_ID:
        raise KeyError(f"unknown codec id {codec_id}")
    return _BY_ID[codec_id].name


def _ensure_loaded() -> None:
    """Import every codec module so registration side effects run."""
    import repro.compressors.mgard  # noqa: F401
    import repro.compressors.sz2  # noqa: F401
    import repro.compressors.sz3  # noqa: F401
    import repro.compressors.zfp  # noqa: F401
    import repro.core.qoz  # noqa: F401


class Compressor(ABC):
    """Abstract error-bounded lossy compressor."""

    #: registry name, e.g. ``"sz3"``
    name: str = "abstract"
    #: stable stream codec id
    codec_id: int = -1

    def compress(
        self,
        data: np.ndarray,
        error_bound: Optional[float] = None,
        rel_error_bound: Optional[float] = None,
    ) -> bytes:
        """Compress ``data`` under an absolute or value-range-relative bound.

        The returned stream is self-describing; the point-wise bound
        ``|x - x'| <= eb`` holds unconditionally on the decompressed array.
        """
        data = validate_input(data)
        eb = resolve_error_bound(data, error_bound, rel_error_bound)
        payload = self._compress(data, eb)
        return pack_header(self.codec_id, data.dtype, data.shape, eb) + payload

    def decompress(self, blob: bytes) -> np.ndarray:
        """Decompress a plain stream produced by this codec."""
        header, offset = parse_header(blob)
        if header.is_chunked:
            raise DecompressionError(
                "stream is a chunked container; use decompress_any() or "
                "repro.chunked.decompress_chunked()"
            )
        if header.codec_id != self.codec_id:
            raise DecompressionError(
                f"stream was written by codec id {header.codec_id}, "
                f"not {self.name} ({self.codec_id}); use decompress_any()"
            )
        recon = self._decompress(blob[offset:], header)
        return recon.astype(header.dtype)

    @abstractmethod
    def _compress(self, data: np.ndarray, eb: float) -> bytes:
        """Codec payload for validated data under an absolute bound."""

    @abstractmethod
    def _decompress(self, payload: bytes, header) -> np.ndarray:
        """Reconstruct a float64 array from the codec payload.

        ``header`` is the parsed :class:`repro.core.header.StreamHeader`
        (shape, dtype, error bound).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
