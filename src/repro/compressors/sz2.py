"""SZ2.1: block-wise Lorenzo + linear-regression compression (Liang et al.,
IEEE BigData 2018) — the classic prediction-based baseline.

Per block (6^3 in 3-D, 12^2 in 2-D, 32 in 1-D) the codec picks whichever of
the two predictors has the smaller estimated L1 residual: the first-order
Lorenzo extrapolator (always predicts from immediate reconstructed
neighbors — no long-range artifacts, which is why the paper's Fig. 4 shows
SZ2 errors looking cleaner than SZ3's at the same bound) or a least-squares
plane fit.  Residuals go through the shared linear quantizer + entropy
stage.  Lorenzo blocks are compressed/decompressed with the wavefront sweep
from :mod:`repro.compressors.lorenzo`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.compressors.base import Compressor, register
from repro.compressors.lorenzo import (
    lorenzo_estimate_error,
    pad_low,
    predict_wavefront,
    scatter_wavefront,
    wavefronts,
)
from repro.compressors.regression import (
    blockify,
    fit_plane,
    predict_plane,
    unblockify,
)
from repro.core.header import pack_sections, unpack_sections
from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.codec import decode_symbol_stream, encode_symbol_stream
from repro.encoding.lossless import (
    compress_bytes,
    compress_floats_lossless,
    decompress_bytes,
    decompress_floats_lossless,
)
from repro.errors import DecompressionError
from repro.quantize.linear import DEFAULT_RADIUS, LinearQuantizer

#: SZ2 default block edge per dimensionality
BLOCK_SIZES = {1: 32, 2: 12, 3: 6}


def _pad_to_blocks(data: np.ndarray, block: int) -> np.ndarray:
    """Edge-pad so every extent is a multiple of the block edge."""
    pads = [(0, (-n) % block) for n in data.shape]
    if not any(p[1] for p in pads):
        return np.asarray(data, dtype=np.float64)
    return np.pad(np.asarray(data, dtype=np.float64), pads, mode="edge")


@register
class SZ2(Compressor):
    """SZ2.1 baseline (Lorenzo + regression + quantization + Huffman)."""

    name = "sz2"
    codec_id = 3

    def __init__(self, block: int | None = None, radius: int = DEFAULT_RADIUS):
        """``block``: override the per-dimension default block edge."""
        self.block = block
        self.radius = radius

    # ------------------------------------------------------------ helpers
    def _block_edge(self, ndim: int) -> int:
        return self.block or BLOCK_SIZES.get(ndim, 6)

    @staticmethod
    def _choose_predictors(
        padded: np.ndarray, block: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(per-block use-regression flags, per-point regression mask)."""
        nd = padded.ndim
        blocks = blockify(padded, block)
        if nd == 1:
            use_reg = np.zeros(blocks.shape[0], dtype=bool)
        else:
            lor = blockify(lorenzo_estimate_error(padded), block).mean(axis=1)
            coeffs = fit_plane(blocks, block, nd)
            reg = np.abs(blocks - predict_plane(coeffs, block, nd)).mean(axis=1)
            use_reg = reg < lor
        m = block**nd
        point_mask = unblockify(
            np.repeat(use_reg[:, None], m, axis=1), padded.shape, block
        ).astype(bool)
        return use_reg, point_mask

    # ----------------------------------------------------------- compress
    def _compress(self, data: np.ndarray, eb: float) -> bytes:
        if data.ndim > 3:
            from repro.errors import CompressionError

            raise CompressionError(
                "SZ2's Lorenzo predictor supports 1-3 dimensions "
                f"(got {data.ndim}); use SZ3/QoZ for 4-D data"
            )
        block = self._block_edge(data.ndim)
        padded = _pad_to_blocks(data, block)
        nd = padded.ndim
        use_reg, point_mask = self._choose_predictors(padded, block)
        blocks = blockify(padded, block)

        quantizer = LinearQuantizer(radius=self.radius, cast_dtype=data.dtype)
        recon_pad = pad_low(padded.shape)
        inner = tuple(slice(1, None) for _ in range(nd))

        coeffs = np.zeros((0, nd + 1), dtype=np.float32)
        if use_reg.any():
            coeffs = fit_plane(blocks[use_reg], block, nd)
            pred = predict_plane(coeffs, block, nd)
            recon_blocks = quantizer.quantize(blocks[use_reg], pred, eb)
            full = np.zeros_like(blocks)
            full[use_reg] = recon_blocks
            recon_arr = unblockify(full, padded.shape, block)
            recon_pad[inner][point_mask] = recon_arr[point_mask]

        coords = np.argwhere(~point_mask)
        for front in wavefronts(coords):
            pred = predict_wavefront(recon_pad, front)
            vals = padded[tuple(front.T)]
            recon = quantizer.quantize(vals, pred, eb)
            scatter_wavefront(recon_pad, front, recon)

        codes, outliers = quantizer.harvest()

        writer = BitWriter()
        writer.write_uint(block, 8)
        writer.write_uint(self.radius, 32)
        writer.write_uint(nd, 8)
        for n in padded.shape:
            writer.write_uint(n, 64)
        writer.write_array(use_reg.astype(np.uint64), 1)
        sections = [
            writer.getvalue(),
            compress_bytes(coeffs.astype("<f4", copy=False).tobytes()),
            encode_symbol_stream(codes),
            compress_floats_lossless(outliers.astype(data.dtype)),
        ]
        return pack_sections(sections)

    # --------------------------------------------------------- decompress
    def _decompress(self, payload: bytes, header) -> np.ndarray:
        sections = unpack_sections(payload)
        if len(sections) != 4:
            raise DecompressionError("SZ2 payload must have 4 sections")
        reader = BitReader(sections[0])
        block = reader.read_uint(8)
        radius = reader.read_uint(32)
        nd = reader.read_uint(8)
        padded_shape = tuple(reader.read_uint(64) for _ in range(nd))
        # the padded payload shape must be what padding the declared
        # header shape produces, or the final crop silently returns an
        # array that contradicts the header
        if block == 0 or nd != len(header.shape) or padded_shape != tuple(
            n + (-n) % block for n in header.shape
        ):
            raise DecompressionError("SZ2 payload shape contradicts header")
        n_blocks = int(np.prod([n // block for n in padded_shape]))
        use_reg = reader.read_array(n_blocks, 1).astype(bool)
        n_points = int(np.prod(padded_shape))
        coeff_len = int(use_reg.sum()) * 4 * (nd + 1)
        coeff_bytes = decompress_bytes(sections[1], max_size=coeff_len)
        if len(coeff_bytes) != coeff_len:
            raise DecompressionError(
                "SZ2 regression coefficients contradict the block flags"
            )
        coeffs = np.frombuffer(coeff_bytes, dtype="<f4").reshape(-1, nd + 1)
        codes = decode_symbol_stream(sections[2], max_size=n_points)
        outliers = decompress_floats_lossless(
            sections[3], max_values=n_points
        ).astype(np.float64)
        eb = header.error_bound

        quantizer = LinearQuantizer(radius=radius, codes=codes, outliers=outliers)
        m = block**nd
        point_mask = unblockify(
            np.repeat(use_reg[:, None], m, axis=1), padded_shape, block
        ).astype(bool)
        recon_pad = pad_low(padded_shape)
        inner = tuple(slice(1, None) for _ in range(nd))

        if use_reg.any():
            pred = predict_plane(coeffs, block, nd)
            recon_blocks = quantizer.dequantize(pred.size, pred, eb)
            full = np.zeros((n_blocks, m), dtype=np.float64)
            full[use_reg] = recon_blocks
            recon_arr = unblockify(full, padded_shape, block)
            recon_pad[inner][point_mask] = recon_arr[point_mask]

        coords = np.argwhere(~point_mask)
        for front in wavefronts(coords):
            pred = predict_wavefront(recon_pad, front)
            recon = quantizer.dequantize(front.shape[0], pred, eb)
            scatter_wavefront(recon_pad, front, recon)

        recon = recon_pad[inner]
        crop = tuple(slice(0, n) for n in header.shape)
        return recon[crop]
