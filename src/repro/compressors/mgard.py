"""MGARD+-like multilevel error-bounded compression (Liang et al., IEEE TC
2021; Ainsworth et al. for the original MGARD).

MGARD decomposes the field into a hierarchy of multilevel *detail
coefficients* (value minus multilinear interpolation from the next coarser
grid), quantizes every coefficient uniformly with level-scaled bins, and
entropy-codes the result.  Unlike the SZ family the decomposition is
*open-loop*: details are computed from the original data, and the L-infinity
guarantee comes from budgeting the per-level bins so the accumulated
reconstruction error stays below the bound — we assign level ``l`` (1 =
finest) the bin budget ``eb / 2**l``, whose geometric sum is below ``eb``
for interior interpolation weights.  Points where boundary extrapolation
exceeds the budget (rare) are recorded exactly, keeping the bound strict.

Deviation from real MGARD+ (DESIGN.md §3): we drop the Galerkin
L2-projection "update" step, keeping only the interpolation details.
"""

from __future__ import annotations

import math

import numpy as np

from repro.compressors.base import Compressor, register
from repro.core.engine import (
    InterpPlan,
    LevelPlan,
    execute_passes,
    interp_decompress,
    seed_known_points,
)
from repro.core.header import pack_sections, unpack_sections
from repro.core.interpolation import LINEAR
from repro.core.levels import ORDER_FORWARD, max_level_for_shape
from repro.core.stream import pack_interp_payload, unpack_interp_payload
from repro.encoding.bitstream import BitReader, BitWriter
from repro.encoding.lossless import (
    compress_floats_lossless,
    decompress_floats_lossless,
)
from repro.errors import DecompressionError
from repro.quantize.linear import DEFAULT_RADIUS, LinearQuantizer


def _level_budgets(eb: float, max_level: int) -> dict:
    """Geometric per-level bin budgets: sum_l eb/2**l < eb."""
    return {l: eb / (2.0**l) for l in range(1, max_level + 1)}


@register
class MGARDPlus(Compressor):
    """MGARD+-like multilevel codec (open-loop hierarchical details)."""

    name = "mgard"
    codec_id = 5

    def __init__(self, radius: int = DEFAULT_RADIUS):
        self.radius = radius

    def _plan(self, shape, eb: float, dtype) -> tuple:
        top = max_level_for_shape(shape)
        budgets = _level_budgets(eb, top)
        levels = {
            l: LevelPlan(eb=budgets[l], method=LINEAR, order_id=ORDER_FORWARD)
            for l in range(1, top + 1)
        }
        return (
            InterpPlan(levels=levels, anchor_stride=0, radius=self.radius,
                       cast_dtype=dtype),
            top,
        )

    def _compress(self, data: np.ndarray, eb: float) -> bytes:
        plan, top = self._plan(data.shape, eb, data.dtype)
        work = data.astype(np.float64, copy=True)
        known = seed_known_points(work, plan)
        quantizer = LinearQuantizer(radius=self.radius, cast_dtype=data.dtype)
        # open loop: predictions from original values throughout
        execute_passes(work, plan, quantizer, compress=True, closed_loop=False)
        codes, outliers = quantizer.harvest()

        # replay the decoder to find points over the accumulated budget
        recon = interp_decompress(data.shape, plan, codes, outliers, known)
        delivered = recon.astype(data.dtype).astype(np.float64)
        bad = np.abs(np.asarray(data, np.float64) - delivered) > eb
        bad_idx = np.flatnonzero(bad.ravel())
        bad_vals = np.asarray(data, np.float64).ravel()[bad_idx]

        writer = BitWriter()
        writer.write_uint(bad_idx.size, 64)
        writer.write_array(bad_idx.astype(np.uint64), 64)
        sections = [
            pack_interp_payload(plan, top, known, codes, outliers, data.dtype),
            writer.getvalue(),
            compress_floats_lossless(bad_vals.astype(data.dtype)),
        ]
        return pack_sections(sections)

    def _decompress(self, payload: bytes, header) -> np.ndarray:
        sections = unpack_sections(payload)
        if len(sections) != 3:
            raise DecompressionError("MGARD payload must have 3 sections")
        plan, _top, known, codes, outliers = unpack_interp_payload(
            sections[0], header.dtype, max_points=math.prod(header.shape)
        )
        recon = interp_decompress(header.shape, plan, codes, outliers, known)
        reader = BitReader(sections[1])
        n_bad = reader.read_uint(64)
        if n_bad:
            bad_idx = reader.read_array(n_bad, 64).astype(np.int64)
            bad_vals = decompress_floats_lossless(
                sections[2], max_values=recon.size
            ).astype(np.float64)
            if bad_vals.size != n_bad or int(bad_idx.min()) < 0 or int(
                bad_idx.max()
            ) >= recon.size:
                raise DecompressionError("corrupt outlier index stream")
            flat = recon.ravel()
            flat[bad_idx] = bad_vals
        return recon
