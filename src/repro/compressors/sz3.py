"""SZ3: dynamic spline-interpolation error-bounded compression (Zhao et al.,
ICDE 2021) — the baseline QoZ extends.

SZ3 uses the multi-level interpolation predictor with a *single*
interpolator (selected once, globally, from sampled data), a *uniform*
error bound across levels, and no anchor grid: the interpolation spans the
whole array from one root point, which is exactly the long-range-
interpolation weakness QoZ's anchors fix (paper §V-B1).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.compressors.base import Compressor, register
from repro.core.engine import interp_decompress
from repro.core.interpolation import METHOD_IDS
from repro.core.levels import ORDER_FORWARD
from repro.core.plan_cache import FrozenPlan, SharedPlanMixin, execute_frozen_plan
from repro.core.sampling import sample_blocks
from repro.core.selection import select_global_interpolator
from repro.core.stream import unpack_interp_payload
from repro.errors import ConfigurationError
from repro.quantize.linear import DEFAULT_RADIUS
from repro.utils import resolve_error_bound, validate_field_lazy

#: default fraction of points used for interpolator selection
DEFAULT_SAMPLE_RATE = 0.01
DEFAULT_SAMPLE_BLOCK = 32


@register
class SZ3(SharedPlanMixin, Compressor):
    """SZ3 baseline (interpolation + linear quantization + Huffman/RLE)."""

    name = "sz3"
    codec_id = 1

    def __init__(
        self,
        method: str = "auto",
        order_id: int = ORDER_FORWARD,
        sample_rate: float = DEFAULT_SAMPLE_RATE,
        sample_block: int = DEFAULT_SAMPLE_BLOCK,
        radius: int = DEFAULT_RADIUS,
    ) -> None:
        """``method``: 'auto' (sampled selection), 'linear' or 'cubic'."""
        if method != "auto" and method not in METHOD_IDS:
            raise ConfigurationError(
                f"method must be 'auto', 'linear' or 'cubic', got {method!r}"
            )
        self.method = method
        self.order_id = order_id
        self.sample_rate = sample_rate
        self.sample_block = sample_block
        self.radius = radius

    def _choose_interpolator(self, data: np.ndarray, eb: float):
        if self.method != "auto":
            return METHOD_IDS[self.method], self.order_id
        blocks, _ = sample_blocks(data, self.sample_block, self.sample_rate)
        return select_global_interpolator(blocks, eb, self.radius)

    def derive_plan(
        self,
        data: np.ndarray,
        error_bound: Optional[float] = None,
        rel_error_bound: Optional[float] = None,
        data_range: Optional[float] = None,
    ) -> FrozenPlan:
        """Run the sampled interpolator selection only; return a frozen plan.

        SZ3's plan has no (alpha, beta) — a uniform bound across levels is
        ``alpha = beta = 1`` in Eq. 5 terms — so freezing captures just
        the global interpolator choice and the quantizer radius.
        """
        data = validate_field_lazy(data)
        eb = resolve_error_bound(
            data, error_bound, rel_error_bound, data_range=data_range
        )
        method, order_id = self._choose_interpolator(data, eb)
        return FrozenPlan(
            codec=self.name,
            eb=eb,
            interpolators={1: (method, order_id)},
            anchor_stride=0,
            radius=self.radius,
        )

    def _compress(self, data: np.ndarray, eb: float) -> bytes:
        method, order_id = self._choose_interpolator(data, eb)
        frozen = FrozenPlan(
            codec=self.name,
            eb=eb,
            interpolators={1: (method, order_id)},
            anchor_stride=0,
            radius=self.radius,
        )
        payload, _execution = execute_frozen_plan(data, frozen, eb)
        return payload

    def _decompress(self, payload: bytes, header) -> np.ndarray:
        plan, _top, known, codes, outliers = unpack_interp_payload(
            payload, header.dtype, max_points=math.prod(header.shape)
        )
        return interp_decompress(header.shape, plan, codes, outliers, known)
