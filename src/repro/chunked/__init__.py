"""Chunked out-of-core compression: tiling, container format, random access.

The unchunked path (:mod:`repro.compressors`) compresses one whole array
per call, so memory scales with the domain and decompression is
all-or-nothing.  This package tiles an N-D field into configurable blocks
(default 256 per axis), compresses each block independently through any
registered codec under one shared absolute error bound, and packs the
results into a self-describing multi-chunk container (RPZ1 v2 with a
chunk index) — enabling out-of-core compression, process-pool fan-out
over chunks, and random access to single chunks or hyperslabs without
reading the rest of the stream.  See DESIGN.md §5.

Quickstart::

    from repro.chunked import compress_chunked, ChunkedFile

    blob = compress_chunked(data, codec="qoz", chunks=64, rel_error_bound=1e-3)
    with ChunkedFile(blob) as f:
        sub = f.read((slice(0, 16), None, slice(8, 24)))  # hyperslab
"""

from repro.chunked.api import (
    ChunkedFile,
    ChunkFault,
    VerifyReport,
    compress_chunked,
    compress_chunked_to_file,
    decompress_chunk,
    decompress_chunked,
    read_hyperslab,
    verify_container,
)
from repro.chunked.container import ChunkedWriter, ContainerInfo, read_container_info
from repro.chunked.tiling import DEFAULT_CHUNK, ChunkGrid, grid_for, normalize_chunk_shape

__all__ = [
    "ChunkedFile",
    "ChunkedWriter",
    "ChunkFault",
    "ChunkGrid",
    "ContainerInfo",
    "DEFAULT_CHUNK",
    "VerifyReport",
    "compress_chunked",
    "compress_chunked_to_file",
    "decompress_chunk",
    "decompress_chunked",
    "grid_for",
    "normalize_chunk_shape",
    "read_container_info",
    "read_hyperslab",
    "verify_container",
]
