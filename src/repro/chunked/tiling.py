"""Regular N-D tiling of an array into compression chunks.

A :class:`ChunkGrid` covers an array shape with axis-aligned tiles of a
nominal chunk shape (default 256 per dimension); tiles at the high edge of
an axis are truncated to fit.  Chunks are addressed by a flat index in
row-major order over the chunk grid, which is also the order they are laid
out in a chunked container (:mod:`repro.chunked.container`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.utils import ceil_div

#: default chunk edge per dimension (the paper's exascale dumps are tiled
#: far coarser; 256^d keeps per-chunk memory in the tens of MB for 3-D
#: float64 while leaving enough interpolation levels per tile)
DEFAULT_CHUNK = 256

Slab = Sequence[Union[slice, Tuple[int, int], None]]


def normalize_chunk_shape(
    shape: Sequence[int], chunks: Union[int, Sequence[int], None] = None
) -> Tuple[int, ...]:
    """Resolve a chunk-shape spec against an array shape.

    ``chunks`` may be ``None`` (default :data:`DEFAULT_CHUNK` per axis), a
    single int applied to every axis, or a per-axis sequence.  Chunk edges
    are clipped to the array extent so a chunk never exceeds the array.
    """
    shape = tuple(int(n) for n in shape)
    if chunks is None:
        chunks = DEFAULT_CHUNK
    if isinstance(chunks, (int, np.integer)):
        chunks = (int(chunks),) * len(shape)
    chunks = tuple(int(c) for c in chunks)
    if len(chunks) != len(shape):
        raise ConfigurationError(
            f"chunk shape {chunks} does not match array rank {len(shape)}"
        )
    if any(c < 1 for c in chunks):
        raise ConfigurationError(f"chunk edges must be >= 1, got {chunks}")
    return tuple(min(c, n) for c, n in zip(chunks, shape))


@dataclass(frozen=True)
class ChunkGrid:
    """Tiling of ``shape`` by ``chunk_shape`` tiles (row-major flat order)."""

    shape: Tuple[int, ...]
    chunk_shape: Tuple[int, ...]

    def __post_init__(self):
        object.__setattr__(self, "shape", tuple(int(n) for n in self.shape))
        object.__setattr__(
            self, "chunk_shape", normalize_chunk_shape(self.shape, self.chunk_shape)
        )

    @property
    def grid_shape(self) -> Tuple[int, ...]:
        """Number of chunks along each axis."""
        return tuple(
            ceil_div(n, c) for n, c in zip(self.shape, self.chunk_shape)
        )

    @property
    def n_chunks(self) -> int:
        return math.prod(self.grid_shape)

    def __len__(self) -> int:
        return self.n_chunks

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n_chunks))

    # ------------------------------------------------------------ per chunk
    def chunk_coords(self, index: int) -> Tuple[int, ...]:
        """Grid coordinates of a flat chunk index."""
        if not 0 <= index < self.n_chunks:
            raise IndexError(f"chunk {index} out of range [0, {self.n_chunks})")
        return tuple(
            int(c) for c in np.unravel_index(index, self.grid_shape)
        )

    def chunk_start(self, index: int) -> Tuple[int, ...]:
        """Array coordinates of a chunk's low corner."""
        return tuple(
            g * c for g, c in zip(self.chunk_coords(index), self.chunk_shape)
        )

    def chunk_shape_at(self, index: int) -> Tuple[int, ...]:
        """Actual shape of a chunk (edge chunks are truncated)."""
        start = self.chunk_start(index)
        return tuple(
            min(c, n - s)
            for c, n, s in zip(self.chunk_shape, self.shape, start)
        )

    def chunk_slices(self, index: int) -> Tuple[slice, ...]:
        """Index of a chunk's region in the full array."""
        start = self.chunk_start(index)
        extent = self.chunk_shape_at(index)
        return tuple(slice(s, s + e) for s, e in zip(start, extent))

    # ------------------------------------------------------------ hyperslabs
    def normalize_slab(self, slab: Slab) -> Tuple[slice, ...]:
        """Resolve a hyperslab spec into concrete unit-stride slices.

        Accepts per-axis ``slice`` objects, ``(start, stop)`` pairs, or
        ``None`` (whole axis).  Negative indices count from the end, as in
        numpy; steps other than 1 are rejected (chunked extraction is
        contiguous per axis).
        """
        slab = tuple(slab)
        if len(slab) != len(self.shape):
            raise ConfigurationError(
                f"slab rank {len(slab)} does not match array rank {len(self.shape)}"
            )
        out = []
        for spec, n in zip(slab, self.shape):
            if spec is None:
                spec = slice(None)
            elif not isinstance(spec, slice):
                start, stop = spec
                spec = slice(start, stop)
            if spec.step not in (None, 1):
                raise ConfigurationError(
                    f"slab steps must be 1, got step={spec.step}"
                )
            start, stop, _ = spec.indices(n)
            out.append(slice(start, max(start, stop)))
        return tuple(out)

    def chunks_for_slab(self, slab: Slab) -> List[int]:
        """Flat indices of every chunk intersecting a hyperslab."""
        slab = self.normalize_slab(slab)
        if any(s.stop <= s.start for s in slab):
            return []
        ranges = []
        for s, c in zip(slab, self.chunk_shape):
            ranges.append(range(s.start // c, (s.stop - 1) // c + 1))
        grid = self.grid_shape
        coords = np.stack(
            [g.ravel() for g in np.meshgrid(*ranges, indexing="ij")], axis=1
        )
        if coords.size == 0:
            return []
        return [
            int(i) for i in np.ravel_multi_index(tuple(coords.T), grid)
        ]


def grid_for(
    shape: Sequence[int], chunks: Union[int, Sequence[int], None] = None
) -> ChunkGrid:
    """Build the chunk grid for an array shape and a chunk-shape spec."""
    return ChunkGrid(tuple(int(n) for n in shape), normalize_chunk_shape(shape, chunks))
