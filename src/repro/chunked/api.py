"""High-level chunked compression API (out-of-core, random access).

:func:`compress_chunked` tiles a field into blocks (default 256 per axis),
compresses every block independently through any registered codec under
ONE absolute error bound (relative bounds are resolved against the *full*
field's value range, so the container honors exactly the bound the
unchunked path would), and packs them into a multi-chunk container.

:class:`ChunkedFile` is the read side: it parses only the header and the
chunk index, then decodes individual chunks or arbitrary hyperslabs on
demand — reading just the byte ranges of the chunks touched.

Memory behavior: the file-to-file paths (``compress_chunked_to_file`` with
a ``np.memmap`` input, ``ChunkedFile.to_npy``) keep peak memory bounded by
a small multiple of one chunk, which is what lets ``python -m repro``
handle fields larger than RAM.
"""

from __future__ import annotations

import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import BinaryIO, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.chunked.container import (
    ChunkedWriter,
    ContainerInfo,
    as_fileobj,
    read_container_info,
)
from repro.chunked.tiling import ChunkGrid, Slab, grid_for
from repro.compressors.base import codec_name_for_id, decompress_any, get_compressor
from repro.core.header import VERSION_CHECKSUM, chunk_digest, parse_header
from repro.errors import (
    ChunkCorruptionError,
    CompressionError,
    DecompressionError,
)
from repro.utils import (
    BoundLike,
    ErrorBound,
    normalize_bound,
    validate_field_lazy,
)

PathLike = Union[str, "os.PathLike[str]"]


def _resolve_eb_streaming(
    data: np.ndarray,
    grid: ChunkGrid,
    bound: ErrorBound,
) -> Tuple[float, Optional[float]]:
    """``(absolute bound, value range | None)`` for the whole field,
    scanning at most a chunk at a time.

    Mirrors :func:`repro.utils.resolve_error_bound` (including the
    constant-field fallback) but never materializes more than one chunk,
    so memory-mapped inputs stay out of core.  The value range is only
    known (and returned) when a relative bound forced the scan; plan
    derivation reuses it instead of re-scanning.
    """
    if not bound.is_relative:
        return bound.value, None
    rel = bound.value
    lo, hi = np.inf, -np.inf
    for i in grid:
        chunk = np.asarray(data[grid.chunk_slices(i)])
        if not np.all(np.isfinite(chunk)):
            raise CompressionError("data contains non-finite values")
        lo = min(lo, float(chunk.min()))
        hi = max(hi, float(chunk.max()))
    vrange = hi - lo
    if vrange == 0.0:
        scale = abs(lo) or 1.0
        return rel * scale, vrange
    return rel * vrange, vrange


def compress_chunked_to_file(
    data: np.ndarray,
    file: Union[PathLike, BinaryIO],
    codec: str = "qoz",
    chunks: Union[int, Sequence[int], None] = None,
    codec_kwargs: Optional[Dict] = None,
    error_bound: Optional[float] = None,
    rel_error_bound: Optional[float] = None,
    processes: Optional[int] = None,
    per_chunk_tuning: bool = False,
    plan=None,
    bound: Optional[BoundLike] = None,
) -> ContainerInfo:
    """Tile ``data``, compress every chunk, stream a container to ``file``.

    ``data`` may be any array-like with numpy indexing — in particular a
    ``np.load(..., mmap_mode='r')`` memmap, in which case only one chunk
    (per worker) is ever resident.  ``processes=None`` (the default)
    compresses in-process; with ``processes > 1``, chunk jobs fan out over
    a process pool (:func:`repro.parallel.executor.compress_chunks_parallel`)
    in bounded batches so memory stays proportional to the batch, not the
    field.

    When the codec supports plan derivation (QoZ, SZ3), its sampling /
    selection / tuning runs **once** over the full field and the frozen
    plan is broadcast to every chunk — the dominant cost of chunked QoZ
    compression, otherwise re-paid per chunk, is amortized to one payment.
    ``per_chunk_tuning=True`` opts back into independent per-chunk
    analysis: marginally better per-chunk ratios (each chunk gets its own
    (alpha, beta) and interpolators) at a many-fold compression-time cost.
    The error bound is enforced point-wise by the quantizer either way.

    ``plan`` injects a previously derived
    :class:`~repro.core.plan_cache.FrozenPlan` (e.g. from the service
    layer's LRU), skipping derivation here entirely; it must come from
    the same codec family or the executor rejects it.

    The bound may be given as the unified ``bound=``
    (:class:`~repro.utils.ErrorBound` or any spelling its parser
    accepts) or as exactly one of the legacy kwarg pair.
    """
    data = validate_field_lazy(data)
    codec_kwargs = codec_kwargs or {}
    codec_inst = get_compressor(codec, **codec_kwargs)
    grid = grid_for(data.shape, chunks)
    spec = normalize_bound(bound, error_bound, rel_error_bound)
    eb, vrange = _resolve_eb_streaming(data, grid, spec)

    if per_chunk_tuning:
        if plan is not None:
            raise CompressionError(
                "plan= and per_chunk_tuning=True are contradictory: an "
                "injected plan exists to skip per-chunk analysis"
            )
    elif plan is None and hasattr(codec_inst, "derive_plan"):
        plan = codec_inst.derive_plan(data, error_bound=eb, data_range=vrange)
    elif plan is not None and not hasattr(codec_inst, "compress_with_plan"):
        # same fail-fast the parallel path gets from _check_plan, instead
        # of an AttributeError deep in the chunk loop
        raise CompressionError(
            f"codec {codec!r} does not support plan execution; "
            "omit plan= or use a plan-capable codec (qoz, sz3)"
        )

    def compress_one(chunk: np.ndarray) -> bytes:
        if plan is not None:
            return codec_inst.compress_with_plan(chunk, plan, error_bound=eb)
        return codec_inst.compress(chunk, error_bound=eb)

    def write_to(fh: BinaryIO) -> ContainerInfo:
        with ChunkedWriter(fh, codec_inst.codec_id, data.dtype, grid, eb) as w:
            if processes in (None, 0, 1) or grid.n_chunks <= 1:
                for i in grid:
                    chunk = np.ascontiguousarray(data[grid.chunk_slices(i)])
                    w.write_chunk(i, compress_one(chunk))
            else:
                from repro.parallel.executor import compress_chunks_streaming

                # lazy views, not copies: the streaming executor packs
                # each window's chunks straight into a shared-memory
                # slab, so the slab fill is the only copy per chunk
                jobs = ((i, data[grid.chunk_slices(i)]) for i in grid)
                for i, blob in compress_chunks_streaming(
                    jobs,
                    codec,
                    codec_kwargs=codec_kwargs,
                    error_bound=eb,
                    processes=processes,
                    plan=plan,
                ):
                    w.write_chunk(i, blob)
            return w.finalize()

    own = isinstance(file, (str, bytes)) or hasattr(file, "__fspath__")
    if not own:
        return write_to(file)

    # Crash-safe path write: stream into a sibling temp file, fsync it,
    # then atomically rename over the target.  An interruption at any
    # point leaves either the old file or the complete new one — never a
    # torn container (the fault suite's rename-failure case pins this).
    target = os.fsdecode(file)  # type: ignore[arg-type]
    directory = os.path.dirname(os.path.abspath(target))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            info = write_to(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise
    # Durability of the rename itself: fsync the directory so a crash
    # right after return cannot resurrect the old name (best-effort —
    # not every filesystem lets you open a directory).
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return info
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return info


def compress_chunked(
    data: np.ndarray,
    codec: str = "qoz",
    chunks: Union[int, Sequence[int], None] = None,
    codec_kwargs: Optional[Dict] = None,
    error_bound: Optional[float] = None,
    rel_error_bound: Optional[float] = None,
    processes: Optional[int] = None,
    per_chunk_tuning: bool = False,
    plan=None,
    bound: Optional[BoundLike] = None,
) -> bytes:
    """In-memory variant of :func:`compress_chunked_to_file`."""
    import io

    buf = io.BytesIO()
    compress_chunked_to_file(
        data,
        buf,
        codec=codec,
        chunks=chunks,
        codec_kwargs=codec_kwargs,
        error_bound=error_bound,
        rel_error_bound=rel_error_bound,
        processes=processes,
        per_chunk_tuning=per_chunk_tuning,
        plan=plan,
        bound=bound,
    )
    return buf.getvalue()


class ChunkedFile:
    """Random-access reader over a chunked container (bytes, path, or file).

    Parsing touches only the header and the chunk index; chunk payloads
    are read lazily, one byte range per chunk.

    Reads are safe from multiple threads sharing one instance: payload
    reads go through positioned I/O (``os.pread``, which never moves a
    shared file offset) when the source is a real file, and through a
    seek lock otherwise.  Decoding itself is pure numpy on local buffers,
    so concurrent ``chunk`` / ``read`` calls never interleave state —
    the service layer decodes chunks of one container from many worker
    threads at once.
    """

    def __init__(
        self,
        source: Union[bytes, PathLike, BinaryIO],
        verify: bool = True,
    ) -> None:
        if isinstance(source, str) or hasattr(source, "__fspath__"):
            self._file: BinaryIO = open(source, "rb")
            self._own = True
        else:
            self._file, self._own = as_fileobj(source)
        # verify=True checks each chunk's stored digest on read (v3
        # containers only — v2 has no digests to check); verify=False
        # opts out, e.g. for a repair tool that wants the raw bytes
        self._verify = bool(verify)
        self._lock = threading.Lock()
        self._fd: Optional[int] = None
        if hasattr(os, "pread"):
            try:
                self._fd = self._file.fileno()
            except (AttributeError, OSError, ValueError):
                self._fd = None
        try:
            self.info: ContainerInfo = read_container_info(self._file)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------- metadata
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.info.header.shape

    @property
    def dtype(self) -> np.dtype:
        return self.info.header.dtype

    @property
    def error_bound(self) -> float:
        return self.info.header.error_bound

    @property
    def codec_name(self) -> str:
        return codec_name_for_id(self.info.header.codec_id)

    @property
    def grid(self) -> ChunkGrid:
        return self.info.grid

    @property
    def n_chunks(self) -> int:
        return self.info.grid.n_chunks

    def describe(self) -> Dict:
        """Summary dict (used by ``python -m repro info``)."""
        sizes = [e.nbytes for e in self.info.entries]
        raw = int(np.prod(self.shape)) * self.dtype.itemsize
        return {
            "format": "chunked container (RPZ1 v%d)" % self.info.header.version,
            "codec": self.codec_name,
            "dtype": str(self.dtype),
            "shape": self.shape,
            "error_bound": self.error_bound,
            "chunk_shape": self.grid.chunk_shape,
            "grid_shape": self.grid.grid_shape,
            "n_chunks": self.n_chunks,
            "compressed_bytes": self.info.total_bytes,
            "raw_bytes": raw,
            "compression_ratio": raw / max(1, self.info.total_bytes),
            "chunk_bytes_min": min(sizes),
            "chunk_bytes_mean": float(np.mean(sizes)),
            "chunk_bytes_max": max(sizes),
        }

    # ---------------------------------------------------------- chunk reads
    def chunk_slices(self, index: int) -> Tuple[slice, ...]:
        """Region of the full array covered by chunk ``index``."""
        return self.info.entries[index].slices

    def _read_at(self, offset: int, nbytes: int) -> bytes:
        """Positioned read that never races another thread's read.

        ``os.pread`` carries its own offset, so concurrent readers on the
        same fd cannot corrupt each other; sources without a real fd
        (``BytesIO``) fall back to seek+read under the instance lock.
        Short reads are looped (Linux caps one ``pread`` at ~2 GiB), so a
        partial return only ever means true EOF.
        """
        if self._fd is not None:
            parts = []
            remaining = nbytes
            while remaining:
                part = os.pread(self._fd, remaining, offset)
                if not part:
                    break
                parts.append(part)
                offset += len(part)
                remaining -= len(part)
            return parts[0] if len(parts) == 1 else b"".join(parts)
        with self._lock:
            self._file.seek(offset)
            return self._file.read(nbytes)

    def chunk_bytes(self, index: int) -> bytes:
        """Compressed stream of one chunk (reads only its byte range)."""
        entry = self.info.entries[index]
        blob = self._read_at(self.info.data_start + entry.offset, entry.nbytes)
        if len(blob) != entry.nbytes:
            raise DecompressionError(
                f"chunk {index} truncated: expected {entry.nbytes} bytes, "
                f"got {len(blob)}"
            )
        if (
            self._verify
            and entry.checksum is not None
            and chunk_digest(blob) != entry.checksum
        ):
            raise ChunkCorruptionError(index, entry.start, entry.shape)
        return blob

    def chunk(self, index: int) -> np.ndarray:
        """Decode one chunk."""
        return decompress_any(self.chunk_bytes(index))

    # ----------------------------------------------------------- hyperslabs
    def slab_plan(
        self, slab: Slab
    ) -> Tuple[
        Tuple[slice, ...],
        List[Tuple[int, Tuple[slice, ...], Tuple[slice, ...]]],
    ]:
        """Decode plan for a hyperslab: which chunks, and where they land.

        Returns ``(normalized_slab, parts)`` where each part is
        ``(chunk_index, src_slices, dst_slices)`` — the intersection of
        the chunk's region with the slab, in chunk-local and slab-local
        frames.  :meth:`read` executes this plan serially; the service
        layer executes the same plan with concurrent chunk decodes, so
        both paths assemble bit-identical outputs by construction.
        """
        grid = self.grid
        slab = grid.normalize_slab(slab)
        parts = []
        for i in grid.chunks_for_slab(slab):
            entry = self.info.entries[i]
            src, dst = [], []
            for cs, ce, sl in zip(entry.start, entry.shape, slab):
                lo = max(cs, sl.start)
                hi = min(cs + ce, sl.stop)
                src.append(slice(lo - cs, hi - cs))
                dst.append(slice(lo - sl.start, hi - sl.start))
            parts.append((i, tuple(src), tuple(dst)))
        return slab, parts

    def slab_descriptors(
        self, slab: Slab
    ) -> Tuple[
        Tuple[int, ...],
        List[Tuple[int, Tuple[Tuple[int, int], ...], Tuple[Tuple[int, int], ...]]],
    ]:
        """Descriptor form of :meth:`slab_plan`: pickle-ready int bounds.

        Returns ``(out_shape, parts)`` where each part is
        ``(chunk_index, src_bounds, dst_bounds)`` with per-axis
        ``(start, stop)`` pairs — exactly the layout the slab-batched
        decode job ships across the pool boundary
        (:meth:`repro.parallel.executor.ChunkWorkPool.submit_decompress_into`),
        so the service scheduler and :meth:`read` share one plan shape.
        """
        slab, parts = self.slab_plan(slab)
        shape = tuple(s.stop - s.start for s in slab)
        bounds = [
            (
                i,
                tuple((s.start, s.stop) for s in src),
                tuple((d.start, d.stop) for d in dst),
            )
            for i, src, dst in parts
        ]
        return shape, bounds

    def read(
        self, slab: Slab, processes: Optional[int] = None
    ) -> np.ndarray:
        """Extract an arbitrary hyperslab, decoding only intersecting chunks.

        ``processes > 1`` fans the chunk decodes out over a process pool
        writing into a shared-memory output slab (one worker write per
        chunk, no result pickling); the default decodes in-process.
        Both paths execute the same :meth:`slab_plan`, so outputs are
        bit-identical by construction.
        """
        if processes not in (None, 0, 1):
            shape, bounds = self.slab_descriptors(slab)
            if len(bounds) > 1:
                from repro.parallel.executor import decompress_parts_parallel

                jobs = [
                    (self.chunk_bytes(i), src, dst) for i, src, dst in bounds
                ]
                return decompress_parts_parallel(
                    jobs, shape, self.dtype, processes=processes
                )
        slab, parts = self.slab_plan(slab)
        out = np.empty(
            tuple(s.stop - s.start for s in slab), dtype=self.dtype
        )
        for i, src, dst in parts:
            out[dst] = self.chunk(i)[src]
        return out

    def to_array(self, processes: Optional[int] = None) -> np.ndarray:
        """Decode the whole field."""
        if processes not in (None, 0, 1) and self.n_chunks > 1:
            return self.read(
                tuple(slice(0, n) for n in self.shape), processes=processes
            )
        out = np.empty(self.shape, dtype=self.dtype)
        for i in self.grid:
            out[self.chunk_slices(i)] = self.chunk(i)
        return out

    def to_npy(self, path: PathLike) -> None:
        """Stream-decode into a ``.npy`` file, one chunk resident at a time."""
        out = np.lib.format.open_memmap(
            path, mode="w+", dtype=self.dtype, shape=self.shape
        )
        try:
            for i in self.grid:
                out[self.chunk_slices(i)] = self.chunk(i)
            out.flush()
        finally:
            del out

    # -------------------------------------------------------------- plumbing
    def close(self) -> None:
        if self._own:
            self._file.close()

    def __enter__(self) -> "ChunkedFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def decompress_chunked(
    source: Union[bytes, PathLike, BinaryIO],
    processes: Optional[int] = None,
) -> np.ndarray:
    """Decode a whole chunked container back into an array."""
    with ChunkedFile(source) as f:
        return f.to_array(processes=processes)


def decompress_chunk(
    source: Union[bytes, PathLike, BinaryIO], index: int
) -> Tuple[Tuple[slice, ...], np.ndarray]:
    """Decode one chunk; returns ``(slices_in_full_array, chunk_array)``."""
    with ChunkedFile(source) as f:
        return f.chunk_slices(index), f.chunk(index)


def read_hyperslab(
    source: Union[bytes, PathLike, BinaryIO], slab: Slab
) -> np.ndarray:
    """Decode an arbitrary hyperslab from a chunked container."""
    with ChunkedFile(source) as f:
        return f.read(slab)


# ------------------------------------------------------------- verification


@dataclass(frozen=True)
class ChunkFault:
    """One damaged chunk found by :func:`verify_container`."""

    index: int
    start: Tuple[int, ...]
    shape: Tuple[int, ...]
    detail: str


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of walking a container's header and every chunk.

    ``checksums`` records whether content digests were available (v3) or
    only structural checks ran (v2: byte-range sanity plus each chunk's
    own stream header must parse and agree with the index entry).
    """

    version: int
    n_chunks: int
    checksums: bool
    faults: List[ChunkFault] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.faults


def verify_container(source: Union[bytes, PathLike, BinaryIO]) -> VerifyReport:
    """Verify a container end to end without decoding any chunk payloads.

    A corrupt fixed header (bad magic, truncated dims, failed v3 header
    checksum) raises :class:`DecompressionError` outright — there is no
    per-chunk report to give when the index itself cannot be trusted.
    Per-chunk damage is *collected*, not raised, so one bad chunk does
    not hide the rest.
    """
    faults: List[ChunkFault] = []
    # verify=False: this walk does its own checking and must see the raw
    # bytes of damaged chunks instead of dying on the first bad digest
    with ChunkedFile(source, verify=False) as f:
        info = f.info
        checksums = info.header.version >= VERSION_CHECKSUM
        for i, entry in enumerate(info.entries):
            try:
                blob = f.chunk_bytes(i)
            except DecompressionError as exc:
                faults.append(ChunkFault(i, entry.start, entry.shape, str(exc)))
                continue
            if checksums:
                if chunk_digest(blob) != entry.checksum:
                    faults.append(
                        ChunkFault(
                            i, entry.start, entry.shape, "checksum mismatch"
                        )
                    )
                continue
            # v2: no digest column — validate what the format does pin
            # down: the chunk's own stream header must parse and describe
            # the shape the index claims
            try:
                head, _ = parse_header(blob)
            except DecompressionError as exc:
                faults.append(
                    ChunkFault(
                        i, entry.start, entry.shape, f"chunk header: {exc}"
                    )
                )
                continue
            if tuple(head.shape) != tuple(entry.shape):
                faults.append(
                    ChunkFault(
                        i,
                        entry.start,
                        entry.shape,
                        f"chunk header shape {tuple(head.shape)} disagrees "
                        f"with index entry",
                    )
                )
        return VerifyReport(
            version=info.header.version,
            n_chunks=len(info.entries),
            checksums=checksums,
            faults=faults,
        )
