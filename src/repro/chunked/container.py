"""Byte-level layout of the multi-chunk container (RPZ1, FLAG_CHUNKED).

A container is::

    fixed header (magic, version, inner codec id, dtype, array shape,
                  FLAG_CHUNKED, absolute error bound; v3 appends a
                  u32 header checksum)
    chunk index  (nominal chunk shape + per-chunk start/shape/offset/len;
                  v3 entries append a u64 blake2s-8 content digest)
    chunk data   (each chunk an ordinary self-describing codec stream)

New containers are written at v3 (``VERSION_CHECKSUM``); v2 containers
(no checksums) remain fully readable, pinned by golden fixtures.

The index has a fixed size for a given (ndim, n_chunks), so
:class:`ChunkedWriter` reserves it up front, streams compressed chunks to
the file as they arrive (bounding peak memory by one chunk), and patches
the index in :meth:`ChunkedWriter.finalize`.  Chunk byte offsets are
relative to the first byte after the index, so reading chunk *i* touches
exactly ``entries[i].nbytes`` payload bytes — the basis of the random
access guarantee tested in ``tests/chunked``.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from typing import BinaryIO, List, Optional, Union

import numpy as np

from repro.chunked.tiling import ChunkGrid
from repro.core.header import (
    FLAG_CHUNKED,
    VERSION_CHECKSUM,
    ChunkEntry,
    StreamHeader,
    chunk_digest,
    chunk_index_size,
    pack_chunk_index,
    pack_header,
    parse_header,
    unpack_chunk_index,
)
from repro.errors import CompressionError, DecompressionError


@dataclass(frozen=True)
class ContainerInfo:
    """Parsed metadata of a chunked container (no chunk payloads)."""

    header: StreamHeader
    grid: ChunkGrid
    entries: List[ChunkEntry]
    data_start: int  # absolute byte offset of the first chunk payload

    @property
    def total_bytes(self) -> int:
        """Container size implied by the index (header + index + data)."""
        return self.data_start + sum(e.nbytes for e in self.entries)


class ChunkedWriter:
    """Streams a chunked container to a seekable binary file object.

    Chunks may be written in any order (each exactly once); they are laid
    out in the file in write order, and the index records where each one
    landed.  Call :meth:`finalize` (or use as a context manager) to patch
    the reserved index region.
    """

    def __init__(
        self,
        fileobj: BinaryIO,
        codec_id: int,
        dtype: np.dtype,
        grid: ChunkGrid,
        error_bound: float,
        version: int = VERSION_CHECKSUM,
    ) -> None:
        self._file = fileobj
        self._grid = grid
        self._base = fileobj.tell()
        self._version = int(version)
        self._with_checksums = self._version == VERSION_CHECKSUM
        self._header = StreamHeader(
            codec_id=codec_id,
            dtype=np.dtype(dtype),
            shape=grid.shape,
            error_bound=float(error_bound),
            version=self._version,
            flags=FLAG_CHUNKED,
        )
        head = pack_header(
            codec_id,
            dtype,
            grid.shape,
            error_bound,
            flags=FLAG_CHUNKED,
            version=self._version,
        )
        fileobj.write(head)
        self._index_pos = fileobj.tell()
        self._index_size = chunk_index_size(
            len(grid.shape), grid.n_chunks, self._with_checksums
        )
        fileobj.write(b"\x00" * self._index_size)
        self._data_start = fileobj.tell()
        self._next_offset = 0
        self._entries: List[Optional[ChunkEntry]] = [None] * grid.n_chunks
        self._finalized = False

    def write_chunk(self, index: int, blob: bytes) -> None:
        """Append one compressed chunk's stream to the data area."""
        if self._finalized:
            raise CompressionError("writer already finalized")
        if self._entries[index] is not None:
            raise CompressionError(f"chunk {index} written twice")
        self._file.seek(self._data_start + self._next_offset)
        self._file.write(blob)
        self._entries[index] = ChunkEntry(
            start=self._grid.chunk_start(index),
            shape=self._grid.chunk_shape_at(index),
            offset=self._next_offset,
            nbytes=len(blob),
            checksum=chunk_digest(blob) if self._with_checksums else None,
        )
        self._next_offset += len(blob)

    def finalize(self) -> ContainerInfo:
        """Patch the chunk index and return the container metadata."""
        missing = [i for i, e in enumerate(self._entries) if e is None]
        if missing:
            raise CompressionError(
                f"cannot finalize: {len(missing)} chunk(s) never written "
                f"(first missing: {missing[0]})"
            )
        self._file.seek(self._index_pos)
        index = pack_chunk_index(
            self._grid.chunk_shape, self._entries, self._with_checksums
        )
        assert len(index) == self._index_size
        self._file.write(index)
        self._file.seek(self._data_start + self._next_offset)
        self._finalized = True
        return ContainerInfo(
            header=self._header,
            grid=self._grid,
            entries=list(self._entries),
            data_start=self._data_start,
        )

    def __enter__(self) -> "ChunkedWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self._finalized:
            self.finalize()


def parse_header_from(fileobj: BinaryIO, base: int = 0):
    """Parse the fixed header of a stream stored in a seekable file."""
    fileobj.seek(base)
    # fixed header + up to 4 dims is < 64 bytes in every version
    blob = fileobj.read(64)
    return parse_header(blob)


def read_container_info(fileobj: BinaryIO, base: int = 0) -> ContainerInfo:
    """Parse header + chunk index of a container without touching chunk data."""
    header, off = parse_header_from(fileobj, base)
    if not header.is_chunked:
        raise DecompressionError(
            "stream is not a chunked container (FLAG_CHUNKED clear); "
            "use repro.compressors.base.decompress_any"
        )
    ndim = len(header.shape)
    with_checksums = header.version == VERSION_CHECKSUM
    fileobj.seek(base + off)
    # the index size is known once n_chunks is — read its fixed prelude,
    # then the entries (v3 entries carry a trailing u64 digest)
    prelude = fileobj.read(4 * ndim + 8)
    if len(prelude) < 4 * ndim + 8:
        raise DecompressionError("stream truncated in chunk index header")
    (count,) = struct.unpack_from("<Q", prelude, 4 * ndim)
    entry_bytes = count * ((12 * ndim + 24) if with_checksums else (12 * ndim + 16))
    body = fileobj.read(entry_bytes)
    chunk_shape, entries, _ = unpack_chunk_index(
        prelude + body, 0, ndim, with_checksums
    )
    grid = ChunkGrid(header.shape, chunk_shape)
    if grid.n_chunks != len(entries):
        raise DecompressionError(
            f"chunk index has {len(entries)} entries but the grid implies "
            f"{grid.n_chunks}"
        )
    data_start = base + off + chunk_index_size(ndim, len(entries), with_checksums)
    return ContainerInfo(
        header=header, grid=grid, entries=entries, data_start=data_start
    )


def as_fileobj(source: Union[bytes, bytearray, memoryview, BinaryIO]):
    """Wrap bytes in a BytesIO; pass file objects through.

    Returns ``(fileobj, should_close)``.
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        return io.BytesIO(bytes(source)), True
    return source, False
