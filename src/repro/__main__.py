"""CLI: ``python -m repro {compress,decompress,info,verify,serve,serve-stats}``.

The CLI is the out-of-core entry point to the chunked subsystem
(:mod:`repro.chunked`): ``compress`` memory-maps ``.npy`` inputs and
streams one compressed chunk at a time to disk, ``decompress`` streams
chunks into a ``.npy`` memmap (or extracts just a hyperslab), and ``info``
reports header/chunk-index metadata without decoding any payload.  Peak
memory is therefore bounded by the chunk size (times the process-pool
batch when ``--processes`` > 1), not the field size.

Examples::

    python -m repro compress field.npy field.rpz --codec qoz --chunks 256 --eb rel:1e-3
    python -m repro compress dataset:miranda:48x64x64 field.rpz --codec sz3 --rel-eb 1e-3
    python -m repro info field.rpz --list-chunks
    python -m repro verify field.rpz
    python -m repro decompress field.rpz recon.npy
    python -m repro decompress field.rpz slab.npy --slab 0:16,:,8:24
    python -m repro serve --port 9753 --processes 4

``serve`` runs the long-lived async compression service
(:mod:`repro.service`): compress / decompress / hyperslab-read over a
binary socket protocol, with cost-aware admission control and
cross-request plan caching.  ``serve --shards N`` runs N shard
processes behind one address — SO_REUSEPORT kernel accept sharding
where available, a consistent-hash front router otherwise — with
derived plans replicated between shards over an inter-process bus
(DESIGN.md §14).  ``serve-stats`` connects to a running service and
renders its observability snapshot as a table (or ``--json`` /
``--line``, optionally ``--watch N``); ``serve-stats --all-shards``
queries a sharded deployment's admin endpoint for the fleet-wide
aggregate.  The package also installs a ``repro`` console script
pointing at this module.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError


def _parse_chunks(text: str):
    try:
        parts = tuple(int(p) for p in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad chunk spec {text!r}; expected e.g. '256' or '64,64,32'"
        )
    # a single value broadcasts to every axis (rank unknown until load)
    return parts[0] if len(parts) == 1 else parts


def _parse_slab(text: str) -> Tuple[slice, ...]:
    """'0:16,:,8:24' -> (slice(0,16), slice(None), slice(8,24))."""
    out = []
    for part in text.split(","):
        bits = part.split(":")
        if len(bits) == 1 and bits[0]:
            start = int(bits[0])
            # -1 must mean "the last element", not the empty slice(-1, 0)
            stop = start + 1 if start != -1 else None
            out.append(slice(start, stop))
        elif len(bits) == 2:
            out.append(
                slice(
                    int(bits[0]) if bits[0] else None,
                    int(bits[1]) if bits[1] else None,
                )
            )
        else:
            raise argparse.ArgumentTypeError(
                f"bad slab spec {text!r}; expected e.g. '0:16,:,8:24'"
            )
    return tuple(out)


def _load_input(spec: str) -> np.ndarray:
    """A ``.npy`` path (memory-mapped) or ``dataset:NAME[:DxHxW[:SEED]]``."""
    if spec.startswith("dataset:"):
        from repro.datasets import get_dataset

        parts = spec.split(":")
        name = parts[1]
        shape = None
        seed = 0
        if len(parts) > 2 and parts[2]:
            shape = tuple(int(n) for n in parts[2].split("x"))
        if len(parts) > 3:
            seed = int(parts[3])
        return get_dataset(name, shape=shape, seed=seed)
    return np.load(spec, mmap_mode="r")


def _parse_eb(text: str):
    from repro.errors import CompressionError
    from repro.utils import ErrorBound

    try:
        return ErrorBound.parse(text)
    except CompressionError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _eb_kwargs(args) -> dict:
    from repro.errors import CompressionError
    from repro.utils import normalize_bound

    given = sum(x is not None for x in (args.eb, args.abs_eb, args.rel_eb))
    if given != 1:
        raise SystemExit(
            "error: give exactly one of --eb / --abs-eb / --rel-eb"
        )
    try:
        spec = normalize_bound(args.eb, args.abs_eb, args.rel_eb)
    except CompressionError as exc:
        raise SystemExit(f"error: {exc}")
    return spec.kwargs()


def _cmd_compress(args) -> int:
    from repro.chunked import compress_chunked_to_file

    data = _load_input(args.input)
    t0 = time.perf_counter()
    info = compress_chunked_to_file(
        data,
        args.output,
        codec=args.codec,
        chunks=args.chunks,
        processes=args.processes,
        per_chunk_tuning=args.per_chunk_tuning,
        **_eb_kwargs(args),
    )
    dt = time.perf_counter() - t0
    raw = int(np.prod(info.grid.shape)) * info.header.dtype.itemsize
    total = info.total_bytes
    print(f"wrote {args.output}: {total} bytes from {raw} "
          f"({raw / max(1, total):.2f}x) in {dt:.2f}s")
    print(f"codec={args.codec} shape={info.grid.shape} "
          f"chunks={info.grid.chunk_shape} grid={info.grid.grid_shape} "
          f"({info.grid.n_chunks} chunk(s)) abs_eb={info.header.error_bound:.3g}")
    return 0


def _cmd_decompress(args) -> int:
    from repro.chunked import ChunkedFile
    from repro.compressors.base import decompress_any
    from repro.core.header import parse_header

    with open(args.input, "rb") as fh:
        head = fh.read(64)
    header, _ = parse_header(head)
    t0 = time.perf_counter()
    if not header.is_chunked:
        with open(args.input, "rb") as fh:
            recon = decompress_any(fh.read())
        if args.slab is not None:
            from repro.chunked import grid_for

            # same slab validation/semantics as the chunked path (clean
            # rank-mismatch errors instead of raw IndexErrors)
            recon = recon[grid_for(recon.shape, recon.shape).normalize_slab(args.slab)]
        np.save(args.output, recon)
        shape = recon.shape
    else:
        with ChunkedFile(args.input) as f:
            if args.slab is not None:
                slab = f.grid.normalize_slab(args.slab)
                out = f.read(slab)
                np.save(args.output, out)
                shape = out.shape
            else:
                f.to_npy(args.output)
                shape = f.shape
    dt = time.perf_counter() - t0
    print(f"wrote {args.output}: shape={tuple(shape)} "
          f"dtype={header.dtype} in {dt:.2f}s")
    return 0


def _cmd_info(args) -> int:
    import os

    from repro.core.header import parse_header
    from repro.core.stream import summarize_header

    with open(args.input, "rb") as fh:
        head = fh.read(64)
    header, _ = parse_header(head)
    if header.is_chunked:
        from repro.chunked import ChunkedFile

        with ChunkedFile(args.input) as f:
            info = f.describe()
            entries = f.info.entries if args.list_chunks else None
    else:
        # header + on-disk size only; the payload is never read
        info = summarize_header(header, os.path.getsize(args.input))
        entries = None
    width = max(len(k) for k in info)
    for key, value in info.items():
        if isinstance(value, float):
            value = f"{value:.4g}"
        print(f"{key.ljust(width)}  {value}")
    if entries is not None:
        from repro.analysis import format_table

        rows = [
            [i, str(e.start), str(e.shape), e.offset, e.nbytes]
            for i, e in enumerate(entries)
        ]
        print()
        print(format_table(["chunk", "start", "shape", "offset", "bytes"], rows))
    return 0


def _cmd_verify(args) -> int:
    from repro.chunked import verify_container
    from repro.core.header import parse_header

    with open(args.input, "rb") as fh:
        head = fh.read(64)
    header, _ = parse_header(head)
    if not header.is_chunked:
        # plain stream: the fixed header parsed (v3 would have checked
        # its checksum here); payload integrity rests on decode guards
        print(f"{args.input}: plain stream v{header.version}, "
              f"header ok (no chunk index to verify)")
        return 0
    report = verify_container(args.input)
    mode = "chunk checksums" if report.checksums else "structural bounds"
    if report.ok:
        print(f"{args.input}: ok — v{report.version} container, "
              f"{report.n_chunks} chunk(s) verified ({mode})")
        return 0
    print(f"{args.input}: CORRUPT — {len(report.faults)} of "
          f"{report.n_chunks} chunk(s) failed ({mode})", file=sys.stderr)
    for fault in report.faults:
        print(f"  chunk {fault.index} start={fault.start} "
              f"shape={fault.shape}: {fault.detail}", file=sys.stderr)
    return 1


def _cmd_serve(args) -> int:
    from repro.service import ServiceConfig, run_server

    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    config = ServiceConfig(
        processes=args.processes,
        max_queue=args.max_queue,
        batch_max=args.batch_max,
        plan_cache_size=args.plan_cache,
        serve_root=args.serve_root,
        max_work_units=args.max_work_units,
        batch_share=args.batch_share,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
        cost_aware=not args.depth_only,
        stats_interval=args.stats_interval,
    )
    if args.shards == 1:
        # single-shard path: exactly yesterday's in-process server, no
        # supervisor, no bus, no admin endpoint
        return run_server(host=args.host, port=args.port, config=config)
    from repro.service import run_sharded

    return run_sharded(
        host=args.host,
        port=args.port,
        config=config,
        shards=args.shards,
        router=args.router,
        admin_port=args.admin_port,
    )


def _stats_rows(stats: dict) -> list:
    rows = []
    for key in sorted(stats):
        value = stats[key]
        if isinstance(value, float):
            value = f"{value:.4g}"
        rows.append([key, value])
    return rows


def _cmd_serve_stats(args) -> int:
    import json
    import re

    from repro.analysis import format_table
    from repro.service import RemoteClient, format_stats_line

    port = args.port
    if args.all_shards:
        port = args.admin_port if args.admin_port is not None else args.port + 1
    try:
        while True:
            with RemoteClient(host=args.host, port=port) as client:
                stats = client.stats()
            if args.all_shards and not args.per_shard:
                stats = {
                    k: v
                    for k, v in stats.items()
                    if not re.match(r"shard\d+_", k)
                }
            if args.json:
                print(json.dumps(stats, sort_keys=True))
            elif args.line:
                print(format_stats_line(stats))
            else:
                print(format_table(["stat", "value"], _stats_rows(stats)))
            if not args.watch:
                return 0
            time.sleep(args.watch)
            if not args.json and not args.line:
                print()
    except KeyboardInterrupt:
        return 0


def _cmd_lint(args) -> int:
    from repro.lint.cli import main as lint_main

    return lint_main(args.rest)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chunked error-bounded compression of scientific arrays.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    c = sub.add_parser(
        "compress",
        help="tile + compress a field into a chunked container",
    )
    c.add_argument("input", help=".npy file (memory-mapped) or dataset:NAME[:DxHxW[:SEED]]")
    c.add_argument("output", help="output container path")
    c.add_argument("--codec", default="qoz", help="registered codec name (default: qoz)")
    c.add_argument("--chunks", type=_parse_chunks, default=None,
                   help="chunk shape, e.g. '256' or '64,64,32' (default 256/axis)")
    c.add_argument("--eb", type=_parse_eb, default=None, metavar="SPEC",
                   help="unified error-bound spec: 'abs:1e-3', 'rel:1e-4', "
                        "or a bare number (absolute)")
    c.add_argument("--abs-eb", type=float, default=None, help="absolute error bound")
    c.add_argument("--rel-eb", type=float, default=None,
                   help="value-range-relative error bound")
    c.add_argument("--processes", type=int, default=1,
                   help="process-pool width for chunk fan-out (default 1)")
    c.add_argument("--per-chunk-tuning", action="store_true",
                   help="re-run sampling/selection/tuning on every chunk "
                        "instead of deriving one shared plan from the full "
                        "field (slower; marginally better per-chunk ratios)")
    c.set_defaults(func=_cmd_compress)

    d = sub.add_parser(
        "decompress",
        help="stream-decode a container to .npy (optionally just a hyperslab)",
    )
    d.add_argument("input", help="compressed container (or plain stream) path")
    d.add_argument("output", help="output .npy path")
    d.add_argument("--slab", type=_parse_slab, default=None,
                   help="hyperslab to extract, e.g. '0:16,:,8:24' "
                        "(use --slab=-1,... for leading negative indices)")
    d.set_defaults(func=_cmd_decompress)

    i = sub.add_parser("info", help="print stream metadata (no payload decode)")
    i.add_argument("input", help="compressed stream path")
    i.add_argument("--list-chunks", action="store_true",
                   help="also print the per-chunk index table")
    i.set_defaults(func=_cmd_info)

    v = sub.add_parser(
        "verify",
        help="verify a container's header and every chunk (checksums on "
             "v3, structural bounds on v2); exit 1 listing corrupt chunks",
    )
    v.add_argument("input", help="compressed container (or plain stream) path")
    v.set_defaults(func=_cmd_verify)

    s = sub.add_parser(
        "serve",
        help="run the long-lived async compression service",
    )
    s.add_argument("--host", default="127.0.0.1", help="bind address")
    s.add_argument("--port", type=int, default=9753,
                   help="TCP port (0 picks a free port; the actual port is "
                        "printed once listening)")
    s.add_argument("--processes", type=int, default=1,
                   help="process-pool width for chunk jobs (1 = in-process)")
    s.add_argument("--max-queue", type=int, default=64,
                   help="admission bound; beyond it requests get "
                        "retry-after backpressure (default 64)")
    s.add_argument("--batch-max", type=int, default=8,
                   help="max queued jobs drained per scheduling cycle "
                        "(per-codec batching window, default 8)")
    s.add_argument("--plan-cache", type=int, default=128,
                   help="LRU capacity of the cross-request FrozenPlan "
                        "cache (default 128)")
    s.add_argument("--serve-root", default=None, metavar="DIR",
                   help="allow path-based hyperslab reads for containers "
                        "under DIR (default: path reads disabled; "
                        "clients must send container bytes inline)")
    s.add_argument("--max-work-units", type=float, default=64.0,
                   help="admission budget in predicted work units (one "
                        "unit ~ one megaelement of warm interpolation "
                        "compression; default 64)")
    s.add_argument("--batch-share", type=float, default=0.5,
                   help="fraction of the work-unit budget batch-priority "
                        "requests may occupy (default 0.5)")
    s.add_argument("--client-rate", type=float, default=16.0,
                   help="per-client quota refill rate in work units/s "
                        "(default 16)")
    s.add_argument("--client-burst", type=float, default=48.0,
                   help="per-client quota burst in work units (default 48)")
    s.add_argument("--depth-only", action="store_true",
                   help="disable cost-aware admission and priority lanes; "
                        "admit by queued-job count alone (the pre-admission "
                        "baseline, for load-test comparison)")
    s.add_argument("--stats-interval", type=float, default=0.0,
                   help="log one service-stats line every N seconds "
                        "(0 = disabled)")
    s.add_argument("--shards", type=int, default=1,
                   help="number of shard processes (default 1 = classic "
                        "single-process server; N>1 runs the sharded "
                        "runtime with a replicated plan cache)")
    s.add_argument("--router", choices=("auto", "reuseport", "hash"),
                   default="auto",
                   help="connection-distribution strategy for --shards>1: "
                        "'reuseport' = kernel SO_REUSEPORT accept "
                        "sharding, 'hash' = front router consistent-"
                        "hashing on plan key / family tag, 'auto' = "
                        "reuseport when the platform supports it "
                        "(default)")
    s.add_argument("--admin-port", type=int, default=None,
                   help="supervisor admin endpoint for aggregated stats "
                        "(--shards>1 only; default: public port + 1)")
    s.set_defaults(func=_cmd_serve)

    ss = sub.add_parser(
        "serve-stats",
        help="fetch and render a running service's stats snapshot",
    )
    ss.add_argument("--host", default="127.0.0.1", help="service address")
    ss.add_argument("--port", type=int, default=9753, help="service port")
    ss.add_argument("--json", action="store_true",
                    help="emit the raw snapshot as one JSON object")
    ss.add_argument("--line", action="store_true",
                    help="emit the compact one-line form the server logs")
    ss.add_argument("--watch", type=float, default=0.0, metavar="SECONDS",
                    help="re-fetch and re-render every N seconds")
    ss.add_argument("--all-shards", action="store_true",
                    help="query a sharded deployment's admin endpoint "
                         "(--port + 1 unless --admin-port) for the "
                         "fleet-wide aggregated snapshot")
    ss.add_argument("--admin-port", type=int, default=None,
                    help="admin endpoint port for --all-shards (default: "
                         "--port + 1)")
    ss.add_argument("--per-shard", action="store_true",
                    help="with --all-shards: keep the shardN_-prefixed "
                         "per-shard rows in the output (default: "
                         "aggregate only)")
    ss.set_defaults(func=_cmd_serve_stats)

    # `repro lint` owns its full option surface in repro.lint.cli (so the
    # linter is usable standalone); this stub just forwards everything
    lnt = sub.add_parser(
        "lint",
        add_help=False,
        help="run reprolint, the AST-based invariant checker (see "
             "'repro lint --help')",
    )
    lnt.add_argument("rest", nargs=argparse.REMAINDER)
    lnt.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "lint":
        # dispatch before argparse: nargs=REMAINDER cannot forward a
        # leading option like `repro lint --no-baseline src` (bpo-17050)
        from repro.lint.cli import main as lint_main

        return lint_main(raw[1:])
    args = build_parser().parse_args(raw)
    try:
        return args.func(args)
    except (ReproError, KeyError, OSError, ValueError) as exc:
        # user-input problems (bad codec name, unreadable file, malformed
        # stream, chunk/rank mismatch) get one clean line, not a traceback
        msg = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {msg}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
