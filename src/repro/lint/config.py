"""Per-rule configuration and the default rule set.

Each rule takes an options dict; the entries here are the repo's
calibrated defaults (which modules a rule guards, which names count as
bounded, which calls count as error-frame conversion, ...).  Tests
override them through :func:`build_rules` to lint fixture snippets
under controlled scoping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .engine import Rule
from .rules import ALL_RULES

__all__ = ["DEFAULT_OPTIONS", "build_rules", "rule_classes"]


#: repo-relative fnmatch globs per rule; merged over each rule's own
#: defaults, so this is the single place scoping decisions live.
DEFAULT_OPTIONS: Dict[str, Dict[str, object]] = {
    # Decode paths that parse attacker-controllable bytes: everything
    # that turns a blob back into arrays.  (PR 2 forged-stream contract.)
    "RL001": {
        "modules": [
            "repro/encoding/*",
            "repro/compressors/*",
            "repro/core/stream.py",
            "repro/core/header.py",
            "repro/chunked/*",
            "repro/service/*",
        ],
    },
    # The asyncio event loop lives in service/; nothing may block it.
    "RL002": {"modules": ["repro/service/*"]},
    # Wire modules are scoped by the registry itself (wire_registry.py);
    # the modules option only gates which files the rule bothers walking.
    "RL003": {
        "modules": [
            "repro/core/header.py",
            "repro/chunked/container.py",
            "repro/parallel/slab.py",
            "repro/service/protocol.py",
            "repro/service/planbus.py",
        ],
    },
    # FrozenPlan instances flow everywhere; check the whole tree.
    "RL004": {"modules": ["repro/*"]},
    "RL005": {"modules": ["repro/service/*"]},
    # Broad-except discipline: whole tree (worker + _respond paths are
    # where it bites hardest, but silent swallowing is wrong anywhere).
    "RL006": {"modules": ["repro/*"]},
    # Serialization code: anywhere bytes are produced/consumed for disk
    # or the wire.
    "RL007": {
        "modules": [
            "repro/encoding/*",
            "repro/compressors/*",
            "repro/core/stream.py",
            "repro/core/header.py",
            "repro/chunked/*",
            "repro/service/protocol.py",
        ],
    },
    # pickle is allowed only on the in-process plan-broadcast paths:
    # the pool executor (parent->worker) and the inter-shard plan bus
    # (shard->shard over a trusted private pipe).
    "RL008": {
        "modules": ["repro/*"],
        "allow_modules": [
            "repro/parallel/executor.py",
            "repro/service/planbus.py",
        ],
    },
    # Fault-recovery paths: pool breaks and deadline expiries must stay
    # typed — only where the self-healing supervisor lives.
    "RL009": {"modules": ["repro/service/*", "repro/parallel/*"]},
    # Deprecated top-level entry points: first-party code goes through
    # the facade or the canonical repro.chunked spellings; only the
    # facade and the shim module may touch the old names.
    "RL010": {
        "modules": ["repro/*"],
        "allow_modules": ["repro/api.py", "repro/_shims.py"],
        "deprecated": [
            "repro:compress_chunked",
            "repro:compress_chunked_to_file",
            "repro:decompress_chunked",
            "repro:read_hyperslab",
        ],
    },
    # Shard-local state (admission, metrics, plan LRU) stays inside its
    # ShardRuntime; the plan bus is the only sanctioned crossing.
    "RL011": {
        "modules": ["repro/service/*", "repro/core/plan_cache.py"],
        "allow_modules": ["repro/service/planbus.py"],
    },
}


def rule_classes() -> Dict[str, type]:
    return {cls.rule_id: cls for cls in ALL_RULES}


def build_rules(
    select: Optional[Sequence[str]] = None,
    overrides: Optional[Dict[str, Dict[str, object]]] = None,
) -> List[Rule]:
    """Instantiate the rule set.

    ``select`` limits to specific rule IDs; ``overrides`` merges per-rule
    option dicts over :data:`DEFAULT_OPTIONS` (tests use this to widen
    scoping onto fixture paths).
    """
    classes = rule_classes()
    chosen = list(select) if select else sorted(classes)
    rules: List[Rule] = []
    for rule_id in chosen:
        if rule_id not in classes:
            raise KeyError(f"unknown rule id: {rule_id}")
        options = dict(DEFAULT_OPTIONS.get(rule_id, {}))
        if overrides and rule_id in overrides:
            options.update(overrides[rule_id])
        rules.append(classes[rule_id](options))
    return rules
