"""RL008 — no pickle on bytes from outside the process.

``pickle.loads`` on attacker-reachable bytes is arbitrary code
execution.  The wire protocol is deliberately stdlib-``struct``-only
(PR 4) and the container format is pure numpy buffers; the *only*
sanctioned pickle surface is the in-process plan-broadcast path, where
``multiprocessing`` pickles a :class:`FrozenPlan` the parent itself
constructed (``repro/parallel/executor.py``).

Flags every ``pickle.loads``/``pickle.load``/``pickle.Unpickler`` call
(including names imported via ``from pickle import loads``) in modules
outside the ``allow_modules`` allowlist.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterator, Set

from ..engine import Finding, ModuleContext, Rule, dotted_name

__all__ = ["PickleGuardRule"]

_PICKLE_CALLS = {"loads", "load", "Unpickler"}
_PICKLE_MODULES = {"pickle", "cPickle", "_pickle", "dill", "cloudpickle"}


class PickleGuardRule(Rule):
    rule_id = "RL008"
    name = "pickle-guard"
    description = (
        "pickle deserialization only on the in-process plan-broadcast path"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        allow = self.options.get("allow_modules", [])
        if any(fnmatch.fnmatch(ctx.relpath, pat) for pat in allow):
            return
        imported: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module in _PICKLE_MODULES:
                for alias in node.names:
                    if alias.name in _PICKLE_CALLS:
                        imported.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func) or ""
            parts = name.split(".")
            is_pickle = (
                len(parts) == 2
                and parts[0] in _PICKLE_MODULES
                and parts[1] in _PICKLE_CALLS
            ) or (len(parts) == 1 and parts[0] in imported)
            if is_pickle:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() deserializes pickle outside the in-process "
                    f"plan-broadcast path; untrusted bytes through pickle "
                    f"are arbitrary code execution — use the struct-based "
                    f"wire codecs instead",
                )
