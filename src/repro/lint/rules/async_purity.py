"""RL002 — nothing blocks the service event loop (PR 4 contract).

The compression service is a single asyncio loop; one ``time.sleep`` or
synchronous ``Future.result()`` inside an ``async def`` stalls every
connection at once.  PR 4 moved all CPU work to executor threads and all
waiting to awaitables — this rule keeps it that way.

Flags, only inside ``async def`` bodies in the scoped modules:

* ``time.sleep(...)``
* any ``subprocess.*`` call, ``os.system``, ``os.popen``, ``os.wait*``
* the ``open(...)`` builtin (file I/O belongs in an executor)
* zero-argument ``.result()`` (a blocking ``concurrent.futures`` wait;
  await the future instead)
* blocking socket operations: ``socket.create_connection`` and method
  calls named ``recv``/``recv_into``/``recvfrom``/``sendall``/
  ``accept``/``connect``

``await``-ed expressions are exempt by construction (awaitables are the
fix, not the bug), and nested *sync* ``def`` helpers inside an async
function are not flagged — they run wherever they are called from.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..engine import Finding, ModuleContext, Rule, dotted_name

__all__ = ["AsyncPurityRule"]

_BLOCKING_DOTTED = {
    "time.sleep",
    "os.system",
    "os.popen",
    "os.wait",
    "os.waitpid",
    "socket.create_connection",
}
_BLOCKING_PREFIXES = ("subprocess.",)
_BLOCKING_METHODS = {
    "recv",
    "recv_into",
    "recvfrom",
    "sendall",
    "accept",
    "connect",
}


class AsyncPurityRule(Rule):
    rule_id = "RL002"
    name = "async-blocking"
    description = "no blocking calls inside async def in service modules"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async(ctx, node)

    def _walk_sync_body(self, func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Walk the async function without descending into nested defs
        or into Await expressions (awaited calls are non-blocking)."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Await)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_async(
        self, ctx: ModuleContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in self._walk_sync_body(func):
            if not isinstance(node, ast.Call):
                continue
            reason = self._blocking_reason(node)
            if reason:
                yield self.finding(
                    ctx,
                    node,
                    f"{reason} inside 'async def {func.name}' blocks the "
                    f"event loop; move it to an executor or await an "
                    f"async equivalent",
                )

    def _blocking_reason(self, call: ast.Call) -> str:
        name = dotted_name(call.func)
        if name:
            if name in _BLOCKING_DOTTED:
                return f"blocking call {name}()"
            if name.startswith(_BLOCKING_PREFIXES):
                return f"subprocess call {name}()"
            if name == "open":
                return "blocking file open()"
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr == "result" and not call.args and not call.keywords:
                return "synchronous Future.result()"
            if attr in _BLOCKING_METHODS:
                base = dotted_name(call.func.value) or "<expr>"
                return f"blocking socket call {base}.{attr}()"
        return ""
