"""RL004/RL005 — frozen plans stay frozen; service state has one writer.

RL004 (PR 3 contract): a :class:`FrozenPlan` is derived once and then
shared across chunks, worker threads, and the plan LRU — any attribute
assignment after derivation is a data race and breaks byte-identical
replay.  The dataclass is ``frozen=True`` at runtime, but
``object.__setattr__`` and future refactors can sidestep that; the lint
catches the *intent* statically.

RL005 (PR 6 contract): :class:`AdmissionController` and
:class:`ServiceMetrics` are mutated only through their own methods, so
every counter transition happens under the owning object's discipline
and the STATS snapshot always reconciles.  Reaching into
``service.metrics.jobs_done += 1`` from the scheduler would bypass that.

Both rules track instances the same way: names bound from a
constructor/deriver call, parameters/variables annotated with the class,
and (for RL005) well-known attribute paths like ``self.metrics``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine import Finding, ModuleContext, Rule, dotted_name, iter_functions

__all__ = ["FrozenPlanPurityRule", "ServiceStateDisciplineRule"]

_PLAN_MAKER_RE = re.compile(r"(^|\.)(FrozenPlan|derive_plan|get_or_derive)$")
_PLAN_ALLOWED_FUNCS = {"__init__", "__post_init__", "derive_plan"}


def _annotation_mentions(annotation: Optional[ast.expr], token: str) -> bool:
    if annotation is None:
        return False
    return token in ast.unparse(annotation)


def _attr_store_targets(node: ast.stmt) -> List[ast.Attribute]:
    """Attribute targets being assigned/augmented by this statement."""
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    out: List[ast.Attribute] = []
    for tgt in targets:
        for sub in ast.walk(tgt):
            if isinstance(sub, ast.Attribute) and isinstance(
                sub.ctx, ast.Store
            ):
                out.append(sub)
    return out


class FrozenPlanPurityRule(Rule):
    rule_id = "RL004"
    name = "frozen-plan-purity"
    description = (
        "no attribute assignment on FrozenPlan instances outside "
        "__init__/derive_plan"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func, classes in iter_functions(ctx.tree):
            if "FrozenPlan" in classes:
                continue
            if func.name in _PLAN_ALLOWED_FUNCS:
                continue
            tracked = self._tracked_names(func)
            if not tracked:
                continue
            for stmt in ast.walk(func):
                if not isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    continue
                for attr in _attr_store_targets(stmt):
                    base = dotted_name(attr.value)
                    if base in tracked:
                        yield self.finding(
                            ctx,
                            stmt,
                            f"attribute assignment '{base}.{attr.attr} = ...' "
                            f"mutates a FrozenPlan outside __init__/derive_plan; "
                            f"plans are immutable after derivation — build a "
                            f"new plan with derive_plan instead",
                        )

    def _tracked_names(self, func: ast.AST) -> Set[str]:
        tracked: Set[str] = set()
        args = func.args
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if _annotation_mentions(a.annotation, "FrozenPlan"):
                tracked.add(a.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _annotation_mentions(node.annotation, "FrozenPlan"):
                    tracked.add(node.target.id)
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                fname = dotted_name(node.value.func)
                if fname and _PLAN_MAKER_RE.search(fname):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            tracked.add(tgt.id)
        return tracked


class ServiceStateDisciplineRule(Rule):
    rule_id = "RL005"
    name = "service-state-discipline"
    description = (
        "AdmissionController/ServiceMetrics attributes are mutated only "
        "inside their owning class's methods"
    )

    #: attribute-path suffix → owning class (how service code names them)
    DEFAULT_ATTR_HINTS: Dict[str, str] = {
        "metrics": "ServiceMetrics",
        "_metrics": "ServiceMetrics",
        "admission": "AdmissionController",
        "_admission": "AdmissionController",
    }
    OWNED_CLASSES = ("AdmissionController", "ServiceMetrics")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        hints: Dict[str, str] = dict(
            self.options.get("attr_hints", self.DEFAULT_ATTR_HINTS)
        )
        for func, classes in iter_functions(ctx.tree):
            local_owners = self._local_bindings(func, hints)
            for stmt in ast.walk(func):
                if not isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    continue
                for attr in _attr_store_targets(stmt):
                    owner = self._owner_of(attr.value, local_owners, hints)
                    if owner is None or owner in classes:
                        continue
                    base = dotted_name(attr.value) or "<expr>"
                    yield self.finding(
                        ctx,
                        stmt,
                        f"'{base}.{attr.attr}' is {owner} state; mutate it "
                        f"through a {owner} method, not from "
                        f"{'.'.join(classes) or 'module scope'} — single-"
                        f"writer discipline keeps STATS reconciliation exact",
                    )

    def _local_bindings(
        self, func: ast.AST, hints: Dict[str, str]
    ) -> Dict[str, str]:
        owners: Dict[str, str] = {}
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            cls: Optional[str] = None
            if isinstance(value, ast.Call):
                fname = dotted_name(value.func) or ""
                last = fname.rsplit(".", 1)[-1]
                if last in self.OWNED_CLASSES:
                    cls = last
            elif isinstance(value, ast.Attribute):
                cls = hints.get(value.attr)
            if cls is None:
                continue
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    owners[tgt.id] = cls
        return owners

    def _owner_of(
        self,
        base: ast.expr,
        local_owners: Dict[str, str],
        hints: Dict[str, str],
    ) -> Optional[str]:
        if isinstance(base, ast.Name):
            return local_owners.get(base.id)
        if isinstance(base, ast.Attribute):
            return hints.get(base.attr)
        return None
