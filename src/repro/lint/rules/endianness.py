"""RL007 — serialized multi-byte dtypes carry an explicit byte order.

``np.frombuffer(raw, dtype=np.uint32)`` means *native* byte order: the
same stream decodes differently on a big-endian host, silently breaking
byte-identical replay.  Serialization code must spell the contract out —
``dtype="<u4"`` — so the bytes mean one thing everywhere.  (``"<u4"``
is byte-identical to ``np.uint32`` on the little-endian machines CI
runs on, so adopting the rule never changes existing streams.)

Flags, in serialization-scoped modules:

* ``np.frombuffer(..., dtype=D)`` where ``D`` is a multi-byte numpy
  alias (``np.uint32``, ``np.float64``, ...) or a dtype string without
  a ``<``/``>``/``=`` prefix;
* ``x.astype(D).tobytes()`` chains with the same unordered ``D`` —
  the astype feeds the wire directly, so it fixes the layout.

Single-byte dtypes (``uint8``/``int8``/``bool_``) have no byte order
and are exempt; dtype expressions that are runtime values (a variable,
a dtype parsed from the stream itself) are skipped — the checked wire
string is the contract there.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import Finding, ModuleContext, Rule, call_args_with_keyword, dotted_name

__all__ = ["ExplicitEndiannessRule"]

_MULTIBYTE_ALIASES = {
    "uint16",
    "uint32",
    "uint64",
    "int16",
    "int32",
    "int64",
    "float16",
    "float32",
    "float64",
    "complex64",
    "complex128",
    "intp",
    "uintp",
}
_SINGLEBYTE = {"uint8", "int8", "bool_", "byte", "ubyte"}
_MULTIBYTE_STRINGS = {
    "u2", "u4", "u8", "i2", "i4", "i8", "f2", "f4", "f8", "c8", "c16",
} | _MULTIBYTE_ALIASES


def _unordered_dtype(node: ast.expr) -> Optional[str]:
    """The unordered multi-byte dtype this expression names, or None."""
    name = dotted_name(node)
    if name:
        parts = name.split(".")
        if parts[0] in ("np", "numpy") and len(parts) == 2:
            if parts[1] in _MULTIBYTE_ALIASES:
                return name
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        s = node.value
        if s.startswith(("<", ">", "=", "|")):
            return None
        if s in _MULTIBYTE_STRINGS:
            return s
    return None


class ExplicitEndiannessRule(Rule):
    rule_id = "RL007"
    name = "explicit-endianness"
    description = (
        "frombuffer/astype-to-wire in serialization code must use "
        "explicit little-endian dtype strings"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_frombuffer(ctx, node)
            yield from self._check_astype_tobytes(ctx, node)

    def _check_frombuffer(
        self, ctx: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        fname = dotted_name(node.func) or ""
        parts = fname.split(".")
        if parts[-1] != "frombuffer" or parts[0] not in ("np", "numpy"):
            return
        dtype_arg = call_args_with_keyword(node, 1, "dtype")
        if dtype_arg is None:
            return
        bad = _unordered_dtype(dtype_arg)
        if bad:
            yield self.finding(
                ctx,
                node,
                f"np.frombuffer with byte-order-ambiguous dtype {bad!r}; "
                f"use an explicit little-endian string (e.g. '<u4') so the "
                f"stream decodes identically on every host",
            )

    def _check_astype_tobytes(
        self, ctx: ModuleContext, node: ast.Call
    ) -> Iterator[Finding]:
        # matches x.astype(D).tobytes()
        if not (
            isinstance(node.func, ast.Attribute) and node.func.attr == "tobytes"
        ):
            return
        inner = node.func.value
        if not (
            isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Attribute)
            and inner.func.attr == "astype"
        ):
            return
        dtype_arg = call_args_with_keyword(inner, 0, "dtype")
        if dtype_arg is None:
            return
        bad = _unordered_dtype(dtype_arg)
        if bad:
            yield self.finding(
                ctx,
                inner,
                f".astype({bad}).tobytes() serializes native byte order; "
                f"use an explicit little-endian string (e.g. '<u4') for "
                f"the wire",
            )
