"""RL001 — decode allocations must be bounded (PR 2 forged-stream contract).

A compressed stream is attacker-controllable input: a forged header can
declare a petabyte shape in eight bytes.  PR 2 established that every
allocation on a decode path is sized from a *validated* quantity — a
``max_size``/``max_values`` cap, a length derived from the actual blob,
or a value an earlier guard already range-checked and raised on — never
from a raw header field.  This rule re-checks that contract on every
commit.

Heuristics, tuned against the repo's own decode paths:

* only functions whose name looks like a decode/read entry point are
  scanned (``decode``/``decompress``/``unpack``/``parse``/``read``/...);
* an allocation size expression is *safe* when every free name in it is
  provably bounded: int literals, ALL-CAPS module constants, parameters
  matching ``max_*``, ``len(...)``/``.size``/``.shape`` of an existing
  object, ``min(...)`` with at least one safe arm, results of
  validator-shaped calls (``validate*``/``check*``/``normalize*``/
  ``slab_plan``/``grid_for``), and names an ``if ...: raise`` / assert /
  ``*check*(...)`` statement already guarded;
* safety propagates through local assignments to a fixpoint, so
  ``n = r.u64(); if n > max_size: raise; out = np.empty(n)`` passes
  while dropping the guard fails.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine import (
    Finding,
    ModuleContext,
    Rule,
    call_args_with_keyword,
    dotted_name,
    names_in,
)

__all__ = ["BoundedDecodeRule"]

DECODE_FUNC_RE = re.compile(
    r"(^|_)(decode|decompress|unpack|deserialize|detokenize|parse|read)"
)
BOUNDED_NAME_RE = re.compile(
    r"(^|_)(max_size|max_values|max_points|max_bits|max_frame|expected_size)"
    r"|^MAX_|_MAX(_|$)|_BLOCK(_|$)"
)
TRUSTED_CALL_RE = re.compile(
    r"(^|_)(validate|normalize|check|clamp|slab_plan|grid_for|bounded)"
)

#: numpy allocators and the index/keyword of their size-determining arg
_ALLOCATORS: Dict[str, Tuple[int, str]] = {
    "empty": (0, "shape"),
    "zeros": (0, "shape"),
    "ones": (0, "shape"),
    "full": (0, "shape"),
    "repeat": (1, "repeats"),
}

_SIZE_ATTRS = {"size", "shape", "nbytes", "itemsize", "ndim"}

#: calls whose result is safe when every argument is safe — casts,
#: reductions of safe containers, and numpy scalar constructors
_CAST_OR_REDUCE = {
    "max", "abs", "int", "sum", "prod", "tuple", "list", "range",
    "int8", "int16", "int32", "int64",
    "uint8", "uint16", "uint32", "uint64",
}


def _is_all_caps(name: str) -> bool:
    return name.isupper() and len(name) > 1


class _FunctionFacts:
    """Safe-name analysis for one decode function."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.safe: Set[str] = set()
        self._collect_params()
        self._collect_guards()
        self._propagate_assignments()

    def _collect_params(self) -> None:
        args = self.func.args
        for a in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            if BOUNDED_NAME_RE.search(a.arg):
                self.safe.add(a.arg)

    def _collect_guards(self) -> None:
        # A raise-guard, assert, or bare validator call anywhere in the
        # function blesses the names it inspects.  Order is deliberately
        # ignored: this is a lint, and "guard exists in this function"
        # is the contract reviewers actually enforce.
        for node in ast.walk(self.func):
            if isinstance(node, ast.If) and any(
                isinstance(s, ast.Raise) for s in ast.walk(node)
            ):
                self.safe.update(names_in(node.test))
            elif isinstance(node, ast.Assert):
                self.safe.update(names_in(node.test))
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                name = dotted_name(node.value.func)
                if name and TRUSTED_CALL_RE.search(name.rsplit(".", 1)[-1]):
                    for arg in node.value.args:
                        self.safe.update(names_in(arg))

    def _assign_targets(self, node: ast.AST) -> List[str]:
        out: List[str] = []
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for tgt in targets:
            if isinstance(tgt, ast.Name):
                out.append(tgt.id)
            elif isinstance(tgt, (ast.Tuple, ast.List)):
                for el in tgt.elts:
                    if isinstance(el, ast.Name):
                        out.append(el.id)
                    elif isinstance(el, ast.Starred) and isinstance(
                        el.value, ast.Name
                    ):
                        out.append(el.value.id)
        return out

    def _propagate_assignments(self) -> None:
        assigns: List[Tuple[List[str], ast.expr]] = []
        for node in ast.walk(self.func):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = node.value
                if value is None:
                    continue
                targets = self._assign_targets(node)
                if targets:
                    assigns.append((targets, value))
        changed = True
        while changed:
            changed = False
            for targets, value in assigns:
                if all(t in self.safe for t in targets):
                    continue
                if self.is_safe_expr(value):
                    self.safe.update(targets)
                    changed = True

    # -- safety of a size expression ------------------------------------

    def is_safe_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, (int, float)) or node.value is None
        if isinstance(node, ast.Name):
            return (
                node.id in self.safe
                or _is_all_caps(node.id)
                or BOUNDED_NAME_RE.search(node.id) is not None
            )
        if isinstance(node, ast.Attribute):
            if node.attr in _SIZE_ATTRS:
                return True
            name = dotted_name(node)
            if name:
                last = name.rsplit(".", 1)[-1]
                if _is_all_caps(last) or BOUNDED_NAME_RE.search(last):
                    return True
                if name in self.safe:
                    return True
            return False
        if isinstance(node, ast.Subscript):
            return self.is_safe_expr(node.value)
        if isinstance(node, ast.Call):
            fname = dotted_name(node.func) or ""
            last = fname.rsplit(".", 1)[-1]
            if last == "len":
                return True
            if last == "min":
                return any(self.is_safe_expr(a) for a in node.args)
            if last in _CAST_OR_REDUCE:
                return all(self.is_safe_expr(a) for a in node.args)
            if TRUSTED_CALL_RE.search(last):
                return True
            return False
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return all(self.is_safe_expr(e) for e in node.elts)
        if isinstance(node, ast.Starred):
            return self.is_safe_expr(node.value)
        if isinstance(node, ast.BinOp):
            return self.is_safe_expr(node.left) and self.is_safe_expr(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.is_safe_expr(node.operand)
        if isinstance(node, ast.IfExp):
            return self.is_safe_expr(node.body) and self.is_safe_expr(node.orelse)
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            return all(
                self.is_safe_expr(gen.iter) for gen in node.generators
            )
        return False


class BoundedDecodeRule(Rule):
    rule_id = "RL001"
    name = "bounded-decode"
    description = (
        "decode-path allocations must be sized from bounded/validated "
        "expressions, never raw header fields"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not DECODE_FUNC_RE.search(node.name):
                continue
            facts = _FunctionFacts(node)
            yield from self._check_function(ctx, node, facts)

    def _walk_own(self, func: ast.AST) -> Iterator[ast.AST]:
        """Walk a function's body without descending into nested defs
        (each nested decode function gets its own facts and pass)."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_function(
        self, ctx: ModuleContext, func: ast.AST, facts: _FunctionFacts
    ) -> Iterator[Finding]:
        for node in self._walk_own(func):
            if not isinstance(node, ast.Call):
                continue
            fname = dotted_name(node.func)
            if not fname:
                continue
            parts = fname.split(".")
            last = parts[-1]
            size_arg: Optional[ast.expr] = None
            if last in _ALLOCATORS and parts[0] in ("np", "numpy"):
                pos, kw = _ALLOCATORS[last]
                size_arg = call_args_with_keyword(node, pos, kw)
            elif last == "frombuffer" and parts[0] in ("np", "numpy"):
                # without count= the allocation is bounded by the buffer
                # itself; an explicit count is a declared header field
                size_arg = call_args_with_keyword(node, 2, "count")
            if size_arg is None:
                continue
            if facts.is_safe_expr(size_arg):
                continue
            expr_text = ast.unparse(size_arg)
            yield self.finding(
                ctx,
                node,
                f"allocation np.{last}(...) in decode path sized by "
                f"{expr_text!r}, which is not derived from a bounded or "
                f"validated expression (guard it against max_size or an "
                f"explicit range check that raises)",
            )
