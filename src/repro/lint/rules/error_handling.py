"""RL006 — no silently-swallowed broad excepts (worker/_respond contract).

The service worker and ``_respond`` paths are allowed to catch
``Exception`` — but only to *convert* it: into an error frame on the
wire (``encode_error``/``encode_retry``) or onto the job's future
(``set_exception``), or to re-raise after cleanup.  A broad except whose
handler does none of those swallows the failure, and the client hangs or
the STATS counters stop reconciling.

Flags ``except:``, ``except Exception``, and ``except BaseException``
(bare or inside a tuple) whose handler body contains neither a ``raise``
nor a conversion call.  Narrow handlers (``except ReproError``,
``except (OSError, ValueError)``) are always fine — catching what you
can actually handle is the fix this rule pushes toward.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List

from ..engine import Finding, ModuleContext, Rule, dotted_name

__all__ = ["BroadExceptRule"]

_BROAD = {"Exception", "BaseException"}
_CONVERT_RE = re.compile(r"^(encode_error|encode_retry|set_exception)$")


def _broad_name(type_node: ast.expr) -> str:
    """The broad exception name this handler catches, or ''."""
    candidates: List[ast.expr]
    if isinstance(type_node, ast.Tuple):
        candidates = list(type_node.elts)
    else:
        candidates = [type_node]
    for cand in candidates:
        name = dotted_name(cand) or ""
        last = name.rsplit(".", 1)[-1]
        if last in _BROAD:
            return last
    return ""


class BroadExceptRule(Rule):
    rule_id = "RL006"
    name = "broad-except-conversion"
    description = (
        "broad except clauses must re-raise or convert to an error "
        "frame/future exception"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                caught = "bare except"
            else:
                broad = _broad_name(node.type)
                if not broad:
                    continue
                caught = f"except {broad}"
            if self._handler_converts(node):
                continue
            yield self.finding(
                ctx,
                node,
                f"{caught} neither re-raises nor converts the error "
                f"(encode_error/encode_retry/set_exception); narrow the "
                f"exception type or propagate the failure",
            )

    def _handler_converts(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                name = dotted_name(node.func) or ""
                last = name.rsplit(".", 1)[-1]
                if _CONVERT_RE.match(last):
                    return True
        return False
