"""RL011 — shard-local service state never crosses a process boundary.

The sharded serve runtime (DESIGN.md §14) gives every shard its own
:class:`AdmissionController`, :class:`ServiceMetrics`, and
:class:`PlanLRU`; shards coordinate *only* through the plan-replication
bus (:mod:`repro.service.planbus`), which ships self-contained encoded
messages.  Handing one of those live objects to another process — as a
``Process(...)`` argument, pickled with ``pickle.dumps``, or pushed down
a pipe/queue with ``.send`` / ``.send_bytes`` / ``.put`` — forks its
lock and counters into a divergent copy: admission decisions stop
reconciling, STATS double-counts, and the plan cache silently splits.
The bus module itself is allowlisted (it *is* the sanctioned boundary);
everywhere else the rule flags the attempt.

Instances are tracked the same way RL005 tracks them: names bound from
a constructor call, plus well-known attribute spellings
(``self.plans``, ``self.metrics``, ``self.admission``, and their
underscore-private forms).
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Dict, Iterator, List, Optional

from ..engine import Finding, ModuleContext, Rule, dotted_name, iter_functions

__all__ = ["ShardIsolationRule"]

#: call spellings that move an argument into another process
_BOUNDARY_METHODS = {"send", "send_bytes", "put", "put_nowait"}
_PICKLE_DUMPERS = {"pickle.dumps", "pickle.dump"}


class ShardIsolationRule(Rule):
    rule_id = "RL011"
    name = "shard-isolation"
    description = (
        "AdmissionController/ServiceMetrics/PlanLRU instances stay inside "
        "their ShardRuntime; cross-shard traffic goes through the bus API"
    )

    OWNED_CLASSES = ("AdmissionController", "ServiceMetrics", "PlanLRU")

    #: attribute-path suffix → owning class (how service code names them)
    DEFAULT_ATTR_HINTS: Dict[str, str] = {
        "plans": "PlanLRU",
        "_plans": "PlanLRU",
        "metrics": "ServiceMetrics",
        "_metrics": "ServiceMetrics",
        "admission": "AdmissionController",
        "_admission": "AdmissionController",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        allow = self.options.get("allow_modules", [])
        if any(fnmatch.fnmatch(ctx.relpath, pat) for pat in allow):
            return
        hints: Dict[str, str] = dict(
            self.options.get("attr_hints", self.DEFAULT_ATTR_HINTS)
        )
        for func, _classes in iter_functions(ctx.tree):
            local_owners = self._local_bindings(func, hints)
            for call in ast.walk(func):
                if not isinstance(call, ast.Call):
                    continue
                boundary = self._boundary_kind(call)
                if boundary is None:
                    continue
                for arg, owner in self._tracked_args(
                    call, local_owners, hints
                ):
                    yield self.finding(
                        ctx,
                        call,
                        f"'{arg}' is a shard-local {owner} crossing a "
                        f"process boundary via {boundary}; shards share "
                        f"state only through the plan bus "
                        f"(repro.service.planbus) — encode a message, "
                        f"never ship the live object",
                    )

    # ------------------------------------------------------------- helpers
    def _boundary_kind(self, call: ast.Call) -> Optional[str]:
        name = dotted_name(call.func) or ""
        if not name:
            return None
        last = name.rsplit(".", 1)[-1]
        if last.endswith("Process"):
            return f"{name}()"
        if name in _PICKLE_DUMPERS or (
            last in {"dumps", "dump"} and name.split(".")[0] == "pickle"
        ):
            return f"{name}()"
        if "." in name and last in _BOUNDARY_METHODS:
            return f".{last}()"
        return None

    def _tracked_args(
        self,
        call: ast.Call,
        local_owners: Dict[str, str],
        hints: Dict[str, str],
    ) -> List[tuple]:
        """(spelling, owning class) for every tracked instance in args.

        Walks *inside* argument expressions so the classic
        ``Process(target=f, args=(metrics,))`` tuple is seen.
        """
        exprs: List[ast.expr] = list(call.args)
        exprs.extend(kw.value for kw in call.keywords)
        out: List[tuple] = []
        for expr in exprs:
            for sub in ast.walk(expr):
                owner: Optional[str] = None
                if isinstance(sub, ast.Name):
                    owner = local_owners.get(sub.id)
                elif isinstance(sub, ast.Attribute) and not isinstance(
                    sub.ctx, ast.Store
                ):
                    owner = hints.get(sub.attr)
                if owner is not None:
                    out.append((dotted_name(sub) or "<expr>", owner))
        return out

    def _local_bindings(
        self, func: ast.AST, hints: Dict[str, str]
    ) -> Dict[str, str]:
        owners: Dict[str, str] = {}
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            cls: Optional[str] = None
            if isinstance(value, ast.Call):
                fname = dotted_name(value.func) or ""
                last = fname.rsplit(".", 1)[-1]
                if last in self.OWNED_CLASSES:
                    cls = last
            elif isinstance(value, ast.Attribute):
                cls = hints.get(value.attr)
            if cls is None:
                continue
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    owners[tgt.id] = cls
        return owners
