"""The reprolint rule set — one module per invariant family."""

from __future__ import annotations

from typing import Tuple, Type

from ..engine import Rule
from .api_surface import DeprecatedEntryRule
from .async_purity import AsyncPurityRule
from .bounded_decode import BoundedDecodeRule
from .endianness import ExplicitEndiannessRule
from .error_handling import BroadExceptRule
from .fault_paths import FaultPathDisciplineRule
from .pickle_guard import PickleGuardRule
from .plan_immutability import FrozenPlanPurityRule, ServiceStateDisciplineRule
from .shard_isolation import ShardIsolationRule
from .wire_format import WireFormatRule

ALL_RULES: Tuple[Type[Rule], ...] = (
    BoundedDecodeRule,  # RL001
    AsyncPurityRule,  # RL002
    WireFormatRule,  # RL003
    FrozenPlanPurityRule,  # RL004
    ServiceStateDisciplineRule,  # RL005
    BroadExceptRule,  # RL006
    ExplicitEndiannessRule,  # RL007
    PickleGuardRule,  # RL008
    FaultPathDisciplineRule,  # RL009
    DeprecatedEntryRule,  # RL010
    ShardIsolationRule,  # RL011
)

__all__ = [
    "ALL_RULES",
    "AsyncPurityRule",
    "DeprecatedEntryRule",
    "BoundedDecodeRule",
    "BroadExceptRule",
    "ExplicitEndiannessRule",
    "FaultPathDisciplineRule",
    "FrozenPlanPurityRule",
    "PickleGuardRule",
    "ServiceStateDisciplineRule",
    "ShardIsolationRule",
    "WireFormatRule",
]
