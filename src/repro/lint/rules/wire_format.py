"""RL003 — wire bytes come from the registry (stream-stability contract).

Byte-identical stream replay across versions is the repo's oldest
promise (PR 1's golden fixtures, PR 2's v1/v2 header compat, PR 4's
protocol framing).  This rule makes the wire surface *declarative*:
every ``struct`` format string and every magic/version constant in a
wire module must match :mod:`repro.lint.wire_registry` — in both
directions — so changing wire bytes is impossible without a visible
registry diff and revision bump.

Checks per registered module:

* every format-string literal passed to ``struct.pack``/``unpack``/
  ``Struct``/``calcsize`` (f-strings normalized: count interpolations
  become ``{}``) must be registered;
* every registered format must still occur in the source (otherwise the
  registry has drifted from reality);
* every registered constant (``MAGIC``, ``VERSION``, ``MAX_FRAME``,
  opcodes, ...) must exist at module level with exactly the registered
  value — a mismatch means wire bytes changed without a registry
  update + revision bump.

Non-literal format strings (built dynamically from variables) cannot be
checked and are flagged as errors outright: wire formats must be
auditable at rest.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..engine import Finding, ModuleContext, Rule, dotted_name
from ..wire_registry import WireSpec, spec_for

__all__ = ["WireFormatRule"]

_STRUCT_CALL_LAST = {"pack", "pack_into", "unpack", "unpack_from", "calcsize", "Struct"}


def _normalize_format(node: ast.expr) -> Optional[str]:
    """Literal or f-string format → normalized registry form, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for piece in node.values:
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                parts.append(piece.value)
            elif isinstance(piece, ast.FormattedValue):
                parts.append("{}")
            else:
                return None
        return "".join(parts)
    return None


def _const_value(node: ast.expr) -> Tuple[bool, object]:
    """Tiny constant evaluator for wire constants (handles ``1 << 30``)."""
    if isinstance(node, ast.Constant):
        return True, node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        ok, v = _const_value(node.operand)
        if ok and isinstance(v, (int, float)):
            return True, -v
        return False, None
    if isinstance(node, ast.BinOp):
        ok_l, left = _const_value(node.left)
        ok_r, right = _const_value(node.right)
        if not (ok_l and ok_r):
            return False, None
        try:
            if isinstance(node.op, ast.LShift):
                return True, left << right
            if isinstance(node.op, ast.RShift):
                return True, left >> right
            if isinstance(node.op, ast.Add):
                return True, left + right
            if isinstance(node.op, ast.Sub):
                return True, left - right
            if isinstance(node.op, ast.Mult):
                return True, left * right
            if isinstance(node.op, ast.Pow):
                return True, left**right
            if isinstance(node.op, ast.BitOr):
                return True, left | right
        except TypeError:
            return False, None
    return False, None


class WireFormatRule(Rule):
    rule_id = "RL003"
    name = "wire-format-registry"
    description = (
        "struct formats and magic/version constants in wire modules must "
        "match lint/wire_registry.py"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        spec = spec_for(ctx.relpath)
        if spec is None:
            return
        registered = set(spec.formats)
        seen: Set[str] = set()

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name:
                continue
            last = name.rsplit(".", 1)[-1]
            if last not in _STRUCT_CALL_LAST or not node.args:
                continue
            # only struct-module calls: struct.pack / struct.Struct /
            # SomeStruct.unpack_from etc. (method form has no literal arg0
            # format anyway, so the literal check below filters it)
            fmt = _normalize_format(node.args[0])
            if fmt is None:
                if last in {"pack", "unpack", "pack_into", "unpack_from"} and (
                    name.startswith("struct.") or name == last
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"struct.{last} format is not a literal/f-string; "
                        f"wire formats must be statically auditable",
                    )
                continue
            if not fmt.startswith(("<", ">", "=", "!")):
                # a string arg0 that is not a struct format (e.g. a
                # Struct method on a non-format string) — ignore
                continue
            seen.add(fmt)
            if fmt not in registered:
                yield self.finding(
                    ctx,
                    node,
                    f"struct format {fmt!r} is not registered in "
                    f"lint/wire_registry.py for {spec.module} (rev "
                    f"{spec.revision}); register it and bump the revision",
                )

        for fmt in sorted(registered - seen):
            yield Finding(
                rule=self.rule_id,
                path=ctx.relpath,
                line=1,
                col=0,
                message=(
                    f"registered wire format {fmt!r} (rev {spec.revision}) "
                    f"no longer appears in {spec.module}; the registry has "
                    f"drifted — update wire_registry.py and bump the revision"
                ),
            )

        yield from self._check_constants(ctx, spec)

    def _check_constants(
        self, ctx: ModuleContext, spec: WireSpec
    ) -> Iterator[Finding]:
        module_consts = {}
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                tgt = stmt.targets[0]
                if isinstance(tgt, ast.Name):
                    ok, value = _const_value(stmt.value)
                    if ok:
                        module_consts[tgt.id] = (value, stmt)
        for cname, expected in spec.constants.items():
            if cname not in module_consts:
                yield Finding(
                    rule=self.rule_id,
                    path=ctx.relpath,
                    line=1,
                    col=0,
                    message=(
                        f"registered wire constant {cname} is missing from "
                        f"{spec.module}; registry rev {spec.revision} has "
                        f"drifted"
                    ),
                )
                continue
            value, stmt = module_consts[cname]
            if value != expected:
                yield self.finding(
                    ctx,
                    stmt,
                    f"wire constant {cname} = {value!r} differs from "
                    f"registered value {expected!r} (rev {spec.revision}); "
                    f"changing wire bytes requires updating "
                    f"lint/wire_registry.py and bumping the revision",
                )
