"""RL010 — deprecated top-level entry points stay out of first-party code.

The :mod:`repro.api` facade replaced the top-level re-exports of the
chunked functions (``repro.compress_chunked`` and friends); those names
survive only as ``DeprecationWarning`` shims in :mod:`repro._shims` for
external callers mid-migration.  First-party code has no such excuse:
importing a deprecated spelling inside ``src/`` re-entrenches the
surface this package is deprecating (and trips CI's
``-W error::DeprecationWarning`` job from whatever innocent module
transitively imported it).

Flags, outside the ``allow_modules`` allowlist (the facade and the shim
module itself):

* ``from repro import <deprecated-name>``;
* attribute use of a deprecated name, e.g. ``repro.compress_chunked(...)``;
* any import of ``repro._shims`` — the shim module is an exit ramp, not
  an API.

The canonical package-qualified spellings
(``repro.chunked.compress_chunked``) are not deprecated and pass.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Dict, Iterator, Set

from ..engine import Finding, ModuleContext, Rule, dotted_name

__all__ = ["DeprecatedEntryRule"]

_SHIM_MODULE = "repro._shims"


class DeprecatedEntryRule(Rule):
    rule_id = "RL010"
    name = "deprecated-entry"
    description = (
        "deprecated top-level entry points only via the facade/shim modules"
    )

    def _deprecated(self) -> Dict[str, Set[str]]:
        """``{"repro": {"compress_chunked", ...}}`` from the options."""
        table: Dict[str, Set[str]] = {}
        for spec in self.options.get("deprecated", []):
            module, _, name = str(spec).partition(":")
            table.setdefault(module, set()).add(name)
        return table

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        allow = self.options.get("allow_modules", [])
        if any(fnmatch.fnmatch(ctx.relpath, pat) for pat in allow):
            return
        deprecated = self._deprecated()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == _SHIM_MODULE:
                    yield self.finding(
                        ctx,
                        node,
                        f"import from {_SHIM_MODULE} outside the facade; "
                        f"the shim module exists only to warn external "
                        f"callers — call repro.chunked or repro.api "
                        f"directly",
                    )
                    continue
                names = deprecated.get(module, set())
                for alias in node.names:
                    if alias.name in names:
                        yield self.finding(
                            ctx,
                            node,
                            f"from {module} import {alias.name} is a "
                            f"deprecated entry point; use the repro.api "
                            f"facade (repro.compress/decompress/open) or "
                            f"the canonical {module}.chunked spelling",
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == _SHIM_MODULE:
                        yield self.finding(
                            ctx,
                            node,
                            f"import {_SHIM_MODULE} outside the facade; "
                            f"the shim module exists only to warn "
                            f"external callers",
                        )
            elif isinstance(node, ast.Attribute):
                name = dotted_name(node) or ""
                module, _, attr = name.rpartition(".")
                if attr in deprecated.get(module, set()):
                    yield self.finding(
                        ctx,
                        node,
                        f"{name} is a deprecated entry point; use the "
                        f"repro.api facade (repro.compress/decompress/"
                        f"open) or the canonical {module}.chunked "
                        f"spelling",
                    )
