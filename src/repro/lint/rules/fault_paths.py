"""RL009 — typed-error discipline in fault-recovery paths.

The self-healing layer (PR 8) has exactly two legitimate shapes for a
``BrokenProcessPool`` / ``BrokenExecutor`` / ``TimeoutError`` handler in
``service/`` or ``parallel/``:

* **route through the pool supervisor** — call one of the supervisor's
  recovery entry points (``_note_crash`` / ``_dispatch`` /
  ``_probe_failed``) or resolve the job explicitly (``set_exception``,
  ``encode_error``, ``encode_retry``), so the crash feeds the healing
  state machine or reaches the caller as a typed outcome; or
* **re-raise a typed error** — ``raise WorkerCrashError(...)`` /
  ``raise DeadlineExceededError(...)`` etc., i.e. a
  :class:`~repro.errors.ReproError` subclass the server's error boundary
  knows how to frame.

Anything else — swallowing the crash, logging and continuing, or
re-raising the raw infrastructure exception (a *bare* ``raise`` included)
— leaks an untyped failure past the recovery layer: the pool stays
bricked or the client sees a one-line ``BrokenProcessPool`` with no
retry semantics.  The ReproError subclass names are collected from
:mod:`repro.errors` at rule-construction time, so new typed errors are
recognized without touching this rule.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set

from ..engine import Finding, ModuleContext, Rule, dotted_name

__all__ = ["FaultPathDisciplineRule"]

#: exception names (last dotted component) that mark a fault-recovery
#: handler: a worker-pool break or a deadline/timeout expiry
_FAULT_EXCEPTIONS = {"BrokenProcessPool", "BrokenExecutor", "TimeoutError"}

_ROUTE_RE = re.compile(
    r"^(_note_crash|_dispatch|_probe_failed|set_exception"
    r"|encode_error|encode_retry)$"
)


def _repro_error_names() -> Set[str]:
    """Every ReproError subclass name, straight from the hierarchy."""
    from repro.errors import ReproError

    names = set()
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        names.add(cls.__name__)
        stack.extend(cls.__subclasses__())
    return names


def _fault_name(type_node: ast.expr) -> str:
    """The fault exception this handler catches, or ''."""
    candidates: List[ast.expr]
    if isinstance(type_node, ast.Tuple):
        candidates = list(type_node.elts)
    else:
        candidates = [type_node]
    for cand in candidates:
        name = dotted_name(cand) or ""
        last = name.rsplit(".", 1)[-1]
        if last in _FAULT_EXCEPTIONS:
            return last
    return ""


class FaultPathDisciplineRule(Rule):
    rule_id = "RL009"
    name = "fault-path-typed-errors"
    description = (
        "BrokenProcessPool/TimeoutError handlers in fault paths must "
        "re-raise a ReproError subclass or route through the pool "
        "supervisor"
    )

    def __init__(self, options=None) -> None:
        super().__init__(options)
        self._typed_errors = _repro_error_names()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            caught = _fault_name(node.type)
            if not caught:
                continue
            if self._handler_recovers(node):
                continue
            yield self.finding(
                ctx,
                node,
                f"except {caught} neither raises a ReproError subclass "
                f"nor routes through the pool supervisor "
                f"(_note_crash/_dispatch/_probe_failed/set_exception/"
                f"encode_error/encode_retry); the crash escapes the "
                f"recovery layer untyped",
            )

    def _handler_recovers(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                if self._raises_typed(node):
                    return True
                continue  # a bare/untyped raise alone is NOT recovery
            if isinstance(node, ast.Call):
                name = dotted_name(node.func) or ""
                last = name.rsplit(".", 1)[-1]
                if _ROUTE_RE.match(last):
                    return True
        return False

    def _raises_typed(self, node: ast.Raise) -> bool:
        exc = node.exc
        if exc is None:
            return False  # bare re-raise keeps the untyped exception
        target = exc.func if isinstance(exc, ast.Call) else exc
        name = dotted_name(target) or ""
        return name.rsplit(".", 1)[-1] in self._typed_errors
