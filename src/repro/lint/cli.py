"""``repro lint`` — the reprolint command line.

Usage::

    repro lint src/                       # lint against the committed baseline
    repro lint --no-baseline src/         # everything, grandfathered or not
    repro lint --format json src/         # machine-readable findings
    repro lint --select RL003 src/        # one rule only
    repro lint --write-baseline src/      # re-grandfather current findings

Exit codes: 0 clean, 1 findings (or stale baseline entries), 2 usage or
configuration error.  Stale baseline entries — grandfathered findings
the code no longer produces — also fail the run, so the committed
baseline can only shrink, never silently rot.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .config import build_rules, rule_classes
from .engine import Finding, LintError, apply_baseline, lint_paths, load_baseline, save_baseline

__all__ = ["main", "build_parser", "DEFAULT_BASELINE"]

#: the committed grandfather list, next to this module
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "reprolint: AST-based checker for the repo's correctness "
            "invariants (bounded decode, async purity, wire stability, "
            "plan immutability)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule IDs (repeatable, e.g. --select RL003)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=f"baseline JSON to subtract (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _print_rules() -> None:
    for rule_id, cls in sorted(rule_classes().items()):
        print(f"{rule_id}  {cls.name:<28} {cls.description}")


def _emit(
    findings: Sequence[Finding],
    stale: Sequence[str],
    fmt: str,
    checked: Sequence[str],
) -> None:
    if fmt == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_json() for f in findings],
                    "stale_baseline_entries": list(stale),
                },
                indent=2,
            )
        )
        return
    for f in findings:
        print(f.render())
    for key in stale:
        print(
            f"stale baseline entry: {key} — the finding no longer exists; "
            f"remove it (repro lint --write-baseline)"
        )
    if findings or stale:
        print(
            f"\nreprolint: {len(findings)} finding(s), {len(stale)} stale "
            f"baseline entr(y/ies) in {', '.join(checked)}"
        )
    else:
        print(f"reprolint: clean ({', '.join(checked)})")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0

    try:
        rules = build_rules(select=args.select)
    except KeyError as exc:
        print(f"repro lint: {exc.args[0]}", file=sys.stderr)
        return 2

    try:
        findings = lint_paths(args.paths, rules)
    except LintError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or DEFAULT_BASELINE

    if args.write_baseline:
        save_baseline(baseline_path, findings)
        print(
            f"reprolint: wrote {len(findings)} finding(s) to {baseline_path}"
        )
        return 0

    stale: List[str] = []
    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except LintError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        findings, stale_map = apply_baseline(findings, baseline)
        stale = sorted(stale_map)

    _emit(findings, stale, args.format, [str(p) for p in args.paths])
    return 1 if (findings or stale) else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
