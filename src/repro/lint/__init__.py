"""reprolint — AST-based enforcement of the repo's correctness invariants.

Run it with ``repro lint src/`` (or ``python -m repro lint src/``).
See :mod:`repro.lint.engine` for the framework, :mod:`repro.lint.rules`
for the rule catalogue, and :mod:`repro.lint.wire_registry` for the
declarative wire-format registry RL003 checks against.
"""

from __future__ import annotations

from .config import DEFAULT_OPTIONS, build_rules, rule_classes
from .engine import (
    Finding,
    LintError,
    ModuleContext,
    Rule,
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    save_baseline,
)
from .rules import ALL_RULES
from .wire_registry import WIRE_SPECS, WireSpec, spec_for

__all__ = [
    "ALL_RULES",
    "DEFAULT_OPTIONS",
    "Finding",
    "LintError",
    "ModuleContext",
    "Rule",
    "WIRE_SPECS",
    "WireSpec",
    "apply_baseline",
    "build_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "rule_classes",
    "save_baseline",
    "spec_for",
]
