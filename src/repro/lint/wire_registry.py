"""Central registry of the repo's wire formats (the RL003 ground truth).

Every byte that crosses a process or file boundary is described here:
the container/stream header (``repro/core/header.py``), the chunked
container footer (``repro/chunked/container.py``), and the service
protocol (``repro/service/protocol.py``).  RL003 cross-checks each wire
module against its registered spec in both directions —

* a ``struct`` format string or magic/version constant in the source
  that is **not** registered here fails lint (you changed wire bytes
  without declaring it), and
* a registered format that no longer appears in the source fails lint
  (the registry drifted from reality).

Changing wire bytes is therefore a two-file diff by construction: the
wire module **and** this registry, with the module's ``revision``
bumped.  The golden tests in ``tests/lint/test_wire_golden.py`` then
pin the registered constants to the actual bytes of the committed
golden fixtures, closing the loop registry ↔ source ↔ bytes-on-disk.

Format strings are stored *normalized*: f-string count fields collapse
to ``{}`` (``f"<{ndim}Q"`` registers as ``"<{}Q"``), because the repeat
count is data-dependent while the element type and endianness are the
wire contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

__all__ = ["WireSpec", "WIRE_SPECS", "spec_for"]


@dataclass(frozen=True)
class WireSpec:
    """The registered wire surface of one module."""

    module: str  # repo-relative path, e.g. "repro/core/header.py"
    #: bump when any registered byte layout changes; reviewers diff this
    revision: int
    #: normalized struct format strings the module may pack/unpack
    formats: Tuple[str, ...]
    #: module-level constants whose values ARE wire bytes
    constants: Mapping[str, object] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# revision history
#   header.py    rev 2: v2 header adds a flags byte ("<4sBBBBBd"); v1
#                ("<4sBBBBd") still readable (PR 2/3 compat contract)
#   header.py    rev 3: v3 adds a blake2s-4 header checksum ("<I") after
#                the dims and a blake2s-8 per-chunk digest ("<Q") per
#                index entry; v1/v2 still readable (PR 8)
#   container.py rev 1: footer chunk-count "<Q" (PR 3)
#   protocol.py  rev 2: protocol v2 adds priority + declared-cost fields
#                to OP_COMPRESS (PR 6); scalar codecs unchanged since v1
#   protocol.py  rev 3: request meta gains the optional 'shard_key'
#                routing-affinity tag (sharded serve, DESIGN.md §14);
#                no layout change — meta kv is forward-extensible and
#                unknown keys are ignored, so PROTOCOL_VERSION stays 2
#   slab.py      rev 1: shared-memory batch descriptors — cross a process
#                boundary via the pool's pickle channel, not a socket,
#                but the tuple layout is an IPC contract all the same
#   planbus.py   rev 1: inter-shard plan replication bus — one pipe
#                payload per message, 'u8 ver | u8 kind | u16 shard_id |
#                body', kinds HELLO/PLAN/STATS_REQ/STATS_RESP; scalars
#                ride protocol.py's _Reader/_Writer codecs, so no struct
#                formats appear in the module itself
# ---------------------------------------------------------------------------

WIRE_SPECS: Tuple[WireSpec, ...] = (
    WireSpec(
        module="repro/core/header.py",
        revision=3,
        formats=(
            "<4sB",  # prefix: magic, version
            "<4sBBBBd",  # fixed v1: magic, version, codec, dtype, ndim, eb
            "<4sBBBBBd",  # fixed v2: ... + flags byte before eb
            "<{}Q",  # shape dims / chunk-entry starts
            "<{}I",  # chunk shape / chunk-entry shapes
            "<I",  # section count
            "<Q",  # section length / chunk-entry count
            "<QQ",  # chunk-entry (offset, nbytes)
        ),
        constants={
            "MAGIC": b"RPZ1",
            "VERSION": 2,
            "VERSION_CHECKSUM": 3,
            "FLAG_CHUNKED": 0x01,
        },
    ),
    WireSpec(
        module="repro/chunked/container.py",
        revision=1,
        formats=(
            "<Q",  # chunk count read from the index prelude
        ),
    ),
    WireSpec(
        module="repro/parallel/slab.py",
        revision=1,
        formats=(),  # descriptors ride multiprocessing's pickle, no struct
        constants={
            "SLAB_BATCH_VERSION": 1,
            "SLAB_DESCRIPTOR_LAYOUT": "offset,shape,dtype",
        },
    ),
    WireSpec(
        module="repro/service/protocol.py",
        revision=3,
        formats=(
            "<B",  # u8 scalar
            "<H",  # u16 scalar / string length
            "<I",  # u32 scalar / frame length prefix
            "<Q",  # u64 scalar
            "<q",  # i64 scalar
            "<d",  # f64 scalar
        ),
        constants={
            "PROTOCOL_VERSION": 2,
            "MAX_FRAME": 1 << 30,
            "OP_PING": 1,
            "OP_COMPRESS": 2,
            "OP_DECOMPRESS": 3,
            "OP_READ_SLAB": 4,
            "OP_STATS": 5,
            "ST_OK": 0,
            "ST_ERROR": 1,
            "ST_RETRY": 2,
        },
    ),
    WireSpec(
        module="repro/service/planbus.py",
        revision=1,
        formats=(),  # scalars ride protocol.py's _Reader/_Writer codecs
        constants={
            "PLAN_BUS_VERSION": 1,
            "MAX_BUS_MSG": 1 << 20,
            "MSG_HELLO": 1,
            "MSG_PLAN": 2,
            "MSG_STATS_REQ": 3,
            "MSG_STATS_RESP": 4,
        },
    ),
)

_BY_MODULE: Dict[str, WireSpec] = {s.module: s for s in WIRE_SPECS}


def spec_for(relpath: str) -> WireSpec | None:
    """Registered spec for a repo-relative module path, if any."""
    return _BY_MODULE.get(relpath)
