"""reprolint core: findings, rule framework, suppressions, baseline.

The repo earned a set of hard correctness contracts PR by PR — bounded
decode allocations (PR 2), byte-stable wire formats (PR 1/2), frozen
plans (PR 3), a non-blocking event loop and single-writer service state
(PR 4/6).  Each survives today only as reviewer memory; ``reprolint``
turns them into machine-checked invariants, the same way the bench gates
pin performance.

Architecture: one :class:`ModuleContext` per file (AST + source lines +
inline suppressions), a set of :class:`Rule` subclasses that each walk
the tree for one invariant (see :mod:`repro.lint.rules`), and this
module's driver which scopes rules to the modules they guard, filters
``# reprolint: disable=RULE`` suppressions, and subtracts the committed
JSON baseline of grandfathered findings.  Everything is stdlib ``ast``
and ``tokenize`` — the linter must run in the bare CI image.

Baseline keys hash the *content* of the flagged line (not its number),
so unrelated edits above a grandfathered finding do not resurrect it,
while editing the flagged line itself forces a fresh decision.
"""

from __future__ import annotations

import ast
import fnmatch
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "LintError",
    "dotted_name",
    "names_in",
    "iter_functions",
    "lint_source",
    "lint_paths",
    "finding_key",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
    "module_relpath",
]

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s-]+|all)", re.IGNORECASE
)

#: rule-id shape every registered rule must follow (``RL`` + 3 digits)
RULE_ID_RE = re.compile(r"^RL\d{3}$")


class LintError(Exception):
    """A file could not be linted (syntax error, unreadable, bad config)."""


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-style relative path, forward slashes
    line: int
    col: int
    message: str
    key: str = ""  # content-hash baseline key, filled by the driver

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "key": self.key,
        }


class ModuleContext:
    """Parsed view of one source file shared by every rule."""

    def __init__(self, relpath: str, source: str) -> None:
        self.relpath = relpath
        self.source = source
        self.lines: List[str] = source.splitlines()
        try:
            self.tree: ast.Module = ast.parse(source)
        except SyntaxError as exc:  # pragma: no cover - guarded by tests
            raise LintError(f"{relpath}: syntax error: {exc}") from exc
        self._suppressed: Dict[int, Set[str]] = {}
        self._comment_only: Set[int] = set()
        self._scan_suppressions()

    def _scan_suppressions(self) -> None:
        reader = io.StringIO(self.source).readline
        try:
            tokens = list(tokenize.generate_tokens(reader))
        except tokenize.TokenError:  # pragma: no cover - ast.parse succeeded
            tokens = []
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            line = tok.start[0]
            stripped = (
                self.lines[line - 1].strip() if line <= len(self.lines) else ""
            )
            if stripped.startswith("#"):
                self._comment_only.add(line)
            if not match:
                continue
            rules = {r.strip().upper() for r in match.group(1).split(",")}
            rules.discard("")
            self._suppressed.setdefault(line, set()).update(
                {"ALL"} if "ALL" in rules else rules
            )

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when an inline comment disables ``rule`` for ``line``.

        Both the flagged line itself and a standalone comment on the
        line above count, so suppressions survive code formatters that
        refuse long trailing comments.
        """
        for cand in (line, line - 1):
            rules = self._suppressed.get(cand)
            if rules is None:
                continue
            if cand != line and cand not in self._comment_only:
                continue
            if "ALL" in rules or rule.upper() in rules:
                return True
        return False

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


class Rule:
    """One invariant check.

    Subclasses set ``rule_id``/``name``/``description`` and implement
    :meth:`check`.  ``options`` comes from the active
    :class:`~repro.lint.config.LintConfig` and always contains the
    merged defaults; the common ``modules`` option (a list of
    ``fnmatch`` globs over repo-relative paths) scopes the rule.
    """

    rule_id: str = "RL000"
    name: str = ""
    description: str = ""

    def __init__(self, options: Optional[Dict[str, object]] = None) -> None:
        self.options: Dict[str, object] = dict(options or {})

    def applies(self, ctx: ModuleContext) -> bool:
        patterns = self.options.get("modules")
        if not patterns:
            return True
        return any(fnmatch.fnmatch(ctx.relpath, p) for p in patterns)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


# --------------------------------------------------------------------------
# shared AST helpers
# --------------------------------------------------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, None for anything dynamic."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def names_in(node: ast.AST, skip_comprehension_targets: bool = True) -> Set[str]:
    """Every plain Name referenced inside ``node``.

    Comprehension loop variables are locally bound throwaways, not data
    the expression depends on, so they are skipped by default.
    """
    skip: Set[str] = set()
    if skip_comprehension_targets:
        for sub in ast.walk(node):
            if isinstance(sub, ast.comprehension):
                for tgt in ast.walk(sub.target):
                    if isinstance(tgt, ast.Name):
                        skip.add(tgt.id)
    return {
        sub.id
        for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and sub.id not in skip
    }


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Tuple[str, ...]]]:
    """Yield every (async) function with the class names enclosing it."""

    def walk(node: ast.AST, classes: Tuple[str, ...]) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, classes + (child.name,))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, classes
                yield from walk(child, classes)
            else:
                yield from walk(child, classes)

    yield from walk(tree, ())


def call_args_with_keyword(
    call: ast.Call, position: int, keyword: str
) -> Optional[ast.expr]:
    """Argument at ``position`` or passed as ``keyword=``, if present."""
    if len(call.args) > position:
        return call.args[position]
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------

def module_relpath(path: Path) -> str:
    """Repo-style relative path: anchored at the last ``repro``/``tests``
    package directory so results are stable no matter where the checkout
    lives or which working directory the linter runs from."""
    parts = list(path.parts)
    for anchor in ("repro", "tests"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            return "/".join(parts[idx:])
    return "/".join(parts[-2:]) if len(parts) >= 2 else path.name


def _run_rules(
    ctx: ModuleContext, rules: Sequence[Rule]
) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding.rule, finding.line):
                continue
            finding.key = finding_key(finding, ctx.line_text(finding.line))
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_source(
    source: str, relpath: str, rules: Sequence[Rule]
) -> List[Finding]:
    """Lint one in-memory module (the fixture-test entry point)."""
    return _run_rules(ModuleContext(relpath, source), rules)


def discover_files(paths: Sequence[str]) -> List[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    out: Set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            out.add(p)
        else:
            raise LintError(f"not a python file or directory: {raw}")
    return sorted(out)


def lint_paths(paths: Sequence[str], rules: Sequence[Rule]) -> List[Finding]:
    """Lint files/trees on disk; findings carry repo-style paths."""
    findings: List[Finding] = []
    for path in discover_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        ctx = ModuleContext(module_relpath(path), source)
        findings.extend(_run_rules(ctx, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# --------------------------------------------------------------------------
# baseline
# --------------------------------------------------------------------------

BASELINE_VERSION = 1


def finding_key(finding: Finding, line_text: str) -> str:
    """Stable identity of a finding: file + rule + flagged-line content."""
    digest = hashlib.sha1(line_text.strip().encode("utf-8")).hexdigest()[:12]
    return f"{finding.path}::{finding.rule}::{digest}"


def load_baseline(path: Path) -> Dict[str, int]:
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise LintError(f"baseline file not found: {path}")
    except (OSError, json.JSONDecodeError) as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    if raw.get("version") != BASELINE_VERSION:
        raise LintError(
            f"baseline {path} has version {raw.get('version')!r}; this "
            f"reprolint speaks version {BASELINE_VERSION}"
        )
    findings = raw.get("findings", {})
    if not isinstance(findings, dict):
        raise LintError(f"baseline {path} is malformed: 'findings' not a map")
    return {str(k): int(v) for k, v in findings.items()}


def save_baseline(path: Path, findings: Sequence[Finding]) -> None:
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.key] = counts.get(f.key, 0) + 1
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Grandfathered reprolint findings. Keys hash the flagged line's "
            "content; fix the code and the entry goes stale (reprolint "
            "--prune-note). New code must lint clean - do not add entries "
            "by hand, use --write-baseline and justify it in review."
        ),
        "findings": dict(sorted(counts.items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], Dict[str, int]]:
    """Subtract grandfathered findings.

    Returns ``(fresh_findings, stale_entries)`` — stale entries are
    baseline keys no longer produced (the code was fixed; the entry
    should be dropped from the committed file).
    """
    budget = dict(baseline)
    fresh: List[Finding] = []
    for f in findings:
        if budget.get(f.key, 0) > 0:
            budget[f.key] -= 1
        else:
            fresh.append(f)
    stale = {k: v for k, v in budget.items() if v > 0}
    return fresh, stale
