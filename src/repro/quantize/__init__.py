"""Error-bounded quantization (the SZ-family linear-scale quantizer)."""

from repro.quantize.linear import (
    DEFAULT_RADIUS,
    OUTLIER_CODE,
    LinearQuantizer,
    quantize_block,
    reconstruct_block,
)

__all__ = [
    "DEFAULT_RADIUS",
    "OUTLIER_CODE",
    "LinearQuantizer",
    "quantize_block",
    "reconstruct_block",
]
