"""Linear-scale quantizer with strict error-bound guarantee.

Residuals ``r = value - prediction`` are mapped to integer bins of width
``2 * eb`` so that the reconstruction ``pred + 2 * eb * q`` is within ``eb``
of the original.  Bins are offset by ``radius`` into non-negative codes;
code 0 is reserved for *outliers* — points whose residual overflows the bin
range **or** whose reconstruction would violate the bound after floating
round-off.  Outlier values are stored exactly in a side stream, which makes
the bound unconditional (paper Fig. 7).

All operations are vectorized over whole prediction passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

#: default number of bins on each side of zero (SZ uses 2^15)
DEFAULT_RADIUS = 32768
#: reserved quantization code marking an exactly-stored point
OUTLIER_CODE = 0


def quantize_block(
    values: np.ndarray,
    preds: np.ndarray,
    eb: float,
    radius: int = DEFAULT_RADIUS,
    cast_dtype=np.float64,
):
    """Quantize one prediction pass.

    Returns ``(codes, recon, outlier_values)``: non-negative int64 codes
    (0 = outlier), the reconstructed values (exact at outliers), and the
    outlier values in scan order.

    ``cast_dtype`` is the dtype the decompressed array will finally be
    cast to; the bound is verified against the *cast* reconstruction so
    the guarantee survives float64 -> float32 round-off.
    """
    values = np.asarray(values, dtype=np.float64)
    preds = np.asarray(preds, dtype=np.float64)
    inv = 1.0 / (2.0 * eb)
    q = values - preds
    np.multiply(q, inv, out=q)
    np.rint(q, out=q)
    recon = np.multiply(q, 2.0 * eb)
    recon += preds
    if np.dtype(cast_dtype) == np.float64:
        delivered = recon  # already what the user receives; no cast round-trip
    else:
        delivered = recon.astype(cast_dtype).astype(np.float64)
    err = values - delivered
    np.abs(err, out=err)
    ok = err <= eb
    np.abs(q, out=err)  # reuse the scratch for |q|
    ok &= err < radius
    codes = q.astype(np.int64)
    codes += radius
    bad = ~ok
    codes[bad] = OUTLIER_CODE
    outliers = values[bad]
    recon[bad] = outliers
    return codes, recon, outliers


def reconstruct_block(
    codes: np.ndarray,
    preds: np.ndarray,
    eb: float,
    outliers: np.ndarray,
    radius: int = DEFAULT_RADIUS,
) -> np.ndarray:
    """Inverse of :func:`quantize_block` for one pass.

    ``outliers`` must contain exactly the values for the pass's outlier
    codes, in scan order.
    """
    codes = np.asarray(codes)
    preds = np.asarray(preds, dtype=np.float64)
    recon = preds + (2.0 * eb) * (codes.astype(np.float64) - radius)
    mask = codes == OUTLIER_CODE
    if mask.any():
        recon[mask] = outliers
    return recon


@dataclass
class LinearQuantizer:
    """Stateful quantizer accumulating codes/outliers across passes.

    Compression side::

        q = LinearQuantizer(radius)
        recon = q.quantize(values, preds, eb)   # per pass
        codes, outliers = q.harvest()

    Decompression side::

        q = LinearQuantizer(radius, codes=codes, outliers=outliers)
        recon = q.dequantize(count, preds, eb)  # per pass, same order
    """

    radius: int = DEFAULT_RADIUS
    codes: np.ndarray | None = None
    outliers: np.ndarray | None = None
    cast_dtype: np.dtype = np.float64
    _code_chunks: List[np.ndarray] = field(default_factory=list)
    _outlier_chunks: List[np.ndarray] = field(default_factory=list)
    _code_pos: int = 0
    _outlier_pos: int = 0

    # -------------------------------------------------------------- compress
    def quantize(self, values: np.ndarray, preds: np.ndarray, eb: float):
        """Quantize one pass; returns reconstructed values (same shape)."""
        codes, recon, outliers = quantize_block(
            values, preds, eb, self.radius, self.cast_dtype
        )
        self._code_chunks.append(codes.ravel())
        if outliers.size:
            self._outlier_chunks.append(outliers)
        return recon

    def harvest(self):
        """All codes and outliers accumulated so far, concatenated."""
        codes = (
            np.concatenate(self._code_chunks)
            if self._code_chunks
            else np.zeros(0, dtype=np.int64)
        )
        outliers = (
            np.concatenate(self._outlier_chunks)
            if self._outlier_chunks
            else np.zeros(0, dtype=np.float64)
        )
        return codes, outliers

    # ------------------------------------------------------------ decompress
    def dequantize(self, count: int, preds: np.ndarray, eb: float) -> np.ndarray:
        """Reconstruct one pass of ``count`` points from the stored streams.

        Codes/outliers are consumed in the same order quantize() produced
        them; the result has the shape of ``preds``.
        """
        preds = np.asarray(preds, dtype=np.float64)
        codes = self.codes[self._code_pos : self._code_pos + count]
        if codes.size != count:
            from repro.errors import DecompressionError

            raise DecompressionError("quantization code stream exhausted")
        self._code_pos += count
        n_out = int(np.count_nonzero(codes == OUTLIER_CODE))
        outliers = self.outliers[self._outlier_pos : self._outlier_pos + n_out]
        if outliers.size != n_out:
            from repro.errors import DecompressionError

            raise DecompressionError("outlier stream exhausted")
        self._outlier_pos += n_out
        flat = reconstruct_block(codes, preds.ravel(), eb, outliers, self.radius)
        return flat.reshape(preds.shape)
