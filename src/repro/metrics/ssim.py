"""Structural Similarity Index for N-dimensional scientific fields.

Implements Wang et al.'s SSIM (paper Eq. 2-3) with a uniform sliding
window, generalized to 1-D..4-D arrays.  ``batch=True`` treats axis 0 as a
stack of independent blocks (windows never cross block boundaries), which
is how QoZ's tuner scores SSIM on sampled blocks.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter

#: Wang et al. default stabilization constants
K1 = 0.01
K2 = 0.03
DEFAULT_WINDOW = 7


def ssim(
    original: np.ndarray,
    reconstructed: np.ndarray,
    data_range: float | None = None,
    window: int = DEFAULT_WINDOW,
    batch: bool = False,
) -> float:
    """Mean SSIM between two arrays.

    ``data_range`` defaults to the original's value range (SSIM of a
    constant field against itself is defined as 1).
    """
    x = np.asarray(original, dtype=np.float64)
    y = np.asarray(reconstructed, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch {x.shape} vs {y.shape}")
    if data_range is None:
        data_range = float(x.max() - x.min())
    if data_range == 0.0:
        return 1.0 if np.array_equal(x, y) else 0.0
    size = [window] * x.ndim
    if batch:
        size[0] = 1
    win = np.minimum(size, x.shape).tolist()

    mu_x = uniform_filter(x, size=win)
    mu_y = uniform_filter(y, size=win)
    mu_xx = uniform_filter(x * x, size=win)
    mu_yy = uniform_filter(y * y, size=win)
    mu_xy = uniform_filter(x * y, size=win)

    var_x = np.maximum(mu_xx - mu_x * mu_x, 0.0)
    var_y = np.maximum(mu_yy - mu_y * mu_y, 0.0)
    cov = mu_xy - mu_x * mu_y

    c1 = (K1 * data_range) ** 2
    c2 = (K2 * data_range) ** 2
    num = (2.0 * mu_x * mu_y + c1) * (2.0 * cov + c2)
    den = (mu_x * mu_x + mu_y * mu_y + c1) * (var_x + var_y + c2)
    return float(np.mean(num / den))
