"""Autocorrelation of compression errors (paper Eq. 4).

Users prefer compression errors that look like white noise; the lag-k
autocorrelation of the error field quantifies the deviation from that
ideal (lower |AC| is better).
"""

from __future__ import annotations

import numpy as np


def error_autocorrelation(
    original: np.ndarray, reconstructed: np.ndarray, lag: int = 1
) -> float:
    """Lag-``lag`` autocorrelation of the flattened compression errors.

    Returns 0 for a constant error field (no correlation structure).
    """
    e = (
        np.asarray(original, dtype=np.float64) - np.asarray(reconstructed, np.float64)
    ).ravel()
    return _autocorr(e, lag)


def autocorrelation_profile(
    original: np.ndarray, reconstructed: np.ndarray, max_lag: int = 16
) -> np.ndarray:
    """AC at lags 1..max_lag (Z-checker style profile)."""
    e = (
        np.asarray(original, dtype=np.float64) - np.asarray(reconstructed, np.float64)
    ).ravel()
    return np.array([_autocorr(e, k) for k in range(1, max_lag + 1)])


def _autocorr(e: np.ndarray, lag: int) -> float:
    if lag <= 0:
        raise ValueError("lag must be positive")
    if e.size <= lag:
        return 0.0
    mu = e.mean()
    d = e - mu
    denom = float(np.dot(d, d))
    if denom == 0.0:
        return 0.0
    num = float(np.dot(d[:-lag], d[lag:]))
    return num / denom
