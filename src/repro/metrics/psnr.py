"""PSNR and friends.

The paper (Eq. 1) defines PSNR against the *value range* of the original
data: ``PSNR = 20 log10(vrange / rmse)``, equivalent to NRMSE up to a log.
"""

from __future__ import annotations

import numpy as np

from repro.utils import value_range


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error."""
    diff = np.asarray(original, dtype=np.float64) - np.asarray(
        reconstructed, dtype=np.float64
    )
    return float(np.mean(diff * diff))


def nrmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root-mean-square error normalized by the original's value range."""
    vr = value_range(np.asarray(original))
    if vr == 0.0:
        return 0.0 if mse(original, reconstructed) == 0.0 else np.inf
    return float(np.sqrt(mse(original, reconstructed)) / vr)


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (paper Eq. 1); inf for exact."""
    e = nrmse(original, reconstructed)
    if e == 0.0:
        return float("inf")
    return float(-20.0 * np.log10(e))
