"""Rate-side metrics: compression ratio, bit rate, error histograms."""

from __future__ import annotations

import numpy as np


def compression_ratio(original: np.ndarray, compressed: bytes) -> float:
    """Original bytes / compressed bytes."""
    if len(compressed) == 0:
        raise ValueError("empty compressed stream")
    return original.nbytes / len(compressed)


def bit_rate(original: np.ndarray, compressed: bytes) -> float:
    """Average bits per data point after compression (paper's 'rate')."""
    return 8.0 * len(compressed) / original.size


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """L-infinity error — the quantity the bound constrains."""
    return float(
        np.max(
            np.abs(
                np.asarray(original, np.float64) - np.asarray(reconstructed, np.float64)
            )
        )
    )


def error_histogram(
    original: np.ndarray,
    reconstructed: np.ndarray,
    error_bound: float,
    bins: int = 101,
):
    """Histogram of point-wise errors over [-eb, eb] (paper Fig. 7).

    Returns ``(bin_centers, counts, n_violations)`` where ``n_violations``
    counts points outside the bound (must be 0 for every codec here).
    """
    e = (
        np.asarray(original, np.float64) - np.asarray(reconstructed, np.float64)
    ).ravel()
    counts, edges = np.histogram(e, bins=bins, range=(-error_bound, error_bound))
    centers = 0.5 * (edges[:-1] + edges[1:])
    violations = int(np.count_nonzero(np.abs(e) > error_bound))
    return centers, counts, violations
