"""Quality metrics used for rate-distortion evaluation (paper §III).

PSNR/NRMSE, SSIM, lag-k autocorrelation of compression errors, plus
bit-rate / compression-ratio helpers and the error-distribution histogram
used to verify strict error-bound compliance (paper Fig. 7).
"""

from repro.metrics.psnr import mse, nrmse, psnr
from repro.metrics.ssim import ssim
from repro.metrics.autocorr import error_autocorrelation, autocorrelation_profile
from repro.metrics.rate import (
    bit_rate,
    compression_ratio,
    error_histogram,
    max_abs_error,
)

__all__ = [
    "mse",
    "nrmse",
    "psnr",
    "ssim",
    "error_autocorrelation",
    "autocorrelation_profile",
    "bit_rate",
    "compression_ratio",
    "error_histogram",
    "max_abs_error",
]
