"""The public facade: ``repro.compress`` / ``repro.decompress`` / ``repro.open``.

Three entry idioms accreted around the same concepts — single-array
codec classes, the :mod:`repro.chunked` functions, and the service
clients — each with its own kwarg spellings.  This module is the one
surface that routes between them **from arguments alone** (DESIGN.md
§13 states the routing rules normatively):

* ``client=`` targets a running service (in-process or remote) — the
  request executes there, nothing else about the call changes;
* ``file=``, ``chunks=``, ``chunked=True``, ``processes > 1``,
  ``per_chunk_tuning=True`` or an injected ``plan=`` select the chunked
  container path;
* otherwise the call is a plain single-array codec round-trip.

Error bounds use the unified spelling (``bound=`` — an
:class:`~repro.utils.ErrorBound`, ``"abs:1e-3"``, ``("rel", 1e-4)`` or
a bare number) or exactly one of the legacy kwargs; every spelling
funnels through :func:`repro.utils.normalize_bound`, so the emitted
stream never depends on which one was used.

The pre-facade top-level entry points (``repro.compress_chunked`` and
friends) live on as :mod:`repro._shims` with a ``DeprecationWarning``;
their package-qualified homes (``repro.chunked.compress_chunked``)
remain canonical, non-deprecated API for code that wants the specific
layer.
"""

from __future__ import annotations

from typing import Any, BinaryIO, Dict, Optional, Sequence, Union

import numpy as np

from repro.chunked.api import (
    ChunkedFile,
    PathLike,
    compress_chunked,
    compress_chunked_to_file,
    decompress_chunked,
)
from repro.chunked.container import ContainerInfo
from repro.compressors.base import decompress_any, get_compressor
from repro.core.header import parse_header
from repro.errors import CompressionError
from repro.utils import BoundLike, normalize_bound

__all__ = ["compress", "decompress", "open"]


def compress(
    data: np.ndarray,
    codec: str = "qoz",
    bound: Optional[BoundLike] = None,
    error_bound: Optional[float] = None,
    rel_error_bound: Optional[float] = None,
    chunks: Union[int, Sequence[int], None] = None,
    chunked: Optional[bool] = None,
    file: Union[PathLike, BinaryIO, None] = None,
    codec_kwargs: Optional[Dict] = None,
    processes: Optional[int] = None,
    per_chunk_tuning: bool = False,
    plan: Optional[object] = None,
    client: Optional[object] = None,
    **service_kwargs: Any,
) -> Union[bytes, ContainerInfo]:
    """Compress ``data`` through whichever path the arguments select.

    Returns the compressed stream as ``bytes`` — except with ``file=``,
    which streams a container to disk and returns its
    :class:`~repro.chunked.container.ContainerInfo`.  ``chunked=False``
    forces the single-array path and refuses chunked-only arguments
    instead of silently ignoring them.  ``service_kwargs`` (priority,
    client_id, deadline_ms, family) pass through to a ``client=`` call
    and are rejected elsewhere.
    """
    spec = normalize_bound(bound, error_bound, rel_error_bound)

    wants_chunked = (
        file is not None
        or chunks is not None
        or per_chunk_tuning
        or plan is not None
        or (processes is not None and processes > 1)
    )
    if chunked is False and wants_chunked:
        raise CompressionError(
            "chunked=False contradicts file=/chunks=/processes>1/"
            "per_chunk_tuning/plan= — those exist only on the chunked path"
        )

    if client is not None:
        if file is not None or plan is not None:
            raise CompressionError(
                "file= and plan= do not travel over a service client; "
                "compress locally or write the returned bytes yourself"
            )
        if processes not in (None, 0, 1):
            raise CompressionError(
                "processes= is a server-side setting; configure the "
                "service, not the call"
            )
        return client.compress(  # type: ignore[attr-defined]  # duck-typed client
            data,
            codec=codec,
            bound=spec,
            chunks=chunks,
            codec_kwargs=codec_kwargs,
            per_chunk_tuning=per_chunk_tuning,
            **service_kwargs,
        )

    if service_kwargs:
        raise CompressionError(
            f"{sorted(service_kwargs)} are service-call options; "
            "they need client="
        )

    if chunked or wants_chunked:
        if file is not None:
            return compress_chunked_to_file(
                data,
                file,
                codec=codec,
                chunks=chunks,
                codec_kwargs=codec_kwargs,
                processes=processes,
                per_chunk_tuning=per_chunk_tuning,
                plan=plan,
                bound=spec,
            )
        return compress_chunked(
            data,
            codec=codec,
            chunks=chunks,
            codec_kwargs=codec_kwargs,
            processes=processes,
            per_chunk_tuning=per_chunk_tuning,
            plan=plan,
            bound=spec,
        )

    codec_inst = get_compressor(codec, **(codec_kwargs or {}))
    return codec_inst.compress(data, **spec.kwargs())


def decompress(
    source: Union[bytes, bytearray, memoryview, PathLike, BinaryIO],
    processes: Optional[int] = None,
    client: Optional[object] = None,
    **service_kwargs: Any,
) -> np.ndarray:
    """Decode any stream this package produces back into an array.

    Routing mirrors :func:`compress`: ``client=`` executes on a
    service; a path (or open file) is read as a chunked container; raw
    bytes are sniffed by their stream header — chunked containers take
    the container path (honoring ``processes=``), single-array streams
    take their codec's decoder.
    """
    if client is not None:
        if processes not in (None, 0, 1):
            raise CompressionError(
                "processes= is a server-side setting; configure the "
                "service, not the call"
            )
        return client.decompress(  # type: ignore[attr-defined]  # duck-typed client
            bytes(source), **service_kwargs  # type: ignore[arg-type]  # client path takes bytes
        )
    if service_kwargs:
        raise CompressionError(
            f"{sorted(service_kwargs)} are service-call options; "
            "they need client="
        )
    if isinstance(source, (bytes, bytearray, memoryview)):
        blob = bytes(source)
        header, _ = parse_header(blob[:64])
        if header.is_chunked:
            return decompress_chunked(blob, processes=processes)
        return decompress_any(blob)
    return decompress_chunked(source, processes=processes)


def open(
    source: Union[bytes, PathLike, BinaryIO], verify: bool = True
) -> ChunkedFile:
    """Open a chunked container for random access (h5py-style).

    Returns a :class:`~repro.chunked.api.ChunkedFile`; use it as a
    context manager.  ``verify=False`` skips per-chunk digest checks on
    read (e.g. for repair tooling that wants the raw bytes).
    """
    return ChunkedFile(source, verify=verify)
