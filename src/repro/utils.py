"""Small shared helpers: input validation, dtype handling, array geometry."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import CompressionError

#: floating dtypes every codec accepts as input
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


@dataclass(frozen=True)
class ErrorBound:
    """The one spelling of an error bound: a mode plus a positive value.

    Every public entry point historically grew its own kwarg pair
    (``error_bound=`` / ``rel_error_bound=``, ``--abs-eb`` / ``--rel-eb``,
    protocol kv floats); this type is the single validated value they all
    normalize into (:func:`normalize_bound`).  ``abs`` is an absolute
    point-wise bound; ``rel`` is relative to the field's value range
    (``max - min``), the paper's ``REL`` mode.
    """

    mode: str
    value: float

    MODES = ("abs", "rel")

    def __post_init__(self) -> None:
        if self.mode not in self.MODES:
            raise CompressionError(
                f"error-bound mode must be one of {self.MODES}, "
                f"got {self.mode!r}"
            )
        object.__setattr__(self, "value", validate_error_bound(self.value))

    @classmethod
    def absolute(cls, value: float) -> "ErrorBound":
        return cls("abs", value)

    @classmethod
    def relative(cls, value: float) -> "ErrorBound":
        return cls("rel", value)

    @classmethod
    def parse(cls, spec: "BoundLike") -> "ErrorBound":
        """Normalize any accepted spelling into an :class:`ErrorBound`.

        Accepts an :class:`ErrorBound`, a ``"mode:value"`` string (the
        CLI's ``--eb abs:1e-3``), a ``(mode, value)`` pair, or a bare
        number (taken as absolute — the conservative reading, since an
        absolute bound never silently scales with the data).
        """
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, str):
            mode, sep, value = spec.partition(":")
            if not sep:
                raise CompressionError(
                    f"error-bound spec must look like 'abs:1e-3' or "
                    f"'rel:1e-4', got {spec!r}"
                )
            try:
                return cls(mode.strip(), float(value))
            except ValueError:
                raise CompressionError(
                    f"error-bound value in {spec!r} is not a number"
                ) from None
        if isinstance(spec, (int, float, np.floating)):
            return cls("abs", float(spec))
        if isinstance(spec, (tuple, list)) and len(spec) == 2:
            return cls(str(spec[0]), float(spec[1]))
        raise CompressionError(
            f"cannot interpret {spec!r} as an error bound; use "
            f"ErrorBound(mode, value), 'mode:value', or (mode, value)"
        )

    @property
    def is_relative(self) -> bool:
        return self.mode == "rel"

    def kwargs(self) -> Dict[str, float]:
        """The legacy kwarg-pair spelling (for shims and wire kv maps)."""
        key = "rel_error_bound" if self.is_relative else "error_bound"
        return {key: self.value}

    def __str__(self) -> str:
        return f"{self.mode}:{self.value:g}"


BoundLike = Union[ErrorBound, str, float, Tuple[Any, Any]]


def normalize_bound(
    bound: Optional[BoundLike] = None,
    error_bound: Optional[float] = None,
    rel_error_bound: Optional[float] = None,
) -> ErrorBound:
    """Collapse every bound spelling into one validated :class:`ErrorBound`.

    Exactly one of the three must be given — the unified ``bound=`` or
    one of the legacy kwargs; this is THE normalizer every entry point
    (facade, chunked API, protocol kv kwargs, CLI) routes through.
    """
    given = sum(
        x is not None for x in (bound, error_bound, rel_error_bound)
    )
    if given != 1:
        raise CompressionError(
            "specify exactly one of bound=, error_bound= or rel_error_bound="
        )
    if bound is not None:
        return ErrorBound.parse(bound)
    if error_bound is not None:
        return ErrorBound("abs", float(error_bound))
    assert rel_error_bound is not None
    return ErrorBound("rel", float(rel_error_bound))


def validate_input(data: np.ndarray, name: str = "data") -> np.ndarray:
    """Check that *data* is a finite, non-empty float32/float64 ndarray.

    Returns a C-contiguous view (copying only if needed).
    """
    if not isinstance(data, np.ndarray):
        raise CompressionError(f"{name} must be a numpy ndarray, got {type(data)!r}")
    data = validate_field_lazy(data, name)
    if not np.all(np.isfinite(data)):
        raise CompressionError(f"{name} contains non-finite values")
    return np.ascontiguousarray(data)


def validate_field_lazy(data, name: str = "data") -> np.ndarray:
    """Shape/dtype validation that neither copies nor scans the values.

    The out-of-core entry points (chunked compression, plan derivation)
    use this instead of :func:`validate_input`: a memory-mapped field must
    not be materialized, and finiteness is checked by whoever actually
    reads the values (chunk-wise or block-wise).
    """
    data = np.asanyarray(data)
    if data.dtype not in SUPPORTED_DTYPES:
        raise CompressionError(
            f"{name} must be float32 or float64, got dtype {data.dtype}"
        )
    if data.size == 0:
        raise CompressionError(f"{name} must be non-empty")
    if data.ndim < 1 or data.ndim > 4:
        raise CompressionError(f"{name} must have 1..4 dimensions, got {data.ndim}")
    return data


def validate_error_bound(eb: float) -> float:
    """Check that an absolute error bound is a positive finite float."""
    eb = float(eb)
    if not np.isfinite(eb) or eb <= 0.0:
        raise CompressionError(f"error bound must be positive and finite, got {eb}")
    return eb


def value_range(data: np.ndarray) -> float:
    """max(X) - min(X); the paper's ``vrange`` used for relative bounds/PSNR."""
    return float(np.max(data) - np.min(data))


def resolve_error_bound(
    data: np.ndarray,
    error_bound: float | None,
    rel_error_bound: float | None,
    data_range: float | None = None,
) -> float:
    """Turn (absolute | value-range-relative) bound into an absolute bound.

    Exactly one of the two must be given.  A relative bound on a constant
    field (vrange == 0) falls back to a tiny absolute bound so compression
    still succeeds (and is lossless in effect).  Callers that already know
    the field's value range (e.g. from a streaming chunk scan) pass it as
    ``data_range`` so ``data`` is not re-scanned.
    """
    if (error_bound is None) == (rel_error_bound is None):
        raise CompressionError(
            "specify exactly one of error_bound= or rel_error_bound="
        )
    if error_bound is not None:
        return validate_error_bound(error_bound)
    rel = validate_error_bound(rel_error_bound)
    vr = value_range(data) if data_range is None else data_range
    if vr == 0.0:
        # constant field: any positive bound works; keep it tiny
        scale = abs(float(data.flat[0])) or 1.0
        return rel * scale
    return rel * vr


def dtype_code(dtype: np.dtype) -> int:
    """Stable 1-byte code for a supported dtype (stream headers)."""
    if np.dtype(dtype) == np.float32:
        return 0
    if np.dtype(dtype) == np.float64:
        return 1
    raise CompressionError(f"unsupported dtype {dtype}")


def dtype_from_code(code: int) -> np.dtype:
    """Inverse of :func:`dtype_code`."""
    if code == 0:
        return np.dtype(np.float32)
    if code == 1:
        return np.dtype(np.float64)
    raise CompressionError(f"unknown dtype code {code}")


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division."""
    return -(-a // b)


def next_pow2(n: int) -> int:
    """Smallest power of two >= n (n >= 1)."""
    p = 1
    while p < n:
        p <<= 1
    return p


def is_pow2(n: int) -> bool:
    """True when n is a positive power of two."""
    return n >= 1 and (n & (n - 1)) == 0


def block_starts(extent: int, block: int) -> np.ndarray:
    """Start offsets of consecutive ``block``-sized tiles covering ``extent``."""
    return np.arange(0, extent, block)


def strict_bound_violations(
    original: np.ndarray, recon: np.ndarray, eb: float
) -> np.ndarray:
    """Boolean mask of points where |orig - recon| exceeds the bound.

    A tiny relative tolerance absorbs float round-off in the comparison
    itself; codecs use this mask to emit exact-value outliers so the bound
    is unconditionally strict on the returned array.
    """
    return np.abs(original.astype(np.float64) - recon.astype(np.float64)) > eb
