"""repro — a from-scratch reproduction of QoZ (SC22).

QoZ is a dynamic quality-metric-oriented error-bounded lossy compression
framework for scientific floating-point datasets (Liu et al., SC 2022).
This package implements the QoZ compressor, the SZ3 interpolation compressor
it extends, the SZ2.1 / ZFP / MGARD+ baselines it is evaluated against, the
shared quantization + entropy-coding pipeline, quality metrics, synthetic
stand-ins for the paper's six application datasets, a parallel dump/load
performance model, and a chunked out-of-core container with random-access
decompression (:mod:`repro.chunked`, ``python -m repro``).

Quickstart (the facade — :mod:`repro.api` — routes by arguments alone)::

    import numpy as np
    import repro

    data = np.random.default_rng(0).random((64, 64, 64)).astype(np.float32)
    blob = repro.compress(data, bound="rel:1e-3")
    recon = repro.decompress(blob)
    assert np.max(np.abs(recon - data)) <= 1e-3 * (data.max() - data.min())
    print(len(blob), repro.psnr(data, recon))

    # chunked container + multi-process fan-out, same call:
    blob = repro.compress(data, bound="rel:1e-3", chunks=32, processes=4)
    with repro.open(blob) as f:
        tile = f.chunk(0)
"""

from repro.errors import (
    ReproError,
    CompressionError,
    DecompressionError,
    ConfigurationError,
)

__version__ = "1.0.0"

# public names -> defining module (loaded lazily, PEP 562, so that the
# encoding/metrics substrates can be used without importing every codec)
_LAZY = {
    "compress": "repro.api",
    "decompress": "repro.api",
    "open": "repro.api",
    "ErrorBound": "repro.utils",
    "Compressor": "repro.compressors.base",
    "get_compressor": "repro.compressors.base",
    "available_compressors": "repro.compressors.base",
    "SZ2": "repro.compressors.sz2",
    "SZ3": "repro.compressors.sz3",
    "ZFP": "repro.compressors.zfp",
    "MGARDPlus": "repro.compressors.mgard",
    "QoZ": "repro.core.qoz",
    "FrozenPlan": "repro.core.plan_cache",
    "ChunkedFile": "repro.chunked",
    # deprecated top-level spellings — warning shims; repro.chunked.*
    # stays the canonical non-deprecated home
    "compress_chunked": "repro._shims",
    "compress_chunked_to_file": "repro._shims",
    "decompress_chunked": "repro._shims",
    "read_hyperslab": "repro._shims",
    "psnr": "repro.metrics",
    "ssim": "repro.metrics",
    "error_autocorrelation": "repro.metrics",
    "compression_ratio": "repro.metrics",
    "bit_rate": "repro.metrics",
}

__all__ = [
    "ReproError",
    "CompressionError",
    "DecompressionError",
    "ConfigurationError",
    "__version__",
    *sorted(_LAZY),
]


def __getattr__(name):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return __all__
