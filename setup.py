"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``python setup.py develop`` works on hosts without the ``wheel`` package
(pip's PEP-517 editable path needs it, offline machines may lack it).
"""

from setuptools import setup

setup()
