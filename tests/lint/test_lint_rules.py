"""Per-rule good/bad fixture pairs.

Every rule gets at least one *bad* fixture proving it fires (with the
exact rule ID and line number asserted) and a *good* twin proving the
sanctioned idiom passes.  Line numbers are counted inside the dedented
fixture strings — the leading newline of each triple-quoted block makes
the first code line line 2.
"""

import textwrap

from repro.lint import build_rules, lint_source


def run(rule_id, source, relpath="repro/mod.py", **options):
    overrides = {rule_id: {"modules": [relpath], **options}}
    rules = build_rules(select=[rule_id], overrides=overrides)
    return lint_source(textwrap.dedent(source), relpath, rules)


def hits(findings):
    return [(f.rule, f.line) for f in findings]


# ------------------------------------------------------------------- RL001


def test_rl001_fires_on_header_sized_allocation():
    findings = run(
        "RL001",
        """
        import struct
        import numpy as np

        def decode_stream(blob):
            n = struct.unpack("<Q", blob[:8])[0]
            return np.empty(n, dtype="<f8")
        """,
    )
    assert hits(findings) == [("RL001", 7)]


def test_rl001_passes_with_max_size_guard():
    findings = run(
        "RL001",
        """
        import struct
        import numpy as np
        from repro.errors import DecompressionError

        def decode_stream(blob, max_size=None):
            n = struct.unpack("<Q", blob[:8])[0]
            if max_size is not None and n > max_size:
                raise DecompressionError("declared size exceeds cap")
            return np.empty(n, dtype="<f8")
        """,
    )
    assert findings == []


def test_rl001_fires_on_unvalidated_repeat_and_count():
    findings = run(
        "RL001",
        """
        import numpy as np

        def decode_runs(vals, lens, blob):
            out = np.repeat(vals, lens)
            raw = np.frombuffer(blob, dtype="<u4", count=lens[0])
            return out, raw
        """,
    )
    assert hits(findings) == [("RL001", 5), ("RL001", 6)]


def test_rl001_passes_validator_call_and_len():
    findings = run(
        "RL001",
        """
        import numpy as np

        def decode_runs(vals, lens, blob):
            validate_run_lengths(lens, vals)
            out = np.repeat(vals, lens)
            raw = np.frombuffer(blob, dtype="<u4", count=len(blob) // 4)
            return out, raw
        """,
    )
    assert findings == []


def test_rl001_ignores_non_decode_functions():
    findings = run(
        "RL001",
        """
        import numpy as np

        def build_table(n):
            return np.empty(n)
        """,
    )
    assert findings == []


# ------------------------------------------------------------------- RL002


def test_rl002_fires_on_blocking_calls_in_async_def():
    findings = run(
        "RL002",
        """
        import time
        import subprocess

        async def worker(fut, sock):
            time.sleep(0.1)
            subprocess.run(["ls"])
            fut.result()
            sock.recv(1024)
        """,
        relpath="repro/service/worker.py",
    )
    assert hits(findings) == [
        ("RL002", 6),
        ("RL002", 7),
        ("RL002", 8),
        ("RL002", 9),
    ]


def test_rl002_passes_awaited_and_sync_contexts():
    findings = run(
        "RL002",
        """
        import asyncio
        import time

        async def worker(loop, job):
            await asyncio.sleep(0.1)
            return await loop.run_in_executor(None, job)

        def retry_sleep(delay):
            time.sleep(delay)  # sync helper: runs off the loop
        """,
        relpath="repro/service/client.py",
    )
    assert findings == []


def test_rl002_result_with_timeout_arg_not_flagged():
    # result(timeout=0) is a non-blocking poll; only the bare blocking
    # wait is the loop hazard this rule targets
    findings = run(
        "RL002",
        """
        async def f(fut):
            return fut.result(0)
        """,
        relpath="repro/service/x.py",
    )
    assert findings == []


# ------------------------------------------------------------------- RL003


def test_rl003_fires_on_unregistered_format():
    findings = run(
        "RL003",
        """
        import struct

        def read_count(prelude, ndim):
            return struct.unpack_from("<QQQ", prelude, 4 * ndim)

        def read_ok(prelude, ndim):
            return struct.unpack_from("<Q", prelude, 4 * ndim)
        """,
        relpath="repro/chunked/container.py",
    )
    assert hits(findings) == [("RL003", 5)]
    assert "wire_registry" in findings[0].message


def test_rl003_fires_on_registry_drift():
    # the registered "<Q" never appears -> the registry and the module
    # have drifted apart
    findings = run(
        "RL003",
        """
        import struct
        """,
        relpath="repro/chunked/container.py",
    )
    assert hits(findings) == [("RL003", 1)]
    assert "drifted" in findings[0].message


def test_rl003_fires_on_changed_constant_without_registry_bump():
    source = (
        "import struct\n"
        "PROTOCOL_VERSION = 3\n"
        "MAX_FRAME = 1 << 30\n"
        "OP_PING = 1\n"
        "OP_COMPRESS = 2\n"
        "OP_DECOMPRESS = 3\n"
        "OP_READ_SLAB = 4\n"
        "OP_STATS = 5\n"
        "ST_OK = 0\n"
        "ST_ERROR = 1\n"
        "ST_RETRY = 2\n"
        'FMTS = (struct.pack("<B", 0), struct.pack("<H", 0),\n'
        '        struct.pack("<I", 0), struct.pack("<Q", 0),\n'
        '        struct.pack("<q", 0), struct.pack("<d", 0.0))\n'
    )
    findings = run("RL003", source, relpath="repro/service/protocol.py")
    assert hits(findings) == [("RL003", 2)]
    assert "PROTOCOL_VERSION" in findings[0].message
    assert "bumping the revision" in findings[0].message


def test_rl003_passes_fstring_count_normalization():
    findings = run(
        "RL003",
        """
        import struct
        MAGIC = b"RPZ1"
        VERSION = 2
        VERSION_CHECKSUM = 3
        FLAG_CHUNKED = 0x01
        _PREFIX = struct.Struct("<4sB")
        _FIXED_V1 = struct.Struct("<4sBBBBd")
        _FIXED_V2 = struct.Struct("<4sBBBBBd")

        def pack_all(shape, ndim, e):
            a = struct.pack(f"<{len(shape)}Q", *shape)
            b = struct.pack(f"<{ndim}I", *shape)
            c = struct.pack("<I", 1) + struct.pack("<Q", 2)
            d = struct.pack("<QQ", e.offset, e.nbytes)
            return a + b + c + d
        """,
        relpath="repro/core/header.py",
    )
    assert findings == []


def test_rl003_fires_on_dynamic_format_string():
    findings = run(
        "RL003",
        """
        import struct

        def sneaky_pack(fmt):
            struct.unpack_from("<Q", b"", 0)
            return struct.pack(fmt, 1)
        """,
        relpath="repro/chunked/container.py",
    )
    assert hits(findings) == [("RL003", 6)]
    assert "statically auditable" in findings[0].message


def test_rl003_ignores_unregistered_modules():
    findings = run(
        "RL003",
        """
        import struct
        X = struct.pack("<QQQQQ", 1, 2, 3, 4, 5)
        """,
        relpath="repro/analysis/report.py",
    )
    assert findings == []


# ------------------------------------------------------------------- RL004


def test_rl004_fires_on_plan_mutation():
    findings = run(
        "RL004",
        """
        def tune(plan: FrozenPlan, eb):
            plan.eb = eb
            return plan
        """,
    )
    assert hits(findings) == [("RL004", 3)]


def test_rl004_fires_on_constructed_and_derived_plans():
    findings = run(
        "RL004",
        """
        def retune(cache, field, eb):
            plan = FrozenPlan(codec="qoz", eb=eb)
            plan.alpha = 1.5
            other = cache.get_or_derive(field)
            other.beta = 2.0
        """,
    )
    assert hits(findings) == [("RL004", 4), ("RL004", 6)]


def test_rl004_allows_init_and_derive_plan():
    findings = run(
        "RL004",
        """
        class Planner:
            def __init__(self, eb):
                plan = FrozenPlan(codec="qoz", eb=eb)
                plan.eb = eb  # inside __init__: allowed
                self.plan = plan

        def derive_plan(field, eb):
            plan = FrozenPlan(codec="qoz", eb=eb)
            plan.eb = eb
            return plan

        def rebuild(old: FrozenPlan, eb):
            import dataclasses
            return dataclasses.replace(old, eb=eb)
        """,
    )
    assert findings == []


# ------------------------------------------------------------------- RL005


def test_rl005_fires_on_cross_class_metrics_mutation():
    findings = run(
        "RL005",
        """
        class CompressionService:
            def _on_job_done(self, job):
                self.metrics.jobs_done += 1
                self.admission.inflight = 0
        """,
        relpath="repro/service/scheduler.py",
    )
    assert hits(findings) == [("RL005", 4), ("RL005", 5)]
    assert "ServiceMetrics" in findings[0].message
    assert "AdmissionController" in findings[1].message


def test_rl005_fires_on_local_binding_mutation():
    findings = run(
        "RL005",
        """
        def make():
            admission = AdmissionController(budget=64)
            admission.inflight = 3
        """,
        relpath="repro/service/scheduler.py",
    )
    assert hits(findings) == [("RL005", 4)]


def test_rl005_allows_owning_class_and_method_calls():
    findings = run(
        "RL005",
        """
        class ServiceMetrics:
            def record_done(self):
                self.jobs_done += 1

        class CompressionService:
            def __init__(self):
                self.metrics = ServiceMetrics()

            def _on_job_done(self, job):
                self.metrics.record_done()
        """,
        relpath="repro/service/scheduler.py",
    )
    assert findings == []


# ------------------------------------------------------------------- RL006


def test_rl006_fires_on_swallowed_broad_except():
    findings = run(
        "RL006",
        """
        def f():
            try:
                g()
            except Exception:
                return None
            try:
                g()
            except (ValueError, BaseException) as exc:
                log(exc)
        """,
    )
    assert hits(findings) == [("RL006", 5), ("RL006", 9)]


def test_rl006_fires_on_bare_except():
    findings = run(
        "RL006",
        """
        def f():
            try:
                g()
            except:
                pass
        """,
    )
    assert hits(findings) == [("RL006", 5)]


def test_rl006_allows_reraise_conversion_and_narrow():
    findings = run(
        "RL006",
        """
        def f(fut, writer):
            try:
                g()
            except BaseException:
                cleanup()
                raise
            try:
                g()
            except Exception as exc:
                fut.set_exception(exc)
            try:
                g()
            except Exception as exc:
                writer.write(encode_error(str(exc)))
            try:
                g()
            except ValueError:
                pass
        """,
    )
    assert findings == []


# ------------------------------------------------------------------- RL007


def test_rl007_fires_on_native_order_dtypes():
    findings = run(
        "RL007",
        """
        import numpy as np

        def load(raw, vals):
            a = np.frombuffer(raw, dtype=np.uint32)
            b = np.frombuffer(raw, dtype="float64")
            c = vals.astype(np.int64).tobytes()
            return a, b, c
        """,
    )
    assert hits(findings) == [("RL007", 5), ("RL007", 6), ("RL007", 7)]


def test_rl007_allows_explicit_and_single_byte():
    findings = run(
        "RL007",
        """
        import numpy as np

        def load(raw, vals, dtype):
            a = np.frombuffer(raw, dtype="<u4")
            b = np.frombuffer(raw, dtype=np.uint8)
            c = vals.astype("<f8", copy=False).tobytes()
            d = np.frombuffer(raw, dtype=dtype)  # runtime dtype: wire-checked
            e = vals.astype(np.float64)  # stays in process, no tobytes
            return a, b, c, d, e
        """,
    )
    assert findings == []


# ------------------------------------------------------------------- RL008


def test_rl008_fires_on_pickle_loads():
    findings = run(
        "RL008",
        """
        import pickle
        from pickle import loads as pl

        def read(blob):
            a = pickle.loads(blob)
            b = pl(blob)
            return a, b
        """,
    )
    assert hits(findings) == [("RL008", 6), ("RL008", 7)]


def test_rl008_allows_plan_broadcast_module():
    findings = run(
        "RL008",
        """
        import pickle

        def rehydrate(blob):
            return pickle.loads(blob)
        """,
        relpath="repro/parallel/executor.py",
        allow_modules=["repro/parallel/executor.py"],
    )
    assert findings == []


def test_rl008_dumps_is_fine():
    findings = run(
        "RL008",
        """
        import pickle

        def save(obj):
            return pickle.dumps(obj)
        """,
    )
    assert findings == []


# ------------------------------------------------------------------- RL009


def test_rl009_fires_on_swallowed_pool_break():
    findings = run(
        "RL009",
        """
        from concurrent.futures.process import BrokenProcessPool

        def submit(pool, fn):
            try:
                return pool.submit(fn)
            except BrokenProcessPool:
                return None
        """,
        relpath="repro/parallel/executor.py",
    )
    assert hits(findings) == [("RL009", 7)]


def test_rl009_fires_on_bare_reraise_of_timeout():
    findings = run(
        "RL009",
        """
        import asyncio

        async def guard(coro, timeout):
            try:
                return await asyncio.wait_for(coro, timeout)
            except asyncio.TimeoutError:
                raise
        """,
        relpath="repro/service/scheduler.py",
    )
    assert hits(findings) == [("RL009", 7)]


def test_rl009_allows_supervisor_route_and_typed_raise():
    findings = run(
        "RL009",
        """
        import asyncio
        from concurrent.futures.process import BrokenProcessPool
        from repro.errors import DeadlineExceededError, WorkerCrashError

        def dispatch(self, fn, gen):
            try:
                return self._pool.submit(fn)
            except BrokenProcessPool:
                self._note_crash(gen)

        async def guard(coro, timeout):
            try:
                return await asyncio.wait_for(coro, timeout)
            except asyncio.TimeoutError:
                raise DeadlineExceededError(timeout * 1e3, "running")

        def finish(outer, exc):
            try:
                raise exc
            except BrokenProcessPool:
                outer.set_exception(WorkerCrashError("job poisoned"))
        """,
        relpath="repro/parallel/executor.py",
    )
    assert findings == []


def test_rl009_ignores_unscoped_modules():
    findings = run(
        "RL009",
        """
        def wait(fut):
            try:
                return fut.result(1.0)
            except TimeoutError:
                return None
        """,
        relpath="repro/cli/progress.py",
        modules=["repro/service/*", "repro/parallel/*"],
    )
    assert findings == []


# ------------------------------------------------------------------- RL010


_RL010_OPTIONS = dict(
    deprecated=[
        "repro:compress_chunked",
        "repro:decompress_chunked",
    ],
    allow_modules=["repro/api.py", "repro/_shims.py"],
)


def test_rl010_fires_on_deprecated_from_import():
    findings = run(
        "RL010",
        """
        from repro import compress_chunked

        def save(data):
            return compress_chunked(data, error_bound=1e-3)
        """,
        **_RL010_OPTIONS,
    )
    assert hits(findings) == [("RL010", 2)]


def test_rl010_fires_on_deprecated_attribute_use():
    findings = run(
        "RL010",
        """
        import repro

        def load(blob):
            return repro.decompress_chunked(blob)
        """,
        **_RL010_OPTIONS,
    )
    assert hits(findings) == [("RL010", 5)]


def test_rl010_fires_on_shim_module_import():
    findings = run(
        "RL010",
        """
        from repro._shims import compress_chunked
        import repro._shims
        """,
        **_RL010_OPTIONS,
    )
    assert hits(findings) == [("RL010", 2), ("RL010", 3)]


def test_rl010_passes_on_canonical_and_facade_spellings():
    findings = run(
        "RL010",
        """
        import repro
        from repro.chunked import compress_chunked

        def save(data):
            return repro.compress(data, bound=1e-3, chunks=32)
        """,
        **_RL010_OPTIONS,
    )
    assert findings == []


def test_rl010_allowlists_the_shim_module_itself():
    findings = run(
        "RL010",
        """
        from repro import compress_chunked
        """,
        relpath="repro/_shims.py",
        **_RL010_OPTIONS,
    )
    assert findings == []


# ------------------------------------------------------------------- RL011


def test_rl011_fires_on_shard_state_in_process_args():
    findings = run(
        "RL011",
        """
        import multiprocessing

        def launch(config):
            metrics = ServiceMetrics()
            proc = multiprocessing.Process(
                target=shard_main, args=(config, metrics)
            )
            proc.start()
        """,
        relpath="repro/service/shard_runtime.py",
    )
    assert hits(findings) == [("RL011", 6)]
    assert "ServiceMetrics" in findings[0].message
    assert "planbus" in findings[0].message


def test_rl011_fires_on_pickling_tracked_attribute():
    findings = run(
        "RL011",
        """
        import pickle

        class ShardRuntime:
            def snapshot(self):
                return pickle.dumps(self._plans)
        """,
        relpath="repro/service/shard_runtime.py",
    )
    assert hits(findings) == [("RL011", 6)]
    assert "PlanLRU" in findings[0].message


def test_rl011_fires_on_sending_tracked_object_over_pipe():
    findings = run(
        "RL011",
        """
        def publish(conn):
            admission = AdmissionController(budget=64)
            conn.send(admission)
        """,
        relpath="repro/service/shard_runtime.py",
    )
    assert hits(findings) == [("RL011", 4)]
    assert "AdmissionController" in findings[0].message


def test_rl011_passes_on_encoded_messages_and_local_use():
    findings = run(
        "RL011",
        """
        import multiprocessing
        from repro.service.planbus import encode_plan

        def launch(config):
            metrics = ServiceMetrics()
            metrics.record_done()
            proc = multiprocessing.Process(
                target=shard_main, args=(config,)
            )
            conn, other = multiprocessing.Pipe()
            conn.send_bytes(encode_plan("climate", plan))
            return proc, metrics
        """,
        relpath="repro/service/shard_runtime.py",
    )
    assert findings == []


def test_rl011_allowlists_the_bus_module_itself():
    # the bus IS the sanctioned boundary: the same pickling that fires
    # anywhere else in the service layer is the bus's whole job
    findings = run(
        "RL011",
        """
        import pickle

        def encode_plan(family):
            plans = PlanLRU(capacity=8)
            return pickle.dumps(plans)
        """,
        relpath="repro/service/planbus.py",
        allow_modules=["repro/service/planbus.py"],
    )
    assert findings == []
