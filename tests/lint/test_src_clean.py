"""Meta-test: the shipped tree satisfies its own invariant checker.

This is the test CI's lint job mirrors — if a change introduces a
non-baselined finding anywhere in ``src/``, it fails here first, with
the finding text in the assertion message."""

import json
from pathlib import Path

from repro.lint import apply_baseline, build_rules, lint_paths, load_baseline
from repro.lint.cli import DEFAULT_BASELINE

SRC = Path(__file__).resolve().parents[2] / "src"


def test_src_tree_lints_clean_against_committed_baseline():
    findings = lint_paths([str(SRC)], build_rules())
    baseline = load_baseline(DEFAULT_BASELINE)
    fresh, stale = apply_baseline(findings, baseline)
    rendered = "\n".join(f.render() for f in fresh)
    assert not fresh, f"non-baselined reprolint findings:\n{rendered}"
    assert not stale, f"stale baseline entries (fixed code): {sorted(stale)}"


def test_service_and_encoding_have_no_grandfathered_findings():
    # the acceptance bar from the issue: the hardened subsystems carry
    # no baseline debt at all
    baseline = load_baseline(DEFAULT_BASELINE)
    debt = [
        key
        for key in baseline
        if key.startswith(("repro/service/", "repro/encoding/"))
    ]
    assert debt == []


def test_committed_baseline_is_valid_json_with_version():
    payload = json.loads(DEFAULT_BASELINE.read_text())
    assert payload["version"] == 1
    assert isinstance(payload["findings"], dict)
