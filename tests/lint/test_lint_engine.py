"""Engine mechanics: scoping, suppressions, baseline workflow, CLI."""

import json
import textwrap

import pytest

from repro.lint import (
    Finding,
    LintError,
    apply_baseline,
    build_rules,
    lint_source,
    load_baseline,
    rule_classes,
    save_baseline,
)
from repro.lint.cli import main as lint_main
from repro.lint.engine import ModuleContext, module_relpath


def _rules(rule_id, modules=("*",), **extra):
    overrides = {rule_id: {"modules": list(modules), **extra}}
    return build_rules(select=[rule_id], overrides=overrides)


BAD_EXCEPT = textwrap.dedent(
    """
    def f():
        try:
            g()
        except Exception:
            pass
    """
)


def test_rule_catalogue_is_complete():
    ids = sorted(rule_classes())
    assert ids == [f"RL{i:03d}" for i in range(1, 12)]


def test_module_scoping_gates_rules():
    rules = _rules("RL006", modules=["repro/service/*"])
    assert lint_source(BAD_EXCEPT, "repro/service/worker.py", rules)
    assert not lint_source(BAD_EXCEPT, "repro/analysis/report.py", rules)


def test_unknown_rule_id_rejected():
    with pytest.raises(KeyError):
        build_rules(select=["RL999"])


def test_same_line_suppression():
    src = BAD_EXCEPT.replace(
        "except Exception:", "except Exception:  # reprolint: disable=RL006"
    )
    assert not lint_source(src, "m.py", _rules("RL006"))


def test_preceding_comment_suppression():
    src = textwrap.dedent(
        """
        def f():
            try:
                g()
            # reprolint: disable=RL006
            except Exception:
                pass
        """
    )
    assert not lint_source(src, "m.py", _rules("RL006"))


def test_suppression_is_rule_specific():
    src = BAD_EXCEPT.replace(
        "except Exception:", "except Exception:  # reprolint: disable=RL001"
    )
    findings = lint_source(src, "m.py", _rules("RL006"))
    assert [f.rule for f in findings] == ["RL006"]


def test_disable_all_suppression():
    src = BAD_EXCEPT.replace(
        "except Exception:", "except Exception:  # reprolint: disable=all"
    )
    assert not lint_source(src, "m.py", _rules("RL006"))


def test_syntax_error_is_lint_error():
    with pytest.raises(LintError):
        ModuleContext("m.py", "def f(:\n")


def test_module_relpath_anchors_at_package():
    from pathlib import Path

    assert (
        module_relpath(Path("/x/repo/src/repro/service/protocol.py"))
        == "repro/service/protocol.py"
    )
    assert (
        module_relpath(Path("tests/lint/test_engine.py"))
        == "tests/lint/test_engine.py"
    )


# ------------------------------------------------------------------ baseline


def test_baseline_roundtrip_and_stale_detection(tmp_path):
    rules = _rules("RL006")
    findings = lint_source(BAD_EXCEPT, "m.py", rules)
    assert len(findings) == 1

    path = tmp_path / "baseline.json"
    save_baseline(path, findings)
    baseline = load_baseline(path)
    assert baseline == {findings[0].key: 1}

    # the grandfathered finding is subtracted...
    fresh, stale = apply_baseline(findings, baseline)
    assert fresh == [] and stale == {}

    # ...a second identical finding is NOT covered by a count of 1...
    fresh, stale = apply_baseline(findings * 2, baseline)
    assert len(fresh) == 1

    # ...and a fixed finding leaves a stale entry behind
    fresh, stale = apply_baseline([], baseline)
    assert fresh == [] and stale == baseline


def test_baseline_key_survives_line_moves():
    rules = _rules("RL006")
    (before,) = lint_source(BAD_EXCEPT, "m.py", rules)
    moved = "x = 1\ny = 2\n" + BAD_EXCEPT
    (after,) = lint_source(moved, "m.py", rules)
    assert before.line != after.line
    assert before.key == after.key


def test_baseline_version_mismatch_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": {}}))
    with pytest.raises(LintError):
        load_baseline(path)


# ----------------------------------------------------------------------- cli


def test_cli_clean_file_exits_zero(tmp_path, capsys):
    target = tmp_path / "ok.py"
    target.write_text("def f():\n    return 1\n")
    assert lint_main(["--no-baseline", str(target)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_reports_findings_and_exit_one(tmp_path, capsys):
    target = tmp_path / "repro" / "service"
    target.mkdir(parents=True)
    bad = target / "bad.py"
    bad.write_text(BAD_EXCEPT)
    assert lint_main(["--no-baseline", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RL006" in out and "repro/service/bad.py" in out


def _bad_module(tmp_path):
    """A bad module at a repro-anchored path, so default scoping applies."""
    target = tmp_path / "repro" / "bad.py"
    target.parent.mkdir(exist_ok=True)
    target.write_text(BAD_EXCEPT)
    return target


def test_cli_json_output(tmp_path, capsys):
    target = _bad_module(tmp_path)
    assert lint_main(["--no-baseline", "--format", "json", str(target)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["rule"] == "RL006"


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    target = _bad_module(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert (
        lint_main(["--write-baseline", "--baseline", str(baseline), str(target)])
        == 0
    )
    assert (
        lint_main(["--baseline", str(baseline), str(target)]) == 0
    )
    # fixing the code turns the baseline entry stale -> nonzero exit
    target.write_text("def f():\n    return 1\n")
    assert lint_main(["--baseline", str(baseline), str(target)]) == 1
    assert "stale" in capsys.readouterr().out


def test_cli_select_limits_rules(tmp_path):
    target = _bad_module(tmp_path)
    assert lint_main(["--no-baseline", "--select", "RL002", str(target)]) == 0


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL001", "RL008"):
        assert rule_id in out


def test_main_module_dispatches_lint(tmp_path, capsys):
    from repro.__main__ import main

    target = tmp_path / "ok.py"
    target.write_text("x = 1\n")
    assert main(["lint", "--no-baseline", str(target)]) == 0
