"""Registry ↔ reality: wire_registry constants vs live code vs golden bytes.

RL003 pins source code to the registry; these tests pin the registry to
the *actual bytes* of the committed golden fixtures and the live
protocol encoder, closing the loop.  If any of the three drifts, one
side of a test here goes red."""

from pathlib import Path

import numpy as np
import pytest

from repro.lint.wire_registry import WIRE_SPECS, spec_for

GOLDEN = Path(__file__).resolve().parents[1] / "data" / "golden" / "golden_streams.npz"


@pytest.fixture(scope="module")
def golden():
    return np.load(GOLDEN)


@pytest.fixture(scope="module")
def header_spec():
    return spec_for("repro/core/header.py")


@pytest.fixture(scope="module")
def protocol_spec():
    return spec_for("repro/service/protocol.py")


def test_every_registered_module_exists():
    src = Path(__file__).resolve().parents[2] / "src"
    for spec in WIRE_SPECS:
        assert (src / spec.module).is_file(), spec.module


def test_registry_matches_live_header_module(header_spec):
    from repro.core import header

    assert header.MAGIC == header_spec.constants["MAGIC"]
    assert header.VERSION == header_spec.constants["VERSION"]
    assert header.FLAG_CHUNKED == header_spec.constants["FLAG_CHUNKED"]


def test_registry_matches_live_protocol_module(protocol_spec):
    from repro.service import protocol

    for name, expected in protocol_spec.constants.items():
        assert getattr(protocol, name) == expected, name


def test_golden_codec_blobs_start_with_registered_magic(golden, header_spec):
    magic = header_spec.constants["MAGIC"]
    version = header_spec.constants["VERSION"]
    checked = 0
    for key in golden.files:
        if not (key.startswith("codec_") and key.endswith("__blob")):
            continue
        blob = bytes(golden[key])
        assert blob[:4] == magic, key
        expected_version = 1 if "_v1_" in key or key.endswith("_v1__blob") else version
        assert blob[4] == expected_version, key
        checked += 1
    assert checked >= 5  # qoz, sz3, sz2, zfp, mgard (+ the v1 variant)


def test_golden_v1_variant_prevents_version_retirement(golden):
    # the committed v1-header stream keeps "accept every version ever
    # written" honest: bumping VERSION without keeping the v1 branch
    # readable fails decode tests, and re-registering v1 bytes as v2
    # fails here
    blob = bytes(golden["codec_sz3_v1__blob"])
    assert blob[4] == 1


def test_live_request_bytes_carry_registered_protocol_version(protocol_spec):
    from repro.service.protocol import PingRequest, encode_request, frame

    version = protocol_spec.constants["PROTOCOL_VERSION"]
    body = encode_request(PingRequest())
    assert body[0] == version
    assert body[1] == protocol_spec.constants["OP_PING"]

    framed = frame(body)
    length = int.from_bytes(framed[:4], "little")
    assert length == len(body)
    assert length <= protocol_spec.constants["MAX_FRAME"]


def test_registered_formats_are_valid_struct_formats():
    import struct

    for spec in WIRE_SPECS:
        for fmt in spec.formats:
            concrete = fmt.replace("{}", "3")
            struct.calcsize(concrete)  # raises on an invalid format
            assert fmt.startswith("<"), f"{spec.module}: {fmt} not little-endian"
