"""Integration + property tests shared by every codec.

The single most important invariant of the paper (and Fig. 7): for every
codec, every dataset and every bound, the decompressed array satisfies
``|x - x'| <= eb`` at *every* point, with no exceptions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MGARDPlus, QoZ, SZ2, SZ3, ZFP
from repro.compressors.base import (
    available_compressors,
    decompress_any,
    get_compressor,
)
from repro.errors import CompressionError, DecompressionError

ALL_CODECS = [SZ2, SZ3, ZFP, MGARDPlus, QoZ]


def smooth_field(shape, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    coords = np.meshgrid(
        *[np.linspace(0, 2.5 * np.pi, n) for n in shape], indexing="ij"
    )
    f = np.ones(shape)
    for i, c in enumerate(coords):
        f = f * np.sin(c * (i + 1) * 0.7 + 0.3)
    if noise:
        f = f + noise * rng.standard_normal(shape)
    return f.astype(np.float32)


@pytest.mark.parametrize("codec_cls", ALL_CODECS)
class TestEveryCodec:
    def test_bound_strict_3d(self, codec_cls):
        data = smooth_field((40, 40, 40), noise=0.05)
        codec = codec_cls()
        blob = codec.compress(data, rel_error_bound=1e-3)
        out = codec.decompress(blob)
        eb = 1e-3 * (data.max() - data.min())
        assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= eb

    def test_bound_strict_2d(self, codec_cls):
        data = smooth_field((80, 64))
        codec = codec_cls()
        blob = codec.compress(data, error_bound=1e-4)
        out = codec.decompress(blob)
        assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= 1e-4

    def test_dtype_and_shape_preserved(self, codec_cls):
        for dtype in (np.float32, np.float64):
            data = smooth_field((17, 23)).astype(dtype)
            codec = codec_cls()
            out = codec.decompress(codec.compress(data, rel_error_bound=1e-3))
            assert out.dtype == dtype
            assert out.shape == data.shape

    def test_decompression_deterministic(self, codec_cls):
        data = smooth_field((30, 30), noise=0.1)
        codec = codec_cls()
        blob = codec.compress(data, rel_error_bound=1e-2)
        a = codec.decompress(blob)
        b = codec.decompress(blob)
        np.testing.assert_array_equal(a, b)

    def test_decompress_any_routes_correctly(self, codec_cls):
        data = smooth_field((16, 16))
        codec = codec_cls()
        blob = codec.compress(data, rel_error_bound=1e-3)
        np.testing.assert_array_equal(decompress_any(blob), codec.decompress(blob))

    def test_constant_field(self, codec_cls):
        data = np.full((24, 24), 7.5, dtype=np.float32)
        codec = codec_cls()
        out = codec.decompress(codec.compress(data, error_bound=1e-6))
        assert np.abs(out - data).max() <= 1e-6

    def test_tiny_input(self, codec_cls):
        data = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        codec = codec_cls()
        out = codec.decompress(codec.compress(data, error_bound=0.01))
        assert np.abs(out.astype(np.float64) - data).max() <= 0.01

    def test_odd_shapes(self, codec_cls):
        data = smooth_field((13, 29, 7))
        codec = codec_cls()
        out = codec.decompress(codec.compress(data, rel_error_bound=1e-3))
        eb = 1e-3 * (data.max() - data.min())
        assert out.shape == data.shape
        assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= eb

    def test_invalid_inputs_rejected(self, codec_cls):
        codec = codec_cls()
        with pytest.raises(CompressionError):
            codec.compress(np.zeros((4, 4), dtype=np.int32), error_bound=0.1)
        with pytest.raises(CompressionError):
            codec.compress(np.zeros((4, 4), dtype=np.float32))  # no bound
        with pytest.raises(CompressionError):
            codec.compress(
                np.zeros((4, 4), dtype=np.float32), error_bound=-1.0
            )
        with pytest.raises(CompressionError):
            codec.compress(
                np.full((4, 4), np.nan, dtype=np.float32), error_bound=0.1
            )

    def test_wrong_codec_stream_rejected(self, codec_cls):
        data = smooth_field((8, 8))
        codec = codec_cls()
        blob = codec.compress(data, error_bound=0.1)
        others = [c for c in ALL_CODECS if c is not codec_cls]
        with pytest.raises(DecompressionError):
            others[0]().decompress(blob)

    def test_truncated_stream_raises(self, codec_cls):
        data = smooth_field((16, 16))
        codec = codec_cls()
        blob = codec.compress(data, rel_error_bound=1e-3)
        with pytest.raises(DecompressionError):
            codec.decompress(blob[: len(blob) // 2])


class TestRegistry:
    def test_all_names_registered(self):
        names = available_compressors()
        for expected in ("sz2", "sz3", "zfp", "mgard", "qoz"):
            assert expected in names

    def test_get_compressor_with_kwargs(self):
        codec = get_compressor("qoz", metric="ssim")
        assert codec.metric == "ssim"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_compressor("lzma")


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.sampled_from(["sz2", "sz3", "zfp", "mgard", "qoz"]),
    st.floats(min_value=1e-5, max_value=1e-1),
    st.integers(min_value=1, max_value=3),
)
def test_universal_bound_property(seed, name, rel_eb, ndim):
    """Random rough fields never violate the bound under any codec."""
    rng = np.random.default_rng(seed)
    shape = tuple(rng.integers(4, 24, size=ndim))
    data = rng.standard_normal(shape).astype(np.float32)
    codec = get_compressor(name)
    blob = codec.compress(data, rel_error_bound=rel_eb)
    out = codec.decompress(blob)
    eb = rel_eb * float(data.max() - data.min())
    assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= eb
