"""Codec-specific behavior tests for MGARD+, SZ3, and QoZ."""

import numpy as np
import pytest

from repro import MGARDPlus, QoZ, SZ3
from repro.compressors.mgard import _level_budgets
from repro.core.interpolation import CUBIC, LINEAR
from repro.errors import ConfigurationError
from repro.metrics import compression_ratio, psnr


def field2d(n=128, seed=0):
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 3 * np.pi, n)
    base = np.sin(x)[:, None] * np.cos(0.7 * x)[None, :]
    return (base + 0.02 * rng.standard_normal((n, n))).astype(np.float32)


class TestMGARD:
    def test_level_budgets_sum_below_bound(self):
        budgets = _level_budgets(1e-3, 10)
        assert sum(budgets.values()) < 1e-3

    def test_corrections_are_rare(self):
        data = field2d()
        codec = MGARDPlus()
        blob = codec.compress(data, rel_error_bound=1e-3)
        out = codec.decompress(blob)
        eb = 1e-3 * (data.max() - data.min())
        assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= eb

    def test_open_loop_worse_rate_than_sz3(self):
        # the closed-loop SZ3 at the same bound should compress better
        data = field2d(seed=1)
        cr_mgard = compression_ratio(
            data, MGARDPlus().compress(data, rel_error_bound=1e-3)
        )
        cr_sz3 = compression_ratio(
            data, SZ3().compress(data, rel_error_bound=1e-3)
        )
        assert cr_sz3 > cr_mgard * 0.9  # SZ3 at least comparable


class TestSZ3:
    def test_fixed_method_configurations(self):
        data = field2d(seed=2)
        for method in ("linear", "cubic"):
            codec = SZ3(method=method)
            out = codec.decompress(codec.compress(data, rel_error_bound=1e-3))
            eb = 1e-3 * (data.max() - data.min())
            assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= eb

    def test_invalid_method_raises(self):
        with pytest.raises(ConfigurationError):
            SZ3(method="quintic")

    def test_auto_selection_beats_or_matches_worst_fixed(self):
        data = field2d(seed=3)
        sizes = {}
        for method in ("linear", "cubic", "auto"):
            sizes[method] = len(SZ3(method=method).compress(data, rel_error_bound=1e-3))
        assert sizes["auto"] <= max(sizes["linear"], sizes["cubic"]) * 1.02


class TestQoZ:
    def test_invalid_metric_raises(self):
        with pytest.raises(ConfigurationError):
            QoZ(metric="mse")

    def test_invalid_selection_mode_raises(self):
        with pytest.raises(ConfigurationError):
            QoZ(selection="sometimes")

    def test_alpha_without_beta_raises(self):
        with pytest.raises(ConfigurationError):
            QoZ(alpha=1.5)

    def test_fixed_alpha_beta_recorded(self):
        data = field2d(seed=4)
        codec = QoZ(alpha=1.5, beta=3.0)
        codec.compress(data, rel_error_bound=1e-3)
        assert codec.last_report.alpha == 1.5
        assert codec.last_report.beta == 3.0
        assert codec.last_report.tuning is None

    def test_report_populated(self):
        data = field2d(seed=5)
        codec = QoZ(metric="psnr")
        blob = codec.compress(data, rel_error_bound=1e-3)
        r = codec.last_report
        assert r is not None
        assert (r.alpha, r.beta) in {
            (a, b)
            for a in (1.0, 1.25, 1.5, 1.75, 2.0)
            for b in (1.5, 2.0, 3.0, 4.0)
        }
        assert r.n_codes > 0
        assert r.anchor_stride == 64  # 2-D default

    def test_ablation_variants_all_roundtrip(self):
        data = field2d(seed=6)
        eb = 1e-3 * (data.max() - data.min())
        variants = [
            QoZ(selection="none", tune=False),              # SZ3 + AP
            QoZ(selection="global", tune=False),            # SZ3 + AP + S
            QoZ(selection="level", tune=False),             # + LIS
            QoZ(selection="level", tune=True),              # full QoZ
            QoZ(use_anchors=False),
        ]
        for codec in variants:
            out = codec.decompress(codec.compress(data, rel_error_bound=1e-3))
            assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= eb

    def test_anchor_grid_stored_exactly(self):
        data = field2d(seed=7)
        codec = QoZ(anchor_stride=32, tune=False, selection="none")
        out = codec.decompress(codec.compress(data, rel_error_bound=1e-2))
        np.testing.assert_array_equal(out[::32, ::32], data[::32, ::32])

    def test_metric_modes_trade_off(self):
        # AC mode should not produce a worse |autocorrelation| than CR mode
        from repro.metrics import error_autocorrelation

        data = field2d(seed=8)
        results = {}
        for metric in ("cr", "ac"):
            codec = QoZ(metric=metric)
            out = codec.decompress(codec.compress(data, rel_error_bound=1e-3))
            results[metric] = abs(error_autocorrelation(data, out))
        assert results["ac"] <= results["cr"] + 0.05

    def test_3d_defaults(self):
        data = np.random.default_rng(9).standard_normal((33, 33, 33)).astype(
            np.float32
        )
        codec = QoZ()
        codec.compress(data, rel_error_bound=1e-2)
        assert codec.last_report.anchor_stride == 32

    def test_psnr_mode_at_least_as_good_as_worst_candidate(self):
        data = field2d(seed=10)
        codec = QoZ(metric="psnr")
        out = codec.decompress(codec.compress(data, rel_error_bound=1e-3))
        p_tuned = psnr(data, out)
        codec_bad = QoZ(alpha=1.0, beta=1.0)
        out_bad = codec_bad.decompress(
            codec_bad.compress(data, rel_error_bound=1e-3)
        )
        # tuned PSNR should not be dramatically worse than untuned
        assert p_tuned >= psnr(data, out_bad) - 1.0
