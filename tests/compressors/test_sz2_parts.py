"""Unit tests for SZ2's building blocks: Lorenzo wavefronts + regression."""

import numpy as np
import pytest

from repro.compressors.lorenzo import (
    lorenzo_estimate_error,
    lorenzo_stencil,
    pad_low,
    predict_wavefront,
    scatter_wavefront,
    wavefronts,
)
from repro.compressors.regression import (
    blockify,
    fit_plane,
    predict_plane,
    regression_estimate_error,
    unblockify,
)
from repro.compressors.sz2 import SZ2, _pad_to_blocks


class TestLorenzo:
    def test_stencil_sizes(self):
        assert len(lorenzo_stencil(1)) == 1
        assert len(lorenzo_stencil(2)) == 3
        assert len(lorenzo_stencil(3)) == 7
        with pytest.raises(ValueError):
            lorenzo_stencil(4)

    def test_wavefronts_partition_and_order(self):
        coords = np.argwhere(np.ones((4, 5), dtype=bool))
        fronts = wavefronts(coords)
        total = sum(f.shape[0] for f in fronts)
        assert total == 20
        sums = [f.sum(axis=1) for f in fronts]
        assert all((s == s[0]).all() for s in sums)
        firsts = [int(s[0]) for s in sums]
        assert firsts == sorted(firsts)

    def test_wavefronts_empty(self):
        assert wavefronts(np.zeros((0, 2), dtype=np.int64)) == []

    def test_predict_exact_on_bilinear(self):
        # 2-D Lorenzo is exact for f = a + b*i + c*j + d*i*j... actually
        # exact for any f with zero second mixed difference; use f = i + 2j
        ii, jj = np.meshgrid(np.arange(6), np.arange(7), indexing="ij")
        f = (ii + 2 * jj).astype(np.float64)
        padded = pad_low(f.shape)
        padded[1:, 1:] = f
        pts = np.argwhere((ii > 0) & (jj > 0))
        pred = predict_wavefront(padded, pts)
        np.testing.assert_allclose(pred, f[pts[:, 0], pts[:, 1]])

    def test_scatter_then_predict_roundtrip(self):
        padded = pad_low((3, 3))
        pts = np.array([[0, 0], [1, 1]])
        scatter_wavefront(padded, pts, np.array([5.0, 7.0]))
        assert padded[1, 1] == 5.0 and padded[2, 2] == 7.0

    def test_estimate_error_zero_for_lorenzo_exact_field(self):
        ii, jj = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
        f = (3.0 * ii + jj).astype(np.float64)
        err = lorenzo_estimate_error(f)
        # interior points are exactly predicted; borders use the zero pad
        assert err[1:, 1:].max() < 1e-10
        assert err[0, 0] == pytest.approx(0.0)


class TestRegression:
    def test_blockify_roundtrip(self, rng):
        data = rng.standard_normal((12, 18))
        blocks = blockify(data, 6)
        assert blocks.shape == (6, 36)
        np.testing.assert_array_equal(unblockify(blocks, (12, 18), 6), data)

    def test_blockify_requires_divisible(self):
        with pytest.raises(ValueError):
            blockify(np.zeros((7, 6)), 6)

    def test_blockify_3d_blocks_are_contiguous_tiles(self, rng):
        data = rng.standard_normal((6, 6, 12))
        blocks = blockify(data, 6)
        np.testing.assert_array_equal(blocks[0], data[:6, :6, :6].ravel())

    def test_fit_plane_exact_on_planes(self):
        ii, jj = np.meshgrid(np.arange(6), np.arange(6), indexing="ij")
        f = 2.0 + 0.5 * ii - 1.5 * jj
        blocks = blockify(f, 6)
        coeffs = fit_plane(blocks, 6, 2)
        pred = predict_plane(coeffs, 6, 2)
        np.testing.assert_allclose(pred, blocks, atol=1e-4)

    def test_estimate_error_zero_on_planes(self):
        ii, jj = np.meshgrid(np.arange(12), np.arange(12), indexing="ij")
        f = 1.0 + ii - jj
        err = regression_estimate_error(blockify(f, 6), 6, 2)
        assert err.max() < 1e-4

    def test_pad_to_blocks(self):
        data = np.ones((7, 11), dtype=np.float32)
        padded = _pad_to_blocks(data, 6)
        assert padded.shape == (12, 12)
        np.testing.assert_array_equal(padded[:7, :11], data)


class TestSZ2Behavior:
    def test_regression_chosen_on_planar_data(self):
        ii, jj = np.meshgrid(np.arange(48), np.arange(48), indexing="ij")
        f = (0.3 * ii - 0.7 * jj).astype(np.float32)
        codec = SZ2()
        use_reg, _ = codec._choose_predictors(
            _pad_to_blocks(f, 12), 12
        )
        assert use_reg.mean() > 0.5  # planes favor regression

    def test_lorenzo_only_in_1d(self):
        f = np.sin(np.linspace(0, 10, 64)).astype(np.float32)
        codec = SZ2()
        use_reg, _ = codec._choose_predictors(_pad_to_blocks(f, 32), 32)
        assert not use_reg.any()

    def test_block_override(self):
        data = np.random.default_rng(0).standard_normal((24, 24)).astype(
            np.float32
        )
        codec = SZ2(block=8)
        out = codec.decompress(codec.compress(data, rel_error_bound=1e-2))
        eb = 1e-2 * (data.max() - data.min())
        assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= eb
