"""Cross-dimensional coverage: every codec on 1-D through 4-D inputs."""

import numpy as np
import pytest

from repro import MGARDPlus, QoZ, SZ2, SZ3, ZFP
from repro.errors import CompressionError


def walk(shape, seed=0):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.standard_normal(int(np.prod(shape)))).reshape(shape)
    return (x / np.abs(x).max()).astype(np.float32)


SHAPES = {
    1: (300,),
    2: (40, 50),
    3: (12, 14, 16),
    4: (6, 8, 10, 12),
}


@pytest.mark.parametrize("ndim", [1, 2, 3, 4])
@pytest.mark.parametrize("codec_cls", [SZ3, QoZ, ZFP, MGARDPlus])
def test_interp_and_transform_codecs_all_dims(codec_cls, ndim):
    data = walk(SHAPES[ndim], seed=ndim)
    codec = codec_cls()
    out = codec.decompress(codec.compress(data, rel_error_bound=1e-3))
    eb = 1e-3 * (data.max() - data.min())
    assert out.shape == data.shape
    assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= eb


@pytest.mark.parametrize("ndim", [1, 2, 3])
def test_sz2_supported_dims(ndim):
    data = walk(SHAPES[ndim], seed=ndim)
    codec = SZ2()
    out = codec.decompress(codec.compress(data, rel_error_bound=1e-3))
    eb = 1e-3 * (data.max() - data.min())
    assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= eb


def test_sz2_rejects_4d_cleanly():
    data = walk(SHAPES[4])
    with pytest.raises(CompressionError, match="1-3 dimensions"):
        SZ2().compress(data, rel_error_bound=1e-3)


@pytest.mark.parametrize("codec_cls", [SZ3, QoZ])
def test_single_point_per_axis_edge(codec_cls):
    # degenerate extents (length-1 axes) must survive the level machinery
    data = np.ascontiguousarray(walk((1, 37)))
    codec = codec_cls()
    out = codec.decompress(codec.compress(data, error_bound=1e-3))
    assert out.shape == data.shape
    assert np.abs(out.astype(np.float64) - data.astype(np.float64)).max() <= 1e-3


@pytest.mark.parametrize("codec_cls", [SZ3, QoZ, ZFP, MGARDPlus, SZ2])
def test_float64_input_all_codecs(codec_cls):
    data = walk((24, 24), seed=9).astype(np.float64)
    codec = codec_cls()
    out = codec.decompress(codec.compress(data, error_bound=1e-5))
    assert out.dtype == np.float64
    assert np.abs(out - data).max() <= 1e-5
