"""Robustness of compressed-stream parsing: corruption must raise, never
return silently wrong data or crash with non-library errors."""

import numpy as np
import pytest

from repro import QoZ, SZ2, SZ3
from repro.errors import DecompressionError, ReproError


def field(n=32, seed=0):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.standard_normal((n, n)), axis=0)
    return (x / np.abs(x).max()).astype(np.float32)


@pytest.mark.parametrize("codec_cls", [SZ3, SZ2, QoZ])
class TestTruncation:
    def test_every_truncation_point_is_handled(self, codec_cls):
        data = field()
        codec = codec_cls()
        blob = codec.compress(data, rel_error_bound=1e-2)
        # cut at a spread of byte offsets, including inside the header
        for cut in [0, 3, 10, len(blob) // 4, len(blob) // 2, len(blob) - 1]:
            with pytest.raises(ReproError):
                codec.decompress(blob[:cut])

    def test_trailing_garbage_tolerated_or_rejected_cleanly(self, codec_cls):
        data = field(seed=1)
        codec = codec_cls()
        blob = codec.compress(data, rel_error_bound=1e-2)
        try:
            out = codec.decompress(blob + b"\x00" * 16)
        except ReproError:
            return  # clean rejection is acceptable
        # if tolerated, the result must still be correct
        np.testing.assert_array_equal(out, codec.decompress(blob))


class TestHeaderCorruption:
    def test_codec_id_flip_detected(self):
        data = field(seed=2)
        blob = bytearray(SZ3().compress(data, rel_error_bound=1e-2))
        blob[5] = 99  # codec id byte
        with pytest.raises(DecompressionError):
            SZ3().decompress(bytes(blob))

    def test_magic_flip_detected(self):
        data = field(seed=3)
        blob = bytearray(SZ3().compress(data, rel_error_bound=1e-2))
        blob[0] ^= 0xFF
        with pytest.raises(DecompressionError):
            SZ3().decompress(bytes(blob))


class TestTuningTrace:
    def test_trace_exposes_all_candidates_and_extra_trials(self):
        data = field(n=96, seed=4)
        codec = QoZ(metric="psnr")
        codec.compress(data, rel_error_bound=1e-3)
        tuning = codec.last_report.tuning
        assert tuning is not None
        assert len(tuning.trials) == 20  # 5 alphas x 4 betas
        assert tuning.extra_trials >= 0
        # the winner appears among the trials
        assert any(
            t.alpha == tuning.alpha and t.beta == tuning.beta
            for t in tuning.trials
        )

    def test_cr_mode_records_no_metric(self):
        data = field(n=64, seed=5)
        codec = QoZ(metric="cr")
        codec.compress(data, rel_error_bound=1e-3)
        assert all(t.metric is None for t in codec.last_report.tuning.trials)

    def test_selection_reported_levels(self):
        data = field(n=96, seed=6)
        codec = QoZ(metric="cr")
        codec.compress(data, rel_error_bound=1e-3)
        sel = codec.last_report.selection
        assert sel is not None
        assert 1 in sel.per_level
