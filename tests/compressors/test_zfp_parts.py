"""Unit tests for the ZFP-like codec's building blocks."""

import numpy as np
import pytest

from repro.compressors.zfp import (
    BLOCK,
    P_TOP,
    Q,
    ZFP,
    _blockify,
    _from_negabinary,
    _group_bounds,
    _plane_cut,
    _scan_order,
    _to_negabinary,
    _transform_axis,
    _unblockify,
)


class TestNegabinary:
    def test_roundtrip_small(self):
        i = np.array([-5, -1, 0, 1, 7, 1000, -1000], dtype=np.int64)
        np.testing.assert_array_equal(_from_negabinary(_to_negabinary(i)), i)

    def test_roundtrip_large(self, rng):
        i = rng.integers(-(2**45), 2**45, size=1000)
        np.testing.assert_array_equal(_from_negabinary(_to_negabinary(i)), i)

    def test_magnitude_ordering_of_high_bits(self):
        # truncating low negabinary bits must give a bounded error
        i = np.array([12345678], dtype=np.int64)
        u = _to_negabinary(i)
        for k in (0, 4, 8):
            mask = (~np.uint64(0)) << np.uint64(k)
            err = abs(int(_from_negabinary(u & mask)[0]) - 12345678)
            assert err <= 2 ** (k + 1)


class TestTransform:
    def test_exact_inverse_1d(self, rng):
        blocks = rng.integers(-(2**30), 2**30, size=(50, 4))
        orig = blocks.copy()
        _transform_axis(blocks, 1, inverse=False)
        _transform_axis(blocks, 1, inverse=True)
        np.testing.assert_array_equal(blocks, orig)

    def test_exact_inverse_3d(self, rng):
        blocks = rng.integers(-(2**30), 2**30, size=(20, 4, 4, 4))
        orig = blocks.copy()
        for axis in (1, 2, 3):
            _transform_axis(blocks, axis, inverse=False)
        for axis in (3, 2, 1):
            _transform_axis(blocks, axis, inverse=True)
        np.testing.assert_array_equal(blocks, orig)

    def test_constant_block_concentrates_energy(self):
        blocks = np.full((1, 4), 1000, dtype=np.int64)
        _transform_axis(blocks, 1, inverse=False)
        assert blocks[0, 0] == 1000  # mean coefficient
        assert np.all(blocks[0, 1:] == 0)

    def test_growth_bounded(self, rng):
        # transform growth must stay within the headroom P_TOP - Q
        blocks = rng.integers(-(2**Q), 2**Q, size=(100, 4, 4, 4))
        for axis in (1, 2, 3):
            _transform_axis(blocks, axis, inverse=False)
        assert np.abs(blocks).max() < 2 ** (P_TOP - 1)


class TestScanOrder:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_permutation_valid(self, ndim):
        order = _scan_order(ndim)
        assert sorted(order.tolist()) == list(range(BLOCK**ndim))

    def test_dc_coefficient_first(self):
        assert _scan_order(3)[0] == 0

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_group_bounds_cover_block(self, ndim):
        groups = _group_bounds(ndim)
        assert groups[0][0] == 0
        assert groups[-1][1] == BLOCK**ndim
        for (a, b), (c, d) in zip(groups, groups[1:]):
            assert b == c and a < b


class TestBlockify:
    def test_roundtrip(self, rng):
        data = rng.standard_normal((8, 12, 4))
        blocks = _blockify(data)
        assert blocks.shape == (2 * 3 * 1, 4, 4, 4)
        np.testing.assert_array_equal(_unblockify(blocks, (8, 12, 4)), data)


class TestPlaneCut:
    def test_tighter_bound_keeps_more_planes(self):
        emax = np.array([0])
        k_loose = _plane_cut(emax, 1e-2, 3)[0]
        k_tight = _plane_cut(emax, 1e-6, 3)[0]
        assert k_tight < k_loose

    def test_high_exponent_blocks_keep_more_planes(self):
        ks = _plane_cut(np.array([0, 10]), 1e-4, 3)
        assert ks[1] < ks[0] or ks[0] == 0

    def test_clipped_to_valid_range(self):
        ks = _plane_cut(np.array([-2000, 2000]), 1e-3, 3)
        assert np.all((0 <= ks) & (ks <= P_TOP))


class TestZFPAccuracy:
    def test_psnr_scales_with_bound(self):
        from repro.metrics import psnr

        ax = np.linspace(0, 1, 48)
        X, Y, Z = np.meshgrid(ax, ax, ax, indexing="ij")
        f = (np.sin(5 * X) * np.cos(7 * Y) * (1 + Z)).astype(np.float32)
        codec = ZFP()
        psnrs = []
        for eb in (1e-2, 1e-3, 1e-4):
            out = codec.decompress(codec.compress(f, rel_error_bound=eb))
            psnrs.append(psnr(f, out))
        assert psnrs[0] < psnrs[1] < psnrs[2]

    def test_all_zero_field(self):
        f = np.zeros((8, 8, 8), dtype=np.float32)
        codec = ZFP()
        blob = codec.compress(f, error_bound=1e-6)
        np.testing.assert_array_equal(codec.decompress(blob), f)
        assert len(blob) < 300
