"""Fuzzed corrupt-stream robustness across every codec layer.

Corruption of a compressed stream must surface as
:class:`~repro.errors.ReproError` (usually ``DecompressionError``) or — for
payload damage the format cannot detect (there is no checksum) — as a
decoded array of the *declared* shape and dtype.  What must never happen:
``MemoryError`` / unbounded allocation, raw numpy/struct exceptions,
hangs, or a quietly mis-shaped result.  The seeds are fixed so failures
reproduce; each case fuzzes a spread of truncation points and bit flips
in the header, the Huffman tables, and the payload body.
"""

import numpy as np
import pytest

from repro import QoZ, SZ2, SZ3, ZFP, MGARDPlus
from repro.encoding.codec import decode_symbol_stream, encode_symbol_stream
from repro.encoding.lossless import (
    compress_floats_lossless,
    decompress_floats_lossless,
)
from repro.errors import ReproError

N_FLIPS = 120


def field(n=24, seed=0):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.standard_normal((n, n, n)), axis=0)
    return (x / np.abs(x).max()).astype(np.float32)


def flip_bit(blob: bytes, bit: int) -> bytes:
    out = bytearray(blob)
    out[bit >> 3] ^= 1 << (bit & 7)
    return bytes(out)


def spread(limit: int, count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, limit, size=min(count, limit))


class TestSymbolStreamFuzz:
    def make(self, seed):
        rng = np.random.default_rng(seed)
        syms = np.where(
            rng.random(4000) < 0.6, 0, rng.integers(0, 300, size=4000)
        ).astype(np.int64)
        return syms, encode_symbol_stream(syms)

    def test_truncations_raise(self):
        _, blob = self.make(1)
        for cut in sorted({0, 1, 5, *spread(len(blob), 40, 11).tolist()}):
            with pytest.raises(ReproError):
                decode_symbol_stream(blob[:cut])

    def test_bit_flips_never_escape_the_error_type(self):
        syms, blob = self.make(2)
        for bit in spread(len(blob) * 8, N_FLIPS, 12):
            try:
                out = decode_symbol_stream(flip_bit(blob, int(bit)))
            except ReproError:
                continue
            # undetectable payload damage: size contract must still hold
            assert out.shape == syms.shape
            assert out.dtype == syms.dtype

    def test_extras_bomb_is_rejected_not_allocated(self):
        """A forged run-class remainder must not drive np.repeat."""
        from repro.encoding.rle import detokenize_runs
        from repro.errors import DecompressionError

        tokens = np.array([300, 0, 300], dtype=np.int64)  # two runs of class 0
        extras = np.array([2**40, 0], dtype=np.uint64)  # claims 2**40 symbols
        with pytest.raises(DecompressionError):
            detokenize_runs(tokens, extras, dominant=0, alphabet_size=300)

    def test_run_length_int64_wraparound_is_rejected(self):
        """Four class-62 runs sum to 2**64 + 8, which wraps int64 to
        exactly 8 — a forged stream matching its declared count this way
        must raise, not hand np.repeat a wrapped total (heap corruption)."""
        from repro.encoding.bitstream import BitWriter
        from repro.encoding.huffman import HuffmanCode

        alphabet = 4
        tokens = np.full(4, alphabet + 62, dtype=np.int64)
        w = BitWriter()
        w.write_uint(8, 64)  # declared n == the wrapped sum
        w.write_uint(0, 32)  # lo
        w.write_uint(alphabet, 32)
        w.write_uint(1, 1)  # rle
        w.write_uint(0, 32)  # dominant
        w.write_uint(tokens.size, 64)
        code = HuffmanCode.from_symbols(tokens, alphabet + 64)
        code.serialize(w)
        code.encode(tokens, w)
        w.write_array(np.full(4, 2, dtype=np.uint64), np.full(4, 62, dtype=np.uint8))
        with pytest.raises(ReproError):
            decode_symbol_stream(w.getvalue())

    def test_declared_count_beyond_stream_is_rejected(self):
        _, blob = self.make(3)
        forged = bytearray(blob)
        forged[0:8] = (2**62).to_bytes(8, "big")  # absurd symbol count
        with pytest.raises(ReproError):
            decode_symbol_stream(bytes(forged))

    def test_consistent_forged_run_stream_is_capped_by_max_size(self):
        """Run tokens let a ~60-byte stream consistently declare a huge
        count; callers that know the field size pass max_size and the
        count is rejected before any allocation."""
        from repro.encoding.bitstream import BitWriter
        from repro.encoding.huffman import HuffmanCode

        alphabet, k = 4, 30
        tokens = np.full(4, alphabet + k, dtype=np.int64)
        n = 4 * (1 << k)  # 2^32 symbols, internally consistent
        w = BitWriter()
        w.write_uint(n, 64)
        w.write_uint(0, 32)
        w.write_uint(alphabet, 32)
        w.write_uint(1, 1)
        w.write_uint(0, 32)
        w.write_uint(tokens.size, 64)
        code = HuffmanCode.from_symbols(tokens, alphabet + 64)
        code.serialize(w)
        code.encode(tokens, w)
        w.write_array(np.zeros(4, dtype=np.uint64), np.full(4, k, dtype=np.uint8))
        with pytest.raises(ReproError):
            decode_symbol_stream(w.getvalue(), max_size=1 << 20)


class TestLosslessFloatFuzz:
    def test_truncations_and_flips(self):
        rng = np.random.default_rng(3)
        vals = np.cumsum(rng.standard_normal(2000)).astype(np.float64)
        blob = compress_floats_lossless(vals)
        for cut in sorted({0, 1, 16, *spread(len(blob), 25, 13).tolist()}):
            with pytest.raises(ReproError):
                decompress_floats_lossless(blob[:cut])
        for bit in spread(len(blob) * 8, N_FLIPS, 14):
            try:
                out = decompress_floats_lossless(flip_bit(blob, int(bit)))
            except ReproError:
                continue
            assert out.shape == vals.shape


@pytest.mark.filterwarnings("ignore::RuntimeWarning")  # corrupt-value math
@pytest.mark.parametrize(
    "codec_cls", [SZ3, SZ2, QoZ, ZFP, MGARDPlus], ids=lambda c: c.name
)
class TestCodecStreamFuzz:
    def blob(self, codec_cls, seed):
        data = field(seed=seed)
        codec = codec_cls()
        return data, codec, codec.compress(data, rel_error_bound=1e-2)

    def test_truncation_sweep(self, codec_cls):
        data, codec, blob = self.blob(codec_cls, 4)
        cuts = sorted({0, 3, 9, 17, *spread(len(blob), 30, 15).tolist()})
        for cut in cuts:
            with pytest.raises(ReproError):
                codec.decompress(blob[:cut])

    def test_header_and_table_flips(self, codec_cls):
        """Flips in the first bytes (header + section sizes + entropy
        tables) are the detectable region — they must raise or decode to
        the declared shape, never crash with a non-library error."""
        data, codec, blob = self.blob(codec_cls, 5)
        front = min(len(blob) * 8, 2048)
        self._flip_region(data, codec, blob, spread(front, N_FLIPS, 16))

    def test_payload_flips(self, codec_cls):
        data, codec, blob = self.blob(codec_cls, 6)
        bits = len(blob) * 8
        lo = min(bits - 1, 2048)
        flips = lo + spread(bits - lo, N_FLIPS, 17)
        self._flip_region(data, codec, blob, flips)

    @staticmethod
    def _flip_region(data, codec, blob, flips):
        from repro.core.header import parse_header

        for bit in flips:
            corrupt = flip_bit(blob, int(bit))
            try:
                out = codec.decompress(corrupt)
            except ReproError:
                continue
            # undetectable damage: the result must still honor whatever
            # shape/dtype the (possibly flipped) header declares
            header, _ = parse_header(corrupt)
            assert out.shape == header.shape
            assert out.dtype == header.dtype
