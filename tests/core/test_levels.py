"""Tests for multi-level grid geometry and pass traversal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.levels import (
    ORDER_BACKWARD,
    ORDER_FORWARD,
    anchor_count,
    anchor_slices,
    dim_order,
    level_pass_specs,
    max_level_for_anchor,
    max_level_for_shape,
    total_pass_targets,
)
from repro.errors import ConfigurationError


class TestLevelCounts:
    def test_max_level_for_shape(self):
        assert max_level_for_shape((512,)) == 9
        assert max_level_for_shape((513,)) == 10
        assert max_level_for_shape((100, 500, 500)) == 9
        assert max_level_for_shape((1,)) == 1

    def test_max_level_for_anchor(self):
        assert max_level_for_anchor(64) == 6
        assert max_level_for_anchor(32) == 5
        assert max_level_for_anchor(2) == 1

    def test_anchor_not_pow2_raises(self):
        with pytest.raises(ConfigurationError):
            max_level_for_anchor(48)

    def test_dim_order(self):
        assert dim_order(3, ORDER_FORWARD) == (0, 1, 2)
        assert dim_order(3, ORDER_BACKWARD) == (2, 1, 0)
        with pytest.raises(ConfigurationError):
            dim_order(2, 7)


class TestCoverage:
    """Anchors/root + all pass targets must partition the array."""

    @pytest.mark.parametrize(
        "shape",
        [(17,), (64,), (65,), (33, 47), (64, 64), (13, 21, 19), (32, 32, 32),
         (5, 6, 7, 8)],
    )
    def test_targets_plus_root_cover_array(self, shape):
        top = max_level_for_shape(shape)
        total = total_pass_targets(shape, top)
        assert total + 1 == int(np.prod(shape))

    @pytest.mark.parametrize("shape,anchor", [((64, 64), 16), ((33, 47), 8),
                                              ((32, 32, 32), 32)])
    def test_targets_plus_anchors_cover_array(self, shape, anchor):
        top = max_level_for_anchor(anchor)
        total = total_pass_targets(shape, top)
        assert total + anchor_count(shape, anchor) == int(np.prod(shape))

    def test_every_point_targeted_exactly_once(self):
        # mark targets with a counter array and assert all-ones
        shape = (24, 18)
        counts = np.zeros(shape, dtype=np.int64)
        top = max_level_for_shape(shape)
        for level in range(top, 0, -1):
            for spec in level_pass_specs(shape, level, (0, 1)):
                view = np.moveaxis(counts[spec.view_slices], spec.axis, -1)
                view[..., 1::2] += 1
        counts[0, 0] += 1  # root
        np.testing.assert_array_equal(counts, 1)

    def test_order_does_not_change_coverage(self):
        shape = (16, 24, 12)
        for order in [(0, 1, 2), (2, 1, 0), (1, 0, 2)]:
            total = 0
            top = max_level_for_shape(shape)
            for level in range(top, 0, -1):
                for spec in level_pass_specs(shape, level, order):
                    total += spec.n_targets
            assert total + 1 == 16 * 24 * 12


class TestPassSpecs:
    def test_pass_target_count_matches_view(self):
        shape = (20, 30)
        for level in (1, 2, 3):
            for spec in level_pass_specs(shape, level, (0, 1)):
                arr = np.zeros(shape)
                view = np.moveaxis(arr[spec.view_slices], spec.axis, -1)
                m = spec.grid_len // 2
                assert view[..., 1::2].size == spec.n_targets
                assert view.shape[-1] == spec.grid_len
                assert m >= 1

    def test_invalid_order_rejected(self):
        with pytest.raises(ConfigurationError):
            list(level_pass_specs((8, 8), 1, (0, 0)))

    def test_anchor_slices_extract_grid(self):
        a = np.arange(64).reshape(8, 8)
        sel = anchor_slices(2, 4)
        np.testing.assert_array_equal(a[sel], [[0, 4], [32, 36]])

    def test_huge_stride_skips_passes(self):
        # stride larger than every extent -> no targets at that level
        specs = list(level_pass_specs((8, 8), 5, (0, 1)))
        assert specs == []


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=3),
)
def test_coverage_property(shape):
    shape = tuple(shape)
    top = max_level_for_shape(shape)
    assert total_pass_targets(shape, top) + 1 == int(np.prod(shape))
