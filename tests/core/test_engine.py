"""Tests for the shared interpolation compression engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import (
    InterpPlan,
    LevelPlan,
    PassStats,
    interp_compress,
    interp_decompress,
)
from repro.core.interpolation import CUBIC, LINEAR
from repro.core.levels import (
    ORDER_BACKWARD,
    max_level_for_anchor,
    max_level_for_shape,
)


def make_plan(shape, eb, method=CUBIC, anchor=0, order_id=0, alpha=1.0, beta=1.0):
    top = (
        min(max_level_for_anchor(anchor), max_level_for_shape(shape))
        if anchor
        else max_level_for_shape(shape)
    )
    levels = {
        l: LevelPlan(
            eb=eb / min(alpha ** (l - 1), beta) if l > 1 else eb,
            method=method,
            order_id=order_id,
        )
        for l in range(1, top + 1)
    }
    return InterpPlan(levels=levels, anchor_stride=anchor)


def smooth_field(shape, seed=0):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.standard_normal(int(np.prod(shape)))).reshape(shape)
    return x / max(np.abs(x).max(), 1.0)


class TestRoundtrip:
    @pytest.mark.parametrize(
        "shape", [(50,), (31, 17), (64, 64), (9, 11, 13), (32, 32, 32)]
    )
    @pytest.mark.parametrize("method", [LINEAR, CUBIC])
    def test_roundtrip_bound_and_determinism(self, shape, method):
        data = smooth_field(shape)
        plan = make_plan(shape, 1e-3, method=method)
        codes, outliers, known, work = interp_compress(data, plan)
        recon = interp_decompress(shape, plan, codes, outliers, known)
        np.testing.assert_array_equal(recon, work)
        assert np.abs(recon - data).max() <= 1e-3
        # second decompression identical
        recon2 = interp_decompress(shape, plan, codes, outliers, known)
        np.testing.assert_array_equal(recon, recon2)

    @pytest.mark.parametrize("anchor", [4, 8, 16])
    def test_anchored_roundtrip(self, anchor):
        shape = (40, 56)
        data = smooth_field(shape, seed=3)
        plan = make_plan(shape, 5e-4, anchor=anchor)
        codes, outliers, known, _ = interp_compress(data, plan)
        recon = interp_decompress(shape, plan, codes, outliers, known)
        assert np.abs(recon - data).max() <= 5e-4
        # anchors are stored exactly
        np.testing.assert_array_equal(
            recon[::anchor, ::anchor], data[::anchor, ::anchor]
        )

    def test_code_count_covers_all_points(self):
        shape = (33, 29)
        data = smooth_field(shape, seed=1)
        plan = make_plan(shape, 1e-3)
        codes, _, known, _ = interp_compress(data, plan)
        assert codes.size + known.size == data.size

    def test_level_wise_error_bounds_respected(self):
        # alpha=2, beta=4: higher levels must be more accurate
        shape = (64, 64)
        data = smooth_field(shape, seed=2)
        plan = make_plan(shape, 1e-2, alpha=2.0, beta=4.0)
        codes, outliers, known, _ = interp_compress(data, plan)
        recon = interp_decompress(shape, plan, codes, outliers, known)
        assert np.abs(recon - data).max() <= 1e-2
        # points on the level-2 grid (stride 2) were bounded by eb/2 at
        # quantization time; their final error also includes nothing else
        lvl2 = np.abs(recon - data)[::2, ::2]
        assert lvl2.max() <= 1e-2 / 2 + 1e-12

    def test_backward_order_changes_stream_but_roundtrips(self):
        shape = (24, 16)
        data = smooth_field(shape, seed=4)
        plan_f = make_plan(shape, 1e-3)
        plan_b = make_plan(shape, 1e-3, order_id=ORDER_BACKWARD)
        codes_f, *_ = interp_compress(data, plan_f)
        codes_b, out_b, known_b, _ = interp_compress(data, plan_b)
        recon = interp_decompress(shape, plan_b, codes_b, out_b, known_b)
        assert np.abs(recon - data).max() <= 1e-3
        assert not np.array_equal(codes_f, codes_b)

    def test_batched_matches_individual(self):
        shape = (16, 16)
        stack = np.stack([smooth_field(shape, seed=s) for s in range(4)])
        plan = make_plan(shape, 1e-3)
        codes_b, out_b, known_b, work_b = interp_compress(stack, plan, batch=True)
        recon_b = interp_decompress(shape, plan, codes_b, out_b, known_b,
                                    batch_size=4)
        for i in range(4):
            codes_i, out_i, known_i, _ = interp_compress(stack[i], plan)
            recon_i = interp_decompress(shape, plan, codes_i, out_i, known_i)
            np.testing.assert_array_equal(recon_b[i], recon_i)

    def test_stats_collection(self):
        shape = (32, 32)
        data = smooth_field(shape, seed=5)
        plan = make_plan(shape, 1e-3)
        stats = PassStats()
        interp_compress(data, plan, stats=stats)
        top = max_level_for_shape(shape)
        assert set(stats.count) == set(range(1, top + 1))
        assert all(v >= 0 for v in stats.abs_err_sum.values())
        assert stats.mean_abs_error(1) >= 0.0

    def test_outlier_heavy_input(self, rng):
        # white noise with tiny bound: mostly within radius but check path
        data = rng.standard_normal((20, 20)) * 1e6
        plan = make_plan((20, 20), 1e-7)
        codes, outliers, known, _ = interp_compress(data, plan)
        recon = interp_decompress((20, 20), plan, codes, outliers, known)
        assert np.abs(recon - data).max() <= 1e-7

    def test_constant_field_compresses_to_all_zero_residuals(self):
        data = np.full((32, 32), 3.25)
        plan = make_plan((32, 32), 1e-3)
        codes, outliers, known, _ = interp_compress(data, plan)
        from repro.quantize.linear import DEFAULT_RADIUS

        assert np.all(codes == DEFAULT_RADIUS)
        assert outliers.size == 0


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=1, max_value=3),
    st.floats(min_value=1e-6, max_value=1e-1),
    st.sampled_from([LINEAR, CUBIC]),
)
def test_engine_bound_property(seed, extent, ndim, eb, method):
    rng = np.random.default_rng(seed)
    shape = tuple(rng.integers(2, extent + 1, size=ndim))
    data = rng.standard_normal(shape)
    plan = make_plan(shape, eb, method=method)
    codes, outliers, known, _ = interp_compress(data, plan)
    recon = interp_decompress(shape, plan, codes, outliers, known)
    assert np.abs(recon - data).max() <= eb
