"""Tests for QoZ's online machinery: sampling, Algorithm 1, Table I tuning."""

import numpy as np
import pytest

from repro.core.interpolation import CUBIC, LINEAR
from repro.core.levels import max_level_for_shape
from repro.core.sampling import effective_block_size, sample_blocks, sampling_stride
from repro.core.selection import (
    CANDIDATES,
    SelectionResult,
    select_global_interpolator,
    select_interpolators,
)
from repro.core.tuning import (
    ALPHA_CANDIDATES,
    BETA_CANDIDATES,
    TrialResult,
    _line_side_compare,
    level_error_bounds,
    tune_parameters,
)
from repro.errors import ConfigurationError


def smooth(shape, seed=0):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.standard_normal(int(np.prod(shape)))).reshape(shape)
    return x / np.abs(x).max()


class TestSampling:
    def test_block_stack_shape(self):
        data = smooth((128, 128))
        blocks, b = sample_blocks(data, 16, 0.05)
        assert b == 16
        assert blocks.shape[1:] == (16, 16)
        assert blocks.shape[0] >= 1

    def test_sample_rate_roughly_respected(self):
        data = smooth((256, 256))
        blocks, b = sample_blocks(data, 16, 0.04)
        rate = blocks.size / data.size
        assert 0.01 <= rate <= 0.16  # within ~4x of requested

    def test_block_shrinks_for_small_input(self):
        data = smooth((20, 10))
        blocks, b = sample_blocks(data, 64, 0.5)
        assert b <= 8  # power of two fitting the smallest extent
        assert blocks.shape[0] >= 1

    def test_blocks_are_actual_data(self):
        data = smooth((64, 64))
        blocks, b = sample_blocks(data, 16, 0.9)
        np.testing.assert_array_equal(blocks[0], data[:b, :b])

    def test_invalid_rate_raises(self):
        with pytest.raises(ConfigurationError):
            sampling_stride(16, 0.0, 2)
        with pytest.raises(ConfigurationError):
            sampling_stride(16, 1.5, 2)

    def test_non_pow2_block_rejected(self):
        with pytest.raises(ConfigurationError):
            effective_block_size((64, 64), 24)

    def test_3d_sampling(self):
        data = smooth((48, 48, 48))
        blocks, b = sample_blocks(data, 16, 0.01)
        assert blocks.shape[1:] == (b,) * 3


class TestSelection:
    def test_smooth_data_prefers_cubic(self):
        # a cubic-friendly smooth field
        x = np.linspace(0, 3 * np.pi, 64)
        data = np.sin(x)[:, None] * np.cos(x)[None, :]
        blocks, _ = sample_blocks(data, 32, 0.5)
        result = select_interpolators(blocks, 1e-4)
        assert result.per_level[1][0] == CUBIC

    def test_result_has_every_block_level(self):
        data = smooth((64, 64), seed=1)
        blocks, b = sample_blocks(data, 16, 0.2)
        result = select_interpolators(blocks, 1e-3)
        assert set(result.per_level) == set(range(1, max_level_for_shape((b, b)) + 1))

    def test_higher_levels_reuse_top_selection(self):
        result = SelectionResult(per_level={1: (LINEAR, 0), 2: (CUBIC, 1)},
                                 l1_errors={})
        assert result.interpolator(2) == (CUBIC, 1)
        assert result.interpolator(9) == (CUBIC, 1)

    def test_global_selection_returns_candidate(self):
        data = smooth((64, 64), seed=2)
        blocks, _ = sample_blocks(data, 16, 0.2)
        choice = select_global_interpolator(blocks, 1e-3)
        assert choice in CANDIDATES

    def test_anisotropic_data_picks_matching_order(self):
        # variation only along axis 1: interpolating along axis 1 first
        # (backward order for 2-D) vs forward changes the error; selection
        # must pick one of the two deterministically
        data = np.tile(np.sin(np.linspace(0, 8 * np.pi, 64)), (64, 1))
        data += smooth((64, 64), seed=3) * 1e-3
        blocks, _ = sample_blocks(data, 16, 0.3)
        result = select_interpolators(blocks, 1e-4)
        assert result.per_level[1] in CANDIDATES


class TestLevelErrorBounds:
    def test_formula_matches_paper_eq5(self):
        ebs = level_error_bounds(0.1, 2.0, 4.0, 5)
        assert ebs[1] == 0.1
        assert ebs[2] == pytest.approx(0.1 / 2.0)
        assert ebs[3] == pytest.approx(0.1 / 4.0)  # min(alpha^2, beta) = 4
        assert ebs[4] == pytest.approx(0.1 / 4.0)  # beta caps
        assert ebs[5] == pytest.approx(0.1 / 4.0)

    def test_monotone_non_increasing_with_level(self):
        for alpha in ALPHA_CANDIDATES:
            for beta in BETA_CANDIDATES:
                ebs = level_error_bounds(1e-3, alpha, beta, 8)
                vals = [ebs[l] for l in range(1, 9)]
                assert all(a >= b for a, b in zip(vals, vals[1:]))
                assert max(vals) == ebs[1] == 1e-3

    def test_invalid_alpha_raises(self):
        with pytest.raises(ConfigurationError):
            level_error_bounds(1e-3, 0.5, 2.0, 4)


class TestTableOneComparison:
    def test_line_side_challenger_wins_when_incumbent_below(self):
        inc = TrialResult(1, 1, bit_rate=2.0, metric=50.0)
        cha = TrialResult(2, 4, bit_rate=1.0, metric=45.0)
        ret = TrialResult(2, 4, bit_rate=3.0, metric=60.0)
        # line through (1,45),(3,60): at B=2 -> 52.5 > 50 -> challenger wins
        assert _line_side_compare(inc, cha, ret) is True

    def test_line_side_incumbent_wins_when_above(self):
        inc = TrialResult(1, 1, bit_rate=2.0, metric=55.0)
        cha = TrialResult(2, 4, bit_rate=1.0, metric=45.0)
        ret = TrialResult(2, 4, bit_rate=3.0, metric=60.0)
        assert _line_side_compare(inc, cha, ret) is False

    def test_degenerate_line_falls_back_to_metric(self):
        inc = TrialResult(1, 1, bit_rate=2.0, metric=50.0)
        cha = TrialResult(2, 4, bit_rate=2.0, metric=51.0)
        ret = TrialResult(2, 4, bit_rate=2.0, metric=51.0)
        assert _line_side_compare(inc, cha, ret) is True


class TestTuning:
    def setup_method(self):
        self.data = smooth((96, 96), seed=7)
        self.blocks, b = sample_blocks(self.data, 16, 0.1)
        self.selection = select_interpolators(self.blocks, 1e-3)
        self.top = max_level_for_shape((b, b))

    def test_cr_mode_picks_min_bitrate(self):
        outcome = tune_parameters(
            self.blocks, 1e-3, self.selection, self.top, metric="cr"
        )
        rates = {(t.alpha, t.beta): t.bit_rate for t in outcome.trials}
        assert rates[(outcome.alpha, outcome.beta)] == min(rates.values())

    def test_tries_all_candidates(self):
        outcome = tune_parameters(
            self.blocks, 1e-3, self.selection, self.top, metric="cr"
        )
        assert len(outcome.trials) == len(ALPHA_CANDIDATES) * len(BETA_CANDIDATES)

    def test_psnr_mode_produces_metric_values(self):
        outcome = tune_parameters(
            self.blocks, 1e-3, self.selection, self.top, metric="psnr",
            data_range=float(self.data.max() - self.data.min()),
        )
        assert all(t.metric is not None for t in outcome.trials)
        assert (outcome.alpha, outcome.beta) in {
            (a, b) for a in ALPHA_CANDIDATES for b in BETA_CANDIDATES
        }

    def test_ac_mode_metric_is_nonpositive(self):
        outcome = tune_parameters(
            self.blocks, 1e-3, self.selection, self.top, metric="ac"
        )
        assert all(t.metric <= 0 for t in outcome.trials)

    def test_invalid_metric_raises(self):
        with pytest.raises(ConfigurationError):
            tune_parameters(self.blocks, 1e-3, self.selection, self.top,
                            metric="nope")

    def test_restricted_candidate_grid(self):
        outcome = tune_parameters(
            self.blocks, 1e-3, self.selection, self.top, metric="cr",
            alphas=(1.0, 2.0), betas=(2.0,),
        )
        assert len(outcome.trials) == 2
        assert outcome.beta == 2.0
