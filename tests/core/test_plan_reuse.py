"""Frozen-plan derivation/execution split (`repro.core.plan_cache`).

The contract has three legs: (1) a plan derived from a field and executed
on the same field is byte-identical to inline compression (derivation is
deterministic, execution is the same code path); (2) a plan derived from
the *full* field and applied chunk-wise still honors the strict error
bound on every chunk — the quantizer enforces the bound at execution
time, sharing a plan only trades compression ratio; (3) plans are small,
picklable, and survive the process-pool broadcast.
"""

import pickle

import numpy as np
import pytest

from repro.chunked import ChunkedFile, compress_chunked
from repro.chunked.tiling import grid_for
from repro.core.plan_cache import FrozenPlan, execute_frozen_plan
from repro.core.qoz import QoZ
from repro.compressors.sz3 import SZ3
from repro.errors import CompressionError, ConfigurationError


def smooth3d(shape=(48, 48, 48), seed=0):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.standard_normal(shape), axis=0)
    x += np.cumsum(rng.standard_normal(shape), axis=1)
    return x / np.abs(x).max()


class TestPlanByteIdentity:
    @pytest.mark.parametrize("metric", ["cr", "psnr"])
    def test_qoz_plan_reuse_is_byte_identical(self, metric):
        data = smooth3d(seed=1)
        codec = QoZ(metric=metric)
        inline = codec.compress(data, rel_error_bound=1e-3)
        plan = codec.derive_plan(data, rel_error_bound=1e-3)
        replay = codec.compress_with_plan(data, plan)
        assert replay == inline

    def test_sz3_plan_reuse_is_byte_identical(self):
        data = smooth3d(seed=2)
        codec = SZ3()
        inline = codec.compress(data, error_bound=1e-3)
        plan = codec.derive_plan(data, error_bound=1e-3)
        assert codec.compress_with_plan(data, plan) == inline

    def test_inline_report_exposes_the_reusable_plan(self):
        data = smooth3d(seed=3)
        codec = QoZ(metric="cr")
        inline = codec.compress(data, error_bound=1e-3)
        plan = codec.last_report.plan
        assert isinstance(plan, FrozenPlan)
        assert codec.compress_with_plan(data, plan) == inline
        assert codec.last_report.from_plan is True

    def test_plan_streams_decode_without_the_plan(self):
        data = smooth3d(seed=4)
        codec = QoZ(metric="cr")
        plan = codec.derive_plan(data, error_bound=1e-3)
        blob = codec.compress_with_plan(data, plan)
        recon = QoZ().decompress(blob)
        assert np.abs(recon - data).max() <= 1e-3


class TestChunkWiseReuse:
    def test_full_field_plan_holds_bound_on_every_chunk(self):
        data = smooth3d((64, 64, 64), seed=5)
        eb = 1e-3
        codec = QoZ(metric="cr")
        plan = codec.derive_plan(data, error_bound=eb)
        grid = grid_for(data.shape, 32)
        for i in grid:
            chunk = np.ascontiguousarray(data[grid.chunk_slices(i)])
            blob = codec.compress_with_plan(chunk, plan, error_bound=eb)
            recon = QoZ().decompress(blob)
            violations = np.abs(recon - chunk) > eb
            assert int(violations.sum()) == 0

    def test_chunked_container_shared_vs_per_chunk_same_bound(self):
        data = smooth3d((48, 48, 48), seed=6).astype(np.float32)
        eb = 1e-3
        shared = compress_chunked(data, codec="qoz", chunks=24, error_bound=eb)
        tuned = compress_chunked(
            data, codec="qoz", chunks=24, error_bound=eb, per_chunk_tuning=True
        )
        for blob in (shared, tuned):
            with ChunkedFile(blob) as f:
                out = f.to_array()
            assert np.abs(out.astype(np.float64) - data).max() <= eb

    def test_injected_plan_matches_derived_plan_bytes(self):
        """compress_chunked(plan=...) must equal the derive-inside path
        (the service layer injects its cached plan through this kwarg)."""
        data = smooth3d((48, 48, 48), seed=9)
        eb = 1e-3
        plan = QoZ(metric="cr").derive_plan(data, error_bound=eb)
        injected = compress_chunked(
            data, codec="qoz", chunks=24, error_bound=eb, plan=plan
        )
        derived = compress_chunked(
            data, codec="qoz", chunks=24, error_bound=eb
        )
        assert injected == derived

    def test_injected_plan_rejected_for_planless_codec(self):
        data = smooth3d(seed=10)
        plan = QoZ(metric="cr").derive_plan(data, error_bound=1e-3)
        with pytest.raises(CompressionError, match="does not support plan"):
            compress_chunked(
                data, codec="zfp", chunks=24, error_bound=1e-3, plan=plan
            )

    def test_injected_plan_contradicts_per_chunk_tuning(self):
        data = smooth3d(seed=11)
        plan = QoZ(metric="cr").derive_plan(data, error_bound=1e-3)
        with pytest.raises(CompressionError, match="contradictory"):
            compress_chunked(
                data, codec="qoz", chunks=24, error_bound=1e-3,
                plan=plan, per_chunk_tuning=True,
            )

    def test_shared_plan_amortizes_tuning_work(self):
        """The shared-plan path must not re-derive per chunk (the point of
        the split); spy on derive_plan to count invocations."""
        data = smooth3d((48, 48, 48), seed=7)
        calls = {"n": 0}
        orig = QoZ.derive_plan

        def counting(self, *a, **k):
            calls["n"] += 1
            return orig(self, *a, **k)

        QoZ.derive_plan = counting
        try:
            compress_chunked(data, codec="qoz", chunks=24, error_bound=1e-3)
        finally:
            QoZ.derive_plan = orig
        assert calls["n"] == 1


class TestFrozenPlanObject:
    def test_plan_pickles_small(self):
        data = smooth3d(seed=8)
        plan = QoZ(metric="cr").derive_plan(data, rel_error_bound=1e-3)
        blob = pickle.dumps(plan)
        assert len(blob) < 4096
        assert pickle.loads(blob) == plan

    def test_codec_mismatch_rejected(self):
        data = smooth3d(seed=9)
        plan = QoZ().derive_plan(data, error_bound=1e-3)
        with pytest.raises(CompressionError):
            SZ3().compress_with_plan(data, plan)

    def test_derive_plan_needs_exactly_one_bound(self):
        # same exception type as Compressor.compress for the same misuse
        data = smooth3d(seed=10)
        with pytest.raises(CompressionError):
            QoZ().derive_plan(data)
        with pytest.raises(CompressionError):
            QoZ().derive_plan(data, error_bound=1e-3, rel_error_bound=1e-3)

    def test_empty_plan_cannot_execute(self):
        plan = FrozenPlan(codec="qoz", eb=1e-3)
        with pytest.raises(ConfigurationError):
            execute_frozen_plan(np.zeros((8, 8)), plan, 1e-3)

    def test_plan_applies_at_a_different_bound(self):
        data = smooth3d(seed=11)
        codec = QoZ(metric="cr")
        plan = codec.derive_plan(data, error_bound=1e-3)
        blob = codec.compress_with_plan(data, plan, error_bound=5e-4)
        recon = QoZ().decompress(blob)
        assert np.abs(recon - data).max() <= 5e-4

    def test_derive_plan_on_memmap_input(self, tmp_path):
        data = smooth3d((48, 48, 48), seed=12)
        path = tmp_path / "field.npy"
        np.save(path, data)
        mm = np.load(path, mmap_mode="r")
        plan = QoZ(metric="cr").derive_plan(mm, rel_error_bound=1e-3)
        ref = QoZ(metric="cr").derive_plan(data, rel_error_bound=1e-3)
        assert plan == ref


class TestPlanLRU:
    """Eviction order and hit/miss accounting of the service plan cache."""

    @staticmethod
    def plan(tag):
        return FrozenPlan(codec="qoz", eb=1e-3, interpolators={1: (0, 0)},
                          metric=tag)

    @staticmethod
    def key(sig):
        from repro.core.plan_cache import plan_cache_key

        return plan_cache_key("qoz", {}, "rel", 1e-3, sig)

    def keys(self):
        """Interleaved family- and content-signature keys."""
        from repro.core.plan_cache import field_signature

        fields = [np.full((4, 4), float(i), dtype=np.float32)
                  for i in range(4)]
        sigs = []
        for i, data in enumerate(fields):
            sigs.append(field_signature(data, family=f"fam{i}"))
            sigs.append(field_signature(data))  # content-hash key
        return [self.key(s) for s in sigs]

    def test_eviction_is_least_recently_used(self):
        from repro.core.plan_cache import PlanLRU

        cache = PlanLRU(capacity=4)
        keys = self.keys()[:5]
        for i, k in enumerate(keys[:4]):
            cache.put(k, self.plan(str(i)))
        # touch key 0 (a get counts as use); key 1 becomes LRU
        assert cache.get(keys[0]).metric == "0"
        cache.put(keys[4], self.plan("4"))
        assert len(cache) == 4
        assert cache.get(keys[1]) is None  # evicted
        for k, tag in ((keys[0], "0"), (keys[2], "2"),
                       (keys[3], "3"), (keys[4], "4")):
            assert cache.get(k).metric == tag

    def test_family_and_content_keys_never_alias(self):
        from repro.core.plan_cache import PlanLRU

        cache = PlanLRU(capacity=16)
        keys = self.keys()
        assert len(set(keys)) == len(keys)
        for i, k in enumerate(keys):
            cache.put(k, self.plan(str(i)))
        for i, k in enumerate(keys):
            assert cache.get(k).metric == str(i)

    def test_hit_miss_counters_exact(self):
        from repro.core.plan_cache import PlanLRU

        cache = PlanLRU(capacity=2)
        k_fam, k_content, k_other = self.keys()[:3]
        assert cache.get(k_fam) is None  # miss 1
        cache.put(k_fam, self.plan("a"))
        assert cache.get(k_fam) is not None  # hit 1
        assert cache.get(k_content) is None  # miss 2
        cache.get_or_derive(k_content, lambda: self.plan("b"))  # miss 3 + derive
        cache.get_or_derive(k_content, lambda: self.plan("x"))  # hit 2
        cache.put(k_other, self.plan("c"))  # evicts k_fam (LRU)
        assert cache.get(k_fam) is None  # miss 4
        s = cache.stats()
        assert s["plan_cache_hits"] == 2
        assert s["plan_cache_misses"] == 4
        assert s["plan_derives"] == 1
        assert s["plan_cache_hit_rate"] == pytest.approx(2 / 6, abs=1e-4)

    def test_peek_has_no_side_effects(self):
        from repro.core.plan_cache import PlanLRU

        cache = PlanLRU(capacity=2)
        k0, k1, k2 = self.keys()[:3]
        cache.put(k0, self.plan("0"))
        cache.put(k1, self.plan("1"))
        before = cache.stats()
        assert cache.peek(k0).metric == "0"
        assert cache.peek(k2) is None
        assert cache.stats() == before  # counters untouched
        # peeking k0 must NOT have refreshed its recency: k0 is still LRU
        cache.put(k2, self.plan("2"))
        assert cache.peek(k0) is None
        assert cache.peek(k1) is not None

    def test_hit_rate_zero_before_any_lookup(self):
        from repro.core.plan_cache import PlanLRU

        assert PlanLRU().stats()["plan_cache_hit_rate"] == 0.0
