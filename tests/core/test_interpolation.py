"""Tests for the vectorized interpolation kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interpolation import CUBIC, LINEAR, predict_targets, target_count


def line_predict(values, method):
    """Predict odd entries of a 1-D grid from its even entries."""
    even = values[::2]
    m = target_count(values.size)
    return predict_targets(even.astype(np.float64), m, method)


class TestExactness:
    """Lagrange kernels must reproduce polynomials of matching degree."""

    def test_linear_exact_on_affine(self):
        x = np.arange(21, dtype=np.float64)
        vals = 3.0 * x - 7.0
        pred = line_predict(vals, LINEAR)
        np.testing.assert_allclose(pred, vals[1::2], atol=1e-12)

    def test_cubic_exact_on_cubic_polynomial_interior(self):
        # boundary targets use quadratic stencils; interior must be exact
        x = np.arange(33, dtype=np.float64)
        vals = 0.5 * x**3 - 2.0 * x**2 + x - 4.0
        pred = line_predict(vals, CUBIC)
        np.testing.assert_allclose(pred[1:-1], vals[1::2][1:-1], rtol=1e-10)

    def test_cubic_boundary_exact_on_quadratic(self):
        # first/last-with-right-neighbor targets use quadratic stencils;
        # quadratics must be exact there (odd grid length: every target
        # has a right neighbor, so no linear-extrapolation tail)
        x = np.arange(17, dtype=np.float64)
        vals = 2.0 * x**2 - 3.0 * x + 1.0
        pred = line_predict(vals, CUBIC)
        np.testing.assert_allclose(pred, vals[1::2], rtol=1e-10)

    def test_linear_tail_extrapolation_exact_on_affine(self):
        vals = 5.0 * np.arange(20, dtype=np.float64)  # even length: tail target
        pred = line_predict(vals, LINEAR)
        np.testing.assert_allclose(pred, vals[1::2], atol=1e-10)


class TestShapesAndEdges:
    def test_zero_targets(self):
        even = np.ones((3, 1))
        assert predict_targets(even, 0, CUBIC).shape == (3, 0)

    def test_single_sample_copy(self):
        # grid of length 2: one target, only a left neighbor
        pred = line_predict(np.array([4.0, 9.0]), CUBIC)
        assert pred.shape == (1,)
        assert pred[0] == 4.0

    def test_two_samples_linear_average(self):
        # grid length 3: target between two samples
        pred = line_predict(np.array([2.0, 0.0, 6.0]), LINEAR)
        np.testing.assert_allclose(pred, [4.0])

    def test_grid_length_four_cubic(self):
        vals = np.array([0.0, 0.0, 2.0, 0.0])
        pred = line_predict(vals, CUBIC)
        assert pred.shape == (2,)
        # j=0: quad-left from evens [0, 2]; j=1: extrapolation
        np.testing.assert_allclose(pred[0], 0.5 * (0.0 + 2.0))
        np.testing.assert_allclose(pred[1], 1.5 * 2.0 - 0.5 * 0.0)

    def test_batched_leading_dims(self, rng):
        even = rng.standard_normal((5, 7, 9))
        pred = predict_targets(even, 8, CUBIC)
        assert pred.shape == (5, 7, 8)
        # each row must match the 1-D kernel applied separately
        single = predict_targets(even[2, 3], 8, CUBIC)
        np.testing.assert_allclose(pred[2, 3], single)

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            predict_targets(np.ones(4), 2, 99)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=2, max_value=200),
    st.integers(min_value=0, max_value=2**31),
    st.sampled_from([LINEAR, CUBIC]),
)
def test_prediction_bounded_by_neighborhood(glen, seed, method):
    """Predictions stay within a constant factor of the sample range."""
    rng = np.random.default_rng(seed)
    vals = rng.uniform(-1.0, 1.0, glen)
    pred = line_predict(vals, method)
    assert pred.shape == (glen // 2,)
    # interpolation weights sum to 1 with |w| <= 2 total magnitude ~2.25
    assert np.all(np.abs(pred) <= 3.0)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=100), st.sampled_from([LINEAR, CUBIC]))
def test_constant_field_predicted_exactly(glen, method):
    vals = np.full(glen, 2.5)
    pred = line_predict(vals, method)
    np.testing.assert_allclose(pred, 2.5, atol=1e-12)
