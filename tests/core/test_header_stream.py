"""Tests for stream headers, sections, and interp payload serialization."""

import struct

import numpy as np
import pytest

from repro.core.engine import InterpPlan, LevelPlan, interp_compress
from repro.core.header import (
    FLAG_CHUNKED,
    VERSION,
    VERSION_CHECKSUM,
    ChunkEntry,
    StreamHeader,
    chunk_index_size,
    pack_chunk_index,
    pack_header,
    pack_sections,
    parse_header,
    unpack_chunk_index,
    unpack_sections,
)
from repro.core.interpolation import CUBIC, LINEAR
from repro.core.stream import describe_stream, pack_interp_payload, unpack_interp_payload
from repro.errors import DecompressionError


class TestHeader:
    def test_roundtrip(self):
        blob = pack_header(2, np.dtype(np.float32), (100, 500, 500), 1.25e-4)
        header, off = parse_header(blob)
        assert header == StreamHeader(2, np.dtype(np.float32), (100, 500, 500),
                                      1.25e-4)
        assert off == len(blob)

    def test_bad_magic(self):
        with pytest.raises(DecompressionError):
            parse_header(b"XXXX" + b"\x00" * 32)

    def test_truncated(self):
        blob = pack_header(1, np.dtype(np.float64), (8, 8), 0.1)
        with pytest.raises(DecompressionError):
            parse_header(blob[:10])
        with pytest.raises(DecompressionError):
            parse_header(blob[:-4])

    def test_payload_offset(self):
        blob = pack_header(1, np.dtype(np.float64), (4,), 0.1) + b"PAYLOAD"
        header, off = parse_header(blob)
        assert blob[off:] == b"PAYLOAD"

    def test_flags_roundtrip(self):
        blob = pack_header(3, np.dtype(np.float32), (8, 8), 0.5,
                           flags=FLAG_CHUNKED)
        header, _ = parse_header(blob)
        assert header.flags == FLAG_CHUNKED
        assert header.is_chunked
        assert header.version == VERSION

    def test_version1_layout_parses(self):
        """Streams written before the flags byte existed still parse."""
        blob = struct.pack("<4sBBBBd", b"RPZ1", 1, 2, 1, 2, 0.25)
        blob += struct.pack("<2Q", 8, 16)
        header, off = parse_header(blob)
        assert header == StreamHeader(
            2, np.dtype(np.float64), (8, 16), 0.25, version=1, flags=0
        )
        assert not header.is_chunked
        assert off == len(blob)

    def test_future_version_rejected(self):
        blob = bytearray(pack_header(1, np.dtype(np.float64), (4,), 0.1))
        blob[4] = VERSION_CHECKSUM + 1
        with pytest.raises(DecompressionError, match="version"):
            parse_header(bytes(blob))

    def test_v3_header_checksum_roundtrip(self):
        blob = pack_header(
            1, np.dtype(np.float64), (4, 8), 0.1, version=VERSION_CHECKSUM
        )
        header, off = parse_header(blob)
        assert header.version == VERSION_CHECKSUM
        assert header.shape == (4, 8)
        assert off == len(blob)

    def test_v3_header_checksum_detects_flip(self):
        blob = bytearray(
            pack_header(
                1, np.dtype(np.float64), (4, 8), 0.1, version=VERSION_CHECKSUM
            )
        )
        blob[9] ^= 0x01  # corrupt a byte inside the error-bound field
        with pytest.raises(DecompressionError, match="checksum"):
            parse_header(bytes(blob))

    def test_v3_header_truncated_checksum(self):
        blob = pack_header(
            1, np.dtype(np.float64), (4,), 0.1, version=VERSION_CHECKSUM
        )
        with pytest.raises(DecompressionError, match="truncated"):
            parse_header(blob[:-2])


class TestChunkIndex:
    def test_roundtrip(self):
        entries = [
            ChunkEntry(start=(0, 0), shape=(16, 16), offset=0, nbytes=100),
            ChunkEntry(start=(0, 16), shape=(16, 4), offset=100, nbytes=57),
        ]
        blob = b"PRE" + pack_chunk_index((16, 16), entries)
        chunk_shape, parsed, end = unpack_chunk_index(blob, 3, ndim=2)
        assert chunk_shape == (16, 16)
        assert parsed == entries
        assert end == len(blob)

    def test_size_formula_matches(self):
        entries = [
            ChunkEntry(start=(i,), shape=(4,), offset=4 * i, nbytes=4)
            for i in range(5)
        ]
        assert len(pack_chunk_index((4,), entries)) == chunk_index_size(1, 5)

    def test_truncation_detected(self):
        entries = [ChunkEntry(start=(0,), shape=(4,), offset=0, nbytes=4)]
        blob = pack_chunk_index((4,), entries)
        with pytest.raises(DecompressionError):
            unpack_chunk_index(blob[:-2], 0, ndim=1)

    def test_entry_slices(self):
        e = ChunkEntry(start=(4, 8), shape=(2, 3), offset=0, nbytes=1)
        assert e.slices == (slice(4, 6), slice(8, 11))

    def test_starts_beyond_u32_survive(self):
        """Chunk starts range over the full (u64) array extent."""
        e = ChunkEntry(start=(2**32 + 7,), shape=(256,), offset=0, nbytes=9)
        _, parsed, _ = unpack_chunk_index(
            pack_chunk_index((256,), [e]), 0, ndim=1
        )
        assert parsed == [e]


class TestDescribeStream:
    def test_plain_stream(self):
        from repro.compressors.base import get_compressor

        data = np.linspace(0, 1, 64, dtype=np.float32).reshape(8, 8)
        blob = get_compressor("sz3").compress(data, error_bound=1e-3)
        info = describe_stream(blob)
        assert info["codec"] == "sz3"
        assert info["shape"] == (8, 8)
        assert info["format"].startswith("plain stream")
        assert info["compressed_bytes"] == len(blob)

    def test_chunked_stream(self):
        from repro.chunked import compress_chunked

        data = np.linspace(0, 1, 256, dtype=np.float32).reshape(16, 16)
        blob = compress_chunked(data, codec="sz3", chunks=8, error_bound=1e-3)
        info = describe_stream(blob)
        assert info["format"].startswith("chunked container")
        assert info["n_chunks"] == 4
        assert info["chunk_shape"] == (8, 8)


class TestSections:
    def test_roundtrip(self):
        sections = [b"", b"abc", b"\x00" * 1000]
        blob = pack_sections(sections)
        assert unpack_sections(blob) == sections

    def test_empty_list(self):
        assert unpack_sections(pack_sections([])) == []

    def test_truncation_detected(self):
        blob = pack_sections([b"hello", b"world"])
        with pytest.raises(DecompressionError):
            unpack_sections(blob[:-3])

    def test_offset_parsing(self):
        blob = b"HDR" + pack_sections([b"x"])
        assert unpack_sections(blob, offset=3) == [b"x"]


class TestInterpPayload:
    def test_roundtrip_preserves_plan_and_streams(self, rng):
        shape = (24, 24)
        data = np.cumsum(rng.standard_normal(24 * 24)).reshape(shape)
        data /= np.abs(data).max()
        plan = InterpPlan(
            levels={
                1: LevelPlan(eb=1e-3, method=CUBIC, order_id=0),
                2: LevelPlan(eb=5e-4, method=LINEAR, order_id=1),
                3: LevelPlan(eb=2.5e-4, method=CUBIC, order_id=0),
                4: LevelPlan(eb=2.5e-4, method=CUBIC, order_id=0),
                5: LevelPlan(eb=2.5e-4, method=CUBIC, order_id=0),
            },
            anchor_stride=8,
        )
        codes, outliers, known, _ = interp_compress(data, plan)
        payload = pack_interp_payload(
            plan, 3, known, codes, outliers, np.dtype(np.float64)
        )
        plan2, top, known2, codes2, outliers2 = unpack_interp_payload(
            payload, np.dtype(np.float64)
        )
        assert top == 3
        assert plan2.anchor_stride == 8
        for l in (1, 2, 3):
            assert plan2.levels[l].eb == plan.levels[l].eb
            assert plan2.levels[l].method == plan.levels[l].method
            assert plan2.levels[l].order_id == plan.levels[l].order_id
        np.testing.assert_array_equal(codes2, codes)
        np.testing.assert_array_equal(known2.ravel(), known.ravel())
        np.testing.assert_array_equal(outliers2, outliers)

    def test_float32_known_points_roundtrip_exactly(self, rng):
        known = rng.standard_normal(100).astype(np.float32).astype(np.float64)
        plan = InterpPlan(levels={1: LevelPlan(eb=1e-3)}, anchor_stride=4)
        payload = pack_interp_payload(
            plan, 1, known, np.zeros(0, np.int64), np.zeros(0),
            np.dtype(np.float32),
        )
        _, _, known2, _, _ = unpack_interp_payload(payload, np.dtype(np.float32))
        np.testing.assert_array_equal(known2, known)

    def test_wrong_section_count_raises(self):
        with pytest.raises(DecompressionError):
            unpack_interp_payload(pack_sections([b"", b""]), np.dtype(np.float64))
