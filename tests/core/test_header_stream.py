"""Tests for stream headers, sections, and interp payload serialization."""

import numpy as np
import pytest

from repro.core.engine import InterpPlan, LevelPlan, interp_compress
from repro.core.header import (
    StreamHeader,
    pack_header,
    pack_sections,
    parse_header,
    unpack_sections,
)
from repro.core.interpolation import CUBIC, LINEAR
from repro.core.stream import pack_interp_payload, unpack_interp_payload
from repro.errors import DecompressionError


class TestHeader:
    def test_roundtrip(self):
        blob = pack_header(2, np.dtype(np.float32), (100, 500, 500), 1.25e-4)
        header, off = parse_header(blob)
        assert header == StreamHeader(2, np.dtype(np.float32), (100, 500, 500),
                                      1.25e-4)
        assert off == len(blob)

    def test_bad_magic(self):
        with pytest.raises(DecompressionError):
            parse_header(b"XXXX" + b"\x00" * 32)

    def test_truncated(self):
        blob = pack_header(1, np.dtype(np.float64), (8, 8), 0.1)
        with pytest.raises(DecompressionError):
            parse_header(blob[:10])
        with pytest.raises(DecompressionError):
            parse_header(blob[:-4])

    def test_payload_offset(self):
        blob = pack_header(1, np.dtype(np.float64), (4,), 0.1) + b"PAYLOAD"
        header, off = parse_header(blob)
        assert blob[off:] == b"PAYLOAD"


class TestSections:
    def test_roundtrip(self):
        sections = [b"", b"abc", b"\x00" * 1000]
        blob = pack_sections(sections)
        assert unpack_sections(blob) == sections

    def test_empty_list(self):
        assert unpack_sections(pack_sections([])) == []

    def test_truncation_detected(self):
        blob = pack_sections([b"hello", b"world"])
        with pytest.raises(DecompressionError):
            unpack_sections(blob[:-3])

    def test_offset_parsing(self):
        blob = b"HDR" + pack_sections([b"x"])
        assert unpack_sections(blob, offset=3) == [b"x"]


class TestInterpPayload:
    def test_roundtrip_preserves_plan_and_streams(self, rng):
        shape = (24, 24)
        data = np.cumsum(rng.standard_normal(24 * 24)).reshape(shape)
        data /= np.abs(data).max()
        plan = InterpPlan(
            levels={
                1: LevelPlan(eb=1e-3, method=CUBIC, order_id=0),
                2: LevelPlan(eb=5e-4, method=LINEAR, order_id=1),
                3: LevelPlan(eb=2.5e-4, method=CUBIC, order_id=0),
                4: LevelPlan(eb=2.5e-4, method=CUBIC, order_id=0),
                5: LevelPlan(eb=2.5e-4, method=CUBIC, order_id=0),
            },
            anchor_stride=8,
        )
        codes, outliers, known, _ = interp_compress(data, plan)
        payload = pack_interp_payload(
            plan, 3, known, codes, outliers, np.dtype(np.float64)
        )
        plan2, top, known2, codes2, outliers2 = unpack_interp_payload(
            payload, np.dtype(np.float64)
        )
        assert top == 3
        assert plan2.anchor_stride == 8
        for l in (1, 2, 3):
            assert plan2.levels[l].eb == plan.levels[l].eb
            assert plan2.levels[l].method == plan.levels[l].method
            assert plan2.levels[l].order_id == plan.levels[l].order_id
        np.testing.assert_array_equal(codes2, codes)
        np.testing.assert_array_equal(known2.ravel(), known.ravel())
        np.testing.assert_array_equal(outliers2, outliers)

    def test_float32_known_points_roundtrip_exactly(self, rng):
        known = rng.standard_normal(100).astype(np.float32).astype(np.float64)
        plan = InterpPlan(levels={1: LevelPlan(eb=1e-3)}, anchor_stride=4)
        payload = pack_interp_payload(
            plan, 1, known, np.zeros(0, np.int64), np.zeros(0),
            np.dtype(np.float32),
        )
        _, _, known2, _, _ = unpack_interp_payload(payload, np.dtype(np.float32))
        np.testing.assert_array_equal(known2, known)

    def test_wrong_section_count_raises(self):
        with pytest.raises(DecompressionError):
            unpack_interp_payload(pack_sections([b"", b""]), np.dtype(np.float64))
