"""Chaos smoke: SIGKILL a live worker under load; the service must heal.

Opt-in (``pytest -m chaos``, mirroring the soak suite): spawns a real
``repro serve`` subprocess with 4 workers, drives concurrent client
load, kills one worker process mid-stream, and pins the recovery
contract — zero dropped connections, every response byte-identical to
the in-process library path, and the supervisor's crash/respawn visible
in the stats surface.  Set ``REPRO_CHAOS_STATS`` to a path to dump the
final stats snapshot (the CI job uploads it as an artifact).
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.chunked import compress_chunked
from repro.service import RemoteClient

pytestmark = pytest.mark.chaos

N_CLIENTS = 4
N_REQUESTS_EACH = 12
PROCESSES = 4


def smooth3d(shape=(36, 36, 36), seed=0):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.standard_normal(shape), axis=0)
    return (x / np.abs(x).max()).astype(np.float32)


@pytest.fixture(scope="module")
def subprocess_env():
    src = pathlib.Path(__file__).parent.parent.parent / "src"
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = str(src) + (
        (os.pathsep + existing) if existing else ""
    )
    return env


@pytest.fixture(scope="module")
def server(subprocess_env):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--processes", str(PROCESSES),
        ],
        env=subprocess_env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        assert "listening on" in line, (line, proc.stderr.read())
        port = int(line.rsplit(":", 1)[1])
        yield proc.pid, port
    finally:
        proc.terminate()
        proc.wait(timeout=10)


def worker_pids(server_pid):
    """Direct children of the server — its pool worker processes."""
    children = pathlib.Path(
        f"/proc/{server_pid}/task/{server_pid}/children"
    ).read_text().split()
    return [int(pid) for pid in children]


def test_worker_kill_under_load_recovers_byte_identical(server):
    server_pid, port = server
    data = smooth3d(seed=1)
    expected = compress_chunked(
        data, codec="qoz", rel_error_bound=1e-3, chunks=18
    )

    # force the lazy pool to spawn its workers, then pick a victim
    with RemoteClient(port=port) as warm:
        assert warm.compress(
            data, codec="qoz", rel_error_bound=1e-3, chunks=18
        ) == expected
    deadline = time.monotonic() + 30
    while not worker_pids(server_pid):
        assert time.monotonic() < deadline, "pool workers never appeared"
        time.sleep(0.1)
    victims = worker_pids(server_pid)
    assert len(victims) == PROCESSES

    failures = []
    blobs = []
    started = threading.Barrier(N_CLIENTS + 1)

    def client_load(index):
        try:
            with RemoteClient(port=port, retries=10) as client:
                started.wait(timeout=60)
                for _ in range(N_REQUESTS_EACH):
                    blobs.append(
                        client.compress(
                            data, codec="qoz",
                            rel_error_bound=1e-3, chunks=18,
                        )
                    )
        except Exception as exc:  # pragma: no cover - diagnostic
            failures.append((index, repr(exc)))

    threads = [
        threading.Thread(target=client_load, args=(i,))
        for i in range(N_CLIENTS)
    ]
    for t in threads:
        t.start()
    started.wait(timeout=60)
    time.sleep(0.2)  # let requests reach the workers
    os.kill(victims[0], signal.SIGKILL)
    for t in threads:
        t.join(timeout=600)
    assert not any(t.is_alive() for t in threads)

    # zero dropped connections, zero failed requests
    assert not failures, failures
    assert len(blobs) == N_CLIENTS * N_REQUESTS_EACH
    # never wrong bytes: every served stream matches the library path
    assert all(blob == expected for blob in blobs)

    # the supervisor saw the crash and healed (retry budget respected:
    # nothing was poisoned, nothing degraded the pool to serial)
    with RemoteClient(port=port) as client:
        deadline = time.monotonic() + 60
        while True:
            stats = client.stats()
            if stats.get("pool_crash", 0) >= 1:
                break
            assert time.monotonic() < deadline, stats
            client.compress(
                data, codec="qoz", rel_error_bound=1e-3, chunks=18
            )
        assert stats.get("pool_respawn", 0) >= 1
        assert stats.get("pool_poisoned", 0) == 0
        assert stats["pool_degraded"] == 0
        # post-recovery service is fully functional and byte-identical
        assert client.compress(
            data, codec="qoz", rel_error_bound=1e-3, chunks=18
        ) == expected

    # slab hygiene (DESIGN.md §13): the kill landed mid-batch, yet every
    # shared-memory slab the server created must be gone once the load
    # drains — release happens on the caller's exit paths, crash included
    shm = pathlib.Path("/dev/shm")
    if shm.is_dir():
        deadline = time.monotonic() + 30
        while True:
            leaked = sorted(p.name for p in shm.glob("repro-slab-*"))
            if not leaked or time.monotonic() >= deadline:
                break
            time.sleep(0.2)
        assert not leaked, f"server leaked shm slabs: {leaked}"

    dump = os.environ.get("REPRO_CHAOS_STATS")
    if dump:
        pathlib.Path(dump).write_text(json.dumps(stats, indent=2) + "\n")
