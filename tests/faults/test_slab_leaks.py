"""Crash slab-backed batch jobs every way we can; assert zero shm leaks.

The slab ownership contract (DESIGN.md §13): the side that calls
``Slab.create`` releases it, exactly once, on *every* exit path — normal
drain, worker crash + heal, poison, abandoned generator, interpreter
exit — and workers only ever attach/detach.  Leaks are observable from
the outside: a leaked slab is a ``repro-slab-*`` file in ``/dev/shm``
that outlives the run.  Every test here induces a failure and then
checks both the in-process ledger (``active_slab_names``) and the
filesystem.

Worker kills reuse the pool-healing conventions of
``test_pool_healing.py``: fork context (the crashing test codec below is
registered in this module and must be inherited), MAIN_PID guard so the
degraded serial lane can't kill pytest itself.
"""

import multiprocessing
import os
import pathlib
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.compressors.base import Compressor, register
from repro.errors import WorkerCrashError
from repro.parallel.executor import ChunkWorkPool, compress_chunks_streaming
from repro.parallel.slab import SLAB_NAME_PREFIX, Slab, active_slab_names

MAIN_PID = os.getpid()
FORK_CTX = multiprocessing.get_context("fork")
SHM_DIR = pathlib.Path("/dev/shm")

pytestmark = pytest.mark.skipif(
    not SHM_DIR.is_dir(), reason="no /dev/shm to observe leaks in"
)


def shm_slabs():
    """Names of every repro slab currently backing files in /dev/shm."""
    return sorted(p.name for p in SHM_DIR.glob(f"{SLAB_NAME_PREFIX}-*"))


def assert_no_leaks():
    assert active_slab_names() == []
    assert shm_slabs() == []


@register
class CrashyCodec(Compressor):
    """Test codec that SIGKILLs its hosting worker process.

    ``marker=`` makes the kill one-shot (the marker file records that a
    first attempt died, so the retried dispatch completes) — a transient
    worker death.  Without it every process-pool attempt dies — a poison
    job.  On the caller's pid (pytest itself, i.e. the degraded serial
    lane) the kill is skipped and the job completes.
    """

    name = "crashy"
    codec_id = 200

    def __init__(self, marker=None):
        self.marker = marker

    def _compress(self, data, eb):
        if os.getpid() != MAIN_PID:
            if self.marker is None:
                os.kill(os.getpid(), signal.SIGKILL)
            elif not os.path.exists(self.marker):
                pathlib.Path(self.marker).touch()
                os.kill(os.getpid(), signal.SIGKILL)
        return data.astype(np.float64).tobytes()

    def _decompress(self, payload, header):
        flat = np.frombuffer(payload, dtype=np.float64)
        return flat.reshape(header.shape)


def chunk_arrays(n=4, shape=(16, 16)):
    return [
        np.full(shape, i, dtype=np.float32) + np.float32(0.25)
        for i in range(n)
    ]


def make_pool(events, **kwargs):
    kwargs.setdefault("processes", 2)
    kwargs.setdefault("mp_context", FORK_CTX)
    return ChunkWorkPool(on_event=events.append, **kwargs)


def batch_descriptors(arrays):
    slab = Slab.create(sum(a.nbytes for a in arrays))
    return slab, slab.pack(arrays)


class TestPoolCrashPaths:
    def test_transient_worker_death_batch_retries_same_slab(
        self, tmp_path, pool_events
    ):
        """Heal/retry re-dispatches the same descriptors and succeeds."""
        arrays = chunk_arrays()
        slab, descs = batch_descriptors(arrays)
        pool = make_pool(pool_events, max_job_crashes=5)
        try:
            fut = pool.submit_compress_batch(
                "crashy",
                {"marker": str(tmp_path / "died-once")},
                slab.name,
                descs,
                error_bound=1e-3,
            )
            blobs = fut.result(timeout=120)
        finally:
            slab.release()
            pool.shutdown()
        assert "crash" in pool_events and "retry" in pool_events
        codec = CrashyCodec()
        for arr, blob in zip(arrays, blobs):
            np.testing.assert_array_equal(codec.decompress(blob), arr)
        assert_no_leaks()

    def test_poisoned_batch_job_still_releases_slab(self, pool_events):
        arrays = chunk_arrays()
        slab, descs = batch_descriptors(arrays)
        pool = make_pool(pool_events, max_job_crashes=2)
        try:
            fut = pool.submit_compress_batch(
                "crashy", {}, slab.name, descs, error_bound=1e-3
            )
            with pytest.raises(WorkerCrashError, match="poisoned"):
                fut.result(timeout=120)
        finally:
            slab.release()
            pool.shutdown()
        assert pool_events.count("poisoned") == 1
        assert_no_leaks()

    def test_degraded_serial_lane_reads_the_slab_in_process(
        self, pool_events
    ):
        """The serial lane attaches to the same slab and serves the job."""
        arrays = chunk_arrays(n=3)
        slab, descs = batch_descriptors(arrays)
        pool = make_pool(
            pool_events,
            max_job_crashes=10,
            max_consecutive_crashes=2,
            probe_interval=30.0,
        )
        try:
            fut = pool.submit_compress_batch(
                "crashy", {}, slab.name, descs, error_bound=1e-3
            )
            blobs = fut.result(timeout=120)
            assert pool.degraded
        finally:
            slab.release()
            pool.shutdown()
        codec = CrashyCodec()
        for arr, blob in zip(arrays, blobs):
            np.testing.assert_array_equal(codec.decompress(blob), arr)
        assert_no_leaks()


class TestStreamingAbandon:
    def test_closing_the_generator_releases_in_flight_slabs(self):
        """A consumer that walks away mid-stream leaks nothing."""
        jobs = ((i, arr) for i, arr in enumerate(chunk_arrays(n=12)))
        gen = compress_chunks_streaming(
            jobs, "qoz", None, 1e-3, processes=2, batch_chunks=2
        )
        got = next(gen)  # at least one batch is in flight now
        assert isinstance(got[1], bytes)
        gen.close()  # GeneratorExit: pending batches cancelled + released
        assert_no_leaks()


class TestInterpreterExit:
    def _run_child(self, body, subprocess_env, expect_kill=False):
        """Run ``body`` in a fresh interpreter; return (names, proc)."""
        script = (
            "import sys\n"
            "from repro.parallel.slab import Slab\n"
            + body
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            env=subprocess_env,
            stdout=subprocess.PIPE,
            text=True,
        )
        names = proc.stdout.readline().split()
        assert names, "child never created its slabs"
        return names, proc

    def test_atexit_purges_unreleased_slabs(self, subprocess_env):
        """A process that exits without releasing leaks nothing."""
        names, proc = self._run_child(
            "slabs = [Slab.create(4096) for _ in range(3)]\n"
            "print(' '.join(s.name for s in slabs), flush=True)\n"
            "sys.exit(0)\n",  # no release(): the atexit hook must purge
            subprocess_env,
        )
        proc.wait(timeout=60)
        for name in names:
            assert not (SHM_DIR / name).exists(), f"{name} leaked past exit"

    def test_sigkilled_owner_is_reaped_by_the_resource_tracker(
        self, subprocess_env
    ):
        """Even SIGKILL (no atexit) leaves nothing: the tracker unlinks.

        This is why worker attaches never unregister the segment — the
        owner's single resource-tracker registration is the crash net.
        """
        names, proc = self._run_child(
            "import time\n"
            "slab = Slab.create(4096)\n"
            "print(slab.name, flush=True)\n"
            "time.sleep(300)\n",
            subprocess_env,
        )
        assert (SHM_DIR / names[0]).exists()
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)
        deadline = time.monotonic() + 30
        while (SHM_DIR / names[0]).exists():
            assert time.monotonic() < deadline, (
                f"{names[0]} still in /dev/shm 30s after owner SIGKILL"
            )
            time.sleep(0.2)
