"""Kill real workers; assert the ChunkWorkPool supervisor heals.

The contract under test (DESIGN.md §12): a worker death must never leak
``BrokenProcessPool`` to a caller — in-flight jobs are retried on a
fresh pool within a bounded crash budget, a job that keeps breaking the
pool is poisoned *alone*, repeated breaks degrade to an in-process
serial lane, and a successful probe promotes back to process workers.
"""

import multiprocessing
import os
import pathlib
import signal
import time

import pytest

from repro.errors import WorkerCrashError
from repro.parallel.executor import ChunkWorkPool

#: pid of the pytest process; worker jobs compare against it before
#: doing anything lethal — on the degraded serial lane they run right
#: here, where SIGKILL would take pytest down with them
MAIN_PID = os.getpid()

#: explicit start method — these tests fork fresh pools constantly and
#: need workers to inherit the parent's imported modules
FORK_CTX = multiprocessing.get_context("fork")


def ok_job(payload):
    """A job that always succeeds (the control group)."""
    return payload * 2


def kill_worker_job(_payload):
    """SIGKILL the hosting worker — the canonical pool-breaking fault.

    Returning a sentinel on the serial lane lets tests assert the
    degraded lane actually served the job.
    """
    if os.getpid() != MAIN_PID:
        os.kill(os.getpid(), signal.SIGKILL)
    return "served-on-serial-lane"


def kill_worker_once_job(marker_path):
    """SIGKILL the worker on the first run only (marker file = ran before).

    The marker is created *before* the kill, so the retried dispatch of
    the same job sees it and completes — modeling a transient worker
    death (OOM spike) rather than a poison input.
    """
    if os.getpid() != MAIN_PID and not os.path.exists(marker_path):
        pathlib.Path(marker_path).touch()
        os.kill(os.getpid(), signal.SIGKILL)
    return "ok-after-retry"


def make_pool(events, **kwargs):
    kwargs.setdefault("processes", 2)
    kwargs.setdefault("mp_context", FORK_CTX)
    return ChunkWorkPool(on_event=events.append, **kwargs)


class TestHealing:
    def test_transient_worker_death_retries_to_success(
        self, tmp_path, pool_events
    ):
        pool = make_pool(pool_events, max_job_crashes=5)
        try:
            marker = str(tmp_path / "crashed-once")
            bad = pool._submit(kill_worker_once_job, marker)
            good = [pool._submit(ok_job, i) for i in range(6)]
            assert bad.result(timeout=120) == "ok-after-retry"
            # jobs that merely shared the broken pool are re-dispatched
            # too and still produce correct results
            assert [f.result(timeout=120) for f in good] == [
                i * 2 for i in range(6)
            ]
        finally:
            pool.shutdown()
        assert "crash" in pool_events
        assert "retry" in pool_events
        assert "poisoned" not in pool_events

    def test_poisoned_job_fails_alone_pool_survives(self, pool_events):
        pool = make_pool(pool_events, max_job_crashes=2)
        try:
            bad = pool._submit(kill_worker_job, None)
            with pytest.raises(WorkerCrashError, match="poisoned"):
                bad.result(timeout=120)
            # the pool healed: later jobs run on process workers again
            good = [pool._submit(ok_job, i) for i in range(4)]
            assert [f.result(timeout=120) for f in good] == [
                i * 2 for i in range(4)
            ]
            assert pool.health()["pool_mode"] == "process"
        finally:
            pool.shutdown()
        assert pool_events.count("poisoned") == 1
        assert pool_events.count("crash") == 2  # one per crash budget unit

    def test_degrades_to_serial_lane_then_promotes(self, pool_events):
        pool = make_pool(
            pool_events,
            max_job_crashes=10,
            max_consecutive_crashes=2,
            probe_interval=0.1,
        )
        try:
            # two consecutive breaks degrade the pool; the third dispatch
            # of the same job lands on the in-process serial lane, where
            # the kill is guarded and the job completes
            fut = pool._submit(kill_worker_job, None)
            assert fut.result(timeout=120) == "served-on-serial-lane"
            assert pool.degraded
            assert pool.health()["pool_mode"] == "serial"
            assert "degraded" in pool_events

            # keep submitting: each degraded dispatch may kick a probe;
            # one surviving probe promotes back to process workers
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                assert pool._submit(ok_job, 7).result(timeout=120) == 14
                if pool.health()["pool_mode"] == "process":
                    break
                time.sleep(0.15)
            else:
                pytest.fail("pool never promoted back to process mode")
            assert "promoted" in pool_events
            # and the promoted pool actually serves on worker processes
            assert pool._submit(ok_job, 3).result(timeout=120) == 6
        finally:
            pool.shutdown()


class TestShutdown:
    def test_shutdown_is_idempotent_and_closes_submission(self, pool_events):
        pool = make_pool(pool_events)
        assert pool._submit(ok_job, 1).result(timeout=120) == 2
        pool.shutdown()
        pool.shutdown()  # second call is a no-op, not an error
        with pytest.raises(RuntimeError, match="shut-down"):
            pool._submit(ok_job, 1)

    def test_shutdown_tolerates_a_broken_pool(self, pool_events):
        pool = make_pool(pool_events, max_job_crashes=1)
        with pytest.raises(WorkerCrashError):
            pool._submit(kill_worker_job, None).result(timeout=120)
        pool.shutdown()
        pool.shutdown()
