"""Deadline faults: queued shed, running timeout, malformed deadlines.

Lifecycle under test (DESIGN.md §12): ``deadline_ms`` is an absolute
budget per request — still queued past it means the job is shed before
dispatch (stage ``queued``); dispatched but not finished means the
server cancels the work and releases its admission units (stage
``running``).  Either way the caller gets a one-line typed error, and
the miss is counted per priority class in the stats surface.
"""

import time

import numpy as np
import pytest

from repro.errors import DeadlineExceededError, ProtocolError
from repro.service import ServiceClient, ServiceConfig
from repro.service.admission import ServiceMetrics
from repro.service.protocol import (
    CompressRequest,
    decode_request,
    encode_request,
    validate_deadline_ms,
)


def smooth2d(shape=(32, 32), seed=0):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.standard_normal(shape), axis=0)
    return (x / np.abs(x).max()).astype(np.float32)


class TestLifecycle:
    def test_queued_job_past_deadline_is_shed(self):
        with ServiceClient(ServiceConfig(processes=1)) as svc:
            with pytest.raises(DeadlineExceededError) as err:
                svc.compress(
                    smooth2d(), codec="qoz", rel_error_bound=1e-3,
                    deadline_ms=1e-4,
                )
            assert err.value.stage == "queued"
            stats = svc.stats()
            assert stats["deadline_shed_interactive"] >= 1
            assert stats["deadline_timeout_interactive"] == 0

    def test_running_job_past_deadline_is_cancelled(self, monkeypatch):
        import repro.service.scheduler as sched

        real = sched.compress_chunked

        def slow_compress(*args, **kwargs):
            time.sleep(1.0)
            return real(*args, **kwargs)

        monkeypatch.setattr(sched, "compress_chunked", slow_compress)
        with ServiceClient(ServiceConfig(processes=1)) as svc:
            started = time.monotonic()
            with pytest.raises(DeadlineExceededError) as err:
                svc.compress(
                    smooth2d(seed=1), codec="qoz", rel_error_bound=1e-3,
                    deadline_ms=80.0,
                )
            assert err.value.stage == "running"
            # the caller got the error at the deadline, not after the
            # full (slow) compression ran its course
            assert time.monotonic() - started < 1.0
            assert svc.stats()["deadline_timeout_interactive"] >= 1

            # the service survives the timeout: later requests complete
            blob = svc.compress(
                smooth2d(seed=2), codec="qoz", rel_error_bound=1e-3
            )
            assert isinstance(blob, bytes)

    def test_deadline_far_in_the_future_is_inert(self):
        with ServiceClient(ServiceConfig(processes=1)) as svc:
            blob = svc.compress(
                smooth2d(seed=3), codec="qoz", rel_error_bound=1e-3,
                deadline_ms=600_000.0,
            )
            assert isinstance(blob, bytes)
            stats = svc.stats()
            assert stats["deadline_shed_interactive"] == 0
            assert stats["deadline_timeout_interactive"] == 0


class TestValidationAndWire:
    @pytest.mark.parametrize("bad", [0, -5.0, float("inf"), float("nan"), "x"])
    def test_malformed_deadlines_are_rejected(self, bad):
        with pytest.raises(ProtocolError):
            validate_deadline_ms(bad)

    def test_deadline_rides_the_v2_meta_channel(self):
        req = CompressRequest(
            data=smooth2d(seed=4), error_bound=0.5, deadline_ms=250.0
        )
        decoded = decode_request(encode_request(req))
        assert isinstance(decoded, CompressRequest)
        assert decoded.deadline_ms == 250.0

    def test_absent_deadline_stays_absent(self):
        req = CompressRequest(data=smooth2d(seed=5), error_bound=0.5)
        decoded = decode_request(encode_request(req))
        assert decoded.deadline_ms is None


class TestStatsSurface:
    def test_pool_events_flow_into_snapshot(self):
        metrics = ServiceMetrics()
        for kind in ("crash", "retry", "respawn", "crash", "probe-failure"):
            metrics.pool_event(kind)
        snap = metrics.snapshot()
        assert snap["pool_crash"] == 2
        assert snap["pool_retry"] == 1
        assert snap["pool_respawn"] == 1
        assert snap["pool_probe_failure"] == 1

    def test_service_stats_expose_pool_health(self):
        with ServiceClient(ServiceConfig(processes=1)) as svc:
            stats = svc.stats()
            assert stats["pool_degraded"] == 0
            assert stats["pool_generation"] == 0
            assert stats["pool_consecutive_crashes"] == 0
