"""Shared fixtures for the fault-injection suite."""

import os
import pathlib

import pytest


@pytest.fixture(scope="session")
def subprocess_env():
    """Environment for child interpreters: the src tree on PYTHONPATH."""
    src = pathlib.Path(__file__).parent.parent.parent / "src"
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = str(src) + (
        (os.pathsep + existing) if existing else ""
    )
    return env


@pytest.fixture
def pool_events():
    """Recorder handed to ``ChunkWorkPool(on_event=...)``.

    Callbacks fire on executor threads; ``list.append`` is atomic under
    the GIL, so a plain list is a safe sink.
    """
    return []
