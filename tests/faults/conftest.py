"""Shared fixtures for the fault-injection suite."""

import pytest


@pytest.fixture
def pool_events():
    """Recorder handed to ``ChunkWorkPool(on_event=...)``.

    Callbacks fire on executor threads; ``list.append`` is atomic under
    the GIL, so a plain list is a safe sink.
    """
    return []
