"""Inject storage faults: flipped bits and interrupted writes.

The integrity contract (DESIGN.md §12): a v3 container never yields
wrong bytes — a flipped bit surfaces as :class:`ChunkCorruptionError`
naming the damaged chunk, and an interrupted ``compress_chunked_to_file``
leaves either the complete old file or the complete new file on disk,
never a torn mix.
"""

import io
import os

import numpy as np
import pytest

from repro.chunked import (
    ChunkedFile,
    compress_chunked,
    compress_chunked_to_file,
    decompress_chunked,
    verify_container,
)
from repro.chunked.container import read_container_info
from repro.errors import ChunkCorruptionError


def smooth2d(shape=(48, 48), seed=0):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.standard_normal(shape), axis=0)
    return (x / np.abs(x).max()).astype(np.float32)


def flip_bit_in_chunk(blob: bytes, index: int):
    """Flip one payload bit of chunk ``index``; returns (blob, entry)."""
    info = read_container_info(io.BytesIO(blob))
    entry = info.entries[index]
    pos = info.data_start + entry.offset + entry.nbytes // 2
    raw = bytearray(blob)
    raw[pos] ^= 0x01
    return bytes(raw), entry


class TestBitFlips:
    def test_flip_raises_typed_error_with_chunk_coords(self):
        blob = compress_chunked(
            smooth2d(), codec="qoz", rel_error_bound=1e-3, chunks=16
        )
        corrupt, entry = flip_bit_in_chunk(blob, 3)
        with ChunkedFile(corrupt) as f:
            with pytest.raises(ChunkCorruptionError) as err:
                f.read((slice(None), slice(None)))
        assert err.value.index == 3
        assert err.value.start == entry.start
        assert err.value.shape == entry.shape
        assert "checksum mismatch" in str(err.value)

    def test_decompress_path_verifies_too(self):
        blob = compress_chunked(
            smooth2d(seed=1), codec="qoz", rel_error_bound=1e-3, chunks=16
        )
        corrupt, _ = flip_bit_in_chunk(blob, 0)
        with pytest.raises(ChunkCorruptionError):
            decompress_chunked(corrupt)

    def test_verify_opt_out_skips_the_check(self):
        blob = compress_chunked(
            smooth2d(seed=2), codec="qoz", rel_error_bound=1e-3, chunks=16
        )
        corrupt, _ = flip_bit_in_chunk(blob, 2)
        with ChunkedFile(corrupt, verify=False) as f:
            # the damaged bytes come back as-is; callers who opted out
            # own the consequences (forensics / best-effort recovery)
            assert isinstance(f.chunk_bytes(2), bytes)

    def test_verify_container_lists_every_damaged_chunk(self):
        blob = compress_chunked(
            smooth2d(seed=3), codec="qoz", rel_error_bound=1e-3, chunks=16
        )
        corrupt, _ = flip_bit_in_chunk(blob, 1)
        corrupt, _ = flip_bit_in_chunk(corrupt, 5)
        report = verify_container(corrupt)
        assert not report.ok
        assert report.checksums
        assert {f.index for f in report.faults} == {1, 5}
        assert all("checksum mismatch" in f.detail for f in report.faults)

        # the pristine blob still verifies clean end to end
        clean = verify_container(blob)
        assert clean.ok and clean.n_chunks == report.n_chunks


class TestInterruptedWrites:
    def assert_no_temp_droppings(self, directory):
        leftovers = [n for n in os.listdir(directory) if n.endswith(".tmp")]
        assert leftovers == []

    def test_failed_rename_leaves_old_file_intact(self, tmp_path, monkeypatch):
        target = tmp_path / "field.rpz"
        compress_chunked_to_file(
            smooth2d(seed=4), target, codec="qoz",
            rel_error_bound=1e-3, chunks=16,
        )
        old_bytes = target.read_bytes()

        def broken_replace(src, dst, **kwargs):
            raise OSError("injected: rename failed")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError, match="injected"):
            compress_chunked_to_file(
                smooth2d(seed=5), target, codec="qoz",
                rel_error_bound=1e-3, chunks=16,
            )
        monkeypatch.undo()

        assert target.read_bytes() == old_bytes  # old file untouched
        self.assert_no_temp_droppings(tmp_path)
        assert verify_container(str(target)).ok

    def test_crash_mid_write_never_creates_the_target(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "fresh.rpz"

        def broken_fsync(fd):
            raise OSError("injected: disk gone")

        monkeypatch.setattr(os, "fsync", broken_fsync)
        with pytest.raises(OSError, match="injected"):
            compress_chunked_to_file(
                smooth2d(seed=6), target, codec="qoz",
                rel_error_bound=1e-3, chunks=16,
            )
        monkeypatch.undo()

        assert not target.exists()  # never a torn half-file
        self.assert_no_temp_droppings(tmp_path)

    def test_successful_write_is_complete_and_verifiable(self, tmp_path):
        target = tmp_path / "ok.rpz"
        data = smooth2d(seed=7)
        compress_chunked_to_file(
            data, target, codec="qoz", rel_error_bound=1e-3, chunks=16
        )
        self.assert_no_temp_droppings(tmp_path)
        assert verify_container(str(target)).ok
        with ChunkedFile(str(target)) as f:
            recon = f.read((slice(None), slice(None)))
        assert np.abs(
            recon.astype(np.float64) - data.astype(np.float64)
        ).max() <= 1e-3 * float(data.max() - data.min()) + 1e-12
