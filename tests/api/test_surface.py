"""Snapshot of the public API surface: names and facade signatures.

The facade contract is that ``repro``'s top level is small, stable, and
routed — so the surface itself is under test.  A symbol appearing or
vanishing, or a facade parameter being renamed/reordered, must show up
as a reviewed diff of this file, not as a silent change discovered by a
downstream caller.
"""

import inspect

import pytest

import repro

#: every name importable from the top-level package (``repro.<name>``)
PUBLIC_SYMBOLS = [
    "ChunkedFile",
    "CompressionError",
    "Compressor",
    "ConfigurationError",
    "DecompressionError",
    "ErrorBound",
    "FrozenPlan",
    "MGARDPlus",
    "QoZ",
    "ReproError",
    "SZ2",
    "SZ3",
    "ZFP",
    "__version__",
    "available_compressors",
    "bit_rate",
    "compress",
    "compress_chunked",  # deprecated shim
    "compress_chunked_to_file",  # deprecated shim
    "compression_ratio",
    "decompress",
    "decompress_chunked",  # deprecated shim
    "error_autocorrelation",
    "get_compressor",
    "open",
    "psnr",
    "read_hyperslab",  # deprecated shim
    "ssim",
]

#: pinned parameter lists of the facade (names, order, defaults)
FACADE_SIGNATURES = {
    "compress": (
        "(data, codec='qoz', bound=None, error_bound=None, "
        "rel_error_bound=None, chunks=None, chunked=None, file=None, "
        "codec_kwargs=None, processes=None, per_chunk_tuning=False, "
        "plan=None, client=None, **service_kwargs)"
    ),
    "decompress": "(source, processes=None, client=None, **service_kwargs)",
    "open": "(source, verify=True)",
}

DEPRECATED = {
    "compress_chunked",
    "compress_chunked_to_file",
    "decompress_chunked",
    "read_hyperslab",
}


def _unannotated(func) -> str:
    """``inspect.signature`` with annotations and return type stripped."""
    sig = inspect.signature(func)
    params = [
        p.replace(annotation=inspect.Parameter.empty)
        for p in sig.parameters.values()
    ]
    return str(
        sig.replace(
            parameters=params, return_annotation=inspect.Signature.empty
        )
    )


def test_public_symbol_set_is_pinned():
    assert sorted(repro.__all__) == PUBLIC_SYMBOLS


def test_every_public_symbol_resolves():
    for name in PUBLIC_SYMBOLS:
        assert getattr(repro, name) is not None


def test_dir_matches_all():
    assert sorted(set(dir(repro)) & set(PUBLIC_SYMBOLS)) == PUBLIC_SYMBOLS


@pytest.mark.parametrize("name,expected", sorted(FACADE_SIGNATURES.items()))
def test_facade_signatures_are_pinned(name, expected):
    assert _unannotated(getattr(repro, name)) == expected


def test_facade_module_exports_exactly_the_facade():
    import repro.api

    assert repro.api.__all__ == ["compress", "decompress", "open"]


def test_deprecated_names_resolve_to_the_shim_module():
    import repro._shims

    for name in sorted(DEPRECATED):
        assert getattr(repro, name) is getattr(repro._shims, name)


def test_error_bound_surface():
    eb = repro.ErrorBound
    assert eb.MODES == ("abs", "rel")
    assert _unannotated(eb.parse) == "(spec)"
    parsed = eb.parse("rel:1e-3")
    assert (parsed.mode, parsed.value) == ("rel", 1e-3)
    assert str(parsed) == "rel:0.001"
    assert eb.absolute(0.5).kwargs() == {"error_bound": 0.5}
    assert eb.relative(0.5).kwargs() == {"rel_error_bound": 0.5}
