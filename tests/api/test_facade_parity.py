"""The facade must be a router, not a re-implementation: byte parity.

Every route through :func:`repro.compress` / :func:`repro.decompress` /
:func:`repro.open` is checked against the legacy entry point it routes
to — identical bytes out, identical arrays back.  The deprecation shims
get the same treatment: they must warn, then delegate unchanged.
"""

import io
import warnings

import numpy as np
import pytest

import repro
from repro.chunked import api as chunked_api
from repro.compressors.base import decompress_any, get_compressor
from repro.errors import CompressionError


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(7)
    x = np.cumsum(rng.standard_normal((24, 20, 12)), axis=0)
    return (x / np.abs(x).max()).astype(np.float32)


BOUNDS = [
    # (facade bound= spelling, legacy kwargs) — all four accepted forms
    ("abs:1e-3", {"error_bound": 1e-3}),
    ("rel:1e-3", {"rel_error_bound": 1e-3}),
    (("rel", 1e-3), {"rel_error_bound": 1e-3}),
    (1e-3, {"error_bound": 1e-3}),
]


class TestSingleArrayRoute:
    @pytest.mark.parametrize("codec", ["qoz", "sz3"])
    @pytest.mark.parametrize("bound,legacy", BOUNDS)
    def test_bytes_match_direct_codec_call(self, field, codec, bound, legacy):
        facade = repro.compress(field, codec=codec, bound=bound)
        direct = get_compressor(codec).compress(field, **legacy)
        assert facade == direct
        np.testing.assert_array_equal(
            repro.decompress(facade), decompress_any(direct)
        )

    def test_legacy_kwargs_accepted_on_the_facade_too(self, field):
        assert repro.compress(field, error_bound=1e-3) == repro.compress(
            field, bound="abs:1e-3"
        )
        assert repro.compress(field, rel_error_bound=1e-3) == repro.compress(
            field, bound="rel:1e-3"
        )


class TestChunkedRoute:
    @pytest.mark.parametrize("processes", [None, 2])
    def test_chunks_arg_routes_to_chunked_bytes(self, field, processes):
        facade = repro.compress(
            field, bound="rel:1e-3", chunks=10, processes=processes
        )
        legacy = chunked_api.compress_chunked(
            field, chunks=10, rel_error_bound=1e-3, processes=processes
        )
        assert facade == legacy
        np.testing.assert_array_equal(
            repro.decompress(facade, processes=processes),
            chunked_api.decompress_chunked(legacy),
        )

    def test_chunked_true_alone_selects_the_container_path(self, field):
        facade = repro.compress(field, bound=1e-3, chunked=True)
        legacy = chunked_api.compress_chunked(field, error_bound=1e-3)
        assert facade == legacy

    def test_file_arg_routes_to_container_on_disk(self, field, tmp_path):
        target = tmp_path / "facade.rpc"
        repro.compress(field, bound=1e-3, chunks=10, file=target)
        buf = io.BytesIO()
        chunked_api.compress_chunked_to_file(
            field, buf, chunks=10, error_bound=1e-3
        )
        assert target.read_bytes() == buf.getvalue()
        np.testing.assert_array_equal(
            repro.decompress(target),
            chunked_api.decompress_chunked(buf.getvalue()),
        )

    def test_open_read_matches_read_hyperslab(self, field):
        blob = repro.compress(field, bound=1e-3, chunks=10)
        slab = (slice(3, 17), slice(None), slice(2, 9))
        with repro.open(blob) as f:
            got = f.read(f.grid.normalize_slab(slab))
        np.testing.assert_array_equal(
            got, chunked_api.read_hyperslab(blob, slab)
        )


class TestRoutingErrors:
    def test_chunked_false_refuses_chunked_only_args(self, field):
        with pytest.raises(CompressionError, match="chunked=False"):
            repro.compress(field, bound=1e-3, chunked=False, chunks=8)

    def test_service_kwargs_require_a_client(self, field):
        with pytest.raises(CompressionError, match="client="):
            repro.compress(field, bound=1e-3, priority="batch")
        with pytest.raises(CompressionError, match="client="):
            repro.decompress(b"\x00", deadline_ms=5.0)

    def test_bound_spellings_are_exclusive(self, field):
        with pytest.raises(CompressionError, match="exactly one"):
            repro.compress(field, bound=1e-3, error_bound=1e-3)
        with pytest.raises(CompressionError, match="exactly one"):
            repro.compress(field)


class TestDeprecationShims:
    def test_shims_warn_and_delegate_byte_identically(self, field):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = repro.compress_chunked(
                field, chunks=10, error_bound=1e-3
            )
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "repro.compress" in str(w.message)
            for w in caught
        )
        assert shimmed == chunked_api.compress_chunked(
            field, chunks=10, error_bound=1e-3
        )

    def test_every_deprecated_name_warns(self, field):
        blob = chunked_api.compress_chunked(field, chunks=10, error_bound=1e-3)
        slab = (slice(0, 8), slice(None), slice(None))
        calls = [
            lambda: repro.decompress_chunked(blob),
            lambda: repro.read_hyperslab(blob, slab),
            lambda: repro.compress_chunked_to_file(
                field, io.BytesIO(), error_bound=1e-3
            ),
        ]
        for call in calls:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                call()
            assert any(
                issubclass(w.category, DeprecationWarning) for w in caught
            )

    def test_canonical_chunked_spellings_do_not_warn(self, field):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            blob = chunked_api.compress_chunked(
                field, chunks=10, error_bound=1e-3
            )
            chunked_api.decompress_chunked(blob)
