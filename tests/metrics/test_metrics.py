"""Tests for PSNR, SSIM, autocorrelation, and rate metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    autocorrelation_profile,
    bit_rate,
    compression_ratio,
    error_autocorrelation,
    error_histogram,
    max_abs_error,
    mse,
    nrmse,
    psnr,
    ssim,
)


class TestPSNR:
    def test_identical_arrays_infinite(self, rng):
        x = rng.standard_normal((32, 32))
        assert psnr(x, x) == float("inf")
        assert mse(x, x) == 0.0
        assert nrmse(x, x) == 0.0

    def test_known_value(self):
        x = np.array([0.0, 1.0])
        y = np.array([0.0, 0.9])  # rmse = 0.1/sqrt(2), vrange = 1
        expected = -20 * np.log10(0.1 / np.sqrt(2))
        assert psnr(x, y) == pytest.approx(expected)

    def test_scale_invariance_of_psnr(self, rng):
        x = rng.standard_normal(1000)
        y = x + 0.01 * rng.standard_normal(1000)
        assert psnr(x, y) == pytest.approx(psnr(10 * x, 10 * y), abs=1e-9)

    def test_constant_original(self):
        x = np.full(10, 3.0)
        assert nrmse(x, x) == 0.0
        assert nrmse(x, x + 1.0) == np.inf


class TestSSIM:
    def test_identical_is_one(self, rng):
        x = rng.standard_normal((40, 40))
        assert ssim(x, x) == pytest.approx(1.0)

    def test_range_and_degradation(self, rng):
        x = np.cumsum(rng.standard_normal((64, 64)), axis=0)
        noisy_small = x + 0.01 * x.std() * rng.standard_normal(x.shape)
        noisy_big = x + 0.5 * x.std() * rng.standard_normal(x.shape)
        s_small, s_big = ssim(x, noisy_small), ssim(x, noisy_big)
        assert -1.0 <= s_big < s_small <= 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((4, 5)))

    def test_constant_field(self):
        x = np.full((16, 16), 5.0)
        assert ssim(x, x.copy()) == 1.0
        assert ssim(x, x + 1.0) == 0.0

    def test_3d_and_1d_supported(self, rng):
        x3 = rng.standard_normal((12, 12, 12))
        assert 0.99 < ssim(x3, x3) <= 1.0
        x1 = rng.standard_normal(100)
        assert 0.99 < ssim(x1, x1) <= 1.0

    def test_batch_mode_isolates_blocks(self, rng):
        # identical stacks must score 1 regardless of block boundaries
        stack = rng.standard_normal((5, 16, 16))
        assert ssim(stack, stack, batch=True) == pytest.approx(1.0)

    def test_small_window_on_small_input(self, rng):
        x = rng.standard_normal((3, 3))
        assert ssim(x, x) == pytest.approx(1.0)


class TestAutocorrelation:
    def test_alternating_errors_strongly_negative(self):
        x = np.zeros(1000)
        e = np.tile([1.0, -1.0], 500)
        assert error_autocorrelation(x, x - e) == pytest.approx(-1.0, abs=0.01)

    def test_constant_error_zero(self):
        x = np.arange(100, dtype=np.float64)
        assert error_autocorrelation(x, x - 0.5) == 0.0

    def test_smooth_error_strongly_positive(self):
        x = np.zeros(1000)
        e = np.sin(np.linspace(0, 8 * np.pi, 1000))
        assert error_autocorrelation(x, x - e) > 0.9

    def test_white_noise_near_zero(self, rng):
        x = np.zeros(20000)
        e = rng.standard_normal(20000)
        assert abs(error_autocorrelation(x, x - e)) < 0.05

    def test_profile_lags(self, rng):
        x = np.zeros(5000)
        e = rng.standard_normal(5000)
        prof = autocorrelation_profile(x, x - e, max_lag=5)
        assert prof.shape == (5,)
        assert np.all(np.abs(prof) < 0.1)

    def test_invalid_lag(self):
        with pytest.raises(ValueError):
            error_autocorrelation(np.zeros(10), np.zeros(10), lag=0)

    def test_short_input(self):
        assert error_autocorrelation(np.zeros(1), np.ones(1)) == 0.0


class TestRate:
    def test_compression_ratio_and_bit_rate(self):
        x = np.zeros((100,), dtype=np.float32)  # 400 bytes
        blob = b"x" * 40
        assert compression_ratio(x, blob) == 10.0
        assert bit_rate(x, blob) == pytest.approx(3.2)

    def test_empty_blob_raises(self):
        with pytest.raises(ValueError):
            compression_ratio(np.zeros(4), b"")

    def test_max_abs_error(self):
        assert max_abs_error(np.array([1.0, 2.0]), np.array([1.5, 2.0])) == 0.5

    def test_error_histogram_counts_and_violations(self, rng):
        x = rng.standard_normal(10000)
        y = x + rng.uniform(-1e-3, 1e-3, 10000)
        centers, counts, violations = error_histogram(x, y, 1e-3)
        assert violations == 0
        assert counts.sum() == 10000
        assert centers.size == 101
        # an out-of-bound point is reported
        y2 = y.copy()
        y2[0] = x[0] + 5e-3
        _, _, v2 = error_histogram(x, y2, 1e-3)
        assert v2 == 1


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=2, max_value=500))
def test_psnr_monotone_in_noise(seed, n):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.standard_normal(n))
    if x.max() == x.min():
        return
    noise = rng.standard_normal(n)
    p1 = psnr(x, x + 1e-4 * noise)
    p2 = psnr(x, x + 1e-2 * noise)
    assert p1 >= p2


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_autocorrelation_in_unit_interval(seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(300)
    y = x + rng.standard_normal(300) * 0.1
    ac = error_autocorrelation(x, y)
    assert -1.0 - 1e-9 <= ac <= 1.0 + 1e-9
