"""Tests for the synthetic dataset generators and the wave solver."""

import numpy as np
import pytest

from repro.datasets import (
    WaveSimulator,
    dataset_names,
    gaussian_random_field,
    get_dataset,
)
from repro.datasets.registry import DATASETS, LABELS
from repro.errors import ConfigurationError


class TestSpectral:
    def test_normalization(self):
        f = gaussian_random_field((64, 64), slope=3.0, seed=1)
        assert f.mean() == pytest.approx(0.0, abs=1e-10)
        assert f.std() == pytest.approx(1.0, rel=1e-6)

    def test_deterministic_by_seed(self):
        a = gaussian_random_field((32, 32), seed=5)
        b = gaussian_random_field((32, 32), seed=5)
        c = gaussian_random_field((32, 32), seed=6)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_steeper_slope_is_smoother(self):
        rough = gaussian_random_field((128, 128), slope=2.0, seed=0)
        smooth = gaussian_random_field((128, 128), slope=5.0, seed=0)

        def roughness(f):
            return np.abs(np.diff(f, axis=0)).mean()

        assert roughness(smooth) < roughness(rough)

    def test_odd_shapes_and_3d(self):
        f = gaussian_random_field((17, 23, 9), slope=3.0, seed=2)
        assert f.shape == (17, 23, 9)
        assert np.all(np.isfinite(f))


class TestWaveSimulator:
    def test_energy_appears_and_propagates(self):
        sim = WaveSimulator((64, 64), seed=0)
        sim.step(20)
        early = np.abs(sim.p).max()
        assert early > 0
        # wavefront spreads with time
        r_early = np.abs(sim.p) > 0.01 * early
        sim.step(20)
        late = np.abs(sim.p)
        r_late = late > 0.01 * late.max()
        assert r_late.sum() > r_early.sum()

    def test_stability(self):
        sim = WaveSimulator((48, 48), seed=1)
        sim.step(200)
        assert np.all(np.isfinite(sim.p))
        assert np.abs(sim.p).max() < 1e6  # CFL-stable, no blow-up

    def test_3d_supported(self):
        sim = WaveSimulator((16, 16, 16))
        sim.step(5)
        assert sim.snapshot().shape == (16, 16, 16)

    def test_1d_rejected(self):
        with pytest.raises(ConfigurationError):
            WaveSimulator((64,))

    def test_velocity_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            WaveSimulator((16, 16), velocity=np.ones((8, 8)))

    def test_reset(self):
        sim = WaveSimulator((32, 32))
        sim.step(10)
        sim.reset()
        assert np.all(sim.p == 0) and sim.step_count == 0


class TestGenerators:
    @pytest.mark.parametrize("name", list(DATASETS))
    def test_generator_properties(self, name):
        small = {"cesm": (64, 128)}.get(name, (16, 32, 32))
        f = get_dataset(name, shape=small, seed=0)
        assert f.dtype == np.float32
        assert f.shape == tuple(small)
        assert np.all(np.isfinite(f))
        assert f.max() > f.min()
        # deterministic
        np.testing.assert_array_equal(f, get_dataset(name, shape=small, seed=0))

    def test_registry_complete(self):
        assert set(dataset_names()) == {
            "rtm", "miranda", "cesm", "scale", "nyx", "hurricane",
        }
        assert set(LABELS) == set(DATASETS)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_dataset("climate")

    def test_nyx_has_heavy_tail(self):
        f = get_dataset("nyx", shape=(32, 32, 32))
        assert f.max() / np.median(f) > 5  # log-normal dynamic range

    def test_compressibility_ordering(self):
        """RTM/Miranda must compress far better than NYX/Hurricane
        (paper Table III ordering) under the same relative bound."""
        from repro import SZ3
        from repro.metrics import compression_ratio

        crs = {}
        shapes = {"cesm": (128, 256)}
        for name in ("rtm", "miranda", "hurricane", "nyx"):
            f = get_dataset(name, shape=shapes.get(name, (32, 48, 48)))
            crs[name] = compression_ratio(
                f, SZ3().compress(f, rel_error_bound=1e-2)
            )
        assert crs["rtm"] > crs["nyx"]
        assert crs["miranda"] > crs["hurricane"]
