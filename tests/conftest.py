"""Shared pytest fixtures and subprocess helpers."""

import os
import pathlib

import numpy as np
import pytest

#: the package lives under src/ (no install step); every test that spawns
#: a python subprocess must propagate this on PYTHONPATH explicitly —
#: the parent's sys.path tweaks do NOT reach child processes
SRC_DIR = pathlib.Path(__file__).parent.parent / "src"


def _env_with_src() -> dict:
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(SRC_DIR) + (os.pathsep + existing if existing else "")
    )
    return env


@pytest.fixture
def subprocess_env() -> dict:
    """os.environ copy with src/ prepended to PYTHONPATH.

    Use this as the ``env=`` of any subprocess that imports ``repro``
    (a fixture, not an import, so it cannot collide with
    ``benchmarks/conftest.py`` on sys.path).
    """
    return _env_with_src()


@pytest.fixture
def rng():
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)
