"""Tests for the linear-scale error-bounded quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantize.linear import (
    DEFAULT_RADIUS,
    OUTLIER_CODE,
    LinearQuantizer,
    quantize_block,
    reconstruct_block,
)


class TestQuantizeBlock:
    def test_zero_residual_maps_to_radius(self):
        v = np.array([1.0, 2.0])
        codes, recon, outl = quantize_block(v, v, 0.1)
        assert codes.tolist() == [DEFAULT_RADIUS, DEFAULT_RADIUS]
        np.testing.assert_allclose(recon, v)
        assert outl.size == 0

    def test_reconstruction_within_bound(self, rng):
        values = rng.standard_normal(1000)
        preds = values + rng.uniform(-0.5, 0.5, 1000)
        codes, recon, outl = quantize_block(values, preds, 1e-3)
        assert np.all(np.abs(values - recon) <= 1e-3)
        assert outl.size == 0

    def test_overflow_becomes_outlier(self):
        values = np.array([1e9, 0.0])
        preds = np.zeros(2)
        codes, recon, outl = quantize_block(values, preds, 1e-6)
        assert codes[0] == OUTLIER_CODE
        assert recon[0] == 1e9  # exact
        assert outl.tolist() == [1e9]

    def test_outlier_order_is_scan_order(self):
        values = np.array([5e8, 0.0, -7e8])
        codes, recon, outl = quantize_block(values, np.zeros(3), 1e-9)
        assert outl.tolist() == [5e8, -7e8]

    def test_cast_dtype_guard_catches_float32_rounding(self):
        # recon = pred is within eb of the value in float64, but float32
        # rounding (spacing 0.0625 at 1e6) pushes it past the bound
        eb = 0.04
        value = np.array([1e6], dtype=np.float64)
        pred = np.array([1e6 - 0.033])
        codes, recon, outl = quantize_block(value, pred, eb, cast_dtype=np.float32)
        assert codes[0] == OUTLIER_CODE
        assert recon[0] == value[0]
        # without the cast guard it would have been accepted
        codes64, _, _ = quantize_block(value, pred, eb, cast_dtype=np.float64)
        assert codes64[0] != OUTLIER_CODE

    def test_roundtrip_block(self, rng):
        values = rng.standard_normal(500)
        preds = values + rng.uniform(-0.1, 0.1, 500)
        codes, recon, outl = quantize_block(values, preds, 1e-4)
        recon2 = reconstruct_block(codes, preds, 1e-4, outl)
        np.testing.assert_array_equal(recon, recon2)

    def test_multidimensional_input(self, rng):
        values = rng.standard_normal((8, 9))
        preds = np.zeros((8, 9))
        codes, recon, _ = quantize_block(values, preds, 0.01)
        assert codes.shape == (8, 9)
        assert np.all(np.abs(values - recon) <= 0.01)


class TestLinearQuantizerState:
    def test_multi_pass_roundtrip(self, rng):
        q = LinearQuantizer()
        values = [rng.standard_normal(50), rng.standard_normal((4, 6))]
        preds = [np.zeros(50), np.zeros((4, 6))]
        recons = [q.quantize(v, p, 1e-2) for v, p in zip(values, preds)]
        codes, outliers = q.harvest()
        assert codes.size == 50 + 24

        d = LinearQuantizer(codes=codes, outliers=outliers)
        out0 = d.dequantize(50, preds[0], 1e-2)
        out1 = d.dequantize(24, preds[1], 1e-2)
        np.testing.assert_array_equal(out0, recons[0])
        np.testing.assert_array_equal(out1, recons[1])
        assert out1.shape == (4, 6)

    def test_outliers_interleaved_across_passes(self, rng):
        q = LinearQuantizer()
        v1 = np.array([1e9, 0.0])
        v2 = np.array([0.0, -1e9])
        q.quantize(v1, np.zeros(2), 1e-6)
        q.quantize(v2, np.zeros(2), 1e-6)
        codes, outliers = q.harvest()
        assert outliers.tolist() == [1e9, -1e9]
        d = LinearQuantizer(codes=codes, outliers=outliers)
        np.testing.assert_array_equal(d.dequantize(2, np.zeros(2), 1e-6), v1)
        np.testing.assert_array_equal(d.dequantize(2, np.zeros(2), 1e-6), v2)

    def test_exhausted_codes_raise(self):
        from repro.errors import DecompressionError

        d = LinearQuantizer(codes=np.zeros(1, dtype=np.int64),
                            outliers=np.zeros(1))
        d.dequantize(1, np.zeros(1), 1e-3)
        with pytest.raises(DecompressionError):
            d.dequantize(1, np.zeros(1), 1e-3)

    def test_empty_harvest(self):
        codes, outliers = LinearQuantizer().harvest()
        assert codes.size == 0 and outliers.size == 0


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.floats(min_value=1e-9, max_value=10.0),
    st.integers(min_value=1, max_value=500),
)
def test_bound_invariant_property(seed, eb, n):
    """|value - recon| <= eb for every point, any (values, preds, eb)."""
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(n) * 10.0 ** rng.integers(-3, 4)
    preds = values + rng.standard_normal(n) * 10.0 ** rng.integers(-6, 3)
    codes, recon, outl = quantize_block(values, preds, eb)
    assert np.all(np.abs(values - recon) <= eb)
    recon2 = reconstruct_block(codes, preds, eb, outl)
    np.testing.assert_array_equal(recon, recon2)
