"""Concurrent reads on ONE shared ChunkedFile must not corrupt each other.

Before the service layer, ``ChunkedFile`` read payloads with a shared
seek+read on one file handle — a latent race the single-threaded CLI
never tripped but a server decoding chunks from many worker threads
would: thread A's ``seek`` lands between thread B's ``seek`` and
``read``, and B decodes A's bytes (usually a DecompressionError, worst
case a silently wrong chunk).  Reads now use positioned I/O
(``os.pread``) for real files and a seek lock for ``BytesIO`` sources;
this file hammers both paths from a thread pool and compares every
result against the serial answer.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.chunked import ChunkedFile, compress_chunked

N_THREADS = 8
ROUNDS = 6  # per thread, per scenario


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(7)
    x = np.cumsum(rng.standard_normal((48, 48, 48)), axis=0)
    x += np.cumsum(rng.standard_normal((48, 48, 48)), axis=2)
    return (x / np.abs(x).max()).astype(np.float32)


@pytest.fixture(scope="module")
def container(field):
    # 3x3x3 = 27 chunks so threads genuinely interleave byte ranges
    return compress_chunked(field, codec="qoz", error_bound=1e-3, chunks=16)


@pytest.fixture(scope="module")
def container_path(container, tmp_path_factory):
    path = tmp_path_factory.mktemp("concurrent") / "field.rpz"
    path.write_bytes(container)
    return str(path)


def _hammer(open_file, expected_chunks, expected_slabs, slabs):
    """Fire chunk+slab reads from N threads; return collected mismatches."""
    barrier = threading.Barrier(N_THREADS)
    errors = []

    def worker(tid):
        rng = np.random.default_rng(tid)
        barrier.wait()  # maximize interleaving
        for r in range(ROUNDS):
            i = int(rng.integers(0, len(expected_chunks)))
            got = open_file.chunk(i)
            if not np.array_equal(got, expected_chunks[i]):
                errors.append(f"thread {tid} round {r}: chunk {i} mismatch")
            s = int(rng.integers(0, len(slabs)))
            got = open_file.read(slabs[s])
            if not np.array_equal(got, expected_slabs[s]):
                errors.append(f"thread {tid} round {r}: slab {s} mismatch")

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        list(pool.map(worker, range(N_THREADS)))
    return errors


@pytest.fixture(scope="module")
def slabs():
    return [
        (slice(0, 48), slice(0, 48), slice(0, 48)),
        (slice(5, 40), slice(None), slice(17, 18)),
        (slice(None), slice(30, 48), slice(0, 20)),
        (slice(15, 17), slice(15, 17), slice(15, 17)),
    ]


class TestConcurrentReads:
    def test_file_backed_reads_from_many_threads(
        self, container_path, slabs
    ):
        with ChunkedFile(container_path) as f:
            expected_chunks = [f.chunk(i) for i in range(f.n_chunks)]
            expected_slabs = [f.read(s) for s in slabs]
            assert f.n_chunks == 27
            errors = _hammer(f, expected_chunks, expected_slabs, slabs)
        assert not errors, errors[:5]

    def test_bytesio_backed_reads_from_many_threads(self, container, slabs):
        # bytes sources have no fd -> exercises the seek-lock fallback
        with ChunkedFile(container) as f:
            expected_chunks = [f.chunk(i) for i in range(f.n_chunks)]
            expected_slabs = [f.read(s) for s in slabs]
            errors = _hammer(f, expected_chunks, expected_slabs, slabs)
        assert not errors, errors[:5]

    def test_concurrent_reads_share_one_open_handle(self, container_path):
        # the whole point: no per-thread reopen is needed for safety
        with ChunkedFile(container_path) as f:
            results = []

            def read_all():
                results.append(f.to_array())

            threads = [
                threading.Thread(target=read_all) for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert len(results) == 4
            for out in results[1:]:
                assert np.array_equal(out, results[0])
