"""Tests for the chunked container: roundtrips, random access, back-compat."""

import io
import struct

import numpy as np
import pytest

from repro.chunked import (
    ChunkedFile,
    ChunkedWriter,
    compress_chunked,
    compress_chunked_to_file,
    decompress_chunk,
    decompress_chunked,
    grid_for,
    read_hyperslab,
)
from repro.compressors.base import (
    available_compressors,
    decompress_any,
    get_compressor,
)
from repro.core.header import parse_header
from repro.errors import CompressionError, DecompressionError
from repro.utils import resolve_error_bound


@pytest.fixture(scope="module")
def field():
    """Small but multi-chunk 3-D field with smooth structure."""
    from repro.datasets import get_dataset

    return get_dataset("miranda", shape=(20, 24, 18), seed=1).astype(np.float32)


REL_EB = 1e-3


class TestRoundtrip:
    @pytest.mark.parametrize("codec", available_compressors())
    def test_same_bound_as_unchunked_path(self, field, codec):
        """Chunked and unchunked honor the same absolute bound."""
        abs_eb = resolve_error_bound(field, None, REL_EB)
        blob = compress_chunked(field, codec=codec, chunks=16,
                                rel_error_bound=REL_EB)
        recon = decompress_chunked(blob)
        assert recon.shape == field.shape and recon.dtype == field.dtype
        err = np.abs(recon.astype(np.float64) - field.astype(np.float64)).max()
        assert err <= abs_eb

        unchunked = get_compressor(codec).compress(field, error_bound=abs_eb)
        urecon = decompress_any(unchunked)
        uerr = np.abs(
            urecon.astype(np.float64) - field.astype(np.float64)
        ).max()
        assert uerr <= abs_eb
        # the container header records exactly the resolved bound
        header, _ = parse_header(blob)
        assert header.error_bound == pytest.approx(abs_eb)
        assert header.is_chunked

    def test_decompress_any_routes_containers(self, field):
        blob = compress_chunked(field, codec="sz3", chunks=16,
                                rel_error_bound=REL_EB)
        np.testing.assert_array_equal(
            decompress_any(blob), decompress_chunked(blob)
        )

    def test_codec_decompress_refuses_container(self, field):
        blob = compress_chunked(field, codec="sz3", chunks=16,
                                rel_error_bound=REL_EB)
        with pytest.raises(DecompressionError, match="chunked container"):
            get_compressor("sz3").decompress(blob)

    @pytest.mark.parametrize("shape,chunks", [((37,), 16), ((30, 22), (16, 8))])
    def test_low_rank_and_float64(self, rng, shape, chunks):
        data = np.cumsum(rng.standard_normal(shape).ravel()).reshape(shape)
        blob = compress_chunked(data, codec="sz3", chunks=chunks,
                                error_bound=1e-4)
        recon = decompress_chunked(blob)
        assert recon.dtype == np.float64
        assert np.abs(recon - data).max() <= 1e-4

    def test_parallel_fanout_matches_sequential(self, field):
        seq = compress_chunked(field, codec="sz3", chunks=8,
                               rel_error_bound=REL_EB)
        par = compress_chunked(field, codec="sz3", chunks=8,
                               rel_error_bound=REL_EB, processes=2)
        np.testing.assert_array_equal(
            decompress_chunked(seq), decompress_chunked(par)
        )

    def test_relative_bound_uses_full_field_range(self, rng):
        """A chunk with tiny local range must NOT get a tighter bound."""
        data = np.zeros((32, 8)) + 0.5
        data[16:] += 100.0 * rng.standard_normal((16, 8)).cumsum(axis=0)
        blob = compress_chunked(data, codec="sz3", chunks=(16, 8),
                                rel_error_bound=1e-3)
        header, _ = parse_header(blob)
        assert header.error_bound == pytest.approx(
            resolve_error_bound(data, None, 1e-3)
        )


class TestRandomAccess:
    def test_single_chunk_matches_full_reconstruction(self, field):
        blob = compress_chunked(field, codec="sz3", chunks=16,
                                rel_error_bound=REL_EB)
        full = decompress_chunked(blob)
        slices, chunk = decompress_chunk(blob, 3)
        np.testing.assert_array_equal(chunk, full[slices])

    def test_chunk_decode_reads_only_its_byte_range(self, field):
        """Corrupting every OTHER chunk's bytes must not affect chunk i."""
        blob = compress_chunked(field, codec="sz3", chunks=16,
                                rel_error_bound=REL_EB)
        with ChunkedFile(blob) as f:
            target = 2
            expect = f.chunk(target)
            info = f.info
        corrupted = bytearray(blob)
        for i, e in enumerate(info.entries):
            if i != target:
                start = info.data_start + e.offset
                corrupted[start : start + e.nbytes] = b"\xff" * e.nbytes
        with ChunkedFile(bytes(corrupted)) as f:
            np.testing.assert_array_equal(f.chunk(target), expect)

    def test_hyperslab_extraction(self, field):
        blob = compress_chunked(field, codec="sz3", chunks=(8, 16, 5),
                                rel_error_bound=REL_EB)
        full = decompress_chunked(blob)
        slab = (slice(5, 18), slice(0, 24), slice(10, 15))
        np.testing.assert_array_equal(read_hyperslab(blob, slab), full[slab])
        # hyperslab values honor the bound vs the original too
        abs_eb = resolve_error_bound(field, None, REL_EB)
        err = np.abs(
            read_hyperslab(blob, slab).astype(np.float64)
            - field[slab].astype(np.float64)
        ).max()
        assert err <= abs_eb

    def test_hyperslab_with_none_and_negatives(self, field):
        blob = compress_chunked(field, codec="sz3", chunks=16,
                                rel_error_bound=REL_EB)
        full = decompress_chunked(blob)
        np.testing.assert_array_equal(
            read_hyperslab(blob, (None, slice(-8, None), slice(0, 9))),
            full[:, -8:, 0:9],
        )


class TestBackCompat:
    def test_version1_streams_still_decode(self, field):
        """Rewrite a current stream's header as v1; it must still decode."""
        codec = get_compressor("sz3")
        blob = codec.compress(field, error_bound=1e-3)
        header, off = parse_header(blob)
        v1_head = struct.pack(
            "<4sBBBBd", b"RPZ1", 1, header.codec_id, 0, field.ndim,
            header.error_bound,
        ) + struct.pack(f"<{field.ndim}Q", *field.shape)
        v1_blob = v1_head + blob[off:]
        h1, _ = parse_header(v1_blob)
        assert h1.version == 1 and h1.flags == 0 and not h1.is_chunked
        np.testing.assert_array_equal(
            decompress_any(v1_blob), decompress_any(blob)
        )

    def test_future_version_rejected(self):
        bad = b"RPZ1" + bytes([9]) + b"\x00" * 40
        with pytest.raises(DecompressionError, match="version"):
            parse_header(bad)


class TestContainerRobustness:
    def test_truncated_container_raises(self, field):
        blob = compress_chunked(field, codec="sz3", chunks=16,
                                rel_error_bound=REL_EB)
        with pytest.raises(DecompressionError):
            decompress_chunked(blob[: len(blob) // 2])

    def test_non_container_rejected_by_reader(self, field):
        plain = get_compressor("sz3").compress(field, error_bound=1e-3)
        with pytest.raises(DecompressionError, match="not a chunked"):
            ChunkedFile(plain)

    def test_reader_closes_file_when_parse_fails(self, field, tmp_path):
        """A failed open must not leak the file handle."""
        import gc
        import warnings

        path = tmp_path / "plain.rpz"
        path.write_bytes(get_compressor("sz3").compress(field, error_bound=1e-3))
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            with pytest.raises(DecompressionError):
                ChunkedFile(path)
            gc.collect()  # a leaked handle would raise ResourceWarning here

    def test_writer_refuses_missing_and_duplicate_chunks(self):
        grid = grid_for((8, 8), 4)
        buf = io.BytesIO()
        w = ChunkedWriter(buf, 3, np.dtype(np.float32), grid, 1e-3)
        w.write_chunk(0, b"x" * 10)
        with pytest.raises(CompressionError, match="twice"):
            w.write_chunk(0, b"y")
        with pytest.raises(CompressionError, match="never written"):
            w.finalize()

    def test_eb_validation(self, field):
        with pytest.raises(CompressionError):
            compress_chunked(field, codec="sz3", chunks=16)  # no bound
        with pytest.raises(CompressionError):
            compress_chunked(field, codec="sz3", chunks=16,
                             error_bound=1e-3, rel_error_bound=1e-3)

    def test_file_roundtrip_and_to_npy(self, field, tmp_path):
        path = tmp_path / "field.rpz"
        out = tmp_path / "recon.npy"
        info = compress_chunked_to_file(
            field, path, codec="sz3", chunks=16, rel_error_bound=REL_EB
        )
        assert info.total_bytes == path.stat().st_size
        with ChunkedFile(path) as f:
            assert f.shape == field.shape
            assert f.codec_name == "sz3"
            d = f.describe()
            assert d["n_chunks"] == f.n_chunks
            f.to_npy(out)
        np.testing.assert_array_equal(
            np.load(out), decompress_chunked(path.read_bytes())
        )
