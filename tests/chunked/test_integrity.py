"""v3 checksum containers, v2 back-compat, and the ``repro verify`` CLI.

The compat matrix pinned here (DESIGN.md §12): ChunkedWriter emits v3
(per-chunk blake2s digests + header checksum) by default, still writes
v2 on request, and the reader accepts both — v2 containers simply
verify structurally instead of by content digest.
"""

import io

import numpy as np
import pytest

from repro.__main__ import main
from repro.chunked import (
    ChunkedFile,
    compress_chunked,
    compress_chunked_to_file,
    verify_container,
)
from repro.chunked.container import ChunkedWriter, read_container_info
from repro.compressors.base import get_compressor
from repro.core.header import VERSION, VERSION_CHECKSUM


def smooth2d(shape=(48, 48), seed=0):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.standard_normal(shape), axis=0)
    return (x / np.abs(x).max()).astype(np.float32)


def write_container(data, version):
    """The compress_chunked walk, pinned to one container version."""
    from repro.chunked.tiling import grid_for

    codec = get_compressor("qoz")
    grid = grid_for(data.shape, 16)
    eb = 1e-3 * float(data.max() - data.min())
    buf = io.BytesIO()
    with ChunkedWriter(
        buf, codec.codec_id, data.dtype, grid, eb, version=version
    ) as w:
        for i in grid:
            chunk = np.ascontiguousarray(data[grid.chunk_slices(i)])
            w.write_chunk(i, get_compressor("qoz").compress(
                chunk, error_bound=eb
            ))
    return buf.getvalue()


class TestVersions:
    def test_default_writer_emits_v3_with_digests(self):
        blob = compress_chunked(
            smooth2d(), codec="qoz", rel_error_bound=1e-3, chunks=16
        )
        info = read_container_info(io.BytesIO(blob))
        assert info.header.version == VERSION_CHECKSUM
        assert all(e.checksum is not None for e in info.entries)
        report = verify_container(blob)
        assert report.ok and report.checksums
        assert report.version == VERSION_CHECKSUM

    def test_v2_writer_still_supported_and_readable(self):
        data = smooth2d(seed=1)
        blob = write_container(data, version=VERSION)
        info = read_container_info(io.BytesIO(blob))
        assert info.header.version == VERSION
        assert all(e.checksum is None for e in info.entries)
        with ChunkedFile(blob) as f:
            recon = f.read((slice(None), slice(None)))
        assert np.abs(
            recon.astype(np.float64) - data.astype(np.float64)
        ).max() <= 1e-3 * float(data.max() - data.min()) + 1e-12
        # v2 has no digests: verification falls back to structural checks
        report = verify_container(blob)
        assert report.ok and not report.checksums
        assert report.version == VERSION

    def test_v2_and_v3_chunk_payloads_are_identical(self):
        data = smooth2d(seed=2)
        v2 = write_container(data, version=VERSION)
        v3 = write_container(data, version=VERSION_CHECKSUM)
        with ChunkedFile(v2) as f2, ChunkedFile(v3) as f3:
            for i in range(f2.info.grid.n_chunks):
                assert f2.chunk_bytes(i) == f3.chunk_bytes(i)

    def test_unknown_writer_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            write_container(smooth2d(seed=3), version=7)

    def test_plain_streams_stay_v2(self):
        # unchunked stream bytes are pinned by golden fixtures; the v3
        # container format must not leak into them
        from repro.core.header import parse_header

        blob = get_compressor("qoz").compress(smooth2d(seed=4), error_bound=0.01)
        header, _ = parse_header(blob)
        assert header.version == VERSION


class TestVerifyCli:
    def write_file(self, tmp_path, seed=0):
        data = smooth2d(seed=seed)
        target = tmp_path / "field.rpz"
        compress_chunked_to_file(
            data, target, codec="qoz", rel_error_bound=1e-3, chunks=16
        )
        return target

    def test_clean_container_exits_zero(self, tmp_path, capsys):
        target = self.write_file(tmp_path)
        assert main(["verify", str(target)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "chunk checksums" in out

    def test_corrupt_container_exits_nonzero_with_coords(
        self, tmp_path, capsys
    ):
        target = self.write_file(tmp_path, seed=1)
        blob = bytearray(target.read_bytes())
        info = read_container_info(io.BytesIO(bytes(blob)))
        entry = info.entries[2]
        blob[info.data_start + entry.offset + entry.nbytes // 2] ^= 0x01
        target.write_bytes(bytes(blob))

        assert main(["verify", str(target)]) == 1
        captured = capsys.readouterr()
        assert "CORRUPT" in captured.err
        assert "chunk 2" in captured.err
        assert str(tuple(entry.start)) in captured.err

    def test_plain_stream_reports_header_ok(self, tmp_path, capsys):
        target = tmp_path / "plain.rpz"
        target.write_bytes(
            get_compressor("qoz").compress(smooth2d(seed=5), error_bound=0.01)
        )
        assert main(["verify", str(target)]) == 0
        assert "plain stream" in capsys.readouterr().out
