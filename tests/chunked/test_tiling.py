"""Tests for chunk-grid geometry and hyperslab -> chunk mapping."""

import numpy as np
import pytest

from repro.chunked.tiling import (
    DEFAULT_CHUNK,
    ChunkGrid,
    grid_for,
    normalize_chunk_shape,
)
from repro.errors import ConfigurationError


class TestNormalizeChunkShape:
    def test_default_is_256_clipped(self):
        assert normalize_chunk_shape((1000, 100)) == (DEFAULT_CHUNK, 100)

    def test_int_broadcasts(self):
        assert normalize_chunk_shape((64, 64, 64), 16) == (16, 16, 16)

    def test_sequence_passthrough_clipped(self):
        assert normalize_chunk_shape((10, 50), (32, 32)) == (10, 32)

    def test_rank_mismatch(self):
        with pytest.raises(ConfigurationError):
            normalize_chunk_shape((10, 10), (4, 4, 4))

    def test_nonpositive_edge(self):
        with pytest.raises(ConfigurationError):
            normalize_chunk_shape((10, 10), (0, 4))


class TestChunkGrid:
    def test_exact_tiling(self):
        g = grid_for((32, 16), 16)
        assert g.grid_shape == (2, 1)
        assert g.n_chunks == 2
        assert g.chunk_slices(1) == (slice(16, 32), slice(0, 16))

    def test_edge_chunks_truncated(self):
        g = grid_for((20, 24, 18), 16)
        assert g.grid_shape == (2, 2, 2)
        assert g.chunk_shape_at(g.n_chunks - 1) == (4, 8, 2)

    def test_every_cell_covered_exactly_once(self):
        g = grid_for((7, 11, 5), (3, 4, 2))
        counts = np.zeros(g.shape, dtype=int)
        for i in g:
            counts[g.chunk_slices(i)] += 1
        assert np.all(counts == 1)

    def test_index_out_of_range(self):
        g = grid_for((8, 8), 4)
        with pytest.raises(IndexError):
            g.chunk_coords(g.n_chunks)


class TestSlabs:
    def test_normalize_none_and_pairs(self):
        g = grid_for((10, 20), 8)
        assert g.normalize_slab((None, (2, 5))) == (slice(0, 10), slice(2, 5))

    def test_negative_indices(self):
        g = grid_for((10,), 4)
        assert g.normalize_slab((slice(-4, -1),)) == (slice(6, 9),)

    def test_step_rejected(self):
        g = grid_for((10,), 4)
        with pytest.raises(ConfigurationError):
            g.normalize_slab((slice(0, 10, 2),))

    def test_rank_mismatch(self):
        g = grid_for((10, 10), 4)
        with pytest.raises(ConfigurationError):
            g.normalize_slab((slice(0, 5),))

    def test_chunks_for_slab_matches_brute_force(self):
        g = grid_for((20, 24, 18), (8, 16, 5))
        slab = (slice(5, 18), slice(0, 24), slice(10, 15))
        expect = []
        for i in g:
            sel = g.chunk_slices(i)
            if all(
                s.start < sl.stop and sl.start < s.stop
                for s, sl in zip(sel, slab)
            ):
                expect.append(i)
        assert sorted(g.chunks_for_slab(slab)) == expect

    def test_empty_slab_hits_nothing(self):
        g = grid_for((16, 16), 8)
        assert g.chunks_for_slab((slice(4, 4), slice(0, 16))) == []

    def test_single_point_slab(self):
        g = grid_for((16, 16), 8)
        assert g.chunks_for_slab(((9, 10), (0, 1))) == [
            int(np.ravel_multi_index((1, 0), g.grid_shape))
        ]
