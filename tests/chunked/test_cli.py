"""Tests for the ``python -m repro`` CLI (in-process + one real subprocess)."""

import subprocess
import sys

import numpy as np
import pytest

from repro.__main__ import main, _parse_chunks, _parse_slab


@pytest.fixture()
def npy_field(tmp_path):
    from repro.datasets import get_dataset

    data = get_dataset("cesm", shape=(64, 80), seed=0)
    path = tmp_path / "field.npy"
    np.save(path, data)
    return path, data


class TestParsers:
    def test_chunks_single_broadcasts(self):
        assert _parse_chunks("64") == 64

    def test_chunks_tuple(self):
        assert _parse_chunks("64,32") == (64, 32)

    def test_slab(self):
        assert _parse_slab("0:16,:,8:24") == (
            slice(0, 16), slice(None, None), slice(8, 24),
        )

    def test_slab_single_index(self):
        assert _parse_slab("3,0:4") == (slice(3, 4), slice(0, 4))

    def test_slab_negative_single_index(self):
        """-1 must select the last element, not an empty slice(-1, 0)."""
        assert _parse_slab("-1,0:4") == (slice(-1, None), slice(0, 4))
        assert _parse_slab("-3") == (slice(-3, -2),)


class TestEndToEnd:
    def test_compress_info_decompress(self, npy_field, tmp_path, capsys):
        path, data = npy_field
        rpz = tmp_path / "field.rpz"
        out = tmp_path / "recon.npy"

        assert main(["compress", str(path), str(rpz),
                     "--codec", "sz3", "--chunks", "32",
                     "--rel-eb", "1e-3"]) == 0
        assert "wrote" in capsys.readouterr().out

        assert main(["info", str(rpz), "--list-chunks"]) == 0
        text = capsys.readouterr().out
        assert "chunked container" in text and "sz3" in text

        assert main(["decompress", str(rpz), str(out)]) == 0
        recon = np.load(out)
        eb = 1e-3 * (data.max() - data.min())
        assert recon.shape == data.shape
        assert np.abs(
            recon.astype(np.float64) - data.astype(np.float64)
        ).max() <= eb

    def test_slab_decompress(self, npy_field, tmp_path, capsys):
        path, data = npy_field
        rpz = tmp_path / "field.rpz"
        full = tmp_path / "full.npy"
        slab = tmp_path / "slab.npy"
        main(["compress", str(path), str(rpz), "--codec", "sz3",
              "--chunks", "32", "--rel-eb", "1e-3"])
        main(["decompress", str(rpz), str(full)])
        main(["decompress", str(rpz), str(slab), "--slab", "10:50,60:80"])
        np.testing.assert_array_equal(
            np.load(slab), np.load(full)[10:50, 60:80]
        )

    def test_dataset_input_and_parallel(self, tmp_path, capsys):
        rpz = tmp_path / "nyx.rpz"
        assert main(["compress", "dataset:nyx:24x24x24", str(rpz),
                     "--codec", "sz3", "--chunks", "16",
                     "--rel-eb", "1e-3", "--processes", "2"]) == 0
        assert main(["info", str(rpz)]) == 0
        assert "(24, 24, 24)" in capsys.readouterr().out

    def test_plain_stream_decompress_and_info(self, npy_field, tmp_path, capsys):
        """decompress/info also handle unchunked streams."""
        from repro.compressors.base import get_compressor

        path, data = npy_field
        plain = tmp_path / "plain.rpz"
        out = tmp_path / "out.npy"
        plain.write_bytes(
            get_compressor("sz3").compress(data, rel_error_bound=1e-3)
        )
        assert main(["info", str(plain)]) == 0
        assert "plain stream" in capsys.readouterr().out
        assert main(["decompress", str(plain), str(out)]) == 0
        assert np.load(out).shape == data.shape

    def test_eb_required(self, npy_field, tmp_path):
        path, _ = npy_field
        with pytest.raises(SystemExit):
            main(["compress", str(path), str(tmp_path / "x.rpz")])


def test_python_dash_m_entrypoint(npy_field, tmp_path, subprocess_env):
    """The real ``python -m repro`` module entry point works."""
    path, _ = npy_field
    rpz = tmp_path / "field.rpz"
    result = subprocess.run(
        [sys.executable, "-m", "repro", "compress", str(path), str(rpz),
         "--codec", "sz3", "--chunks", "32", "--rel-eb", "1e-3"],
        env=subprocess_env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert rpz.exists()
    result = subprocess.run(
        [sys.executable, "-m", "repro", "info", str(rpz)],
        env=subprocess_env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "chunked container" in result.stdout
