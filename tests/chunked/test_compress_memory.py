"""Peak-allocation bounds for the compress path (mirror of
`tests/encoding/test_decode_memory.py`).

Chunked compression of a memory-mapped field must keep peak array traffic
proportional to one chunk (plus the global sample-block stack that plan
derivation holds), never to the field: the serial writer materializes one
chunk at a time, plan derivation reads only block-sized samples, and
`interp_compress(keep_work=False)` releases the full-resolution float64
reconstruction before the payload is entropy-coded.

numpy >= 1.22 routes array allocations through tracemalloc, so these
budgets measure real array traffic; the memmap input itself is mmap-backed
and invisible to tracemalloc, which is exactly what lets the budget be
field-size-independent.
"""

import tracemalloc

import numpy as np

from repro.chunked import compress_chunked_to_file
from repro.core.engine import InterpPlan, LevelPlan, interp_compress

#: fixed scratch allowance (decode/encode tables, small streams, sample
#: blocks) independent of how large the field is
_SCRATCH_FIXED = 8e6  # bytes
#: per-chunk allowance: float64 work copy + int64 codes + a few encode
#: passes over the chunk
_CHUNK_FACTOR = 24.0  # x one chunk's float64 bytes


def _field_memmap(tmp_path, shape, seed):
    rng = np.random.default_rng(seed)
    path = tmp_path / "field.npy"
    out = np.lib.format.open_memmap(
        path, mode="w+", dtype=np.float64, shape=shape
    )
    x = np.cumsum(rng.standard_normal(shape), axis=0)
    out[...] = x / np.abs(x).max()
    out.flush()
    del out
    return np.load(path, mmap_mode="r")


def test_chunked_compress_peak_is_chunk_plus_sample_sized(tmp_path):
    """Compressing a 16 MB memmapped field through 256 KB chunks must keep
    traced memory proportional to one chunk plus the sampled-block stack
    that plan derivation tunes on — never to the field.

    The sample stack is rate * field by the paper's §VI-A semantics, so it
    appears explicitly in the budget; the companion scaling test below is
    what proves no hidden field-proportional term exists.
    """
    from repro.core.sampling import sample_blocks

    data = _field_memmap(tmp_path, (128, 128, 128), seed=20)
    chunk_bytes = 32 * 32 * 32 * 8
    blocks, _ = sample_blocks(data, 32, 0.005)
    sample_bytes = blocks.nbytes
    del blocks
    out = tmp_path / "field.rpz"

    compress_chunked_to_file(data, out, codec="qoz", chunks=32, error_bound=1e-3)
    tracemalloc.start()
    compress_chunked_to_file(data, out, codec="qoz", chunks=32, error_bound=1e-3)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    budget = _CHUNK_FACTOR * chunk_bytes + 8.0 * sample_bytes + _SCRATCH_FIXED
    assert peak <= budget, (
        f"compress peak {peak / 1e6:.1f} MB exceeds {budget / 1e6:.1f} MB "
        f"for {chunk_bytes / 1e6:.1f} MB chunks + "
        f"{sample_bytes / 1e6:.1f} MB sample stack"
    )


def test_compress_peak_does_not_scale_with_field_size(tmp_path):
    """Same chunk size, 8x the field: peak traced memory must stay put."""

    def peak_for(shape, seed):
        data = _field_memmap(tmp_path, shape, seed)
        out = tmp_path / f"f{shape[0]}.rpz"
        compress_chunked_to_file(
            data, out, codec="sz3", chunks=32, error_bound=1e-3
        )
        tracemalloc.start()
        compress_chunked_to_file(
            data, out, codec="sz3", chunks=32, error_bound=1e-3
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    small = peak_for((64, 64, 64), seed=21)
    large = peak_for((128, 128, 128), seed=22)
    assert large < 2 * small + _SCRATCH_FIXED


def test_keep_work_false_drops_the_reconstruction():
    """`interp_compress(keep_work=False)` must shed one full-field float64
    array relative to the default, and return identical streams."""
    rng = np.random.default_rng(23)
    data = np.cumsum(rng.standard_normal((64, 64, 64)), axis=0)
    data /= np.abs(data).max()
    plan = InterpPlan(levels={1: LevelPlan(eb=1e-3)}, anchor_stride=0)

    def run(keep):
        tracemalloc.start()
        result = interp_compress(data, plan, keep_work=keep)
        retained, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return result, retained

    (codes_a, out_a, known_a, work_a), retained_keep = run(True)
    (codes_b, out_b, known_b, work_b), retained_drop = run(False)
    np.testing.assert_array_equal(codes_a, codes_b)
    np.testing.assert_array_equal(out_a, out_b)
    np.testing.assert_array_equal(known_a, known_b)
    assert work_a is not None and work_a.shape == data.shape
    assert work_b is None
    # what survives the call (and would sit alive through entropy coding)
    # must shrink by the full-field float64 reconstruction
    assert retained_keep - retained_drop >= 0.9 * data.nbytes
