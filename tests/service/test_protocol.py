"""Wire-format tests: every message round-trips, every bomb is defused."""

import struct

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.service import protocol as p


def roundtrip_request(req):
    return p.decode_request(p.encode_request(req))


class TestRequestRoundtrip:
    def test_ping(self):
        assert isinstance(roundtrip_request(p.PingRequest()), p.PingRequest)

    def test_stats(self):
        assert isinstance(roundtrip_request(p.StatsRequest()), p.StatsRequest)

    @pytest.mark.parametrize("chunks", [None, 32, (16, 8, 24), (4,)])
    def test_compress_fields_survive(self, chunks):
        data = np.arange(60, dtype=np.float32).reshape(3, 4, 5)
        req = p.CompressRequest(
            data=data,
            codec="qoz",
            codec_kwargs={"metric": "psnr", "radius": 16, "tune": True},
            rel_error_bound=1e-3,
            chunks=chunks,
            family="hurricane-U",
            per_chunk_tuning=True,
        )
        out = roundtrip_request(req)
        assert out.codec == "qoz"
        assert out.codec_kwargs == {"metric": "psnr", "radius": 16, "tune": True}
        assert out.error_bound is None
        assert out.rel_error_bound == 1e-3
        assert out.chunks == chunks
        assert out.family == "hurricane-U"
        assert out.per_chunk_tuning is True
        assert out.data.dtype == data.dtype
        assert np.array_equal(out.data, data)

    def test_compress_abs_bound_and_defaults(self):
        req = p.CompressRequest(
            data=np.zeros(7, dtype=np.float64), error_bound=0.25
        )
        out = roundtrip_request(req)
        assert out.error_bound == 0.25
        assert out.rel_error_bound is None
        assert out.family is None
        assert out.chunks is None
        assert out.per_chunk_tuning is False

    def test_compress_array_is_writable(self):
        req = p.CompressRequest(
            data=np.ones((2, 3), dtype=np.float32), error_bound=1.0
        )
        out = roundtrip_request(req)
        out.data[0, 0] = 5.0  # must not raise (frombuffer default is RO)

    def test_compress_requires_exactly_one_bound(self):
        data = np.zeros(4, dtype=np.float32)
        with pytest.raises(ProtocolError):
            p.encode_request(p.CompressRequest(data=data))
        with pytest.raises(ProtocolError):
            p.encode_request(
                p.CompressRequest(
                    data=data, error_bound=1.0, rel_error_bound=1.0
                )
            )

    def test_decompress(self):
        out = roundtrip_request(p.DecompressRequest(blob=b"\x01\x02payload"))
        assert out.blob == b"\x01\x02payload"

    def test_read_slab_inline_bytes(self):
        slab = (slice(0, 16), slice(None), slice(8, 24))
        out = roundtrip_request(p.ReadSlabRequest(source=b"RPZ1...", slab=slab))
        assert out.source == b"RPZ1..."
        assert out.slab == slab

    def test_read_slab_path_and_open_dims(self):
        slab = (slice(None, 5), slice(3, None), slice(None))
        out = roundtrip_request(
            p.ReadSlabRequest(source="/data/field.rpz", slab=slab)
        )
        assert out.source == "/data/field.rpz"
        assert out.slab == slab

    def test_slab_rejects_strides(self):
        with pytest.raises(ProtocolError):
            p.encode_request(
                p.ReadSlabRequest(source=b"x", slab=(slice(0, 8, 2),))
            )

    def test_kwargs_reject_unencodable_types(self):
        req = p.CompressRequest(
            data=np.zeros(4, dtype=np.float32),
            error_bound=1.0,
            codec_kwargs={"alpha": [1, 2]},
        )
        with pytest.raises(ProtocolError):
            p.encode_request(req)


class TestResponseRoundtrip:
    def test_ok_bytes(self):
        resp = p.decode_response(p.encode_ok_bytes(b"abc"), p.OP_COMPRESS)
        assert resp.status == p.ST_OK and resp.blob == b"abc"

    def test_ok_array(self):
        arr = np.linspace(0, 1, 24).reshape(2, 3, 4).astype(np.float32)
        resp = p.decode_response(p.encode_ok_array(arr), p.OP_READ_SLAB)
        assert resp.status == p.ST_OK
        assert resp.array.dtype == arr.dtype
        assert np.array_equal(resp.array, arr)

    def test_ok_kv(self):
        stats = {"hits": 3, "ratio": 0.5, "codec": "qoz", "warm": True}
        resp = p.decode_response(p.encode_ok_kv(stats), p.OP_STATS)
        assert resp.mapping == stats

    def test_error(self):
        resp = p.decode_response(
            p.encode_error("boom\nsecret traceback"), p.OP_COMPRESS
        )
        assert resp.status == p.ST_ERROR
        assert resp.message == "boom"  # one line only

    def test_retry(self):
        resp = p.decode_response(p.encode_retry(0.125), p.OP_COMPRESS)
        assert resp.status == p.ST_RETRY
        assert resp.retry_after == 0.125


class TestBombProofing:
    def test_version_mismatch_rejected(self):
        body = bytearray(p.encode_request(p.PingRequest()))
        body[0] = 99
        with pytest.raises(ProtocolError, match="version"):
            p.decode_request(bytes(body))
        with pytest.raises(ProtocolError, match="version"):
            p.decode_response(bytes(body), p.OP_PING)

    def test_unknown_opcode_rejected(self):
        body = bytes([p.PROTOCOL_VERSION, 250])
        with pytest.raises(ProtocolError, match="opcode"):
            p.decode_request(body)

    def test_trailing_bytes_rejected(self):
        body = p.encode_request(p.PingRequest()) + b"\x00"
        with pytest.raises(ProtocolError, match="trailing"):
            p.decode_request(body)

    def test_truncated_field_rejected(self):
        body = p.encode_request(p.DecompressRequest(blob=b"x" * 100))[:-20]
        with pytest.raises(ProtocolError, match="truncated"):
            p.decode_request(body)

    def test_forged_blob_length_cannot_allocate(self):
        # u8 version, u8 op, empty meta kv, u64 blob length claiming
        # 2**60 bytes
        body = (
            bytes([p.PROTOCOL_VERSION, p.OP_DECOMPRESS])
            + struct.pack("<H", 0)
            + struct.pack("<Q", 1 << 60)
        )
        with pytest.raises(ProtocolError):
            p.decode_request(body)

    def test_forged_array_shape_rejected(self):
        # hand-build a compress body whose declared shape disagrees with
        # the shipped payload bytes
        w = p._Writer()
        w.u8(p.PROTOCOL_VERSION)
        w.u8(p.OP_COMPRESS)
        w.kv({})  # v2 request meta (priority/client_id/attempt)
        w.string("qoz")
        w.kv({})
        w.u8(0)
        w.f64(1.0)
        w.u8(0)
        w.string("")
        w.u8(0)
        w.string("<f4")
        w.u8(1)
        w.u64(1000)  # claims 1000 elements
        w.blob(b"\x00" * 32)  # ... but ships 8
        with pytest.raises(ProtocolError, match="imply"):
            p.decode_request(w.getvalue())

    def test_frame_cap_enforced_on_encode(self):
        with pytest.raises(ProtocolError):
            p.frame(b"x" * (p.MAX_FRAME + 1))


class TestRequestMeta:
    """v2 meta (priority / client_id / attempt) rides every work request."""

    def test_meta_roundtrips_on_compress(self):
        req = p.CompressRequest(
            data=np.zeros(4, dtype=np.float32), error_bound=1.0,
            priority="batch", client_id="sim-07", attempt=3,
        )
        out = roundtrip_request(req)
        assert out.priority == "batch"
        assert out.client_id == "sim-07"
        assert out.attempt == 3

    def test_meta_roundtrips_on_decompress_and_read(self):
        out = roundtrip_request(
            p.DecompressRequest(blob=b"abc", priority="batch",
                                client_id="c1", attempt=1)
        )
        assert (out.priority, out.client_id, out.attempt) == ("batch", "c1", 1)
        out = roundtrip_request(
            p.ReadSlabRequest(source=b"xyz", slab=(slice(0, 2),),
                              priority="batch", client_id="c2")
        )
        assert (out.priority, out.client_id) == ("batch", "c2")

    def test_default_meta_adds_no_bytes(self):
        # defaults are omitted from the wire: an all-default request
        # carries an empty meta kv, not three redundant entries
        plain = p.encode_request(p.DecompressRequest(blob=b"abc"))
        tagged = p.encode_request(
            p.DecompressRequest(blob=b"abc", priority="batch",
                                client_id="c", attempt=1)
        )
        assert len(plain) < len(tagged)
        out = p.decode_request(plain)
        assert out.priority == "interactive"
        assert out.client_id is None
        assert out.attempt == 0

    def test_invalid_priority_rejected_on_both_sides(self):
        req = p.DecompressRequest(blob=b"abc")
        req.priority = "urgent"
        with pytest.raises(ProtocolError, match="priority"):
            p.encode_request(req)  # never leaves the client
        w = p._Writer()  # ... and a forged body never enters the server
        w.u8(p.PROTOCOL_VERSION)
        w.u8(p.OP_DECOMPRESS)
        w.kv({"priority": "urgent"})
        w.blob(b"abc")
        with pytest.raises(ProtocolError, match="priority"):
            p.decode_request(w.getvalue())

    def test_validate_priority(self):
        p.validate_priority("interactive")
        p.validate_priority("batch")
        with pytest.raises(ProtocolError, match="priority"):
            p.validate_priority("bulk")

    def test_negative_attempt_rejected(self):
        req = p.DecompressRequest(blob=b"abc")
        req.attempt = -1
        with pytest.raises(ProtocolError):
            p.decode_request(p.encode_request(req))


class TestRetryReason:
    def test_retry_response_carries_reason(self):
        body = p.encode_retry(0.75, "class-capacity")
        resp = p.decode_response(body, p.OP_PING)
        assert resp.status == p.ST_RETRY
        assert resp.retry_after == 0.75
        assert resp.reason == "class-capacity"

    def test_retry_reason_defaults_to_overloaded(self):
        resp = p.decode_response(p.encode_retry(0.1), p.OP_PING)
        assert resp.reason == "overloaded"
