"""Property tests for the cost model and the pure admission policy.

The two load-bearing properties the module docstring promises:

* predicted cost is *monotone in element count* for every codec and
  request kind — admission can rank requests by size without ever being
  inverted by a bigger request predicting cheaper;
* :func:`repro.service.admission.decide` is *pure* — replaying the same
  (units, priority, snapshot, limits) tuple reproduces the decision
  bit-for-bit, including the retry hint.

Both are swept over seeded-numpy random inputs, so a regression shows up
as a deterministic counterexample, not a flake.
"""

import math

import numpy as np
import pytest

from repro.core.plan_cache import PlanLRU, field_signature, plan_cache_key
from repro.service.admission import (
    CODEC_WORK_CLASS,
    DEFAULT_DRAIN_RATE,
    MIN_UNITS,
    AdmissionController,
    AdmissionLimits,
    AdmissionSnapshot,
    CostModel,
    ServiceMetrics,
    TokenBucket,
    decide,
    format_stats_line,
)
from repro.service.protocol import (
    CompressRequest,
    DecompressRequest,
    PingRequest,
    ReadSlabRequest,
)


def compress_req(n_elements, codec="qoz", **kw):
    kw.setdefault("rel_error_bound", 1e-3)
    return CompressRequest(
        data=np.zeros(int(n_elements), dtype=np.float32), codec=codec, **kw
    )


class TestCostModel:
    def test_monotone_in_elements_per_codec(self):
        rng = np.random.default_rng(1234)
        model = CostModel()
        for codec in CODEC_WORK_CLASS:
            sizes = np.sort(rng.integers(1, 2_000_000, size=12))
            units = [
                model.predict(compress_req(n, codec=codec)).units
                for n in sizes
            ]
            assert units == sorted(units), f"non-monotone for {codec}"

    def test_monotone_decompress(self):
        from repro.compressors import get_compressor

        rng = np.random.default_rng(99)
        model = CostModel()
        comp = get_compressor("zfp")
        units = []
        for n in (8, 64, 512):
            blob = comp.compress(
                rng.random((n, 8, 8)).astype(np.float32), error_bound=1e-2
            )
            units.append(
                model.predict(DecompressRequest(blob=blob)).units
            )
        assert units == sorted(units)
        # garbage blobs still get a finite, size-monotone estimate
        garbage = [
            model.predict(DecompressRequest(blob=b"\xff" * n)).units
            for n in (64, 4096, 1 << 20)
        ]
        assert garbage == sorted(garbage)
        assert all(math.isfinite(u) for u in garbage)

    def test_cold_costs_more_than_warm(self):
        model = CostModel()
        plans = PlanLRU(capacity=8)
        req = compress_req(500_000, codec="qoz", family="f")
        cold = model.predict(req, plans)
        assert not cold.warm
        key = plan_cache_key(
            "qoz", {}, "rel", 1e-3, field_signature(req.data, "f")
        )
        from repro.core.plan_cache import FrozenPlan

        plans.put(key, FrozenPlan(codec="qoz", eb=1.0, interpolators={1: (0, 0)}))
        warm = model.predict(req, plans)
        assert warm.warm
        assert cold.units > warm.units

    def test_non_plan_codec_has_no_surcharge(self):
        model = CostModel()
        est = model.predict(compress_req(1_000_000, codec="zfp"))
        assert est.units == pytest.approx(CODEC_WORK_CLASS["zfp"])

    def test_floor_and_other_kinds(self):
        model = CostModel()
        assert model.predict(compress_req(1)).units >= MIN_UNITS
        assert model.predict(PingRequest()).units == MIN_UNITS
        est = model.predict(
            ReadSlabRequest(source=b"junk", slab=(slice(0, 4), slice(0, 4)))
        )
        assert est.kind == "read" and est.units >= MIN_UNITS

    def test_read_estimate_uses_slab_extent(self):
        model = CostModel()
        small = model.predict(
            ReadSlabRequest(source=b"x", slab=(slice(0, 4), slice(0, 4)))
        )
        big = model.predict(
            ReadSlabRequest(source=b"x", slab=(slice(0, 4000), slice(0, 4000)))
        )
        assert big.units > small.units


class TestDecidePurity:
    def random_snapshot(self, rng):
        return AdmissionSnapshot(
            queued_jobs=int(rng.integers(0, 100)),
            interactive_units=float(rng.uniform(0, 80)),
            batch_units=float(rng.uniform(0, 80)),
            drain_rate=float(rng.uniform(0.01, 50)),
            client_tokens=float(rng.uniform(-50, 100)),
            client_rate=float(rng.uniform(0.1, 64)),
            client_burst=float(rng.uniform(1, 100)),
        )

    def test_deterministic_given_snapshot(self):
        rng = np.random.default_rng(777)
        limits = AdmissionLimits()
        for _ in range(500):
            snap = self.random_snapshot(rng)
            units = float(rng.uniform(0, 40))
            priority = ["interactive", "batch"][int(rng.integers(0, 2))]
            first = decide(units, priority, snap, limits)
            for _ in range(3):
                again = decide(units, priority, snap, limits)
                assert again == first

    def test_rejections_always_carry_positive_retry_after(self):
        rng = np.random.default_rng(4242)
        limits = AdmissionLimits()
        rejected = 0
        for _ in range(500):
            snap = self.random_snapshot(rng)
            d = decide(
                float(rng.uniform(0, 40)),
                ["interactive", "batch"][int(rng.integers(0, 2))],
                snap,
                limits,
            )
            if not d.admitted:
                rejected += 1
                assert d.retry_after > 0.0
                assert limits.min_retry_after <= d.retry_after <= limits.max_retry_after
                assert d.reason in (
                    "queue-full", "client-quota", "class-capacity", "capacity"
                )
        assert rejected > 0  # the sweep must actually exercise rejection

    def test_unknown_priority_rejected(self):
        snap = AdmissionSnapshot(0, 0.0, 0.0)
        with pytest.raises(ValueError, match="priority"):
            decide(1.0, "urgent", snap, AdmissionLimits())


class TestPolicyRules:
    LIMITS = AdmissionLimits(max_queue_jobs=10, max_work_units=10.0,
                             batch_share=0.5)

    def test_empty_queue_admits_any_size(self):
        snap = AdmissionSnapshot(queued_jobs=0, interactive_units=0.0,
                                 batch_units=0.0)
        assert decide(1e6, "interactive", snap, self.LIMITS).admitted
        assert decide(1e6, "batch", snap, self.LIMITS).admitted

    def test_capacity_rejects_when_backlogged(self):
        snap = AdmissionSnapshot(queued_jobs=3, interactive_units=9.5,
                                 batch_units=0.0)
        d = decide(2.0, "interactive", snap, self.LIMITS)
        assert not d.admitted and d.reason == "capacity"

    def test_batch_class_budget_tighter_than_total(self):
        # 4 of 10 units queued, all batch: one more big batch job would
        # blow the 5-unit batch share but interactive still fits
        snap = AdmissionSnapshot(queued_jobs=2, interactive_units=0.0,
                                 batch_units=4.0)
        d = decide(2.0, "batch", snap, self.LIMITS)
        assert not d.admitted and d.reason == "class-capacity"
        assert decide(2.0, "interactive", snap, self.LIMITS).admitted

    def test_full_bucket_admits_oversized_request(self):
        snap = AdmissionSnapshot(
            queued_jobs=1, interactive_units=1.0, batch_units=0.0,
            client_tokens=5.0, client_rate=1.0, client_burst=5.0,
        )
        assert decide(8.0, "interactive", snap, self.LIMITS).admitted

    def test_drained_bucket_rejects_with_refill_hint(self):
        snap = AdmissionSnapshot(
            queued_jobs=1, interactive_units=1.0, batch_units=0.0,
            client_tokens=1.0, client_rate=2.0, client_burst=5.0,
        )
        d = decide(3.0, "interactive", snap, self.LIMITS)
        assert not d.admitted and d.reason == "client-quota"
        assert d.retry_after == pytest.approx(1.0)  # (3 - 1) / 2 u/s

    def test_queue_full_wins_over_everything(self):
        snap = AdmissionSnapshot(queued_jobs=10, interactive_units=0.5,
                                 batch_units=0.0, client_tokens=0.0,
                                 client_rate=1.0, client_burst=5.0)
        assert decide(0.1, "interactive", snap, self.LIMITS).reason == "queue-full"


class TestTokenBucket:
    def test_refill_and_debt_bounds(self):
        b = TokenBucket(rate=2.0, burst=10.0, now=0.0)
        assert b.tokens == 10.0  # starts full
        b.consume(25.0, now=0.0)  # oversized: debt capped at one burst
        assert b.tokens == -10.0
        assert b.refill(now=5.0) == pytest.approx(0.0)
        assert b.refill(now=100.0) == 10.0  # never above burst
        b.refill(now=50.0)  # time cannot run backwards
        assert b.stamp == 100.0


class TestAdmissionController:
    def make(self, **kw):
        clock = FakeClock()
        ctrl = AdmissionController(
            AdmissionLimits(max_queue_jobs=4, max_work_units=8.0),
            clock=clock, **kw,
        )
        return ctrl, clock

    def test_admit_release_roundtrip(self):
        ctrl, _ = self.make()
        assert ctrl.try_admit(3.0, "interactive").admitted
        assert ctrl.snapshot().interactive_units == 3.0
        ctrl.release(3.0, "interactive")
        snap = ctrl.snapshot()
        assert snap.interactive_units == 0.0 and snap.queued_jobs == 0

    def test_depth_only_ignores_units(self):
        ctrl, _ = self.make()
        for _ in range(4):
            assert ctrl.try_admit(100.0, "interactive", depth_only=True).admitted
        d = ctrl.try_admit(0.1, "interactive", depth_only=True)
        assert not d.admitted and d.reason == "queue-full"

    def test_client_bucket_lru_bounded(self):
        ctrl, _ = self.make(max_clients=3)
        for i in range(6):
            ctrl.try_admit(0.5, "interactive", client_id=f"c{i}")
        assert ctrl.stats()["quota_clients_tracked"] == 3

    def test_drain_ewma_feeds_snapshot(self):
        ctrl, _ = self.make()
        ctrl.observe_drain(10.0, 2.0)  # 5 units/s
        assert ctrl.snapshot().drain_rate == pytest.approx(5.0)
        ctrl.observe_drain(0.0, 1.0)  # zero-work samples are ignored
        assert ctrl.snapshot().drain_rate == pytest.approx(5.0)

    def test_default_drain_before_any_completion(self):
        ctrl, _ = self.make()
        assert ctrl.snapshot().drain_rate == DEFAULT_DRAIN_RATE


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestServiceMetrics:
    def test_snapshot_counts_and_layout(self):
        m = ServiceMetrics(clock=FakeClock())
        m.admit("interactive")
        m.admit("interactive", attempt=2)
        m.reject("batch", "class-capacity")
        m.job_started("interactive", wait_s=0.004)
        m.job_finished("interactive", "compress", ok=True,
                       duration_s=0.1, nbytes=4_000_000, codec="qoz")
        m.job_finished("interactive", "compress", ok=False,
                       duration_s=0.0, nbytes=0, codec="qoz")
        m.batch_dispatched(4, 8)
        m.connection_opened()
        m.connection_closed()
        s = m.snapshot()
        assert s["stats_version"] >= 1
        assert s["admitted_interactive"] == 2
        assert s["retried_interactive"] == 1
        assert s["rejected_batch"] == 1
        assert s["rejects_class_capacity"] == 1
        assert s["completed_interactive"] == 1
        assert s["failed_interactive"] == 1
        assert s["jobs_codec_qoz"] == 2
        assert s["throughput_qoz_mbps"] == pytest.approx(40.0)
        assert s["batch_fill_ewma"] == pytest.approx(0.5)
        assert s["connections_total"] == 1 and s["connections_open"] == 0
        # the wire frame is a typed kv map: every value must be int/float
        assert all(isinstance(v, (int, float)) for v in s.values())

    def test_stats_line_renders_any_snapshot(self):
        m = ServiceMetrics(clock=FakeClock())
        line = format_stats_line(m.snapshot())
        assert line.startswith("repro service stats:")
        assert "admit=0" in line and "reject=0" in line
