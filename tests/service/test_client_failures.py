"""Client behavior when the server side fails mid-request.

The contract: a connection the server drops — before, during, or after
a frame — surfaces as a *typed* error (:class:`ProtocolError` /
:class:`RemoteServiceError`) promptly; the client never hangs and never
reports success for bytes that did not arrive.
"""

import socket
import threading

import numpy as np
import pytest

from repro.errors import (
    ProtocolError,
    RemoteServiceError,
    ServiceConnectionError,
)
from repro.service import protocol
from repro.service.client import RemoteClient


def tiny_field():
    return np.linspace(0, 1, 64, dtype=np.float32).reshape(8, 8)


class OneShotServer:
    """Accepts one connection and runs ``behavior(conn)`` on a thread."""

    def __init__(self, behavior):
        self._behavior = behavior
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        conn, _ = self._listener.accept()
        try:
            self._behavior(conn)
        finally:
            conn.close()

    def close(self):
        self._listener.close()
        self._thread.join(timeout=10)


@pytest.fixture
def serve_once():
    servers = []

    def start(behavior):
        srv = OneShotServer(behavior)
        servers.append(srv)
        return srv.port

    yield start
    for srv in servers:
        srv.close()


class TestServerDrops:
    def test_close_before_response_is_typed_not_a_hang(self, serve_once):
        def drop_after_reading(conn):
            conn.settimeout(10)
            conn.recv(1 << 16)  # swallow (part of) the request, then drop

        port = serve_once(drop_after_reading)
        with RemoteClient(port=port, timeout=10) as client:
            with pytest.raises((ProtocolError, RemoteServiceError)):
                client.compress(tiny_field(), codec="qoz", error_bound=0.1)

    def test_close_mid_response_frame_is_typed(self, serve_once):
        def send_torn_frame(conn):
            conn.settimeout(10)
            conn.recv(1 << 16)
            # frame length promises 100 bytes; deliver 4 and vanish
            conn.sendall(b"\x64\x00\x00\x00" + b"\x00" * 4)

        port = serve_once(send_torn_frame)
        with RemoteClient(port=port, timeout=10) as client:
            with pytest.raises(ProtocolError, match="mid-frame"):
                client.ping()

    def test_immediate_close_on_connect_is_typed(self, serve_once):
        port = serve_once(lambda conn: None)  # accept then slam shut
        with RemoteClient(port=port, timeout=10) as client:
            with pytest.raises((ProtocolError, RemoteServiceError, OSError)):
                client.ping()


class FakeSocket:
    """Scriptable socket: each send consumes the next return value."""

    def __init__(self, sends):
        self._sends = list(sends)
        self.written = bytearray()

    def send(self, view):
        n = self._sends.pop(0)
        n = min(n, len(view))
        self.written += bytes(view[:n])
        return n


class TestSendAll:
    def client_with(self, sock):
        client = RemoteClient.__new__(RemoteClient)
        client._sock = sock
        return client

    def test_partial_writes_are_looped_to_completion(self):
        sock = FakeSocket(sends=[3, 1, 4, 100])
        self.client_with(sock)._send_all(b"abcdefgh")
        assert bytes(sock.written) == b"abcdefgh"

    def test_zero_byte_send_reports_position(self):
        sock = FakeSocket(sends=[5, 0])
        with pytest.raises(RemoteServiceError, match="5 of 8"):
            self.client_with(sock)._send_all(b"abcdefgh")


class ScriptedServer:
    """Accepts one connection per behavior, running them in order.

    Models a shard dying and a replacement (or a reuseport sibling)
    answering the redial: behavior k handles the k-th connection.
    """

    def __init__(self, behaviors):
        self._behaviors = list(behaviors)
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for behavior in self._behaviors:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                behavior(conn)
            finally:
                conn.close()

    def close(self):
        self._listener.close()
        self._thread.join(timeout=10)


def drop_after_request(conn):
    conn.settimeout(10)
    conn.recv(1 << 16)  # swallow the request, then slam the connection


def answer_ping(conn):
    conn.settimeout(10)
    protocol.read_frame_sync(conn)
    conn.sendall(protocol.frame(protocol.encode_ok_empty()))


class TestReconnect:
    def test_reconnect_resends_and_succeeds(self):
        srv = ScriptedServer([drop_after_request, answer_ping])
        try:
            with RemoteClient(port=srv.port, timeout=10, reconnects=2) as c:
                c.ping()  # first connection dies; redial must recover
        finally:
            srv.close()

    def test_reconnect_budget_exhaustion_is_typed(self):
        srv = ScriptedServer([drop_after_request] * 3)
        try:
            with RemoteClient(port=srv.port, timeout=10, reconnects=1) as c:
                with pytest.raises(
                    ServiceConnectionError, match="reconnect\\s+budget 1"
                ):
                    c.ping()
        finally:
            srv.close()

    def test_default_client_does_not_reconnect(self):
        # reconnects=0: the drop surfaces immediately, first exchange
        srv = ScriptedServer([drop_after_request, answer_ping])
        try:
            with RemoteClient(port=srv.port, timeout=10) as c:
                with pytest.raises(ServiceConnectionError):
                    c.ping()
        finally:
            srv.close()

    def test_connection_error_is_both_families(self):
        # satellite contract: callers written against either exception
        # family (transport vs RPC) keep catching shard-death errors
        assert issubclass(ServiceConnectionError, RemoteServiceError)
        assert issubclass(ServiceConnectionError, ProtocolError)
