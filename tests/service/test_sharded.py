"""End-to-end tests for ``repro serve --shards N`` (DESIGN.md §14).

This is the test file behind the ``sharded-smoke`` CI job: spawn the
sharded runtime as a subprocess, reach both shards through real
sockets, and pin the contracts that make sharding invisible to
clients —

* the same field compressed via two different shards yields the exact
  bytes the in-process library path yields (byte-identity);
* a plan derived on one shard warms the other through the replication
  bus (observed via ``bus_plans_installed`` / ``plan_cache_hits``);
* the supervisor's admin endpoint serves an aggregated snapshot whose
  per-shard rows reconcile with the fleet totals;
* killing a shard mid-connection costs a ``reconnects``-enabled client
  one redial and nothing else (and surfaces as the typed
  :class:`ServiceConnectionError` for a default client).

The hash-router mode (the non-Linux fallback) gets its own fixture so
both distribution strategies stay covered on every platform.
"""

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.chunked import compress_chunked
from repro.errors import ServiceConnectionError
from repro.service import RemoteClient

SHARD_LINE = re.compile(
    r"repro shard (\d+)/(\d+) pid=(\d+) listening on [\d.]+:(\d+)"
)
LISTEN_LINE = re.compile(r"repro service listening on [\d.]+:(\d+)")


def smooth3d(shape=(24, 24, 24), seed=0):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.standard_normal(shape), axis=0)
    return (x / np.abs(x).max()).astype(np.float32)


def subprocess_env():
    src = pathlib.Path(__file__).parent.parent.parent / "src"
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = str(src) + (
        (os.pathsep + existing) if existing else ""
    )
    return env


class ShardedServer:
    """A ``repro serve --shards N`` subprocess, with parsed topology."""

    def __init__(self, shards=2, router="auto", extra=()):
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--shards", str(shards), "--router", router,
                *extra,
            ],
            env=subprocess_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.pids = {}
        self.port = None
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            m = SHARD_LINE.match(line)
            if m:
                self.pids[int(m.group(1))] = int(m.group(3))
                continue
            m = LISTEN_LINE.match(line)
            if m:
                self.port = int(m.group(1))
                break
        if self.port is None:
            err = self.proc.stderr.read()
            self.close()
            raise AssertionError(f"sharded server never came up: {err}")
        self.admin_port = self.port + 1

    def close(self):
        self.proc.terminate()
        try:
            self.proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=15)


@pytest.fixture(scope="module")
def server():
    srv = ShardedServer(shards=2)
    yield srv
    srv.close()


def client_on_shard(port, shard_id, attempts=60, **kwargs):
    """Dial until a connection lands on ``shard_id`` (reuseport hashes
    the 4-tuple, so fresh source ports eventually cover every shard)."""
    for _ in range(attempts):
        client = RemoteClient(port=port, **kwargs)
        if client.stats().get("shard_id") == shard_id:
            return client
        client.close()
    raise AssertionError(f"never reached shard {shard_id} on :{port}")


def shard_stats(port, shard_id):
    with client_on_shard(port, shard_id) as client:
        return client.stats()


class TestShardedSmoke:
    def test_both_shards_reachable_and_identified(self, server):
        seen = set()
        for _ in range(60):
            with RemoteClient(port=server.port) as client:
                stats = client.stats()
                assert stats["n_shards"] == 2
                seen.add(stats["shard_id"])
            if seen == {0, 1}:
                break
        assert seen == {0, 1}

    def test_two_shards_serve_identical_bytes(self, server):
        data = smooth3d(seed=11)
        inline = compress_chunked(
            data, codec="qoz", rel_error_bound=1e-3, chunks=12
        )
        blobs = {}
        for shard_id in (0, 1):
            with client_on_shard(server.port, shard_id) as client:
                blobs[shard_id] = client.compress(
                    data, codec="qoz", rel_error_bound=1e-3, chunks=12
                )
        # the tentpole contract: which shard answered is unobservable
        assert blobs[0] == inline
        assert blobs[1] == inline

    def test_replication_warms_the_other_shard(self, server):
        data = smooth3d(seed=23)
        with client_on_shard(server.port, 0) as deriver:
            before = shard_stats(server.port, 1)
            deriver.compress(
                data, codec="qoz", rel_error_bound=1e-3, chunks=12,
                family="replication-probe",
            )
        # the bus is asynchronous: wait for shard 1 to install the plan
        deadline = time.monotonic() + 20
        after = shard_stats(server.port, 1)
        while (
            after["bus_plans_installed"] <= before["bus_plans_installed"]
            and time.monotonic() < deadline
        ):
            time.sleep(0.1)
            after = shard_stats(server.port, 1)
        assert after["bus_plans_installed"] > before["bus_plans_installed"]
        assert after["plan_replicated"] > before["plan_replicated"]

        # shard 1 never derived this plan, yet serves it from cache
        with client_on_shard(server.port, 1) as warmed:
            pre = warmed.stats()
            blob = warmed.compress(
                data, codec="qoz", rel_error_bound=1e-3, chunks=12,
                family="replication-probe",
            )
            post = warmed.stats()
        assert post["plan_derives"] == pre["plan_derives"]
        assert post["plan_cache_hits"] == pre["plan_cache_hits"] + 1
        assert blob == compress_chunked(
            data, codec="qoz", rel_error_bound=1e-3, chunks=12
        )

    def test_admin_aggregate_reconciles_with_per_shard_rows(self, server):
        # make sure both shards have admitted something first
        for shard_id in (0, 1):
            with client_on_shard(server.port, shard_id) as client:
                client.compress(
                    smooth3d(seed=31 + shard_id), codec="qoz",
                    rel_error_bound=1e-3, chunks=12,
                )
        with RemoteClient(port=server.admin_port) as admin:
            agg = admin.stats()
        assert agg["shards"] == 2
        assert agg["shards_reporting"] == 2
        for key in ("admitted_interactive", "completed_interactive",
                    "plan_cache_hits", "plan_derives"):
            assert agg[key] == agg[f"shard0_{key}"] + agg[f"shard1_{key}"], key
        total_hits = agg["plan_cache_hits"]
        total_misses = agg["plan_cache_misses"]
        if total_hits + total_misses:
            # the wire snapshot rounds floats to 4 significant digits
            assert agg["plan_cache_hit_rate"] == pytest.approx(
                total_hits / (total_hits + total_misses), abs=1e-3
            )

    def test_serve_stats_all_shards_cli(self, server):
        out = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve-stats",
                "--port", str(server.port), "--all-shards", "--json",
            ],
            env=subprocess_env(), capture_output=True, text=True, timeout=60,
        )
        assert out.returncode == 0, out.stderr
        agg = json.loads(out.stdout)
        assert agg["shards"] == 2
        assert not any(k.startswith("shard0_") for k in agg)  # aggregate only

        out = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve-stats",
                "--port", str(server.port), "--all-shards", "--per-shard",
                "--json",
            ],
            env=subprocess_env(), capture_output=True, text=True, timeout=60,
        )
        assert out.returncode == 0, out.stderr
        agg = json.loads(out.stdout)
        assert any(k.startswith("shard0_") for k in agg)

    # -- keep last in the file: killing a shard perturbs the topology ----
    def test_shard_death_mid_connection(self, server):
        data = smooth3d(seed=47)
        expected = compress_chunked(
            data, codec="qoz", rel_error_bound=1e-3, chunks=12
        )
        fragile = client_on_shard(server.port, 0, timeout=30)
        hardened = client_on_shard(
            server.port, 0, timeout=30, reconnects=5
        )
        try:
            os.kill(server.pids[0], signal.SIGKILL)
            time.sleep(0.3)  # let the kernel drop shard 0's listener
            # default client: the death surfaces as the typed error
            with pytest.raises(ServiceConnectionError):
                fragile.compress(
                    data, codec="qoz", rel_error_bound=1e-3, chunks=12
                )
            # hardened client: one redial lands on a live shard and the
            # resent request yields the exact same bytes
            blob = hardened.compress(
                data, codec="qoz", rel_error_bound=1e-3, chunks=12
            )
            assert blob == expected
        finally:
            fragile.close()
            hardened.close()

    def test_shard_respawns_after_kill(self, server):
        # the supervisor replaces the shard killed by the previous test
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            with RemoteClient(port=server.admin_port) as admin:
                agg = admin.stats()
            if agg["shards_reporting"] == 2 and agg["shard_respawns"] >= 1:
                return
            time.sleep(0.5)
        raise AssertionError(f"shard never respawned: {agg}")


class TestHashRouter:
    """The SO_REUSEPORT-less fallback: explicit front-router process."""

    @pytest.fixture(scope="class")
    def router_server(self):
        srv = ShardedServer(shards=2, router="hash")
        yield srv
        srv.close()

    def test_bytes_identical_through_router(self, router_server):
        data = smooth3d(seed=5)
        inline = compress_chunked(
            data, codec="qoz", rel_error_bound=1e-3, chunks=12
        )
        for i in range(3):
            with RemoteClient(port=router_server.port) as client:
                blob = client.compress(
                    data, codec="qoz", rel_error_bound=1e-3, chunks=12
                )
            assert blob == inline, f"connection {i}"

    def test_shard_key_affinity(self, router_server):
        # connections tagged with the same shard_key reach the same
        # shard: that is what makes a family's plan cache shard-local
        # even before replication catches up
        data = smooth3d(seed=6)
        shards = set()
        for _ in range(4):
            with RemoteClient(
                port=router_server.port, shard_key="pin-me"
            ) as client:
                client.compress(
                    data, codec="qoz", rel_error_bound=1e-3, chunks=12
                )
                shards.add(client.stats()["shard_id"])
        assert len(shards) == 1

    def test_keyless_connections_round_robin(self, router_server):
        seen = set()
        for _ in range(8):
            with RemoteClient(port=router_server.port) as client:
                seen.add(client.stats()["shard_id"])
        assert seen == {0, 1}
