"""End-to-end smoke over real sockets: one server, N concurrent clients.

This is the test the ``service-smoke`` CI job runs: spawn ``python -m
repro serve`` as a subprocess, drive a compress -> hyperslab-read ->
decompress roundtrip through :class:`RemoteClient` from several threads
at once, and pin the served bytes to the in-process
``compress_chunked`` / ``ChunkedFile`` path.
"""

import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.chunked import ChunkedFile, compress_chunked
from repro.errors import RemoteServiceError
from repro.service import RemoteClient

N_CONNECTIONS = 4
SLAB = (slice(3, 33), slice(None), slice(8, 30))


def smooth3d(shape=(36, 36, 36), seed=0):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.standard_normal(shape), axis=0)
    return (x / np.abs(x).max()).astype(np.float32)


@pytest.fixture(scope="module")
def server(subprocess_env):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--processes", "1",
        ],
        env=subprocess_env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        assert "listening on" in line, (line, proc.stderr.read())
        port = int(line.rsplit(":", 1)[1])
        yield port
    finally:
        proc.terminate()
        proc.wait(timeout=10)


# the fixture above is module-scoped but needs the function-scoped
# subprocess_env fixture; re-export it at module scope
@pytest.fixture(scope="module")
def subprocess_env():
    import os
    import pathlib

    src = pathlib.Path(__file__).parent.parent.parent / "src"
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = str(src) + (
        (os.pathsep + existing) if existing else ""
    )
    return env


class TestSmoke:
    def test_concurrent_roundtrips_match_inprocess_path(self, server):
        data = smooth3d(seed=1)
        inline = compress_chunked(
            data, codec="qoz", rel_error_bound=1e-3, chunks=18
        )
        with ChunkedFile(inline) as f:
            expected_slab = f.read(SLAB)

        failures = []
        results = []

        def roundtrip(i):
            try:
                with RemoteClient(port=server, retries=10) as client:
                    blob = client.compress(
                        data, codec="qoz", rel_error_bound=1e-3, chunks=18
                    )
                    slab = client.read(blob, SLAB)
                    recon = client.decompress(blob)
                    results.append((blob, slab, recon))
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append((i, repr(exc)))

        threads = [
            threading.Thread(target=roundtrip, args=(i,))
            for i in range(N_CONNECTIONS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not failures, failures
        assert len(results) == N_CONNECTIONS
        for blob, slab, recon in results:
            assert blob == inline  # byte-identical to the library path
            assert np.array_equal(slab, expected_slab)
            assert recon.shape == data.shape
            assert np.abs(
                recon.astype(np.float64) - data.astype(np.float64)
            ).max() <= 1e-3 * float(data.max() - data.min()) + 1e-12

    def test_plan_cache_is_warm_across_connections(self, server):
        data = smooth3d(seed=3)
        with RemoteClient(port=server) as client:
            client.compress(data, codec="qoz", rel_error_bound=1e-3, chunks=18)
            before = client.stats()
            client.compress(data, codec="qoz", rel_error_bound=1e-3, chunks=18)
            after = client.stats()
        # the second identical request is a pure cache hit — no derive
        assert after["plan_derives"] == before["plan_derives"]
        assert after["plan_cache_hits"] == before["plan_cache_hits"] + 1

    def test_remote_errors_are_clean(self, server):
        with RemoteClient(port=server) as client:
            with pytest.raises(RemoteServiceError):
                client.compress(
                    smooth3d(seed=2), codec="no-such-codec", error_bound=1e-3
                )
            # the connection survives an error response
            client.ping()

    def test_ping_and_stats(self, server):
        with RemoteClient(port=server) as client:
            client.ping()
            stats = client.stats()
            assert stats["processes"] == 1
            assert stats["max_queue"] == 64
