"""In-process service tests: byte identity, plan caching, backpressure.

The acceptance contract this file pins:

* a served compress / decompress / hyperslab-read is byte- (or bit-)
  identical to the in-process ``compress_chunked`` / ``decompress_chunked``
  / ``ChunkedFile.read`` path;
* a warm plan-cache hit skips derivation entirely (asserted via a
  derive-call counter spy on the codec, plus the service's own stats);
* a full queue rejects with ``ServiceOverloadedError`` + retry_after
  instead of buffering.
"""

import asyncio

import numpy as np
import pytest

from repro.chunked import ChunkedFile, compress_chunked, decompress_chunked
from repro.core.qoz import QoZ
from repro.errors import ServiceOverloadedError
from repro.service import ServiceClient, ServiceConfig
from repro.service.protocol import CompressRequest
from repro.service.scheduler import CompressionService


def smooth3d(shape=(40, 40, 40), seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    x = np.cumsum(rng.standard_normal(shape), axis=0)
    x += np.cumsum(rng.standard_normal(shape), axis=1)
    return (x / np.abs(x).max()).astype(dtype)


@pytest.fixture(scope="module")
def svc():
    with ServiceClient(ServiceConfig(processes=1, plan_cache_size=16)) as client:
        yield client


class TestByteIdentity:
    def test_compress_matches_inline_chunked_path(self, svc):
        data = smooth3d(seed=1)
        served = svc.compress(data, codec="qoz", rel_error_bound=1e-3, chunks=20)
        inline = compress_chunked(
            data, codec="qoz", rel_error_bound=1e-3, chunks=20
        )
        assert served == inline

    def test_abs_bound_and_sz3(self, svc):
        data = smooth3d(seed=2, dtype=np.float32)
        served = svc.compress(data, codec="sz3", error_bound=1e-3, chunks=20)
        inline = compress_chunked(data, codec="sz3", error_bound=1e-3, chunks=20)
        assert served == inline

    def test_codec_without_plan_support(self, svc):
        data = smooth3d(seed=3)
        served = svc.compress(data, codec="zfp", error_bound=1e-3, chunks=20)
        inline = compress_chunked(
            data, codec="zfp", error_bound=1e-3, chunks=20
        )
        assert served == inline

    def test_codec_kwargs_affect_the_stream(self, svc):
        data = smooth3d(seed=4)
        served = svc.compress(
            data, codec="qoz", rel_error_bound=1e-3, chunks=20,
            codec_kwargs={"metric": "psnr"},
        )
        inline = compress_chunked(
            data, codec="qoz", rel_error_bound=1e-3, chunks=20,
            codec_kwargs={"metric": "psnr"},
        )
        assert served == inline

    def test_per_chunk_tuning_opt_out(self, svc):
        data = smooth3d(seed=5)
        served = svc.compress(
            data, codec="qoz", error_bound=1e-3, chunks=20,
            per_chunk_tuning=True,
        )
        inline = compress_chunked(
            data, codec="qoz", error_bound=1e-3, chunks=20,
            per_chunk_tuning=True,
        )
        assert served == inline

    def test_decompress_matches_inline(self, svc):
        data = smooth3d(seed=6)
        blob = compress_chunked(data, codec="qoz", error_bound=1e-3, chunks=20)
        served = svc.decompress(blob)
        inline = decompress_chunked(blob)
        assert served.dtype == inline.dtype
        assert np.array_equal(served, inline)

    def test_decompress_plain_unchunked_stream(self, svc):
        data = smooth3d(seed=7)
        blob = QoZ().compress(data, error_bound=1e-3)
        assert np.array_equal(served := svc.decompress(blob), QoZ().decompress(blob))
        assert served.shape == data.shape

    def test_hyperslab_read_matches_chunkedfile(self, svc):
        data = smooth3d(seed=8)
        blob = compress_chunked(data, codec="qoz", error_bound=1e-3, chunks=16)
        slab = (slice(3, 37), slice(None), slice(10, 11))
        served = svc.read(blob, slab)
        with ChunkedFile(blob) as f:
            inline = f.read(slab)
        assert np.array_equal(served, inline)

    def test_hyperslab_read_from_server_side_path(self, tmp_path):
        from repro.chunked import compress_chunked_to_file

        data = smooth3d(seed=9)
        path = tmp_path / "field.rpz"
        compress_chunked_to_file(
            data, str(path), codec="qoz", error_bound=1e-3, chunks=16
        )
        slab = (slice(0, 20), slice(5, 25), slice(None))
        with ChunkedFile(str(path)) as f:
            inline = f.read(slab)
        config = ServiceConfig(processes=1, serve_root=str(tmp_path))
        with ServiceClient(config) as svc:
            # relative to the root and absolute-under-root both work
            assert np.array_equal(svc.read("field.rpz", slab), inline)
            served = svc.read(str(path), slab)
            assert np.array_equal(served, inline)
            # second read reuses the cached open container
            assert np.array_equal(svc.read(str(path), slab), inline)
            assert svc.stats()["open_containers"] >= 1

    def test_path_reads_refused_without_serve_root(self, svc, tmp_path):
        path = tmp_path / "anything.rpz"
        path.write_bytes(b"irrelevant")
        with pytest.raises(PermissionError, match="disabled"):
            svc.read(str(path), (slice(0, 4),))

    def test_path_reads_cannot_escape_serve_root(self, tmp_path):
        root = tmp_path / "root"
        root.mkdir()
        secret = tmp_path / "secret.rpz"
        secret.write_bytes(b"secret")
        config = ServiceConfig(processes=1, serve_root=str(root))
        with ServiceClient(config) as svc:
            for escape in (
                str(secret),                      # absolute, outside root
                "../secret.rpz",                  # traversal
                "sub/../../secret.rpz",           # nested traversal
            ):
                with pytest.raises(PermissionError, match="outside"):
                    svc.read(escape, (slice(0, 4),))


class TestPlanCache:
    def test_warm_hit_skips_derivation(self):
        """The headline amortization: repeat traffic never re-tunes."""
        data = smooth3d(seed=10)
        calls = {"n": 0}
        orig = QoZ.derive_plan

        def counting(self, *a, **k):
            calls["n"] += 1
            return orig(self, *a, **k)

        QoZ.derive_plan = counting
        try:
            with ServiceClient(ServiceConfig(processes=1)) as svc:
                first = svc.compress(
                    data, codec="qoz", rel_error_bound=1e-3, chunks=20
                )
                second = svc.compress(
                    data, codec="qoz", rel_error_bound=1e-3, chunks=20
                )
                stats = svc.stats()
        finally:
            QoZ.derive_plan = orig
        assert calls["n"] == 1
        assert first == second
        assert stats["plan_derives"] == 1
        assert stats["plan_cache_hits"] == 1

    def test_different_bound_is_a_different_plan(self, svc):
        data = smooth3d(seed=11)
        before = svc.stats()["plan_derives"]
        svc.compress(data, codec="qoz", rel_error_bound=1e-3, chunks=20)
        svc.compress(data, codec="qoz", rel_error_bound=1e-2, chunks=20)
        assert svc.stats()["plan_derives"] == before + 2

    def test_family_tag_shares_plans_across_siblings(self):
        """Sibling fields (time steps) tagged with one family derive once."""
        calls = {"n": 0}
        orig = QoZ.derive_plan

        def counting(self, *a, **k):
            calls["n"] += 1
            return orig(self, *a, **k)

        QoZ.derive_plan = counting
        eb = 1e-3
        try:
            with ServiceClient(ServiceConfig(processes=1)) as svc:
                blobs = [
                    svc.compress(
                        smooth3d(seed=20 + t), codec="qoz",
                        error_bound=eb, chunks=20, family="turbulence-u",
                    )
                    for t in range(3)
                ]
        finally:
            QoZ.derive_plan = orig
        assert calls["n"] == 1
        # plan sharing trades only ratio, never the bound
        for t, blob in enumerate(blobs):
            recon = decompress_chunked(blob)
            assert np.abs(recon - smooth3d(seed=20 + t)).max() <= eb

    def test_chunk_shape_does_not_fragment_the_cache(self, svc):
        data = smooth3d(seed=12)
        before = svc.stats()["plan_derives"]
        svc.compress(data, codec="qoz", error_bound=2e-3, chunks=20)
        svc.compress(data, codec="qoz", error_bound=2e-3, chunks=10)
        # the plan is derived from the full field; tiling is irrelevant
        assert svc.stats()["plan_derives"] == before + 1


class TestBackpressure:
    def test_full_queue_rejects_with_retry_after(self):
        async def main():
            service = CompressionService(
                ServiceConfig(max_queue=2, retry_after=0.25)
            )
            # scheduler deliberately NOT started: the queue can only fill
            req = CompressRequest(
                data=np.zeros((4, 4), dtype=np.float32), error_bound=1.0
            )
            futures = [service.submit(req) for _ in range(2)]
            with pytest.raises(ServiceOverloadedError) as err:
                service.submit(req)
            assert err.value.retry_after == 0.25
            for f in futures:
                f.cancel()

        asyncio.run(main())

    def test_draining_reopens_admission(self):
        async def main():
            service = CompressionService(ServiceConfig(max_queue=1))
            await service.start()
            try:
                req = CompressRequest(
                    data=np.linspace(0, 1, 64, dtype=np.float32).reshape(8, 8),
                    error_bound=0.1,
                    codec="zfp",
                )
                # admission either succeeds or backpressures; after the
                # queue drains, a retried submit must succeed
                for _ in range(5):
                    try:
                        blob = await service.submit(req)
                    except ServiceOverloadedError:
                        await asyncio.sleep(0.01)
                        continue
                    assert isinstance(blob, bytes)
                    break
                else:
                    pytest.fail("queue never drained")
            finally:
                await service.close()

        asyncio.run(main())


class TestErrorPropagation:
    def test_unknown_codec_raises(self, svc):
        with pytest.raises(KeyError):
            svc.compress(
                smooth3d(seed=13), codec="no-such-codec", error_bound=1e-3
            )

    def test_bad_bound_raises(self, svc):
        from repro.errors import CompressionError

        with pytest.raises(CompressionError):
            svc.compress(smooth3d(seed=14), codec="qoz", error_bound=-1.0)

    def test_missing_path_raises(self, svc):
        with pytest.raises(OSError):
            svc.read("/no/such/file.rpz", (slice(0, 4),))

    def test_forged_giant_header_cannot_size_an_allocation(self, svc):
        """A few-byte blob declaring a TiB field must be rejected before
        np.empty, not OOM the server (decode-side frame-cap discipline)."""
        from repro.core.header import FLAG_CHUNKED, pack_header
        from repro.errors import DecompressionError

        for flags in (0, FLAG_CHUNKED):
            bomb = pack_header(
                2, np.dtype(np.float32), (1 << 40, 1 << 20), 1e-3,
                flags=flags,
            ) + b"\x00" * 64
            with pytest.raises(DecompressionError, match="frame cap"):
                svc.decompress(bomb)

    def test_service_survives_errors(self, svc):
        # the scheduler task must still be alive after the failures above
        data = smooth3d(seed=15)
        blob = svc.compress(data, codec="qoz", error_bound=1e-3, chunks=20)
        assert blob == compress_chunked(
            data, codec="qoz", error_bound=1e-3, chunks=20
        )


class TestStats:
    def test_stats_surface(self, svc):
        svc.ping()
        stats = svc.stats()
        for key in (
            "queue_depth", "max_queue", "batch_max", "processes",
            "jobs_compress", "jobs_decompress", "jobs_read", "batches",
            "plan_cache_size", "plan_cache_capacity", "plan_cache_hits",
            "plan_cache_misses", "plan_derives", "open_containers",
        ):
            assert key in stats, key
        assert stats["max_queue"] == 64
        assert stats["jobs_compress"] > 0


class TestRetryJitter:
    """Two clients rejected together must not wake up together.

    A fake server answers every request with the same RETRY hint; the
    clients' retry sleeps are captured instead of slept.  Each sleep must
    be the hint times a factor in [0.5, 1.5), and two independent clients
    must draw *distinct* delays — the thundering-herd fix.
    """

    HINT = 0.2

    @pytest.fixture()
    def retry_server(self):
        import socket
        import threading

        from repro.service import protocol

        srv = socket.create_server(("127.0.0.1", 0))
        port = srv.getsockname()[1]
        stop = threading.Event()
        reply = protocol.frame(protocol.encode_retry(self.HINT, "capacity"))

        def serve():
            srv.settimeout(0.2)
            conns = []
            while not stop.is_set():
                try:
                    conn, _ = srv.accept()
                except socket.timeout:
                    continue
                conns.append(conn)
                threading.Thread(
                    target=self._serve_conn, args=(conn, reply, stop),
                    daemon=True,
                ).start()
            for conn in conns:
                conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        yield port
        stop.set()
        thread.join(timeout=5)
        srv.close()

    @staticmethod
    def _serve_conn(conn, reply, stop):
        from repro.errors import ProtocolError
        from repro.service import protocol

        conn.settimeout(1.0)
        while not stop.is_set():
            try:
                protocol.read_frame_sync(conn)
            except (ProtocolError, OSError):
                return
            conn.sendall(reply)

    def test_rejected_clients_wake_at_distinct_times(
        self, retry_server, monkeypatch
    ):
        import time as time_module

        from repro.service import RemoteClient

        sleeps = []
        monkeypatch.setattr(
            time_module, "sleep", lambda s: sleeps.append(s)
        )
        per_client = []
        for _ in range(2):
            with RemoteClient(port=retry_server, retries=3) as client:
                before = len(sleeps)
                with pytest.raises(ServiceOverloadedError) as exc_info:
                    client.ping()
                per_client.append(sleeps[before:])
                assert exc_info.value.retry_after == pytest.approx(self.HINT)
                assert exc_info.value.reason == "capacity"
        for client_sleeps in per_client:
            assert len(client_sleeps) == 3  # retries, then gave up
            for s in client_sleeps:
                assert 0.5 * self.HINT <= s < 1.5 * self.HINT
        # the herd fix: independent clients draw different delays
        assert per_client[0] != per_client[1]

    def test_retry_exhaustion_carries_reason(self, retry_server, monkeypatch):
        import time as time_module

        from repro.service import RemoteClient

        monkeypatch.setattr(time_module, "sleep", lambda s: None)
        with RemoteClient(port=retry_server, retries=0) as client:
            with pytest.raises(ServiceOverloadedError, match="capacity"):
                client.ping()


class TestPriorityAndQuota:
    def test_bad_priority_rejected_client_side(self, svc):
        with pytest.raises(Exception, match="priority"):
            svc.compress(smooth3d((8, 8, 8)), codec="zfp",
                         error_bound=1e-3, priority="urgent")

    def test_batch_priority_roundtrips(self, svc):
        data = smooth3d((16, 16, 16), seed=5)
        blob = svc.compress(data, codec="zfp", error_bound=1e-3,
                            priority="batch", client_id="tests")
        recon = svc.decompress(blob, priority="batch", client_id="tests")
        assert np.abs(recon - data).max() <= 1e-3
        stats = svc.stats()
        assert stats["admitted_batch"] >= 2
        assert stats["quota_clients_tracked"] >= 1


class TestStatsSchema:
    def test_versioned_snapshot_keys(self, svc):
        svc.ping()
        stats = svc.stats()
        assert stats["stats_version"] == 1
        for key in (
            "uptime_s", "queue_units_interactive", "queue_units_batch",
            "work_capacity_units", "batch_share", "drain_rate_units_s",
            "admitted_interactive", "rejected_interactive",
            "retried_interactive", "completed_interactive",
            "admitted_batch", "rejected_batch", "retried_batch",
            "batch_fill_ewma", "plan_cache_hit_rate", "cost_aware",
            "queue_depth_interactive", "queue_depth_batch",
            "connections_total", "connections_open",
        ):
            assert key in stats, key
        assert all(isinstance(v, (int, float)) for v in stats.values())

    def test_stats_line_renders_live_snapshot(self, svc):
        from repro.service import format_stats_line

        line = format_stats_line(svc.stats())
        assert line.startswith("repro service stats: v=1 ")
