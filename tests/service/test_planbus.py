"""Unit tests for the sharded-runtime building blocks (no subprocesses).

Covers the plan-replication bus codec (versioned wire format, pickle
byte-identity), the :class:`PlanLRU` replication hooks, shard key
hashing / request routing keys, and the all-shards stats aggregation —
the pieces ``repro serve --shards N`` composes.
"""

import pickle

import pytest

from repro.core.plan_cache import FrozenPlan, PlanLRU
from repro.errors import ProtocolError
from repro.service import aggregate_snapshots, shard_for_key
from repro.service import planbus, protocol
from repro.service.sharding import resolve_router, reuseport_available


def make_plan(eb=1e-3, alpha=1.5):
    return FrozenPlan(
        codec="qoz", eb=eb, alpha=alpha, beta=2.0,
        interpolators={1: (1, 0), 2: (0, 0)}, anchor_stride=64,
    )


class TestBusCodec:
    def test_plan_roundtrip_preserves_pickle_bytes(self):
        plan = make_plan()
        key = ("qoz", 1e-3, "climate")
        body = planbus.encode_plan(3, key, plan)
        msg = planbus.decode_message(body)
        assert msg.kind == planbus.MSG_PLAN
        assert msg.shard_id == 3
        assert msg.key == key
        # the replication contract: the installed plan pickles to the
        # exact bytes the deriver published (byte-identity downstream)
        assert pickle.dumps(msg.plan, protocol=pickle.HIGHEST_PROTOCOL) == \
            pickle.dumps(plan, protocol=pickle.HIGHEST_PROTOCOL)

    def test_hello_roundtrip(self):
        msg = planbus.decode_message(planbus.encode_hello(1, 9754, 4242))
        assert (msg.kind, msg.shard_id, msg.port, msg.pid) == (
            planbus.MSG_HELLO, 1, 9754, 4242,
        )

    def test_stats_roundtrip(self):
        stats = {"admitted_interactive": 7, "batch_fill_ewma": 0.25}
        msg = planbus.decode_message(planbus.encode_stats_resp(0, stats))
        assert msg.kind == planbus.MSG_STATS_RESP
        assert msg.stats == stats

    def test_wrong_version_rejected(self):
        body = bytearray(planbus.encode_hello(0, 1, 2))
        body[0] = 99
        with pytest.raises(ProtocolError, match="version 99"):
            planbus.decode_message(bytes(body))

    def test_unknown_kind_rejected(self):
        body = bytearray(planbus.encode_hello(0, 1, 2))
        body[1] = 77
        with pytest.raises(ProtocolError, match="kind 77"):
            planbus.decode_message(bytes(body))

    def test_plan_payload_must_be_a_frozen_plan(self):
        w = planbus._header(planbus.MSG_PLAN, 0)
        w.blob(pickle.dumps("key"))
        w.blob(pickle.dumps({"not": "a plan"}))
        with pytest.raises(ProtocolError, match="not FrozenPlan"):
            planbus.decode_message(w.getvalue())


class TestPlanLRUReplication:
    def test_install_does_not_overwrite_and_counts(self):
        lru = PlanLRU(capacity=4)
        local = make_plan(alpha=1.0)
        remote = make_plan(alpha=9.0)
        assert lru.install("k", local)
        assert not lru.install("k", remote)  # local copy wins
        assert lru.get_or_derive("k", lambda: remote) is local
        assert lru.stats()["plan_replicated"] == 1

    def test_install_respects_capacity(self):
        lru = PlanLRU(capacity=2)
        for i in range(5):
            lru.install(i, make_plan())
        assert lru.stats()["plan_cache_size"] == 2

    def test_on_derive_hook_fires_only_on_derivation(self):
        published = []
        lru = PlanLRU(capacity=4, on_derive=lambda k, p: published.append(k))
        plan = make_plan()
        lru.get_or_derive("a", lambda: plan)
        lru.get_or_derive("a", lambda: plan)  # hit: no publish
        lru.install("b", plan)  # replicated in: no re-publish (no storm)
        assert published == ["a"]


class TestRouting:
    def test_shard_for_key_is_stable_and_in_range(self):
        for n in (1, 2, 4, 7):
            for key in ("family:climate", "plan:abc", "x"):
                s = shard_for_key(key, n)
                assert 0 <= s < n
                assert s == shard_for_key(key, n)  # deterministic

    def test_shard_for_key_spreads(self):
        hits = {shard_for_key(f"family:f{i}", 4) for i in range(64)}
        assert hits == {0, 1, 2, 3}

    def test_routing_key_prefers_shard_key_meta(self):
        req = protocol.StatsRequest()
        body = protocol.encode_request(req)
        assert protocol.routing_key(body) is None  # keyless op

    def test_routing_key_from_compress_family(self):
        import numpy as np

        req = protocol.CompressRequest(
            data=np.zeros((4, 4), dtype=np.float32),
            codec="qoz", error_bound=1e-3, family="climate",
        )
        assert protocol.routing_key(protocol.encode_request(req)) == \
            "family:climate"

    def test_routing_key_shard_key_wins_over_family(self):
        import numpy as np

        req = protocol.CompressRequest(
            data=np.zeros((4, 4), dtype=np.float32),
            codec="qoz", error_bound=1e-3, family="climate",
            shard_key="pin-7",
        )
        assert protocol.routing_key(protocol.encode_request(req)) == "pin-7"

    def test_routing_key_never_raises_on_garbage(self):
        assert protocol.routing_key(b"") is None
        assert protocol.routing_key(b"\xff" * 40) is None

    def test_resolve_router(self):
        assert resolve_router("hash") == "hash"
        expected = "reuseport" if reuseport_available() else "hash"
        assert resolve_router("auto") == expected
        with pytest.raises(ValueError):
            resolve_router("carrier-pigeon")


class TestAggregateSnapshots:
    def snaps(self):
        return {
            0: {
                "stats_version": 1, "shard_id": 0, "n_shards": 2,
                "admitted_interactive": 3, "plan_cache_hits": 3,
                "plan_cache_misses": 1, "batch_fill_ewma": 0.5,
                "uptime_s": 10.0,
            },
            1: {
                "stats_version": 1, "shard_id": 1, "n_shards": 2,
                "admitted_interactive": 5, "plan_cache_hits": 1,
                "plan_cache_misses": 3, "batch_fill_ewma": 0.25,
                "uptime_s": 12.0,
            },
        }

    def test_counters_sum_and_config_maxes(self):
        agg = aggregate_snapshots(self.snaps())
        assert agg["admitted_interactive"] == 8
        assert agg["stats_version"] == 1  # config key: max, not sum
        assert agg["uptime_s"] == 12.0
        assert agg["n_shards"] == 2
        assert agg["shards_reporting"] == 2
        assert "shard_id" not in agg  # meaningless across the fleet

    def test_hit_rate_recomputed_from_summed_counts(self):
        agg = aggregate_snapshots(self.snaps())
        assert agg["plan_cache_hit_rate"] == pytest.approx(4 / 8)

    def test_ewma_averages(self):
        agg = aggregate_snapshots(self.snaps())
        assert agg["batch_fill_ewma"] == pytest.approx(0.375)

    def test_per_shard_rows_prefixed(self):
        agg = aggregate_snapshots(self.snaps(), per_shard=True)
        assert agg["shard0_admitted_interactive"] == 3
        assert agg["shard1_admitted_interactive"] == 5
        # reconciliation: per-shard rows sum to the aggregate
        assert agg["admitted_interactive"] == (
            agg["shard0_admitted_interactive"]
            + agg["shard1_admitted_interactive"]
        )

    def test_empty_fleet(self):
        agg = aggregate_snapshots({})
        assert agg["shards_reporting"] == 0
